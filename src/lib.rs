//! **streamloc** — locality-aware routing in stateful streaming
//! applications.
//!
//! A from-scratch Rust reproduction of Caneill, El Rheddane, Leroy and
//! De Palma, *Locality-Aware Routing in Stateful Streaming
//! Applications* (Middleware 2016): observe which keys of consecutive
//! fields groupings co-occur, partition the resulting key graph, and
//! route correlated keys to operator instances on the same server —
//! online, with seamless state migration, while preserving load
//! balance.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`routing`] | `streamloc-core` | the paper's contribution: pair instrumentation, manager, routing tables, online reconfiguration policy |
//! | [`engine`] | `streamloc-engine` | Storm-like topology model + deterministic cluster simulator + reconfiguration mechanism |
//! | [`partition`] | `streamloc-partition` | balanced multilevel graph partitioning (the Metis role) |
//! | [`sketch`] | `streamloc-sketch` | SpaceSaving top-k statistics |
//! | [`workloads`] | `streamloc-workloads` | synthetic / Twitter-like / Flickr-like generators |
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory
//! and substitutions, and `EXPERIMENTS.md` for the paper-vs-measured
//! record of every reproduced figure.
//!
//! # Quickstart
//!
//! Run the end-to-end example:
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! or embed the loop directly (this is the whole system in one doc
//! test):
//!
//! ```
//! use streamloc::engine::{
//!     ClusterSpec, CountOperator, Grouping, Key, Placement, SimConfig,
//!     Simulation, SourceRate, Topology, Tuple,
//! };
//! use streamloc::routing::{Manager, ManagerConfig};
//!
//! // A chain of two stateful operators over correlated keys.
//! let n = 2;
//! let mut builder = Topology::builder();
//! let s = builder.source("S", n, SourceRate::PerSecond(10_000.0), |i| {
//!     let mut c = i as u64;
//!     Box::new(move || {
//!         c += 1;
//!         let k = c % 8;
//!         Some(Tuple::new([Key::new(k), Key::new(k + 8)], 64))
//!     })
//! });
//! let a = builder.stateful("A", n, CountOperator::factory());
//! let b = builder.stateful("B", n, CountOperator::factory());
//! builder.connect(s, a, Grouping::fields(0));
//! builder.connect(a, b, Grouping::fields(1));
//! let topology = builder.build()?;
//!
//! let placement = Placement::aligned(&topology, n);
//! let mut sim = Simulation::new(
//!     topology,
//!     ClusterSpec::lan_10g(n),
//!     placement,
//!     SimConfig::default(),
//! );
//! let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
//! sim.run(10);
//! let summary = manager.reconfigure(&mut sim).expect("no wave in flight");
//! assert!(summary.expected_locality > 0.9);
//! # Ok::<(), streamloc::engine::BuildTopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use streamloc_core as routing;
pub use streamloc_engine as engine;
pub use streamloc_partition as partition;
pub use streamloc_sketch as sketch;
pub use streamloc_workloads as workloads;
