//! The `streamloc` command-line entry point: run the paper's
//! experiments and a quick demo without hunting for bench binaries.
//!
//! ```bash
//! cargo run --release --bin streamloc -- list
//! cargo run --release --bin streamloc -- figure fig11
//! cargo run --release --bin streamloc -- all --quick
//! cargo run --release --bin streamloc -- demo
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use streamloc_bench::figures;

type FigureFn = fn(bool) -> PathBuf;

const EXPERIMENTS: &[(&str, &str, FigureFn)] = &[
    ("fig07", "throughput vs parallelism (6 panels)", figures::fig07),
    ("fig08", "throughput vs data locality", figures::fig08),
    ("fig09", "throughput vs tuple size", figures::fig09),
    ("fig10", "transient hashtag correlations", figures::fig10),
    ("fig11", "locality & balance over 25 weeks", figures::fig11),
    ("fig12", "locality vs edges considered", figures::fig12),
    ("fig13", "reconfiguration throughput timelines", figures::fig13),
    ("fig14", "avg throughput vs parallelism, 1 Gb/s", figures::fig14),
    ("ablation_partitioner", "multilevel vs greedy vs hash", figures::ablation_partitioner),
    ("ablation_period", "reconfiguration period sweep", figures::ablation_period),
    ("ablation_alpha", "imbalance bound α sweep", figures::ablation_alpha),
    ("ablation_racks", "flat vs rack-aware partitioning", figures::ablation_racks),
    ("ablation_estimator", "always vs gain-gated reconfiguration", figures::ablation_estimator),
    ("ablation_balance", "hash vs PKG vs DKG under skew", figures::ablation_balance),
    ("ablation_latency", "latency at fixed offered load", figures::ablation_latency),
];

fn usage() {
    println!(
        "streamloc — locality-aware routing in stateful streaming applications\n\
         (reproduction of Caneill et al., Middleware 2016)\n\n\
         USAGE:\n  \
         streamloc list                 list every experiment\n  \
         streamloc figure <name> [--quick]   run one experiment\n  \
         streamloc all [--quick]       run the whole evaluation\n  \
         streamloc demo                 60-second end-to-end demo\n  \
         streamloc about                paper & substitution summary\n\n\
         Results land in results/<name>.csv; see EXPERIMENTS.md for the\n\
         paper-vs-measured record."
    );
}

fn run_figure(name: &str, quick: bool) -> bool {
    match EXPERIMENTS.iter().find(|(n, ..)| *n == name) {
        Some((name, desc, run)) => {
            println!("=== {name}: {desc} ===\n");
            let path = run(quick);
            println!("\nwrote {}", path.display());
            true
        }
        None => {
            eprintln!("unknown experiment {name:?}; try `streamloc list`");
            false
        }
    }
}

fn demo() {
    use streamloc::engine::{
        ClusterSpec, CountOperator, Grouping, Key, Placement, SimConfig, Simulation, SourceRate,
        Topology, Tuple,
    };
    use streamloc::routing::{Manager, ManagerConfig};

    let servers = 4;
    let mut builder = Topology::builder();
    let source = builder.source("messages", servers, SourceRate::Saturate, |i| {
        let mut c = i as u64;
        Box::new(move || {
            c = c.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let region = c % 64;
            let topic = if c % 10 < 8 {
                region + 64
            } else {
                64 + (c >> 8) % 64
            };
            Some(Tuple::new([Key::new(region), Key::new(topic)], 2048))
        })
    });
    let by_region = builder.stateful("by_region", servers, CountOperator::factory());
    let by_topic = builder.stateful("by_topic", servers, CountOperator::factory());
    builder.connect(source, by_region, Grouping::fields(0));
    let hop = builder.connect(by_region, by_topic, Grouping::fields(1));
    let topology = builder.build().expect("valid demo topology");
    let placement = Placement::aligned(&topology, servers);
    let mut sim = Simulation::new(
        topology,
        ClusterSpec::lan_10g(servers),
        placement,
        SimConfig::default(),
    );
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());

    sim.run(80);
    println!(
        "hash routing   : {:>7.0} tuples/s at {:>4.1}% locality",
        sim.metrics().avg_throughput(40),
        sim.metrics().edge_locality(hop, 40) * 100.0
    );
    let summary = manager.reconfigure(&mut sim).expect("no wave running");
    println!(
        "reconfigured   : expected locality {:.1}%, {} key states migrated",
        summary.expected_locality * 100.0,
        summary.migrations
    );
    sim.run(80);
    println!(
        "locality-aware : {:>7.0} tuples/s at {:>4.1}% locality",
        sim.metrics().avg_throughput(100),
        sim.metrics().edge_locality(hop, 100) * 100.0
    );
}

fn about() {
    println!(
        "Reproduces: Caneill, El Rheddane, Leroy, De Palma —\n\
         \"Locality-Aware Routing in Stateful Streaming Applications\",\n\
         ACM/IFIP/USENIX Middleware 2016 (DOI 10.1145/2988336.2988340).\n\n\
         The paper's Storm cluster and Twitter/Flickr datasets are\n\
         substituted with a deterministic cluster simulator and\n\
         statistically matched generators (see DESIGN.md §2); the\n\
         reproduction target is the shape of every figure, recorded in\n\
         EXPERIMENTS.md."
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if quick {
        // The figure functions read this to shorten their sweeps.
        std::env::set_var("STREAMLOC_QUICK", "1");
    }
    let positional: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    match positional.as_slice() {
        ["list"] => {
            println!("experiments ({} total):", EXPERIMENTS.len());
            for (name, desc, _) in EXPERIMENTS {
                println!("  {name:<22} {desc}");
            }
            ExitCode::SUCCESS
        }
        ["figure", name] => {
            if run_figure(name, quick) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        ["all"] => {
            for (i, (name, _, _)) in EXPERIMENTS.iter().enumerate() {
                println!("\n[{}/{}]", i + 1, EXPERIMENTS.len());
                run_figure(name, quick);
            }
            ExitCode::SUCCESS
        }
        ["demo"] => {
            demo();
            ExitCode::SUCCESS
        }
        ["about"] => {
            about();
            ExitCode::SUCCESS
        }
        _ => {
            usage();
            if positional.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
