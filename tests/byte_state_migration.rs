//! Byte-state operators across migration: the reconfiguration
//! protocol must move opaque serialized state (HLL registers,
//! windowed counters) without corrupting it — the general-application
//! case beyond the paper's counting operator.

use streamloc::engine::{
    ApproxDistinctOperator, ClusterSpec, CountOperator, Grouping, Key, Placement, SimConfig,
    Simulation, SourceRate, StateValue, Topology, Tuple, WindowedCountOperator,
};
use streamloc::routing::{Manager, ManagerConfig};

const SERVERS: usize = 3;
const LOCATIONS: u64 = 9;
const TOPICS: u64 = 60;

/// (location, topic) stream where each location sees many topics.
fn sim_with(factory: streamloc::engine::OperatorFactory) -> Simulation {
    let mut builder = Topology::builder();
    let s = builder.source("S", SERVERS, SourceRate::PerSecond(30_000.0), move |i| {
        let mut c = i as u64;
        Box::new(move || {
            c = c.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let loc = (c >> 4) % LOCATIONS;
            // Topics correlate with locations but cycle broadly.
            let topic = LOCATIONS + (loc * 7 + (c >> 24) % 7) % TOPICS;
            Some(Tuple::new([Key::new(loc), Key::new(topic)], 64))
        })
    });
    let a = builder.stateful("distinct_topics", SERVERS, factory);
    let b = builder.stateful("by_topic", SERVERS, CountOperator::factory());
    builder.connect(s, a, Grouping::fields(0));
    builder.connect(a, b, Grouping::fields(1));
    let topology = builder.build().unwrap();
    let placement = Placement::aligned(&topology, SERVERS);
    Simulation::new(
        topology,
        ClusterSpec::lan_10g(SERVERS),
        placement,
        SimConfig::default(),
    )
}

/// HLL estimates per location, merged over all instances.
fn estimates(sim: &Simulation) -> Vec<(Key, f64)> {
    let po = sim.topology().po_by_name("distinct_topics").unwrap();
    let mut out = Vec::new();
    for poi in sim.poi_ids(po) {
        for (&k, v) in sim.poi_state(poi) {
            out.push((k, ApproxDistinctOperator::estimate(v).unwrap()));
        }
    }
    out.sort_by_key(|&(k, _)| k);
    out
}

#[test]
fn hll_state_survives_migration() {
    let mut sim = sim_with(ApproxDistinctOperator::factory(1));
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(20);
    let before = estimates(&sim);
    assert_eq!(before.len(), LOCATIONS as usize, "all locations seen");

    manager.reconfigure(&mut sim).unwrap();
    sim.run(40);
    assert_eq!(sim.pending_migrations(), 0);

    let after = estimates(&sim);
    assert_eq!(after.len(), LOCATIONS as usize, "no key lost in migration");
    for ((k1, e1), (k2, e2)) in before.iter().zip(&after) {
        assert_eq!(k1, k2);
        assert!(
            e2 >= &(e1 - 0.5),
            "estimate of {k1} shrank across migration: {e1} -> {e2}"
        );
    }
    // Each location sees exactly 7 distinct topics; HLL-64 should land
    // in a generous band around that.
    for (k, e) in &after {
        assert!((3.0..20.0).contains(e), "estimate for {k} wild: {e}");
    }
}

#[test]
fn hll_keys_have_unique_owner_after_migration() {
    let mut sim = sim_with(ApproxDistinctOperator::factory(1));
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(15);
    manager.reconfigure(&mut sim).unwrap();
    sim.run(30);
    let po = sim.topology().po_by_name("distinct_topics").unwrap();
    let mut seen = std::collections::HashSet::new();
    for poi in sim.poi_ids(po) {
        for &k in sim.poi_state(poi).keys() {
            assert!(seen.insert(k), "key {k} at two owners");
        }
    }
}

#[test]
fn windowed_count_state_migrates_as_bytes() {
    let mut sim = sim_with(WindowedCountOperator::factory(1_000_000));
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(15);

    // Pre-migration totals per location (window never rolls over in
    // this short run, so counts accumulate monotonically).
    let po = sim.topology().po_by_name("distinct_topics").unwrap();
    let total_before: u64 = sim
        .poi_ids(po)
        .iter()
        .flat_map(|&p| sim.poi_state(p).values())
        .filter_map(WindowedCountOperator::decode)
        .map(|(_, c)| c)
        .sum();
    assert!(total_before > 0);

    manager.reconfigure(&mut sim).unwrap();
    sim.run(30);
    let total_after: u64 = sim
        .poi_ids(po)
        .iter()
        .flat_map(|&p| sim.poi_state(p).values())
        .filter_map(WindowedCountOperator::decode)
        .map(|(_, c)| c)
        .sum();
    assert!(
        total_after > total_before,
        "windowed counts lost in migration: {total_before} -> {total_after}"
    );
    // Migration moved real bytes: the metrics recorded state traffic.
    let migrated: u64 = sim
        .metrics()
        .windows()
        .iter()
        .map(|w| w.migrated_states)
        .sum();
    assert!(migrated > 0, "expected state migrations");
}

#[test]
fn state_value_sizes_drive_migration_bytes() {
    // HLL state (64 B) migrates more bytes per key than Count (8 B).
    let run = |factory: streamloc::engine::OperatorFactory| -> (u64, u64) {
        let mut sim = sim_with(factory);
        let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
        sim.run(15);
        manager.reconfigure(&mut sim).unwrap();
        sim.run(30);
        let states: u64 = sim
            .metrics()
            .windows()
            .iter()
            .map(|w| w.migrated_states)
            .sum();
        let bytes: u64 = sim
            .metrics()
            .windows()
            .iter()
            .map(|w| w.migrated_bytes)
            .sum();
        (states, bytes)
    };
    let (count_states, count_bytes) = run(CountOperator::factory());
    let (hll_states, hll_bytes) = run(ApproxDistinctOperator::factory(1));
    assert!(count_states > 0 && hll_states > 0);
    let per_count = count_bytes as f64 / count_states as f64;
    let per_hll = hll_bytes as f64 / hll_states as f64;
    // Both runs also migrate the downstream Count operator's 60 topic
    // keys (metrics aggregate over all operators), so the 56-byte
    // state difference on the 9 location keys is diluted — but the
    // HLL run must still average strictly more bytes per key.
    assert!(
        per_hll > per_count + 3.0,
        "HLL migration should cost more per key: {per_count} vs {per_hll}"
    );
}

/// StateValue helpers behave outside the engine too.
#[test]
fn state_value_roundtrip() {
    let mut count = StateValue::Count(0);
    *count.as_count_mut().unwrap() += 41;
    assert_eq!(count.as_count(), Some(41));
    assert_eq!(count.size_bytes(), 8);
    let bytes = StateValue::Bytes(vec![1, 2, 3]);
    assert_eq!(bytes.size_bytes(), 3);
    assert_eq!(bytes.as_count(), None);
}
