//! Replay of the drifting Twitter-like stream through the analysis
//! pipeline (sketch → key graph → partition → routing tables): the
//! miniature of Fig. 11's online-vs-offline comparison.

use streamloc::engine::{HashRouter, Key, KeyRouter};
use streamloc::partition::{KeyGraph, MultilevelPartitioner};
use streamloc::routing::RoutingTable;
use streamloc::sketch::SpaceSaving;
use streamloc::workloads::{TwitterConfig, TwitterWorkload};

const SERVERS: usize = 6;

fn workload() -> TwitterWorkload {
    TwitterWorkload::new(TwitterConfig {
        locations: 100,
        hashtags: 5_000,
        tuples_per_day: 3_000,
        fresh_per_week: 100,
        ..TwitterConfig::default()
    })
}

fn tables_from(batch: &[(Key, Key)]) -> (RoutingTable, RoutingTable) {
    let mut sketch = SpaceSaving::new(20_000);
    for &pair in batch {
        sketch.offer(pair);
    }
    let mut graph = KeyGraph::new();
    for entry in sketch.iter() {
        let (loc, tag) = *entry.key;
        graph.add_pair(loc, tag, entry.count);
    }
    let assignment = graph.partition(&MultilevelPartitioner::default(), SERVERS, 1.03, 7);
    (
        assignment.left_iter().map(|(&k, p)| (k, p)).collect(),
        assignment.right_iter().map(|(&k, p)| (k, p)).collect(),
    )
}

fn locality(batch: &[(Key, Key)], tables: Option<&(RoutingTable, RoutingTable)>) -> f64 {
    let local = batch
        .iter()
        .filter(|&&(loc, tag)| match tables {
            Some((l, t)) => l.route(loc, SERVERS) == t.route(tag, SERVERS),
            None => HashRouter.route(loc, SERVERS) == HashRouter.route(tag, SERVERS),
        })
        .count();
    local as f64 / batch.len() as f64
}

/// Per-server load imbalance (max/avg) of the downstream hop.
fn imbalance(batch: &[(Key, Key)], tables: &(RoutingTable, RoutingTable)) -> f64 {
    let mut loads = [0u64; SERVERS];
    for &(_, tag) in batch {
        loads[tables.1.route(tag, SERVERS) as usize] += 1;
    }
    let total: u64 = loads.iter().sum();
    let avg = total as f64 / SERVERS as f64;
    *loads.iter().max().unwrap() as f64 / avg
}

#[test]
fn online_beats_offline_beats_hash() {
    let mut w = workload();
    let mut offline = None;
    let mut online = None;
    let (mut sum_hash, mut sum_off, mut sum_on) = (0.0, 0.0, 0.0);
    let weeks = 12;
    // Weeks 2.. (skip the cold start where neither has tables).
    for week in 0..weeks {
        let batch = w.week(week);
        if week >= 2 {
            sum_hash += locality(&batch, None);
            sum_off += locality(&batch, offline.as_ref());
            sum_on += locality(&batch, online.as_ref());
        }
        if week == 0 {
            offline = Some(tables_from(&batch));
        }
        online = Some(tables_from(&batch));
    }
    let n = (weeks - 2) as f64;
    let (hash, off, on) = (sum_hash / n, sum_off / n, sum_on / n);
    assert!(
        (hash - 1.0 / SERVERS as f64).abs() < 0.03,
        "hash locality {hash} should be ~1/{SERVERS}"
    );
    assert!(
        off > hash + 0.1,
        "offline {off} should clearly beat hash {hash}"
    );
    assert!(
        on > off + 0.08,
        "online {on} should clearly beat offline {off} on a drifting stream"
    );
}

#[test]
fn offline_decays_over_time() {
    let mut w = workload();
    let week0 = w.week(0);
    let tables = tables_from(&week0);
    let early = locality(&w.week(1), Some(&tables));
    let late_avg = (8..11)
        .map(|wk| locality(&w.week(wk), Some(&tables)))
        .sum::<f64>()
        / 3.0;
    assert!(
        late_avg < early - 0.08,
        "offline locality should decay: week1 {early}, weeks 8-10 {late_avg}"
    );
}

#[test]
fn fresh_tables_stay_balanced() {
    let mut w = workload();
    for week in [1usize, 5, 9] {
        let train = w.week(week);
        let tables = tables_from(&train);
        let next = w.week(week + 1);
        let imb = imbalance(&next, &tables);
        assert!(
            imb < 1.6,
            "week {week} tables imbalance {imb} on next week's data"
        );
    }
}

#[test]
fn stale_tables_unbalance_more_than_fresh_ones() {
    let mut w = workload();
    let stale = tables_from(&w.week(0));
    let mut stale_sum = 0.0;
    let mut fresh_sum = 0.0;
    for week in 7..10 {
        let prev = w.week(week - 1);
        let fresh = tables_from(&prev);
        let batch = w.week(week);
        stale_sum += imbalance(&batch, &stale);
        fresh_sum += imbalance(&batch, &fresh);
    }
    assert!(
        fresh_sum <= stale_sum + 0.05,
        "fresh tables ({fresh_sum}) should not be worse balanced than stale ({stale_sum})"
    );
}
