//! Fault-tolerance integration: the manager persists configurations
//! before reconfiguring and a restarted manager restores the last one
//! (paper §3.4).

use streamloc::engine::{
    ClusterSpec, CountOperator, Grouping, Key, Placement, SimConfig, Simulation, SourceRate,
    Topology, Tuple,
};
use streamloc::routing::{ConfigStore, Manager, ManagerConfig, MemoryStore};

const SERVERS: usize = 3;
const KEYS: u64 = 12;

fn correlated_sim() -> Simulation {
    let mut b = Topology::builder();
    let s = b.source("S", SERVERS, SourceRate::PerSecond(20_000.0), move |i| {
        let mut c = i as u64;
        Box::new(move || {
            c = c.wrapping_add(0x9e37_79b9);
            let k = c % KEYS;
            Some(Tuple::new([Key::new(k), Key::new(k + KEYS)], 64))
        })
    });
    let a = b.stateful("A", SERVERS, CountOperator::factory());
    let bb = b.stateful("B", SERVERS, CountOperator::factory());
    b.connect(s, a, Grouping::fields(0));
    b.connect(a, bb, Grouping::fields(1));
    let topo = b.build().unwrap();
    let placement = Placement::aligned(&topo, SERVERS);
    Simulation::new(
        topo,
        ClusterSpec::lan_10g(SERVERS),
        placement,
        SimConfig::default(),
    )
}

#[test]
fn save_restore_roundtrip_preserves_locality() {
    let mut store = MemoryStore::new();

    // "First process life": optimize, persist, note locality.
    let mut sim = correlated_sim();
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(15);
    manager.reconfigure(&mut sim).unwrap();
    sim.run(20);
    store
        .save(1, &manager.snapshot_configuration(&sim))
        .unwrap();

    let a = sim.topology().po_by_name("A").unwrap();
    let b = sim.topology().po_by_name("B").unwrap();
    let edge = sim.topology().edge_between(a, b).unwrap();
    let windows = sim.metrics().windows().len();
    let locality_before = sim.metrics().edge_locality(edge, windows - 10);
    assert!(locality_before > 0.9);

    // "Restart": a fresh deployment and manager restore the snapshot
    // without having observed any statistics.
    let mut sim2 = correlated_sim();
    let mut manager2 = Manager::attach(&mut sim2, ManagerConfig::default());
    let (epoch, config) = store.load_latest().unwrap().expect("saved snapshot");
    assert_eq!(epoch, 1);
    assert_eq!(config.len(), 2);
    manager2.restore_configuration(&mut sim2, &config);

    sim2.run(30);
    let a2 = sim2.topology().po_by_name("A").unwrap();
    let b2 = sim2.topology().po_by_name("B").unwrap();
    let edge2 = sim2.topology().edge_between(a2, b2).unwrap();
    let restored_locality = sim2.metrics().edge_locality(edge2, 10);
    assert!(
        restored_locality > 0.9,
        "restored tables should give the same locality: {restored_locality}"
    );
    // And the restored tables are literally the saved ones.
    assert_eq!(
        manager2.table_for(a2).map(|t| t.len()),
        config.table("A").map(streamloc::routing::RoutingTable::len)
    );
}

#[test]
fn snapshot_before_reconfigure_is_empty_tables() {
    let mut sim = correlated_sim();
    let manager = Manager::attach(&mut sim, ManagerConfig::default());
    let snapshot = manager.snapshot_configuration(&sim);
    assert_eq!(snapshot.len(), 2, "one (empty) table per routed operator");
    assert!(snapshot.iter().all(|(_, t)| t.is_empty()));
}

#[test]
fn restore_ignores_unknown_operators() {
    let mut sim = correlated_sim();
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    let mut config = streamloc::routing::SavedConfiguration::new();
    config.insert(
        "no_such_operator",
        streamloc::routing::RoutingTable::from_assignments([(Key::new(1), 0)]),
    );
    manager.restore_configuration(&mut sim, &config);
    sim.run(5);
    assert!(sim.metrics().total_sink() > 0, "restore must not break routing");
}
