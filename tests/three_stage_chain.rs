//! The manager on a longer chain: three consecutive stateful
//! operators (two instrumented hops, jointly partitioned).
//!
//! The paper evaluates a two-operator chain but the formulation
//! extends to longer chains (§6: "the same graph partitioning
//! technique can be applied to more complex DAGs"); this test pins
//! that the joint key graph keeps all three key spaces aligned.

use streamloc::engine::{
    ClusterSpec, CountOperator, Grouping, Key, Placement, SimConfig, Simulation, SourceRate,
    Topology, Tuple,
};
use streamloc::routing::{Manager, ManagerConfig};

const SERVERS: usize = 3;
const KEYS: u64 = 24;

fn chain3() -> Simulation {
    let mut builder = Topology::builder();
    let s = builder.source("S", SERVERS, SourceRate::PerSecond(30_000.0), move |i| {
        let mut c = i as u64;
        Box::new(move || {
            c = c.wrapping_add(0x9e37_79b9);
            let k = c % KEYS;
            // Three perfectly correlated key spaces.
            Some(Tuple::new(
                [Key::new(k), Key::new(k + KEYS), Key::new(k + 2 * KEYS)],
                256,
            ))
        })
    });
    let a = builder.stateful("A", SERVERS, CountOperator::factory());
    let b = builder.stateful("B", SERVERS, CountOperator::factory());
    let c = builder.stateful("C", SERVERS, CountOperator::factory());
    builder.connect(s, a, Grouping::fields(0));
    builder.connect(a, b, Grouping::fields(1));
    builder.connect(b, c, Grouping::fields(2));
    let topology = builder.build().unwrap();
    let placement = Placement::aligned(&topology, SERVERS);
    Simulation::new(
        topology,
        ClusterSpec::lan_10g(SERVERS),
        placement,
        SimConfig::default(),
    )
}

#[test]
fn manager_instruments_both_hops() {
    let mut sim = chain3();
    let manager = Manager::attach(&mut sim, ManagerConfig::default());
    assert_eq!(manager.hop_count(), 2);
}

#[test]
fn joint_partition_aligns_all_three_stages() {
    let mut sim = chain3();
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(30);
    let summary = manager.reconfigure(&mut sim).unwrap();
    assert!(
        summary.expected_locality > 0.95,
        "joint graph should be fully separable: {summary:?}"
    );
    sim.run(60);
    assert!(!sim.reconfig_active());
    assert_eq!(sim.pending_migrations(), 0);

    let topo = sim.topology();
    let a = topo.po_by_name("A").unwrap();
    let b = topo.po_by_name("B").unwrap();
    let c = topo.po_by_name("C").unwrap();
    let ab = topo.edge_between(a, b).unwrap();
    let bc = topo.edge_between(b, c).unwrap();
    let windows = sim.metrics().windows();
    let skip = windows.len() - 20;
    for edge in [ab, bc] {
        let loc = sim.metrics().edge_locality(edge, skip);
        assert!(loc > 0.95, "edge {edge:?} locality {loc} after reconfig");
    }

    // The three tables agree per correlated triple.
    let ta = manager.table_for(a).unwrap();
    let tb = manager.table_for(b).unwrap();
    let tc = manager.table_for(c).unwrap();
    let mut covered = 0;
    for k in 0..KEYS {
        if let (Some(ia), Some(ib), Some(ic)) = (
            ta.get(Key::new(k)),
            tb.get(Key::new(k + KEYS)),
            tc.get(Key::new(k + 2 * KEYS)),
        ) {
            assert_eq!(ia, ib, "A/B disagree on triple {k}");
            assert_eq!(ib, ic, "B/C disagree on triple {k}");
            covered += 1;
        }
    }
    assert!(covered >= KEYS as usize / 2, "tables cover too few triples");
}

#[test]
fn state_conserved_on_all_three_stages() {
    let mut sim = chain3();
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(20);
    manager.reconfigure(&mut sim).unwrap();
    sim.run(40);

    let forwarded: u64 = sim
        .metrics()
        .windows()
        .iter()
        .map(|w| w.late_forwarded)
        .sum();
    for name in ["A", "B", "C"] {
        let po = sim.topology().po_by_name(name).unwrap();
        let pois = sim.poi_ids(po);
        let state: u64 = pois
            .iter()
            .flat_map(|&p| sim.poi_state(p).values())
            .map(|v| v.as_count().unwrap())
            .sum();
        let processed: u64 = sim
            .metrics()
            .windows()
            .iter()
            .map(|w| pois.iter().map(|p| w.poi_processed[p.index()]).sum::<u64>())
            .sum();
        assert!(
            state + forwarded >= processed && state <= processed,
            "{name}: state {state} vs processed {processed} (forwarded {forwarded})"
        );
    }
}
