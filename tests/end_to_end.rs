//! End-to-end integration: the full optimize-reconfigure-migrate loop
//! across sketch, partition, engine and core.

use streamloc::engine::{
    ClusterSpec, CountOperator, Grouping, Key, Placement, SimConfig, Simulation, SourceRate,
    Topology, Tuple,
};
use streamloc::routing::{Manager, ManagerConfig, PartitionerKind};

const SERVERS: usize = 4;
const KEYS: u64 = 32;

/// Chain with strongly correlated keys: (k, k + KEYS) pairs.
fn correlated_sim(rate: SourceRate, payload: u32) -> Simulation {
    let mut builder = Topology::builder();
    let s = builder.source("S", SERVERS, rate, move |i| {
        let mut c = i as u64;
        Box::new(move || {
            c = c.wrapping_add(0x9e37_79b9);
            let k = c % KEYS;
            Some(Tuple::new([Key::new(k), Key::new(k + KEYS)], payload))
        })
    });
    let a = builder.stateful("A", SERVERS, CountOperator::factory());
    let b = builder.stateful("B", SERVERS, CountOperator::factory());
    builder.connect(s, a, Grouping::fields(0));
    builder.connect(a, b, Grouping::fields(1));
    let topology = builder.build().unwrap();
    let placement = Placement::aligned(&topology, SERVERS);
    Simulation::new(
        topology,
        ClusterSpec::lan_10g(SERVERS),
        placement,
        SimConfig::default(),
    )
}

fn ab_edge(sim: &Simulation) -> streamloc::engine::EdgeId {
    let a = sim.topology().po_by_name("A").unwrap();
    let b = sim.topology().po_by_name("B").unwrap();
    sim.topology().edge_between(a, b).unwrap()
}

#[test]
fn locality_and_throughput_improve() {
    let mut sim = correlated_sim(SourceRate::Saturate, 4096);
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    let edge = ab_edge(&sim);

    sim.run(60);
    let hash_tput = sim.metrics().avg_throughput(30);
    let hash_loc = sim.metrics().edge_locality(edge, 30);

    let summary = manager.reconfigure(&mut sim).unwrap();
    assert!(summary.expected_locality > 0.95);
    sim.run(60);
    let skip = 60 + 20;
    let opt_tput = sim.metrics().avg_throughput(skip);
    let opt_loc = sim.metrics().edge_locality(edge, skip);

    assert!(
        opt_loc > hash_loc + 0.3,
        "locality should jump: {hash_loc} -> {opt_loc}"
    );
    assert!(
        opt_tput > hash_tput * 1.1,
        "throughput should improve: {hash_tput} -> {opt_tput}"
    );
}

#[test]
fn successive_reconfigurations_conserve_state() {
    let mut sim = correlated_sim(SourceRate::PerSecond(20_000.0), 0);
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());

    for _ in 0..3 {
        sim.run(20);
        manager.reconfigure(&mut sim).unwrap();
    }
    sim.run(40);
    assert!(!sim.reconfig_active());
    assert_eq!(sim.pending_migrations(), 0);

    // Sum of per-key counts at B equals tuples processed by B minus
    // stragglers forwarded between owners mid-migration.
    let b = sim.topology().po_by_name("B").unwrap();
    let b_pois = sim.poi_ids(b);
    let state_total: u64 = b_pois
        .iter()
        .flat_map(|&p| sim.poi_state(p).values())
        .map(|v| v.as_count().unwrap())
        .sum();
    let processed: u64 = sim
        .metrics()
        .windows()
        .iter()
        .map(|w| {
            b_pois
                .iter()
                .map(|p| w.poi_processed[p.index()])
                .sum::<u64>()
        })
        .sum();
    let forwarded: u64 = sim
        .metrics()
        .windows()
        .iter()
        .map(|w| w.late_forwarded)
        .sum();
    assert_eq!(state_total, processed - forwarded);

    // Each key has exactly one owner, consistent with the last tables.
    let table = manager.table_for(b).unwrap();
    let mut seen = std::collections::HashSet::new();
    for &poi in &b_pois {
        for &k in sim.poi_state(poi).keys() {
            assert!(seen.insert(k), "key {k} at two owners");
            if let Some(instance) = table.get(k) {
                assert_eq!(
                    sim.poi_instance(poi) as u32,
                    instance,
                    "key {k} not at its table owner"
                );
            }
        }
    }
    assert_eq!(seen.len(), KEYS as usize);
}

#[test]
fn offline_tables_work_from_cold_start() {
    // Learn tables in a throwaway run, then install them offline in a
    // fresh deployment before any tuple flows.
    let mut warmup = correlated_sim(SourceRate::PerSecond(20_000.0), 0);
    let mut manager = Manager::attach(&mut warmup, ManagerConfig::default());
    warmup.run(20);
    let summary = manager.apply_offline(&mut warmup);
    assert!(summary.expected_locality > 0.95);

    let mut fresh = correlated_sim(SourceRate::Saturate, 1024);
    let edge = ab_edge(&fresh);
    let a = fresh.topology().po_by_name("A").unwrap();
    let b = fresh.topology().po_by_name("B").unwrap();
    let s = fresh.topology().po_by_name("S").unwrap();
    let sa = fresh.topology().edge_between(s, a).unwrap();
    let table_a = manager.table_for(a).unwrap().clone();
    let table_b = manager.table_for(b).unwrap().clone();
    fresh.set_edge_router(sa, std::sync::Arc::new(table_a));
    fresh.set_edge_router(edge, std::sync::Arc::new(table_b));
    fresh.run(40);
    let loc = fresh.metrics().edge_locality(edge, 10);
    assert!(loc > 0.9, "offline tables should give high locality: {loc}");
}

#[test]
fn ablation_partitioners_rank_as_expected() {
    // Multilevel ≥ greedy ≫ hash in expected locality on the same
    // statistics.
    let mut locality = Vec::new();
    for kind in [
        PartitionerKind::Multilevel,
        PartitionerKind::Greedy,
        PartitionerKind::Hash,
    ] {
        let mut sim = correlated_sim(SourceRate::PerSecond(20_000.0), 0);
        let mut manager = Manager::attach(
            &mut sim,
            ManagerConfig {
                partitioner: kind,
                ..ManagerConfig::default()
            },
        );
        sim.run(20);
        let summary = manager.reconfigure(&mut sim).unwrap();
        locality.push(summary.expected_locality);
    }
    assert!(
        locality[0] >= locality[1] - 1e-9,
        "multilevel {} < greedy {}",
        locality[0],
        locality[1]
    );
    assert!(
        locality[1] > locality[2] + 0.2,
        "greedy {} not ≫ hash {}",
        locality[1],
        locality[2]
    );
}

#[test]
fn finite_stream_drains_through_a_reconfiguration() {
    let total = 40_000u64;
    let mut builder = Topology::builder();
    let s = builder.source("S", SERVERS, SourceRate::Saturate, move |i| {
        let mut c = i as u64;
        let mut left = total / SERVERS as u64;
        Box::new(move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            c = c.wrapping_add(0x9e37_79b9);
            let k = c % KEYS;
            Some(Tuple::new([Key::new(k), Key::new(k + KEYS)], 128))
        })
    });
    let a = builder.stateful("A", SERVERS, CountOperator::factory());
    let b = builder.stateful("B", SERVERS, CountOperator::factory());
    builder.connect(s, a, Grouping::fields(0));
    builder.connect(a, b, Grouping::fields(1));
    let topology = builder.build().unwrap();
    let placement = Placement::aligned(&topology, SERVERS);
    let mut sim = Simulation::new(
        topology,
        ClusterSpec::lan_10g(SERVERS),
        placement,
        SimConfig {
            max_in_flight: 5_000,
            ..SimConfig::default()
        },
    );
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(3);
    manager.reconfigure(&mut sim).unwrap();
    let windows = sim.run_until_drained(10_000);
    assert!(windows < 10_000, "stream should drain");
    assert_eq!(sim.metrics().total_emitted(), total);
    assert_eq!(
        sim.metrics().total_sink(),
        total,
        "every emitted tuple must reach the sink (none lost in migration)"
    );
}
