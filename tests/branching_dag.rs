//! Branching DAG (paper §6: "the same graph partitioning technique
//! can be applied to more complex DAGs ... successor keys can be
//! assigned to different POs, without changing the formulation"):
//! one stateful operator fans out to two stateful successors on
//! different fields; the manager instruments both hops and jointly
//! partitions all three key spaces.

use streamloc::engine::{
    ClusterSpec, CountOperator, Grouping, Key, Placement, SimConfig, Simulation, SourceRate,
    Topology, Tuple,
};
use streamloc::routing::{Manager, ManagerConfig};

const SERVERS: usize = 3;
const KEYS: u64 = 18;

/// S → A, A → B (field 1) and A → C (field 2), all correlated triples.
fn fanout_sim() -> Simulation {
    let mut builder = Topology::builder();
    let s = builder.source("S", SERVERS, SourceRate::PerSecond(20_000.0), move |i| {
        let mut c = i as u64;
        Box::new(move || {
            c = c.wrapping_add(0x9e37_79b9);
            let k = c % KEYS;
            Some(Tuple::new(
                [Key::new(k), Key::new(k + KEYS), Key::new(k + 2 * KEYS)],
                128,
            ))
        })
    });
    let a = builder.stateful("A", SERVERS, CountOperator::factory());
    let b = builder.stateful("B", SERVERS, CountOperator::factory());
    let c = builder.stateful("C", SERVERS, CountOperator::factory());
    builder.connect(s, a, Grouping::fields(0));
    builder.connect(a, b, Grouping::fields(1));
    builder.connect(a, c, Grouping::fields(2));
    let topology = builder.build().unwrap();
    let placement = Placement::aligned(&topology, SERVERS);
    Simulation::new(
        topology,
        ClusterSpec::lan_10g(SERVERS),
        placement,
        SimConfig::default(),
    )
}

#[test]
fn manager_instruments_both_branches() {
    let mut sim = fanout_sim();
    let manager = Manager::attach(&mut sim, ManagerConfig::default());
    assert_eq!(manager.hop_count(), 2, "A→B and A→C are both hops");
}

#[test]
fn both_branches_become_local() {
    let mut sim = fanout_sim();
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(25);
    let summary = manager.reconfigure(&mut sim).unwrap();
    assert!(
        summary.expected_locality > 0.95,
        "correlated triples should separate cleanly: {summary:?}"
    );
    sim.run(50);
    assert!(!sim.reconfig_active());
    assert_eq!(sim.pending_migrations(), 0);

    let topo = sim.topology();
    let a = topo.po_by_name("A").unwrap();
    for succ in ["B", "C"] {
        let po = topo.po_by_name(succ).unwrap();
        let edge = topo.edge_between(a, po).unwrap();
        let windows = sim.metrics().windows().len();
        let loc = sim.metrics().edge_locality(edge, windows - 20);
        assert!(loc > 0.95, "branch A→{succ} locality {loc}");
    }
}

#[test]
fn branch_counts_are_complete() {
    let mut sim = fanout_sim();
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(15);
    manager.reconfigure(&mut sim).unwrap();
    sim.run(30);

    // Every tuple processed by A reaches both B and C exactly once
    // (up to what is still queued): total counts at B equal those at
    // C once drained.
    let forwarded: u64 = sim
        .metrics()
        .windows()
        .iter()
        .map(|w| w.late_forwarded)
        .sum();
    let sum_of = |name: &str| -> u64 {
        let po = sim.topology().po_by_name(name).unwrap();
        sim.poi_ids(po)
            .iter()
            .flat_map(|&p| sim.poi_state(p).values())
            .map(|v| v.as_count().unwrap())
            .sum()
    };
    let (b_total, c_total) = (sum_of("B"), sum_of("C"));
    let slack = 4_000 + forwarded; // in-flight + stragglers
    assert!(
        b_total.abs_diff(c_total) <= slack,
        "branch totals diverged: B {b_total}, C {c_total}"
    );
}

#[test]
fn triples_are_colocated_by_tables() {
    let mut sim = fanout_sim();
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(20);
    manager.reconfigure(&mut sim).unwrap();
    let topo = sim.topology();
    let ta = manager.table_for(topo.po_by_name("A").unwrap()).unwrap();
    let tb = manager.table_for(topo.po_by_name("B").unwrap()).unwrap();
    let tc = manager.table_for(topo.po_by_name("C").unwrap()).unwrap();
    let mut covered = 0;
    for k in 0..KEYS {
        if let (Some(ia), Some(ib), Some(ic)) = (
            ta.get(Key::new(k)),
            tb.get(Key::new(k + KEYS)),
            tc.get(Key::new(k + 2 * KEYS)),
        ) {
            assert_eq!(ia, ib, "A/B split triple {k}");
            assert_eq!(ia, ic, "A/C split triple {k}");
            covered += 1;
        }
    }
    assert!(covered >= KEYS as usize / 2, "only {covered} triples covered");
}
