//! Property-based integration tests: across randomized workloads and
//! cluster shapes, the reconfiguration machinery must never lose a
//! tuple, duplicate state, or leave a key without a unique owner.

use proptest::prelude::*;
use streamloc::engine::{
    ClusterSpec, CountOperator, Grouping, Key, Placement, SimConfig, Simulation, SourceRate,
    Topology, Tuple,
};
use streamloc::routing::{Manager, ManagerConfig};

/// A finite correlated-pairs simulation with randomized shape.
fn build(
    servers: usize,
    keys: u64,
    correlation_pct: u8,
    payload: u32,
    total: u64,
    seed: u64,
) -> Simulation {
    let mut builder = Topology::builder();
    let s = builder.source("S", servers, SourceRate::Saturate, move |i| {
        let mut c = seed ^ (i as u64) << 32;
        let mut left = total / servers as u64;
        Box::new(move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            c = c.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let k = (c >> 8) % keys;
            // With probability correlation_pct, the second key is the
            // partner of the first; otherwise a random other key.
            let k2 = if c % 100 < u64::from(correlation_pct) {
                k + keys
            } else {
                keys + (c >> 24) % keys
            };
            Some(Tuple::new([Key::new(k), Key::new(k2)], payload))
        })
    });
    let a = builder.stateful("A", servers, CountOperator::factory());
    let b = builder.stateful("B", servers, CountOperator::factory());
    builder.connect(s, a, Grouping::fields(0));
    builder.connect(a, b, Grouping::fields(1));
    let topology = builder.build().unwrap();
    let placement = Placement::aligned(&topology, servers);
    Simulation::new(
        topology,
        ClusterSpec::lan_10g(servers),
        placement,
        SimConfig {
            max_in_flight: 20_000,
            ..SimConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn no_tuple_lost_across_reconfigurations(
        servers in 2usize..6,
        keys in 4u64..64,
        correlation in 50u8..100,
        payload in prop::sample::select(vec![0u32, 512, 4096]),
        seed in any::<u64>(),
        reconfig_windows in prop::collection::vec(2usize..15, 1..3),
    ) {
        let total = 30_000u64;
        let mut sim = build(servers, keys, correlation, payload, total, seed);
        let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
        for &at in &reconfig_windows {
            sim.run(at);
            // May fail if a wave is still propagating; that is fine.
            let _ = manager.reconfigure(&mut sim);
        }
        let windows = sim.run_until_drained(20_000);
        prop_assert!(windows < 20_000, "stream failed to drain");
        let emitted = sim.metrics().total_emitted();
        prop_assert_eq!(emitted, (total / servers as u64) * servers as u64);
        prop_assert_eq!(
            sim.metrics().total_sink(), emitted,
            "tuples lost or duplicated"
        );
    }

    #[test]
    fn state_matches_stream_exactly_after_drain(
        servers in 2usize..5,
        keys in 4u64..32,
        seed in any::<u64>(),
    ) {
        let total = 20_000u64;
        let mut sim = build(servers, keys, 90, 0, total, seed);
        let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
        sim.run(4);
        let _ = manager.reconfigure(&mut sim);
        sim.run_until_drained(20_000);

        // After draining, B's total state count equals total tuples:
        // every tuple increments exactly one counter exactly once.
        let b = sim.topology().po_by_name("B").unwrap();
        let state_total: u64 = sim
            .poi_ids(b)
            .iter()
            .flat_map(|&p| sim.poi_state(p).values())
            .map(|v| v.as_count().unwrap())
            .sum();
        prop_assert_eq!(state_total, sim.metrics().total_emitted());

        // Unique ownership of every key.
        let mut seen = std::collections::HashSet::new();
        for &poi in &sim.poi_ids(b) {
            for &k in sim.poi_state(poi).keys() {
                prop_assert!(seen.insert(k), "key {} at two owners", k);
            }
        }
    }

    #[test]
    fn locality_never_below_hash_after_optimizing(
        servers in 2usize..6,
        correlation in 70u8..100,
        seed in any::<u64>(),
    ) {
        let keys = 48u64;
        let mut sim = build(servers, keys, correlation, 256, 400_000, seed);
        let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
        let a = sim.topology().po_by_name("A").unwrap();
        let b = sim.topology().po_by_name("B").unwrap();
        let edge = sim.topology().edge_between(a, b).unwrap();

        sim.run(30);
        let hash_loc = sim.metrics().edge_locality(edge, 10);
        if manager.reconfigure(&mut sim).is_ok() {
            sim.run(40);
            let opt_loc = sim.metrics().edge_locality(edge, 40);
            prop_assert!(
                opt_loc + 0.05 >= hash_loc,
                "optimized locality {} worse than hash {}",
                opt_loc, hash_loc
            );
        }
    }
}
