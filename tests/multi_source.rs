//! Multiple sources feeding one stateful operator (a union): the
//! engine must merge the streams, keep single key ownership, and the
//! manager must still optimize the downstream hop.

use streamloc::engine::{
    ClusterSpec, CountOperator, Grouping, Key, Placement, SimConfig, Simulation, SourceRate,
    Topology, Tuple,
};
use streamloc::routing::{Manager, ManagerConfig};

const SERVERS: usize = 3;
const KEYS: u64 = 9;
const PER_SOURCE: u64 = 9_000;

fn union_sim() -> Simulation {
    let mut b = Topology::builder();
    // Two independent feeds (e.g. two data centers' crawlers) with
    // the same schema, both routed on field 0 into the union counter.
    let make_source = |salt: u64| {
        move |i: usize| -> Box<dyn streamloc::engine::TupleSource> {
            let mut c = salt ^ (i as u64) << 32;
            let mut left = PER_SOURCE / SERVERS as u64;
            Box::new(move || {
                if left == 0 {
                    return None;
                }
                left -= 1;
                c = c.wrapping_add(0x9e37_79b9);
                let k = c % KEYS;
                Some(Tuple::new([Key::new(k), Key::new(k + KEYS)], 64))
            })
        }
    };
    let s1 = b.source("crawler_a", SERVERS, SourceRate::Saturate, make_source(0x11));
    let s2 = b.source("crawler_b", SERVERS, SourceRate::Saturate, make_source(0x22));
    let union = b.stateful("union_count", SERVERS, CountOperator::factory());
    let by_tag = b.stateful("by_tag", SERVERS, CountOperator::factory());
    b.connect(s1, union, Grouping::fields(0));
    b.connect(s2, union, Grouping::fields(0));
    b.connect(union, by_tag, Grouping::fields(1));
    let topo = b.build().unwrap();
    let placement = Placement::aligned(&topo, SERVERS);
    Simulation::new(
        topo,
        ClusterSpec::lan_10g(SERVERS),
        placement,
        SimConfig::default(),
    )
}

#[test]
fn union_counts_both_feeds_exactly() {
    let mut sim = union_sim();
    let windows = sim.run_until_drained(10_000);
    assert!(windows < 10_000);
    let expected = 2 * (PER_SOURCE / SERVERS as u64) * SERVERS as u64;
    assert_eq!(sim.metrics().total_emitted(), expected);
    let union = sim.topology().po_by_name("union_count").unwrap();
    let total: u64 = sim
        .poi_ids(union)
        .iter()
        .flat_map(|&p| sim.poi_state(p).values())
        .map(|v| v.as_count().unwrap())
        .sum();
    assert_eq!(total, expected);
    // Still one owner per key despite two upstream feeds.
    let mut seen = std::collections::HashSet::new();
    for poi in sim.poi_ids(union) {
        for &k in sim.poi_state(poi).keys() {
            assert!(seen.insert(k));
        }
    }
    assert_eq!(seen.len(), KEYS as usize);
}

#[test]
fn manager_optimizes_downstream_of_a_union() {
    let mut sim = union_sim();
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    assert_eq!(manager.hop_count(), 1, "union→by_tag is the hop");
    sim.run(10);
    let summary = manager.reconfigure(&mut sim).unwrap();
    assert!(summary.expected_locality > 0.95, "{summary:?}");
    // Both fields in-edges of the union get the same new table: every
    // sender instance of both sources routes identically afterwards.
    let topo = sim.topology();
    let union = topo.po_by_name("union_count").unwrap();
    let s1 = topo.po_by_name("crawler_a").unwrap();
    let s2 = topo.po_by_name("crawler_b").unwrap();
    let e1 = topo.edge_between(s1, union).unwrap();
    let e2 = topo.edge_between(s2, union).unwrap();
    sim.run(15);
    for k in 0..KEYS {
        let via_a = sim.current_route(sim.poi_ids(s1)[0], e1, Key::new(k));
        let via_b = sim.current_route(sim.poi_ids(s2)[0], e2, Key::new(k));
        assert_eq!(via_a, via_b, "feeds disagree on key {k}");
    }
    sim.run_until_drained(10_000);
    assert_eq!(sim.pending_migrations(), 0);
}
