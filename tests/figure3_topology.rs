//! The paper's Fig. 3 deployment: `S →(fields)→ B →(l-o-s)→ C
//! →(fields)→ D` with B, D stateful and C stateless. The key
//! correlation to exploit is between B's and D's routing keys; the
//! stateless local-or-shuffle stage in between preserves the server,
//! so co-locating those keys keeps the whole B→C→D path in memory.

use streamloc::engine::{
    ClusterSpec, CountOperator, Grouping, IdentityOperator, Key, Placement, SimConfig,
    Simulation, SourceRate, Topology, Tuple,
};
use streamloc::routing::{Manager, ManagerConfig};

const SERVERS: usize = 3;
const KEYS: u64 = 15;

fn figure3_sim() -> Simulation {
    let mut builder = Topology::builder();
    let s = builder.source("S", SERVERS, SourceRate::PerSecond(30_000.0), move |i| {
        let mut c = i as u64;
        Box::new(move || {
            c = c.wrapping_add(0x9e37_79b9);
            let k = c % KEYS;
            // field 0 routes into B; field 1 routes into D; perfectly
            // correlated.
            Some(Tuple::new([Key::new(k), Key::new(k + KEYS)], 256))
        })
    });
    let b = builder.stateful("B", SERVERS, CountOperator::factory());
    let c = builder.stateless("C", SERVERS, IdentityOperator::factory());
    let d = builder.stateful("D", SERVERS, CountOperator::factory());
    builder.connect(s, b, Grouping::fields(0));
    builder.connect(b, c, Grouping::LocalOrShuffle);
    builder.connect(c, d, Grouping::fields(1));
    let topology = builder.build().unwrap();
    let placement = Placement::aligned(&topology, SERVERS);
    Simulation::new(
        topology,
        ClusterSpec::lan_10g(SERVERS),
        placement,
        SimConfig::default(),
    )
}

#[test]
fn manager_sees_the_hop_through_the_stateless_stage() {
    let mut sim = figure3_sim();
    let manager = Manager::attach(&mut sim, ManagerConfig::default());
    assert_eq!(
        manager.hop_count(),
        1,
        "B→(l-o-s C)→D must be discovered as one hop"
    );
}

#[test]
fn whole_path_becomes_local() {
    let mut sim = figure3_sim();
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    let topo = sim.topology();
    let b = topo.po_by_name("B").unwrap();
    let c = topo.po_by_name("C").unwrap();
    let d = topo.po_by_name("D").unwrap();
    let bc = topo.edge_between(b, c).unwrap();
    let cd = topo.edge_between(c, d).unwrap();

    sim.run(25);
    assert!(manager.pairs_observed() > 0, "pairs observed through C");
    let cd_before = sim.metrics().edge_locality(cd, 5);
    assert!(
        cd_before < 0.6,
        "hash routing into D should be mostly remote: {cd_before}"
    );
    // B→C is local by construction (local-or-shuffle).
    assert!((sim.metrics().edge_locality(bc, 5) - 1.0).abs() < 1e-9);

    let summary = manager.reconfigure(&mut sim).unwrap();
    assert!(
        summary.expected_locality > 0.95,
        "perfect correlation should separate: {summary:?}"
    );
    sim.run(50);
    assert!(!sim.reconfig_active());
    assert_eq!(sim.pending_migrations(), 0);

    let windows = sim.metrics().windows().len();
    let cd_after = sim.metrics().edge_locality(cd, windows - 20);
    assert!(
        cd_after > 0.95,
        "C→D should be local after optimization: {cd_after}"
    );
    // And B→C stayed local throughout.
    assert!((sim.metrics().edge_locality(bc, windows - 20) - 1.0).abs() < 1e-9);
}

#[test]
fn tables_align_b_and_d_keys() {
    let mut sim = figure3_sim();
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(20);
    manager.reconfigure(&mut sim).unwrap();
    let topo = sim.topology();
    let tb = manager.table_for(topo.po_by_name("B").unwrap()).unwrap();
    let td = manager.table_for(topo.po_by_name("D").unwrap()).unwrap();
    let mut covered = 0;
    for k in 0..KEYS {
        if let (Some(ib), Some(id)) = (tb.get(Key::new(k)), td.get(Key::new(k + KEYS))) {
            assert_eq!(ib, id, "correlated pair {k} split across servers");
            covered += 1;
        }
    }
    assert!(covered >= KEYS as usize / 2);
    // C itself gets no table: it is stateless.
    assert!(manager.table_for(topo.po_by_name("C").unwrap()).is_none());
}

#[test]
fn state_conserved_through_the_stateless_stage() {
    let mut sim = figure3_sim();
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(15);
    manager.reconfigure(&mut sim).unwrap();
    sim.run(40);
    let d = sim.topology().po_by_name("D").unwrap();
    let d_pois = sim.poi_ids(d);
    let state_total: u64 = d_pois
        .iter()
        .flat_map(|&p| sim.poi_state(p).values())
        .map(|v| v.as_count().unwrap())
        .sum();
    let processed: u64 = sim
        .metrics()
        .windows()
        .iter()
        .map(|w| {
            d_pois
                .iter()
                .map(|p| w.poi_processed[p.index()])
                .sum::<u64>()
        })
        .sum();
    let forwarded: u64 = sim
        .metrics()
        .windows()
        .iter()
        .map(|w| w.late_forwarded)
        .sum();
    assert_eq!(state_total, processed - forwarded);
}

#[test]
fn stateless_fanout_tracks_both_branches() {
    // B → (l-o-s) → C, then C fans out to TWO stateful successors on
    // different fields: both hops share B's out edge, so B's instances
    // carry two observers on that edge.
    let mut builder = Topology::builder();
    let s = builder.source("S", SERVERS, SourceRate::PerSecond(30_000.0), move |i| {
        let mut c = i as u64;
        Box::new(move || {
            c = c.wrapping_add(0x9e37_79b9);
            let k = c % KEYS;
            Some(Tuple::new(
                [Key::new(k), Key::new(k + KEYS), Key::new(k + 2 * KEYS)],
                128,
            ))
        })
    });
    let b = builder.stateful("B", SERVERS, CountOperator::factory());
    let c = builder.stateless("C", SERVERS, IdentityOperator::factory());
    let d1 = builder.stateful("D1", SERVERS, CountOperator::factory());
    let d2 = builder.stateful("D2", SERVERS, CountOperator::factory());
    builder.connect(s, b, Grouping::fields(0));
    builder.connect(b, c, Grouping::LocalOrShuffle);
    builder.connect(c, d1, Grouping::fields(1));
    builder.connect(c, d2, Grouping::fields(2));
    let topology = builder.build().unwrap();
    let placement = Placement::aligned(&topology, SERVERS);
    let mut sim = Simulation::new(
        topology,
        ClusterSpec::lan_10g(SERVERS),
        placement,
        SimConfig::default(),
    );
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    assert_eq!(manager.hop_count(), 2, "both branches are hops");

    sim.run(25);
    let summary = manager.reconfigure(&mut sim).unwrap();
    assert!(summary.expected_locality > 0.95, "{summary:?}");
    sim.run(50);

    let topo = sim.topology();
    let tb = manager.table_for(topo.po_by_name("B").unwrap()).unwrap();
    let t1 = manager.table_for(topo.po_by_name("D1").unwrap()).unwrap();
    let t2 = manager.table_for(topo.po_by_name("D2").unwrap()).unwrap();
    assert!(!t1.is_empty() && !t2.is_empty(), "both branches get tables");
    let mut covered = 0;
    for k in 0..KEYS {
        if let (Some(ib), Some(i1), Some(i2)) = (
            tb.get(Key::new(k)),
            t1.get(Key::new(k + KEYS)),
            t2.get(Key::new(k + 2 * KEYS)),
        ) {
            assert_eq!(ib, i1, "B/D1 split triple {k}");
            assert_eq!(ib, i2, "B/D2 split triple {k}");
            covered += 1;
        }
    }
    assert!(covered >= KEYS as usize / 2, "only {covered} triples covered");

    // Both downstream hops local after optimization.
    let c_po = topo.po_by_name("C").unwrap();
    for succ in ["D1", "D2"] {
        let po = topo.po_by_name(succ).unwrap();
        let edge = topo.edge_between(c_po, po).unwrap();
        let windows = sim.metrics().windows().len();
        let loc = sim.metrics().edge_locality(edge, windows - 20);
        assert!(loc > 0.95, "branch C→{succ} locality {loc}");
    }
}
