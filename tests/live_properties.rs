//! Property tests for the live multi-threaded runtime: conservation
//! and unique ownership must hold under real thread interleavings,
//! not just the simulator's deterministic schedule.

use proptest::prelude::*;
use streamloc::engine::{
    CountOperator, Grouping, HashRouter, Key, KeyRouter, LiveConfig, LiveReconfig, LiveRuntime,
    ModuloRouter, PoId, Placement, SourceRate, Topology, Tuple,
};
use std::sync::Arc;

struct Chain {
    topo: Topology,
    source: PoId,
    a: PoId,
    b: PoId,
}

fn build(n: usize, keys: u64, total: u64, seed: u64) -> Chain {
    let mut b = Topology::builder();
    let s = b.source("S", n, SourceRate::Saturate, move |i| {
        let mut c = seed ^ ((i as u64) << 48);
        let mut left = total / n as u64;
        Box::new(move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            c = c.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let k = (c >> 7) % keys;
            Some(Tuple::new([Key::new(k), Key::new(k)], 0))
        })
    });
    let a = b.stateful("A", n, CountOperator::factory());
    let bb = b.stateful("B", n, CountOperator::factory());
    b.connect(s, a, Grouping::fields(0));
    b.connect(a, bb, Grouping::fields(1));
    Chain {
        topo: b.build().unwrap(),
        source: s,
        a,
        b: bb,
    }
}

proptest! {
    // Threads are expensive; a few diverse cases suffice.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn live_conservation_under_interleaving(
        n in 1usize..5,
        keys in 1u64..40,
        seed in any::<u64>(),
    ) {
        let total = 20_000u64;
        let chain = build(n, keys, total, seed);
        let placement = Placement::aligned(&chain.topo, n);
        let (src, a_po, b_po) = (chain.source, chain.a, chain.b);
        let rt = LiveRuntime::start(chain.topo, placement, n, LiveConfig::default());
        let reports = rt.join();
        let expected = (total / n as u64) * n as u64;
        let emitted: u64 = reports
            .iter()
            .filter(|r| r.po == src)
            .map(|r| r.processed)
            .sum();
        prop_assert_eq!(emitted, expected);
        for po in [a_po, b_po] {
            let counted: u64 = reports
                .iter()
                .filter(|r| r.po == po)
                .flat_map(|r| r.state.values())
                .filter_map(|v| v.as_count())
                .sum();
            prop_assert_eq!(counted, expected, "operator {:?}", po);
        }
    }

    #[test]
    fn live_migration_conserves_under_interleaving(
        n in 2usize..5,
        keys in 4u64..24,
        seed in any::<u64>(),
    ) {
        let total = 40_000u64;
        // Rate-limit so the stream outlives the reconfiguration.
        let mut b = Topology::builder();
        let s = b.source("S", n, SourceRate::PerSecond(100_000.0), move |i| {
            let mut c = seed ^ ((i as u64) << 48);
            let mut left = total / n as u64;
            Box::new(move || {
                if left == 0 {
                    return None;
                }
                left -= 1;
                c = c.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let k = (c >> 7) % keys;
                Some(Tuple::new([Key::new(k), Key::new(k)], 0))
            })
        });
        let a = b.stateful("A", n, CountOperator::factory());
        let bb = b.stateful("B", n, CountOperator::factory());
        b.connect(s, a, Grouping::fields(0));
        let hop = b.connect(a, bb, Grouping::fields(1));
        let topo = b.build().unwrap();
        let placement = Placement::aligned(&topo, n);
        let rt = LiveRuntime::start(topo, placement, n, LiveConfig::default());

        let migrations: Vec<(PoId, Key, usize, usize)> = (0..keys)
            .filter_map(|k| {
                let key = Key::new(k);
                let old = HashRouter.route(key, n) as usize;
                let new = (k % n as u64) as usize;
                (old != new).then_some((bb, key, old, new))
            })
            .collect();
        rt.reconfigure(LiveReconfig {
            routers: vec![(a, hop, Arc::new(ModuloRouter) as Arc<dyn KeyRouter>)],
            migrations,
        });

        let reports = rt.join();
        let expected = (total / n as u64) * n as u64;
        let counted: u64 = reports
            .iter()
            .filter(|r| r.po == bb)
            .flat_map(|r| r.state.values())
            .filter_map(|v| v.as_count())
            .sum();
        prop_assert_eq!(counted, expected, "live migration lost/duplicated tuples");

        // Unique ownership, at the table-designated owner.
        for r in reports.iter().filter(|r| r.po == bb) {
            for &k in r.state.keys() {
                prop_assert_eq!(r.instance, (k.value() % n as u64) as usize);
            }
        }
    }
}
