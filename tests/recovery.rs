//! Full crash-and-recover scenario: engine checkpoints + persisted
//! routing configurations together restore a deployment to its
//! optimized state (the fault-tolerance story of §3.4, end to end).

use streamloc::engine::{
    ClusterSpec, CountOperator, Grouping, Key, Placement, SimConfig, Simulation, SourceRate,
    Topology, Tuple,
};
use streamloc::routing::{ConfigStore, Manager, ManagerConfig, MemoryStore};

const SERVERS: usize = 3;
const KEYS: u64 = 12;

fn correlated_sim() -> Simulation {
    let mut b = Topology::builder();
    let s = b.source("S", SERVERS, SourceRate::PerSecond(20_000.0), move |i| {
        let mut c = i as u64;
        Box::new(move || {
            c = c.wrapping_add(0x9e37_79b9);
            let k = c % KEYS;
            Some(Tuple::new([Key::new(k), Key::new(k + KEYS)], 64))
        })
    });
    let a = b.stateful("A", SERVERS, CountOperator::factory());
    let bb = b.stateful("B", SERVERS, CountOperator::factory());
    b.connect(s, a, Grouping::fields(0));
    b.connect(a, bb, Grouping::fields(1));
    let topo = b.build().unwrap();
    let placement = Placement::aligned(&topo, SERVERS);
    Simulation::new(
        topo,
        ClusterSpec::lan_10g(SERVERS),
        placement,
        SimConfig::default(),
    )
}

#[test]
fn crash_recovery_resumes_optimized_and_consistent() {
    let mut store = MemoryStore::new();

    // Life before the crash: optimize, persist config, checkpoint.
    let mut sim = correlated_sim();
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(15);
    manager.reconfigure(&mut sim).unwrap();
    sim.run(25);
    store
        .save(1, &manager.snapshot_configuration(&sim))
        .unwrap();
    let checkpoint = sim.checkpoint().unwrap();
    let a = sim.topology().po_by_name("A").unwrap();
    let b = sim.topology().po_by_name("B").unwrap();
    let edge = sim.topology().edge_between(a, b).unwrap();

    // State totals at the checkpoint: A and B have counted the same
    // tuples up to in-flight skew; record B's per-key counts.
    let keyed_at_checkpoint: std::collections::HashMap<Key, u64> = sim
        .poi_ids(b)
        .iter()
        .flat_map(|&p| {
            sim.poi_state(p)
                .iter()
                .map(|(&k, v)| (k, v.as_count().unwrap()))
                .collect::<Vec<_>>()
        })
        .collect();

    // "Crash": keep running past the checkpoint, then roll back and
    // reinstall the persisted routing configuration — the recovery a
    // restarted manager + engine would perform.
    sim.run(20);
    sim.restore(&checkpoint).unwrap();
    let (epoch, config) = store.load_latest().unwrap().unwrap();
    assert_eq!(epoch, 1);
    manager.restore_configuration(&mut sim, &config);

    // Post-recovery: counts equal the checkpoint exactly, and the
    // optimized locality resumes immediately (no re-learning).
    let keyed_after: std::collections::HashMap<Key, u64> = sim
        .poi_ids(b)
        .iter()
        .flat_map(|&p| {
            sim.poi_state(p)
                .iter()
                .map(|(&k, v)| (k, v.as_count().unwrap()))
                .collect::<Vec<_>>()
        })
        .collect();
    assert_eq!(keyed_after, keyed_at_checkpoint);

    let skip = sim.metrics().windows().len();
    sim.run(30);
    let locality = sim.metrics().edge_locality(edge, skip + 5);
    assert!(
        locality > 0.9,
        "recovered deployment should run optimized immediately: {locality}"
    );

    // And the recovered deployment still satisfies single ownership.
    let mut seen = std::collections::HashSet::new();
    for poi in sim.poi_ids(b) {
        for &k in sim.poi_state(poi).keys() {
            assert!(seen.insert(k), "key {k} at two owners after recovery");
        }
    }
}

#[test]
fn recovery_without_stored_config_falls_back_to_hash() {
    // A checkpoint taken before any optimization restores to plain
    // hash routing — consistent, just slower.
    let mut sim = correlated_sim();
    let _manager = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(10);
    let checkpoint = sim.checkpoint().unwrap();
    sim.run(10);
    sim.restore(&checkpoint).unwrap();
    let a = sim.topology().po_by_name("A").unwrap();
    let b = sim.topology().po_by_name("B").unwrap();
    let edge = sim.topology().edge_between(a, b).unwrap();
    let skip = sim.metrics().windows().len();
    sim.run(20);
    let locality = sim.metrics().edge_locality(edge, skip);
    assert!(locality < 0.7, "pre-optimization restore stays on hash");
    assert!(sim.metrics().total_sink() > 0);
}
