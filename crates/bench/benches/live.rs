//! Criterion benchmark for the live (threaded) data plane: wall-clock
//! cost of pushing a fixed Zipf stream through the source → A → B
//! chain, batched vs unbatched — the micro-scale view of the
//! `hotpath` binary's throughput bench.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use streamloc_engine::{
    CountOperator, Grouping, Key, LiveConfig, LiveRuntime, Placement, SourceRate, Topology, Tuple,
};
use streamloc_workloads::{SplitMix64, Zipf};

const SERVERS: usize = 3;
const TOTAL: usize = 30_000;

fn zipf_chain(stream: &Arc<Vec<u64>>) -> Topology {
    let per_source = TOTAL / SERVERS;
    let stream = Arc::clone(stream);
    let mut b = Topology::builder();
    let s = b.source("S", SERVERS, SourceRate::Saturate, move |i| {
        let stream = Arc::clone(&stream);
        let mut next = i * per_source;
        let end = (i + 1) * per_source;
        Box::new(move || {
            if next == end {
                return None;
            }
            let k = stream[next];
            next += 1;
            Some(Tuple::new([Key::new(k), Key::new(k)], 0))
        })
    });
    let a = b.stateful("A", SERVERS, CountOperator::factory());
    let bb = b.stateful("B", SERVERS, CountOperator::factory());
    b.connect(s, a, Grouping::fields(0));
    b.connect(a, bb, Grouping::fields(1));
    b.build().unwrap()
}

fn bench_live_pipeline(c: &mut Criterion) {
    let stream: Arc<Vec<u64>> = Arc::new({
        let zipf = Zipf::new(1_000, 1.0);
        let mut rng = SplitMix64::new(0x2a2a);
        (0..TOTAL).map(|_| zipf.sample(&mut rng) as u64).collect()
    });
    let mut group = c.benchmark_group("live/pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TOTAL as u64));
    for batch_size in [1usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("batch", batch_size),
            &batch_size,
            |b, &batch_size| {
                b.iter(|| {
                    let topo = zipf_chain(&stream);
                    let placement = Placement::aligned(&topo, SERVERS);
                    let rt = LiveRuntime::start(
                        topo,
                        placement,
                        SERVERS,
                        LiveConfig {
                            batch_size,
                            ..LiveConfig::default()
                        },
                    );
                    rt.join().len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_live_pipeline);
criterion_main!(benches);
