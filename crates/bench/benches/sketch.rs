//! Criterion micro-benchmarks for the SpaceSaving sketch — the
//! per-tuple instrumentation cost that must stay negligible next to
//! operator work (paper §3.2: "most of the resources ... should be
//! dedicated to the application, and not collecting statistics").

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use streamloc_sketch::{CountMin, ExactCounter, SpaceSaving};
use streamloc_workloads::{SplitMix64, Zipf};

fn zipf_stream(n: usize, domain: usize) -> Vec<u64> {
    let zipf = Zipf::new(domain, 1.0);
    let mut rng = SplitMix64::new(7);
    (0..n).map(|_| zipf.sample(&mut rng) as u64).collect()
}

fn bench_offer(c: &mut Criterion) {
    let stream = zipf_stream(100_000, 1_000_000);
    let mut group = c.benchmark_group("sketch/offer");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for capacity in [1_000usize, 10_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("space_saving", capacity),
            &capacity,
            |b, &capacity| {
                b.iter(|| {
                    let mut sketch = SpaceSaving::new(capacity);
                    for &k in &stream {
                        sketch.offer(black_box(k));
                    }
                    sketch.len()
                });
            },
        );
    }
    group.bench_function("count_min_4x16k", |b| {
        b.iter(|| {
            let mut cm = CountMin::new(4, 16_384);
            for &k in &stream {
                cm.offer(black_box(&k));
            }
            cm.total()
        });
    });
    group.bench_function("exact_counter", |b| {
        b.iter(|| {
            let mut counter = ExactCounter::new();
            for &k in &stream {
                counter.offer(black_box(k));
            }
            counter.len()
        });
    });
    group.finish();
}

fn bench_merge_and_query(c: &mut Criterion) {
    let capacity = 10_000;
    let mut a = SpaceSaving::new(capacity);
    let mut b = SpaceSaving::new(capacity);
    for k in zipf_stream(200_000, 500_000) {
        a.offer(k);
    }
    for k in zipf_stream(200_000, 500_000).iter().map(|k| k + 1_000) {
        b.offer(k);
    }
    let mut group = c.benchmark_group("sketch");
    group.bench_function("merge_10k", |bencher| {
        bencher.iter(|| SpaceSaving::merged(black_box(&a), black_box(&b), capacity).len());
    });
    group.bench_function("top_1000", |bencher| {
        bencher.iter(|| black_box(&a).top_k(1000).len());
    });
    group.bench_function("iter_all", |bencher| {
        bencher.iter(|| black_box(&a).iter().map(|e| e.count).sum::<u64>());
    });
    group.finish();
}

fn bench_offer_weighted(c: &mut Criterion) {
    // Heavy weights force the documented O(distinct counts) bucket
    // walk: each offer may leapfrog many buckets instead of the O(1)
    // amortized unit-increment path.
    let mut rng = SplitMix64::new(11);
    let weighted: Vec<(u64, u64)> = zipf_stream(100_000, 1_000_000)
        .into_iter()
        .map(|k| (k, 1 + rng.next_u64() % 1_000_000_000))
        .collect();
    let mut group = c.benchmark_group("sketch/offer_weighted");
    group.throughput(Throughput::Elements(weighted.len() as u64));
    for capacity in [1_000usize, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("space_saving_heavy", capacity),
            &capacity,
            |b, &capacity| {
                b.iter(|| {
                    let mut sketch = SpaceSaving::new(capacity);
                    for &(k, w) in &weighted {
                        sketch.offer_weighted(black_box(k), black_box(w));
                    }
                    sketch.len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_offer, bench_offer_weighted, bench_merge_and_query);
criterion_main!(benches);
