//! Criterion benchmarks for the routing hot path and the manager's
//! reconfiguration computation: a table lookup must cost about as
//! much as the hash it replaces, and computing a full reconfiguration
//! must be cheap enough to run every period.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use streamloc_bench::tables_from_batch;
use streamloc_core::RoutingTable;
use streamloc_engine::{HashRouter, Key, KeyRouter};
use streamloc_workloads::{TwitterConfig, TwitterWorkload};

fn bench_route_lookup(c: &mut Criterion) {
    let table: RoutingTable = (0..100_000u64)
        .map(|v| (Key::new(v), (v % 6) as u32))
        .collect();
    let keys: Vec<Key> = (0..1024u64).map(|v| Key::new(v * 131 % 150_000)).collect();
    let mut group = c.benchmark_group("routing/route");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("table_100k_entries", |b| {
        b.iter(|| {
            keys.iter()
                .map(|&k| table.route(black_box(k), 6))
                .sum::<u32>()
        });
    });
    group.bench_function("hash", |b| {
        b.iter(|| {
            keys.iter()
                .map(|&k| HashRouter.route(black_box(k), 6))
                .sum::<u32>()
        });
    });
    group.finish();
}

fn bench_reconfiguration_compute(c: &mut Criterion) {
    // One week of pair statistics → sketch → graph → partition →
    // tables: the full policy pipeline the manager runs per period.
    let mut workload = TwitterWorkload::new(TwitterConfig {
        tuples_per_day: 20_000,
        ..TwitterConfig::default()
    });
    let week = workload.week(1);
    let mut group = c.benchmark_group("routing/reconfigure");
    group.sample_size(10);
    group.throughput(Throughput::Elements(week.len() as u64));
    group.bench_function("weekly_tables_140k_pairs", |b| {
        b.iter(|| {
            let tables = tables_from_batch(black_box(&week), 6, 100_000, usize::MAX, 1.03);
            tables.left.len() + tables.right.len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_route_lookup, bench_reconfiguration_compute);
criterion_main!(benches);
