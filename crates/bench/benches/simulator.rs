//! Criterion benchmark for the cluster simulator itself: simulated
//! tuples per wall-clock second on the standard evaluation chain —
//! the budget every figure harness spends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use streamloc_bench::{run_synthetic, RoutingStrategy};
use streamloc_engine::{
    ClusterSpec, CountOperator, Grouping, Placement, SimConfig, Simulation, SourceRate, Topology,
};
use streamloc_workloads::SyntheticWorkload;

fn standard_sim(parallelism: usize, padding: u32) -> Simulation {
    let workload = SyntheticWorkload::new(parallelism, 0.8, padding, 3);
    let mut builder = Topology::builder();
    let s = builder.source("S", parallelism, SourceRate::Saturate, move |i| {
        workload.source(i)
    });
    let a = builder.stateful("A", parallelism, CountOperator::factory());
    let b = builder.stateful("B", parallelism, CountOperator::factory());
    builder.connect(s, a, Grouping::fields(0));
    builder.connect(a, b, Grouping::fields(1));
    let topology = builder.build().unwrap();
    let placement = Placement::aligned(&topology, parallelism);
    Simulation::new(
        topology,
        ClusterSpec::lan_10g(parallelism),
        placement,
        SimConfig::default(),
    )
}

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/window");
    group.sample_size(20);
    for &parallelism in &[2usize, 6] {
        group.bench_with_input(
            BenchmarkId::new("step", parallelism),
            &parallelism,
            |b, &parallelism| {
                let mut sim = standard_sim(parallelism, 256);
                sim.run(5); // warm-up: fill the pipeline
                b.iter(|| {
                    sim.step();
                    sim.metrics().windows().last().unwrap().sink_tuples
                });
            },
        );
    }
    group.finish();
}

fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/experiment");
    group.sample_size(10);
    // One Fig. 7 data point, as the figure harnesses run it.
    group.throughput(Throughput::Elements(1));
    group.bench_function("fig7_point_n4", |b| {
        b.iter(|| run_synthetic(4, 0.8, 4096, RoutingStrategy::LocalityAware, 15).throughput);
    });
    group.finish();
}

criterion_group!(benches, bench_step, bench_full_run);

fn bench_live_runtime(c: &mut Criterion) {
    use streamloc_engine::{
        CountOperator, Grouping, Key, LiveConfig, LiveRuntime, Tuple,
    };
    let mut group = c.benchmark_group("live/throughput");
    group.sample_size(10);
    let total = 200_000u64;
    group.throughput(Throughput::Elements(total));
    group.bench_function("chain_4_threads", |b| {
        b.iter(|| {
            let n = 4;
            let mut builder = Topology::builder();
            let s = builder.source("S", n, SourceRate::Saturate, move |i| {
                let mut c = i as u64;
                let mut left = total / n as u64;
                Box::new(move || {
                    if left == 0 {
                        return None;
                    }
                    left -= 1;
                    c = c.wrapping_add(0x9e37_79b9);
                    Some(Tuple::new([Key::new(c % 64), Key::new(c % 64)], 0))
                })
            });
            let a = builder.stateful("A", n, CountOperator::factory());
            let bb = builder.stateful("B", n, CountOperator::factory());
            builder.connect(s, a, Grouping::fields(0));
            builder.connect(a, bb, Grouping::fields(1));
            let topo = builder.build().unwrap();
            let placement = Placement::aligned(&topo, n);
            let rt = LiveRuntime::start(topo, placement, n, LiveConfig::default());
            rt.join().len()
        });
    });
    group.finish();
}

criterion_group!(live_benches, bench_live_runtime);
criterion_main!(benches, live_benches);
