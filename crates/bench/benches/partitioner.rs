//! Criterion benchmarks for the graph partitioners (the Metis role in
//! the paper's manager): runtime of multilevel vs the cheap baselines
//! on clustered key graphs, at the sizes a reconfiguration sees.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use streamloc_partition::{
    Graph, GreedyPartitioner, HashPartitioner, HierarchicalPartitioner, MultilevelPartitioner,
    Partitioner,
};

/// A graph shaped like real pair statistics: `clusters` correlated
/// communities plus random long-tail noise edges.
fn key_graph(vertices: usize, clusters: usize, noise_edges: usize) -> Graph {
    let mut rng = SmallRng::seed_from_u64(11);
    let mut builder = Graph::builder();
    for _ in 0..vertices {
        builder.add_vertex(rng.gen_range(1..100));
    }
    let per = vertices / clusters;
    for c in 0..clusters {
        let base = (c * per) as u32;
        for i in 0..per as u32 {
            // Sparse intra-cluster ring + chords, heavy weights.
            builder.add_edge(base + i, base + (i + 1) % per as u32, rng.gen_range(50..200));
            if i % 7 == 0 {
                builder.add_edge(
                    base + i,
                    base + rng.gen_range(0..per as u32),
                    rng.gen_range(20..100),
                );
            }
        }
    }
    for _ in 0..noise_edges {
        let u = rng.gen_range(0..vertices as u32);
        let v = rng.gen_range(0..vertices as u32);
        builder.add_edge(u, v, rng.gen_range(1..5));
    }
    builder.build()
}

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group.sample_size(20);
    for &vertices in &[1_000usize, 10_000, 50_000] {
        let graph = key_graph(vertices, 24, vertices / 2);
        group.bench_with_input(
            BenchmarkId::new("multilevel", vertices),
            &graph,
            |b, graph| {
                b.iter(|| {
                    MultilevelPartitioner::default()
                        .partition(black_box(graph), 6, 1.03, 42)
                        .edge_cut(graph)
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("greedy", vertices), &graph, |b, graph| {
            b.iter(|| {
                GreedyPartitioner
                    .partition(black_box(graph), 6, 1.03, 42)
                    .edge_cut(graph)
            });
        });
        group.bench_with_input(BenchmarkId::new("hash", vertices), &graph, |b, graph| {
            b.iter(|| {
                HashPartitioner
                    .partition(black_box(graph), 6, 1.03, 42)
                    .edge_cut(graph)
            });
        });
        group.bench_with_input(
            BenchmarkId::new("hierarchical_2x3", vertices),
            &graph,
            |b, graph| {
                b.iter(|| {
                    HierarchicalPartitioner::new(2, 3)
                        .partition(black_box(graph), 6, 1.03, 42)
                        .edge_cut(graph)
                });
            },
        );
    }
    group.finish();
}

fn bench_warm_start(c: &mut Criterion) {
    // The manager's steady-state path: repartition a graph whose
    // structure barely changed, warm-started from the previous
    // assignment, vs the cold two-candidate run.
    let mut group = c.benchmark_group("partition/warm_start");
    group.sample_size(20);
    for &vertices in &[10_000usize, 50_000] {
        let graph = key_graph(vertices, 24, vertices / 2);
        let hint: Vec<u32> = MultilevelPartitioner::default()
            .partition(&graph, 6, 1.03, 42)
            .as_slice()
            .to_vec();
        group.bench_with_input(
            BenchmarkId::new("hinted", vertices),
            &(&graph, &hint),
            |b, (graph, hint)| {
                b.iter(|| {
                    MultilevelPartitioner::default()
                        .partition_with_hint(black_box(graph), 6, 1.03, 42, hint)
                        .edge_cut(graph)
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("cold", vertices), &graph, |b, graph| {
            b.iter(|| {
                MultilevelPartitioner::default()
                    .partition(black_box(graph), 6, 1.03, 42)
                    .edge_cut(graph)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners, bench_warm_start);
criterion_main!(benches);
