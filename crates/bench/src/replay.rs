//! Replay analysis shared by the Twitter-based experiments
//! (Figs. 10–12): run batches of `(location, hashtag)` pairs through
//! the sketch → key-graph → partition → routing-table pipeline and
//! measure locality / load balance, exactly as the paper's manager
//! would, without simulating the data plane.

use streamloc_core::RoutingTable;
use streamloc_engine::{HashRouter, Key, KeyRouter};
use streamloc_partition::{KeyGraph, MultilevelPartitioner};
use streamloc_sketch::SpaceSaving;

/// The pair of routing tables (locations, hashtags) generated from one
/// statistics period.
#[derive(Debug, Clone)]
pub struct ReplayTables {
    /// Table for the first fields grouping (locations).
    pub left: RoutingTable,
    /// Table for the second fields grouping (hashtags).
    pub right: RoutingTable,
    /// Locality the partitioner reports on its own statistics graph.
    pub expected_locality: f64,
}

/// Builds routing tables from a batch of key pairs, keeping at most
/// `sketch_capacity` pairs in the SpaceSaving sketch and using the
/// heaviest `max_edges` of them for partitioning (Fig. 12's knob).
#[must_use]
pub fn tables_from_batch(
    batch: &[(Key, Key)],
    servers: usize,
    sketch_capacity: usize,
    max_edges: usize,
    alpha: f64,
) -> ReplayTables {
    let mut sketch = SpaceSaving::new(sketch_capacity);
    for &pair in batch {
        sketch.offer(pair);
    }
    let mut graph = KeyGraph::new();
    for entry in sketch.iter().take(max_edges) {
        let (left, right) = *entry.key;
        graph.add_pair(left, right, entry.count);
    }
    let assignment = graph.partition(&MultilevelPartitioner::default(), servers, alpha, 0x5eed);
    ReplayTables {
        left: assignment.left_iter().map(|(&k, p)| (k, p)).collect(),
        right: assignment.right_iter().map(|(&k, p)| (k, p)).collect(),
        expected_locality: assignment.expected_locality(),
    }
}

/// Fraction of the batch's pairs whose two keys route to the same
/// server; `None` tables mean plain hash routing.
#[must_use]
pub fn replay_locality(
    batch: &[(Key, Key)],
    tables: Option<&ReplayTables>,
    servers: usize,
) -> f64 {
    if batch.is_empty() {
        return 1.0;
    }
    let local = batch
        .iter()
        .filter(|&&(left, right)| match tables {
            Some(t) => t.left.route(left, servers) == t.right.route(right, servers),
            None => HashRouter.route(left, servers) == HashRouter.route(right, servers),
        })
        .count();
    local as f64 / batch.len() as f64
}

/// Load imbalance (max/avg tuples per server) that the batch induces
/// on the second hop under the given tables (hash when `None`) — the
/// metric of Fig. 11b.
#[must_use]
pub fn weekly_imbalance(
    batch: &[(Key, Key)],
    tables: Option<&ReplayTables>,
    servers: usize,
) -> f64 {
    if batch.is_empty() {
        return 1.0;
    }
    let mut loads = vec![0u64; servers];
    for &(_, right) in batch {
        let server = match tables {
            Some(t) => t.right.route(right, servers),
            None => HashRouter.route(right, servers),
        };
        loads[server as usize] += 1;
    }
    let total: u64 = loads.iter().sum();
    let avg = total as f64 / servers as f64;
    *loads.iter().max().expect("servers > 0") as f64 / avg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn correlated_batch(pairs: usize) -> Vec<(Key, Key)> {
        (0..pairs)
            .map(|i| {
                let k = (i % 30) as u64;
                (Key::new(k), Key::new(1000 + k))
            })
            .collect()
    }

    #[test]
    fn perfect_correlation_gives_full_locality() {
        let batch = correlated_batch(3000);
        let tables = tables_from_batch(&batch, 5, 10_000, usize::MAX, 1.05);
        assert!(tables.expected_locality > 0.99);
        assert!(replay_locality(&batch, Some(&tables), 5) > 0.99);
        // Hash reference is ~1/5.
        let hash = replay_locality(&batch, None, 5);
        assert!((hash - 0.2).abs() < 0.15);
    }

    #[test]
    fn fewer_edges_means_less_locality() {
        // Long-tailed pairs: with only 5 edges the tail routes by hash.
        let mut batch = Vec::new();
        for i in 0..2000usize {
            let k = (i % 200) as u64;
            batch.push((Key::new(k), Key::new(1000 + k)));
        }
        let full = tables_from_batch(&batch, 4, 10_000, usize::MAX, 1.05);
        let few = tables_from_batch(&batch, 4, 10_000, 5, 1.05);
        let loc_full = replay_locality(&batch, Some(&full), 4);
        let loc_few = replay_locality(&batch, Some(&few), 4);
        assert!(
            loc_full > loc_few + 0.2,
            "full {loc_full} should beat few-edges {loc_few}"
        );
    }

    #[test]
    fn imbalance_detects_skew() {
        // All pairs share one hashtag: everything lands on one server.
        let batch: Vec<_> = (0..100)
            .map(|i| (Key::new(i), Key::new(777)))
            .collect();
        let imb = weekly_imbalance(&batch, None, 4);
        assert!((imb - 4.0).abs() < 1e-9);
    }
}
