//! Bench trend history: an append-only `BENCH_history.jsonl` at the
//! workspace root, one line per `bench-check --history` run, carrying
//! the machine tag, commit, best columnar throughput and warm rebuild
//! latency — the multi-commit trend series ROADMAP asked for.
//!
//! The format is the same flat hand-rolled JSON as the other bench
//! artifacts (no serialization dependency); [`parse_entries`] scans it
//! back. [`trend_warnings`] flags a metric that declined on three
//! consecutive runs *of the same machine tag* — cross-machine numbers
//! are not comparable, so trends are tracked per tag.

use std::fmt::Write as _;
use std::path::Path;
use std::process::Command;

use crate::check::extract_number;

/// One appended bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Unix seconds when the entry was recorded.
    pub timestamp: u64,
    /// Machine tag (`STREAMLOC_MACHINE`, falling back to the hostname).
    pub machine: String,
    /// Short commit hash, `"unknown"` outside a git checkout.
    pub commit: String,
    /// Best columnar throughput of the run, tuples/second.
    pub tuples_per_s: f64,
    /// Warm-start rebuild latency of the run, milliseconds.
    pub rebuild_warm_ms: f64,
}

impl HistoryEntry {
    /// Renders the single JSONL line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"timestamp\": {}, \"machine\": \"{}\", \"commit\": \"{}\", \"tuples_per_s\": {:.1}, \"rebuild_warm_ms\": {:.3}}}",
            self.timestamp,
            escape(&self.machine),
            escape(&self.commit),
            self.tuples_per_s,
            self.rebuild_warm_ms,
        );
        out
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .filter(|c| !c.is_control() && *c != '"' && *c != '\\')
        .collect()
}

/// Extracts the string following `"key":` in a flat JSON line.
#[must_use]
pub fn extract_string(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_owned())
}

/// Parses every well-formed history line; malformed lines are skipped
/// (the file is append-only across versions, so tolerate drift).
#[must_use]
pub fn parse_entries(jsonl: &str) -> Vec<HistoryEntry> {
    jsonl
        .lines()
        .filter_map(|line| {
            Some(HistoryEntry {
                timestamp: extract_number(line, "timestamp")? as u64,
                machine: extract_string(line, "machine")?,
                commit: extract_string(line, "commit")?,
                tuples_per_s: extract_number(line, "tuples_per_s")?,
                rebuild_warm_ms: extract_number(line, "rebuild_warm_ms")?,
            })
        })
        .collect()
}

/// Warnings for metrics that declined on three consecutive runs of the
/// same machine tag (including `entry` as the latest run).
#[must_use]
pub fn trend_warnings(history: &[HistoryEntry], entry: &HistoryEntry) -> Vec<String> {
    let mut runs: Vec<&HistoryEntry> = history
        .iter()
        .filter(|e| e.machine == entry.machine)
        .collect();
    runs.push(entry);
    let mut warnings = Vec::new();
    if runs.len() < 3 {
        return warnings;
    }
    let last3 = &runs[runs.len() - 3..];
    if last3.windows(2).all(|w| w[1].tuples_per_s < w[0].tuples_per_s) {
        warnings.push(format!(
            "throughput declined 3 runs in a row on '{}': {:.0} → {:.0} → {:.0} t/s",
            entry.machine, last3[0].tuples_per_s, last3[1].tuples_per_s, last3[2].tuples_per_s,
        ));
    }
    if last3
        .windows(2)
        .all(|w| w[1].rebuild_warm_ms > w[0].rebuild_warm_ms)
    {
        warnings.push(format!(
            "warm rebuild latency grew 3 runs in a row on '{}': {:.2} → {:.2} → {:.2} ms",
            entry.machine, last3[0].rebuild_warm_ms, last3[1].rebuild_warm_ms, last3[2].rebuild_warm_ms,
        ));
    }
    warnings
}

/// The machine tag: `STREAMLOC_MACHINE` if set, else the hostname,
/// else `"unknown"`.
#[must_use]
pub fn machine_tag() -> String {
    if let Ok(tag) = std::env::var("STREAMLOC_MACHINE") {
        if !tag.is_empty() {
            return tag;
        }
    }
    Command::new("hostname")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// The short commit hash of `repo`, or `"unknown"`.
#[must_use]
pub fn commit_hash(repo: &Path) -> String {
    Command::new("git")
        .arg("-C")
        .arg(repo)
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Builds the entry for the current run from the bench artifacts'
/// JSON, stamping machine, commit and wall-clock time.
#[must_use]
pub fn current_entry(repo: &Path, throughput_json: &str, rebuild_json: &str) -> Option<HistoryEntry> {
    let tuples_per_s = crate::check::best_mode_throughput(throughput_json, "columnar")?;
    let rebuild_warm_ms = extract_number(rebuild_json, "warm_ms")?;
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    Some(HistoryEntry {
        timestamp,
        machine: machine_tag(),
        commit: commit_hash(repo),
        tuples_per_s,
        rebuild_warm_ms,
    })
}

/// Appends `entry` to `path` (creating the file if needed) and returns
/// the trend warnings against the history that preceded it.
///
/// # Panics
///
/// Panics on I/O errors — the history file is the whole point of
/// `--history` mode.
pub fn append_and_check(path: &Path, entry: &HistoryEntry) -> Vec<String> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let history = parse_entries(&existing);
    let warnings = trend_warnings(&history, entry);
    let mut text = existing;
    if !text.is_empty() && !text.ends_with('\n') {
        text.push('\n');
    }
    text.push_str(&entry.to_json());
    text.push('\n');
    std::fs::write(path, text).expect("append BENCH_history.jsonl");
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(machine: &str, tput: f64, rebuild: f64) -> HistoryEntry {
        HistoryEntry {
            timestamp: 1_700_000_000,
            machine: machine.to_owned(),
            commit: "abc1234".to_owned(),
            tuples_per_s: tput,
            rebuild_warm_ms: rebuild,
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let e = entry("ci-runner", 123_456.7, 12.345);
        let parsed = parse_entries(&e.to_json());
        assert_eq!(parsed, vec![e]);
        // Malformed lines are skipped, valid ones kept.
        let mixed = format!("not json\n{}\n{{\"half\": 1}}\n", entry("m", 1.0, 2.0).to_json());
        assert_eq!(parse_entries(&mixed).len(), 1);
    }

    #[test]
    fn warns_on_three_run_monotonic_decline() {
        let history = vec![entry("m", 3000.0, 10.0), entry("m", 2000.0, 10.0)];
        let warnings = trend_warnings(&history, &entry("m", 1000.0, 10.0));
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("throughput declined"));
        // A recovery in the middle clears the streak.
        let history = vec![entry("m", 3000.0, 10.0), entry("m", 3500.0, 10.0)];
        assert!(trend_warnings(&history, &entry("m", 1000.0, 10.0)).is_empty());
        // Rebuild growth warns separately.
        let history = vec![entry("m", 1000.0, 10.0), entry("m", 1000.0, 11.0)];
        let warnings = trend_warnings(&history, &entry("m", 1000.0, 12.0));
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("rebuild"));
    }

    #[test]
    fn trends_are_per_machine() {
        let history = vec![entry("a", 3000.0, 10.0), entry("a", 2000.0, 10.0)];
        // Same shape of decline, but the latest run is another machine.
        assert!(trend_warnings(&history, &entry("b", 1000.0, 10.0)).is_empty());
    }

    #[test]
    fn append_accumulates_and_checks() {
        let dir = std::env::temp_dir().join("streamloc_history_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_history.jsonl");
        let _ = std::fs::remove_file(&path);
        assert!(append_and_check(&path, &entry("m", 3000.0, 10.0)).is_empty());
        assert!(append_and_check(&path, &entry("m", 2000.0, 10.0)).is_empty());
        let warnings = append_and_check(&path, &entry("m", 1000.0, 10.0));
        assert_eq!(warnings.len(), 1);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(parse_entries(&text).len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn current_entry_reads_bench_artifacts() {
        let throughput = r#"{"runs": [
            {"mode": "columnar", "batch_size": 64, "tuples_per_s": 5000.0},
            {"mode": "columnar", "batch_size": 256, "tuples_per_s": 7000.0}
        ]}"#;
        let rebuild = r#"{"warm_ms": 12.5}"#;
        let e = current_entry(Path::new("."), throughput, rebuild).unwrap();
        assert!((e.tuples_per_s - 7000.0).abs() < 1e-9);
        assert!((e.rebuild_warm_ms - 12.5).abs() < 1e-9);
        assert!(!e.machine.is_empty());
        assert!(current_entry(Path::new("."), "{}", rebuild).is_none());
    }
}
