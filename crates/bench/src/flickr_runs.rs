//! The Flickr-workload cluster runs behind Figs. 13–14.

use streamloc_core::{Manager, ManagerConfig};
use streamloc_engine::{
    ClusterSpec, CountOperator, Grouping, Placement, SimConfig, Simulation, SourceRate, Topology,
};
use streamloc_workloads::{FlickrConfig, FlickrWorkload};

/// Outcome of one Flickr run.
#[derive(Debug, Clone)]
pub struct FlickrRun {
    /// Throughput per window (tuples/s), the Fig. 13 timeline.
    pub timeline: Vec<f64>,
    /// Mean throughput after the reconfiguration point (after warm-up
    /// when no reconfiguration happens), tuples/s — the Fig. 14 bar.
    pub steady_throughput: f64,
    /// Locality of the tag→country hop after the reconfiguration
    /// point.
    pub locality: f64,
}

/// Runs the §4.4 validation: the two-hop Flickr topology for
/// `seconds` simulated seconds on `servers` servers, optionally
/// reconfiguring every `reconfig_every` seconds (the paper uses 30-min
/// runs with a 10-min period; we compress 1 min → 1 s).
///
/// # Panics
///
/// Panics if `reconfig_every == Some(0)`.
#[must_use]
pub fn run_flickr(
    servers: usize,
    bandwidth_gbps: f64,
    padding: u32,
    reconfig_every: Option<usize>,
    seconds: usize,
) -> FlickrRun {
    let windows_per_second = 10;
    let workload = FlickrWorkload::new(FlickrConfig {
        padding,
        ..FlickrConfig::default()
    });

    let mut builder = Topology::builder();
    let source = builder.source("photos", servers, SourceRate::Saturate, move |i| {
        workload.source(i)
    });
    let by_tag = builder.stateful("by_tag", servers, CountOperator::factory());
    let by_country = builder.stateful("by_country", servers, CountOperator::factory());
    builder.connect(source, by_tag, Grouping::fields(0));
    let hop = builder.connect(by_tag, by_country, Grouping::fields(1));
    let topology = builder.build().expect("valid chain");

    let mut cluster = ClusterSpec::lan_10g(servers);
    cluster.nic_bandwidth_bps = bandwidth_gbps * 1e9;
    let placement = Placement::aligned(&topology, servers);
    let mut sim = Simulation::new(topology, cluster, placement, SimConfig::default());
    let mut manager = reconfig_every.map(|period| {
        assert!(period > 0, "reconfiguration period must be positive");
        Manager::attach(&mut sim, ManagerConfig::default())
    });

    for second in 0..seconds {
        if let (Some(manager), Some(period)) = (manager.as_mut(), reconfig_every) {
            if second > 0 && second % period == 0 {
                let _ = manager.reconfigure(&mut sim);
            }
        }
        sim.run(windows_per_second);
    }

    let first_reconfig = reconfig_every.unwrap_or(seconds / 3);
    let skip = (first_reconfig + 2) * windows_per_second;
    FlickrRun {
        timeline: sim.metrics().throughput_series(),
        steady_throughput: sim.metrics().avg_throughput(skip),
        locality: sim.metrics().edge_locality(hop, skip),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconfiguration_improves_flickr_throughput() {
        let without = run_flickr(3, 1.0, 4 * 1024, None, 9);
        let with = run_flickr(3, 1.0, 4 * 1024, Some(3), 9);
        assert!(
            with.steady_throughput > without.steady_throughput * 1.05,
            "reconfig {} should beat none {}",
            with.steady_throughput,
            without.steady_throughput
        );
        assert!(with.locality > without.locality + 0.1);
        assert_eq!(with.timeline.len(), 90);
    }
}
