//! Experiment harnesses reproducing every figure of the paper's
//! evaluation (§4), plus ablations. Each `fig*` binary in `src/bin`
//! is a thin wrapper over the functions here; `all_figures` runs the
//! whole evaluation and writes one CSV per figure under `results/`.
//!
//! Absolute throughput numbers come from the simulated cluster (see
//! DESIGN.md §2 for the substitution); the reproduction target is the
//! *shape* of every figure — which strategy wins, the scaling trends,
//! and where the crossovers fall. EXPERIMENTS.md records the
//! paper-vs-measured comparison produced by these harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod csv;
pub mod figures;
pub mod flickr_runs;
pub mod history;
pub mod hotpath;
pub mod latency;
pub mod replay;
pub mod synthetic_runs;

pub use csv::CsvWriter;
pub use flickr_runs::{run_flickr, FlickrRun};
pub use replay::{replay_locality, tables_from_batch, weekly_imbalance, ReplayTables};
pub use synthetic_runs::{run_synthetic, RoutingStrategy, SyntheticRun};

/// `true` when the `STREAMLOC_QUICK` environment variable asks for
/// shortened sweeps (used by smoke tests).
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var_os("STREAMLOC_QUICK").is_some()
}
