//! Minimal CSV output for the figure harnesses.

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Writes experiment rows both to stdout-friendly strings and to
/// `results/<name>.csv` at the workspace root.
#[derive(Debug)]
pub struct CsvWriter {
    path: PathBuf,
    out: BufWriter<File>,
}

impl CsvWriter {
    /// Creates `results/<name>.csv` (and the directory) and writes the
    /// header row.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be created — experiment harnesses
    /// have nothing sensible to do without their output file.
    #[must_use]
    pub fn create(name: &str, header: &[&str]) -> Self {
        let dir = results_dir();
        fs::create_dir_all(&dir).expect("create results directory");
        let path = dir.join(format!("{name}.csv"));
        let mut out = BufWriter::new(File::create(&path).expect("create csv file"));
        writeln!(out, "{}", header.join(",")).expect("write header");
        Self { path, out }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors.
    pub fn row(&mut self, fields: &[String]) {
        writeln!(self.out, "{}", fields.join(",")).expect("write row");
    }

    /// Flushes and reports the written path.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors.
    pub fn finish(mut self) -> PathBuf {
        self.out.flush().expect("flush csv");
        self.path
    }
}

/// `<workspace>/results`, resolved relative to this crate so the
/// binaries work from any working directory.
#[must_use]
pub fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("results")
}

/// Formats a float with 1 decimal for table output.
#[must_use]
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with 3 decimals for table output.
#[must_use]
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}
