//! Hot-path benchmarks: live data-plane throughput (unbatched vs
//! batched vs columnar) and manager rebuild latency (cold vs
//! warm-started).
//!
//! These are the two budgets the paper treats as first-class: the
//! per-tuple routing-decision cost (§2) and the time the manager
//! spends rebuilding tables inside a reconfiguration (§4.4 measures
//! how fast throughput recovers). The `hotpath` binary runs both on
//! the synthetic Zipf workload and seeds the bench trajectory with
//! `BENCH_throughput.json` and `BENCH_rebuild.json` at the workspace
//! root; EXPERIMENTS.md documents the format.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use streamloc_core::{Manager, ManagerConfig};
use streamloc_engine::{
    ClusterSpec, CountOperator, Grouping, Key, LiveConfig, LiveRuntime, MetricsRegistry, Placement,
    SimConfig, Simulation, SourceRate, SpanSampler, Topology, Tuple,
};
use streamloc_workloads::{SplitMix64, Zipf};

/// One measured throughput run.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputRun {
    /// Data-plane mode: `"unbatched"`, `"batched"` (per-tuple
    /// processing inside batches, the PR-3 path), or `"columnar"`
    /// (run-length routing + batched operator dispatch).
    pub mode: &'static str,
    /// Batch size the run used (1 = unbatched baseline).
    pub batch_size: usize,
    /// Wall-clock seconds from start to drained join.
    pub elapsed_s: f64,
    /// Source tuples over `elapsed_s`.
    pub tuples_per_s: f64,
    /// `live_batch_sends_total` after the run.
    pub batch_sends: u64,
}

/// Result of the batched-vs-unbatched live throughput bench.
#[derive(Debug, Clone)]
pub struct ThroughputBench {
    /// Tuples each run pushes through the pipeline.
    pub total_tuples: u64,
    /// Servers (= parallelism of every operator).
    pub servers: usize,
    /// Zipf key-domain size.
    pub keys: usize,
    /// One entry per batch size, the `batch_size == 1` baseline first.
    pub runs: Vec<ThroughputRun>,
}

impl ThroughputBench {
    /// Best throughput among runs of `mode`, 0.0 when absent.
    #[must_use]
    pub fn best(&self, mode: &str) -> f64 {
        self.runs
            .iter()
            .filter(|r| r.mode == mode)
            .map(|r| r.tuples_per_s)
            .fold(0.0f64, f64::max)
    }

    /// Best batched throughput over the unbatched baseline.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.best("batched") / self.best("unbatched").max(f64::MIN_POSITIVE)
    }

    /// Best columnar throughput over the best per-tuple batched run —
    /// what the run-length data plane buys beyond channel batching.
    #[must_use]
    pub fn columnar_speedup(&self) -> f64 {
        self.best("columnar") / self.best("batched").max(f64::MIN_POSITIVE)
    }
}

/// The Zipf pipeline every throughput run deploys: `servers` sources
/// drawing keys from `Zipf(keys, 1.0)` with the pinned [`SplitMix64`]
/// stream, feeding two fields-grouped stateful hops — the same
/// source → A → B chain as the paper's evaluation topology.
fn zipf_chain(servers: usize, keys: usize, total: u64) -> Topology {
    let mut b = Topology::builder();
    let per_source = (total / servers as u64) as usize;
    // The key stream is drawn up front so the timed region measures
    // the data plane (route + channel + operator), not the sampler.
    let stream: Arc<Vec<u64>> = Arc::new({
        let zipf = Zipf::new(keys, 1.0);
        let mut rng = SplitMix64::new(0x2a2a);
        (0..per_source * servers)
            .map(|_| zipf.sample(&mut rng) as u64)
            .collect()
    });
    let s = b.source("S", servers, SourceRate::Saturate, move |i| {
        let stream = Arc::clone(&stream);
        let mut next = i * per_source;
        let end = (i + 1) * per_source;
        Box::new(move || {
            if next == end {
                return None;
            }
            let k = stream[next];
            next += 1;
            Some(Tuple::new([Key::new(k), Key::new(k)], 0))
        })
    });
    let a = b.stateful("A", servers, CountOperator::factory());
    let bb = b.stateful("B", servers, CountOperator::factory());
    b.connect(s, a, Grouping::fields(0));
    b.connect(a, bb, Grouping::fields(1));
    b.build().expect("valid chain")
}

fn throughput_run(
    servers: usize,
    keys: usize,
    total: u64,
    mode: &'static str,
    batch_size: usize,
) -> ThroughputRun {
    throughput_run_sampled(servers, keys, total, mode, batch_size, None)
}

fn throughput_run_sampled(
    servers: usize,
    keys: usize,
    total: u64,
    mode: &'static str,
    batch_size: usize,
    span_sampler: Option<SpanSampler>,
) -> ThroughputRun {
    let total = (total / servers as u64) * servers as u64;
    let topo = zipf_chain(servers, keys, total);
    let placement = Placement::aligned(&topo, servers);
    let registry = Arc::new(MetricsRegistry::new());
    let config = LiveConfig {
        batch_size,
        columnar: mode == "columnar",
        metrics: Some(Arc::clone(&registry)),
        span_sampler,
        ..LiveConfig::default()
    };
    let start = Instant::now();
    let rt = LiveRuntime::start(topo, placement, servers, config);
    let reports = rt.join();
    let elapsed_s = start.elapsed().as_secs_f64();
    let processed: u64 = reports
        .iter()
        .filter(|r| r.po.index() == 1)
        .map(|r| r.processed)
        .sum();
    assert_eq!(processed, total, "pipeline must drain every tuple");
    let batch_sends = registry
        .snapshot()
        .into_iter()
        .find(|(name, _)| name == "live_batch_sends_total")
        .map_or(0, |(_, v)| v);
    ThroughputRun {
        mode,
        batch_size,
        elapsed_s,
        tuples_per_s: total as f64 / elapsed_s,
        batch_sends,
    }
}

/// Runs the batched-vs-unbatched live throughput bench and writes
/// `BENCH_throughput.json` at the workspace root.
pub fn bench_throughput(quick: bool) -> (ThroughputBench, PathBuf) {
    let servers = 3;
    let keys = 1_000;
    let total: u64 = if quick { 400_000 } else { 2_000_000 };
    println!("Live throughput — Zipf({keys}) chain, {servers} servers, {total} tuples");
    println!("  mode        batch   elapsed      tuples/s   batch sends");
    let reps = 5;
    let mut runs = Vec::new();
    let configs: [(&'static str, usize); 7] = [
        ("unbatched", 1),
        ("batched", 16),
        ("batched", 64),
        ("batched", 256),
        ("columnar", 16),
        ("columnar", 64),
        ("columnar", 256),
    ];
    for (mode, batch_size) in configs {
        // Best of `reps`: on a loaded machine the minimum wall time is
        // the least-perturbed estimate of the pipeline's actual cost.
        let run = (0..reps)
            .map(|_| throughput_run(servers, keys, total, mode, batch_size))
            .max_by(|a, b| a.tuples_per_s.total_cmp(&b.tuples_per_s))
            .expect("at least one rep");
        println!(
            "  {:<9}   {:>5}   {:>6.3}s   {:>9.0}   {:>11}",
            run.mode, run.batch_size, run.elapsed_s, run.tuples_per_s, run.batch_sends
        );
        runs.push(run);
    }
    let bench = ThroughputBench {
        total_tuples: total,
        servers,
        keys,
        runs,
    };
    println!("  speedup (best batched / unbatched):  {:.2}x", bench.speedup());
    println!(
        "  speedup (best columnar / batched):   {:.2}x",
        bench.columnar_speedup()
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"live_throughput\",\n");
    json.push_str("  \"workload\": \"zipf\",\n");
    json.push_str(&format!("  \"zipf_keys\": {},\n", bench.keys));
    json.push_str(&format!("  \"servers\": {},\n", bench.servers));
    json.push_str(&format!("  \"total_tuples\": {},\n", bench.total_tuples));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, r) in bench.runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"batch_size\": {}, \"elapsed_s\": {:.6}, \"tuples_per_s\": {:.1}, \"batch_sends\": {}}}{}\n",
            r.mode,
            r.batch_size,
            r.elapsed_s,
            r.tuples_per_s,
            r.batch_sends,
            if i + 1 < bench.runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_batched_vs_unbatched\": {:.3},\n",
        bench.speedup()
    ));
    json.push_str(&format!(
        "  \"speedup_columnar_vs_batched\": {:.3}\n",
        bench.columnar_speedup()
    ));
    json.push_str("}\n");
    let path = workspace_root().join("BENCH_throughput.json");
    fs::write(&path, json).expect("write BENCH_throughput.json");
    (bench, path)
}

/// Result of the span-tracing overhead bench.
#[derive(Debug, Clone, Copy)]
pub struct SpanOverheadBench {
    /// Sampling denominator (1 key in `n` sampled).
    pub denominator: u64,
    /// Sampling-off throughput of the cleanest rep, tuples/second.
    pub off_tuples_per_s: f64,
    /// The same rep's 1/`denominator`-sampled throughput.
    pub on_tuples_per_s: f64,
}

impl SpanOverheadBench {
    /// Fractional throughput lost to sampling (negative = noise made
    /// the sampled run faster).
    #[must_use]
    pub fn overhead(&self) -> f64 {
        1.0 - self.on_tuples_per_s / self.off_tuples_per_s.max(f64::MIN_POSITIVE)
    }
}

/// Measures the columnar data plane with span sampling off vs. on at
/// 1/`denominator`. Runs `reps` back-to-back off/on pairs and keeps
/// the pair with the *smallest* overhead: external load can only slow
/// one run of a pair down (inflating or deflating that pair's ratio),
/// so on a shared machine the cleanest pair is the tightest upper
/// bound on the true cost — comparing each arm's best across reps
/// would instead compare two different noise samples.
#[must_use]
pub fn measure_span_overhead(total: u64, denominator: u64, reps: usize) -> SpanOverheadBench {
    let servers = 3;
    let keys = 1_000;
    let mut best: Option<SpanOverheadBench> = None;
    for _ in 0..reps {
        let off = throughput_run_sampled(servers, keys, total, "columnar", 256, None);
        let on = throughput_run_sampled(
            servers,
            keys,
            total,
            "columnar",
            256,
            Some(SpanSampler::new(0xC0FFEE, denominator)),
        );
        let pair = SpanOverheadBench {
            denominator,
            off_tuples_per_s: off.tuples_per_s,
            on_tuples_per_s: on.tuples_per_s,
        };
        if best.is_none_or(|b| pair.overhead() < b.overhead()) {
            best = Some(pair);
        }
    }
    best.expect("at least one rep")
}

/// Runs the span-tracing overhead bench (1/64 sampling, the issue's
/// budget point) and writes `BENCH_span_overhead.json` at the
/// workspace root.
pub fn bench_span_overhead(quick: bool) -> (SpanOverheadBench, PathBuf) {
    let total: u64 = if quick { 400_000 } else { 2_000_000 };
    let bench = measure_span_overhead(total, 64, 5);
    println!("Span tracing overhead — columnar, 1/{} sampling", bench.denominator);
    println!("  sampling off:  {:>12.0} t/s", bench.off_tuples_per_s);
    println!("  sampling on:   {:>12.0} t/s", bench.on_tuples_per_s);
    println!("  overhead:      {:>11.2}%", bench.overhead() * 100.0);
    let json = format!(
        "{{\n  \"bench\": \"span_overhead\",\n  \"workload\": \"zipf\",\n  \"quick\": {},\n  \"sample_denominator\": {},\n  \"off_tuples_per_s\": {:.1},\n  \"on_tuples_per_s\": {:.1},\n  \"overhead_fraction\": {:.4}\n}}\n",
        quick,
        bench.denominator,
        bench.off_tuples_per_s,
        bench.on_tuples_per_s,
        bench.overhead(),
    );
    let path = workspace_root().join("BENCH_span_overhead.json");
    fs::write(&path, json).expect("write BENCH_span_overhead.json");
    (bench, path)
}

/// Result of the manager rebuild-latency bench.
#[derive(Debug, Clone)]
pub struct RebuildBench {
    /// Zipf key-domain size per hop side.
    pub keys: u64,
    /// Servers in the simulated cluster.
    pub servers: usize,
    /// Key pairs the sketches had absorbed before each rebuild.
    pub pairs_observed: u64,
    /// First rebuild, no assignment history (milliseconds).
    pub cold_ms: f64,
    /// Steady-state rebuild, warm-started from the previous
    /// assignment (milliseconds).
    pub warm_ms: f64,
    /// Steady-state rebuild with `warm_start: false` — the serial
    /// cold path on the same statistics (milliseconds).
    pub cold_steady_ms: f64,
}

/// A Zipf-keyed correlated simulation: key `k` on hop field 0 always
/// pairs with `k + keys` on field 1, with `k` Zipf-skewed, so the key
/// graph has `2 * keys` vertices worth of long-tail structure for the
/// partitioner to chew on.
fn zipf_sim(servers: usize, keys: u64) -> Simulation {
    let mut b = Topology::builder();
    let s = b.source("S", servers, SourceRate::PerSecond(40_000.0), move |i| {
        let zipf = Zipf::new(keys as usize, 1.0);
        let mut rng = SplitMix64::new(0x5eed ^ i as u64);
        Box::new(move || {
            let k = zipf.sample(&mut rng) as u64;
            Some(Tuple::new([Key::new(k), Key::new(k + keys)], 64))
        })
    });
    let a = b.stateful("A", servers, CountOperator::factory());
    let bb = b.stateful("B", servers, CountOperator::factory());
    b.connect(s, a, Grouping::fields(0));
    b.connect(a, bb, Grouping::fields(1));
    let topo = b.build().expect("valid chain");
    let placement = Placement::aligned(&topo, servers);
    Simulation::new(
        topo,
        ClusterSpec::lan_10g(servers),
        placement,
        SimConfig::default(),
    )
}

/// Runs the manager rebuild-latency bench and writes
/// `BENCH_rebuild.json` at the workspace root.
pub fn bench_rebuild(quick: bool) -> (RebuildBench, PathBuf) {
    let servers = 4;
    let keys: u64 = if quick { 2_000 } else { 20_000 };
    let windows = if quick { 10 } else { 30 };

    // Warm-started manager: first rebuild is cold (no history), the
    // second warm-starts from the first's assignment.
    let mut sim = zipf_sim(servers, keys);
    let mut mgr = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(windows);
    let pairs_observed = mgr.pairs_observed();
    let t = Instant::now();
    mgr.reconfigure(&mut sim).expect("cold rebuild");
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    sim.run(windows);
    let t = Instant::now();
    mgr.reconfigure(&mut sim).expect("warm rebuild");
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;

    // Control: the same steady-state rebuild without warm start.
    let mut cold_sim = zipf_sim(servers, keys);
    let mut cold_mgr = Manager::attach(
        &mut cold_sim,
        ManagerConfig {
            warm_start: false,
            ..ManagerConfig::default()
        },
    );
    cold_sim.run(windows);
    cold_mgr.reconfigure(&mut cold_sim).expect("control rebuild");
    cold_sim.run(windows);
    let t = Instant::now();
    cold_mgr
        .reconfigure(&mut cold_sim)
        .expect("control steady rebuild");
    let cold_steady_ms = t.elapsed().as_secs_f64() * 1e3;

    let bench = RebuildBench {
        keys,
        servers,
        pairs_observed,
        cold_ms,
        warm_ms,
        cold_steady_ms,
    };
    println!("Manager rebuild — Zipf({keys}) pairs, {servers} servers");
    println!("  cold (first rebuild):        {cold_ms:>8.2} ms");
    println!("  warm (steady state):         {warm_ms:>8.2} ms");
    println!("  cold control (steady state): {cold_steady_ms:>8.2} ms");

    let json = format!(
        "{{\n  \"bench\": \"manager_rebuild\",\n  \"workload\": \"zipf\",\n  \"zipf_keys\": {},\n  \"servers\": {},\n  \"quick\": {},\n  \"pairs_observed\": {},\n  \"cold_ms\": {:.3},\n  \"warm_ms\": {:.3},\n  \"cold_steady_ms\": {:.3}\n}}\n",
        bench.keys,
        bench.servers,
        quick,
        bench.pairs_observed,
        bench.cold_ms,
        bench.warm_ms,
        bench.cold_steady_ms,
    );
    let path = workspace_root().join("BENCH_rebuild.json");
    fs::write(&path, json).expect("write BENCH_rebuild.json");
    (bench, path)
}

/// The workspace root, resolved relative to this crate so the binary
/// works from any working directory.
#[must_use]
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_run_drains_and_counts_batches() {
        let run = throughput_run(2, 100, 6_000, "batched", 64);
        assert!(run.tuples_per_s > 0.0);
        assert!(run.batch_sends > 0, "batched run must send batches");
        let columnar = throughput_run(2, 100, 6_000, "columnar", 64);
        assert!(columnar.batch_sends > 0, "columnar run must send batches");
        let unbatched = throughput_run(2, 100, 6_000, "unbatched", 1);
        assert_eq!(unbatched.batch_sends, 0);
    }

    #[test]
    fn span_overhead_within_five_percent() {
        // The hard budget: 1/64 sampling must cost the columnar hot
        // path at most 5% throughput. Paired reps with min-overhead
        // selection keep shared-machine noise out of the estimate;
        // runs shorter than ~400k tuples are noise-dominated. The 5%
        // budget is a property of the *optimized* hot path — the
        // `hotpath` binary asserts it in release — so unoptimized
        // builds get headroom and still catch gross regressions such
        // as an accidental per-tuple clock read.
        let budget = if cfg!(debug_assertions) { 0.15 } else { 0.05 };
        let bench = measure_span_overhead(400_000, 64, 4);
        assert!(
            bench.overhead() <= budget,
            "span sampling overhead {:.2}% exceeds the {:.0}% budget ({:.0} off vs {:.0} on t/s)",
            bench.overhead() * 100.0,
            budget * 100.0,
            bench.off_tuples_per_s,
            bench.on_tuples_per_s,
        );
    }

    #[test]
    fn speedups_compare_best_per_mode() {
        let run = |mode, batch_size, tuples_per_s| ThroughputRun {
            mode,
            batch_size,
            elapsed_s: 1.0,
            tuples_per_s,
            batch_sends: 0,
        };
        let bench = ThroughputBench {
            total_tuples: 0,
            servers: 1,
            keys: 1,
            runs: vec![
                run("unbatched", 1, 100.0),
                run("batched", 64, 250.0),
                run("batched", 256, 200.0),
                run("columnar", 64, 500.0),
            ],
        };
        assert!((bench.speedup() - 2.5).abs() < 1e-9);
        assert!((bench.columnar_speedup() - 2.0).abs() < 1e-9);
        assert_eq!(bench.best("missing"), 0.0);
    }
}
