//! The `latency-report` harness: renders per-hop latency percentile
//! tables from the span histograms of [`SpanMetricName`]'s shared
//! schema, split local vs. remote and tagged by routing epoch, plus a
//! per-wave before/after locality-latency delta.
//!
//! The demo mode runs a seeded Zipf chain on the live runtime in the
//! paper's worst-case configuration — a [`ShiftedRouter`] guaranteeing
//! every A → B hop changes server — then reconfigures the hop to the
//! aligned [`ModuloRouter`] mid-stream, so epoch 0 captures the
//! all-remote latency distribution and epoch 1 the all-local one. The
//! resulting report is the engine-level analogue of the paper's
//! Fig. 9–11 latency comparison.
//!
//! [`ShiftedRouter`]: streamloc_engine::ShiftedRouter
//! [`ModuloRouter`]: streamloc_engine::ModuloRouter

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use streamloc_engine::{
    CountOperator, Grouping, HistogramSnapshot, Key, LiveConfig, LiveReconfig,
    LiveRuntime, MetricsRegistry, ModuloRouter, Placement, PoId, ShiftedRouter, SourceRate,
    SpanMetricName, SpanPhase, SpanSampler, Topology, Tuple,
};
use streamloc_workloads::{SplitMix64, Zipf};

use crate::csv::CsvWriter;

/// The percentiles every latency table reports.
pub const PERCENTILES: [(&str, f64); 4] =
    [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

/// Upper-bound estimate of quantile `q` from a fixed-bucket histogram:
/// the bound of the bucket holding the `ceil(q * total)`-th
/// observation. Observations in the overflow bucket report twice the
/// last bound (the finite stand-in for `+Inf`). Returns 0 for an empty
/// histogram.
#[must_use]
pub fn percentile(s: &HistogramSnapshot, q: f64) -> u64 {
    if s.total == 0 {
        return 0;
    }
    let rank = ((q * s.total as f64).ceil() as u64).max(1);
    let mut cumulative = 0u64;
    for (i, &count) in s.counts.iter().enumerate() {
        cumulative += count;
        if cumulative >= rank {
            return match s.bounds.get(i) {
                Some(&bound) => bound,
                None => s.bounds.last().copied().unwrap_or(0).saturating_mul(2),
            };
        }
    }
    s.bounds.last().copied().unwrap_or(0).saturating_mul(2)
}

/// Renders nanoseconds at human scale (`640ns`, `1.2µs`, `34ms`, …).
#[must_use]
pub fn format_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// One span histogram with its parsed identity.
#[derive(Debug, Clone)]
pub struct SpanRow {
    /// Parsed identity (phase, operator, locality, epoch).
    pub name: SpanMetricName,
    /// The histogram contents at collection time.
    pub snap: HistogramSnapshot,
}

/// Every span histogram found in a registry, ready to render.
#[derive(Debug, Clone, Default)]
pub struct SpanReport {
    /// One row per span histogram, in registration order.
    pub rows: Vec<SpanRow>,
}

impl SpanReport {
    /// Collects every histogram whose name parses as a
    /// [`SpanMetricName`]; other metrics are ignored.
    #[must_use]
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        let rows = registry
            .histograms()
            .into_iter()
            .filter_map(|(name, snap)| {
                SpanMetricName::parse(&name).map(|name| SpanRow { name, snap })
            })
            .collect();
        Self { rows }
    }

    /// Epochs with at least one observation, ascending.
    #[must_use]
    pub fn epochs(&self) -> Vec<u64> {
        let set: BTreeSet<u64> = self
            .rows
            .iter()
            .filter(|r| r.snap.total > 0)
            .map(|r| r.name.epoch)
            .collect();
        set.into_iter().collect()
    }

    fn find(&self, phase: SpanPhase, po: usize, remote: Option<bool>, epoch: u64) -> Option<&SpanRow> {
        self.rows.iter().find(|r| {
            r.name.phase == phase
                && r.name.po == po
                && r.name.remote == remote
                && r.name.epoch == epoch
        })
    }

    /// Fraction of an epoch's hop observations that crossed a server
    /// boundary (from the queue histograms); `None` with no hops.
    #[must_use]
    pub fn remote_share(&self, epoch: u64) -> Option<f64> {
        let (mut remote, mut total) = (0u64, 0u64);
        for r in &self.rows {
            if r.name.phase == SpanPhase::Queue && r.name.epoch == epoch {
                total += r.snap.total;
                if r.name.remote == Some(true) {
                    remote += r.snap.total;
                }
            }
        }
        (total > 0).then(|| remote as f64 / total as f64)
    }

    /// Renders the per-epoch percentile tables and, for each pair of
    /// consecutive observed epochs, the locality-latency delta.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let epochs = self.epochs();
        let _ = writeln!(out, "Span latency report — {} epoch(s)", epochs.len());
        if epochs.is_empty() {
            let _ = writeln!(out, "  (no sampled spans recorded)");
            return out;
        }
        let pos: BTreeSet<usize> = self.rows.iter().map(|r| r.name.po).collect();
        for &epoch in &epochs {
            let _ = writeln!(out, "== epoch {epoch} ==");
            let _ = writeln!(
                out,
                "  {:<4} {:<6} {:<7} {:>9} {:>9} {:>9} {:>9} {:>9}",
                "po", "phase", "hop", "n", "p50", "p90", "p99", "p999"
            );
            for &po in &pos {
                for (phase, label) in [(SpanPhase::Queue, "queue"), (SpanPhase::Proc, "proc")] {
                    for (remote, hop) in [(Some(false), "local"), (Some(true), "remote")] {
                        if let Some(row) = self.find(phase, po, remote, epoch) {
                            if row.snap.total > 0 {
                                let _ = writeln!(out, "{}", table_line(po, label, hop, &row.snap));
                            }
                        }
                    }
                }
                if let Some(row) = self.find(SpanPhase::EndToEnd, po, None, epoch) {
                    if row.snap.total > 0 {
                        let _ = writeln!(out, "{}", table_line(po, "e2e", "-", &row.snap));
                    }
                }
            }
        }
        for pair in epochs.windows(2) {
            let (before, after) = (pair[0], pair[1]);
            let _ = writeln!(out, "-- locality-latency delta e{before} → e{after} --");
            if let (Some(b), Some(a)) = (self.remote_share(before), self.remote_share(after)) {
                let _ = writeln!(
                    out,
                    "  remote hop share: {:.1}% → {:.1}%",
                    b * 100.0,
                    a * 100.0
                );
            }
            for &po in &pos {
                let (Some(b), Some(a)) = (
                    self.find(SpanPhase::EndToEnd, po, None, before),
                    self.find(SpanPhase::EndToEnd, po, None, after),
                ) else {
                    continue;
                };
                if b.snap.total == 0 || a.snap.total == 0 {
                    continue;
                }
                for (label, q) in [("p50", 0.50), ("p99", 0.99)] {
                    let (pb, pa) = (percentile(&b.snap, q), percentile(&a.snap, q));
                    let change = if pb == 0 {
                        String::new()
                    } else {
                        format!(
                            "  ({:+.1}%)",
                            (pa as f64 - pb as f64) / pb as f64 * 100.0
                        )
                    };
                    let _ = writeln!(
                        out,
                        "  po{po} e2e {label}: {} → {}{change}",
                        format_ns(pb),
                        format_ns(pa)
                    );
                }
            }
        }
        out
    }

    /// Writes one CSV row per span histogram under `results/<name>.csv`
    /// and returns the path.
    pub fn write_csv(&self, name: &str) -> std::path::PathBuf {
        let mut csv = CsvWriter::create(
            name,
            &[
                "phase", "po", "hop", "epoch", "count", "sum_ns", "p50_ns", "p90_ns", "p99_ns",
                "p999_ns",
            ],
        );
        for r in &self.rows {
            let phase = match r.name.phase {
                SpanPhase::Queue => "queue",
                SpanPhase::Proc => "proc",
                SpanPhase::EndToEnd => "e2e",
            };
            let hop = match r.name.remote {
                Some(true) => "remote",
                Some(false) => "local",
                None => "-",
            };
            let mut row = vec![
                phase.to_owned(),
                r.name.po.to_string(),
                hop.to_owned(),
                r.name.epoch.to_string(),
                r.snap.total.to_string(),
                r.snap.sum.to_string(),
            ];
            row.extend(PERCENTILES.map(|(_, q)| percentile(&r.snap, q).to_string()));
            csv.row(&row);
        }
        csv.finish()
    }
}

fn table_line(po: usize, phase: &str, hop: &str, snap: &HistogramSnapshot) -> String {
    let mut line = format!(
        "  po{:<2} {:<6} {:<7} {:>9}",
        po, phase, hop, snap.total
    );
    for (_, q) in PERCENTILES {
        let _ = write!(line, " {:>9}", format_ns(percentile(snap, q)));
    }
    line
}

/// Outcome of the seeded live demo pipeline.
#[derive(Debug)]
pub struct LatencyDemo {
    /// The registry holding the span histograms (and the live runtime's
    /// hot-path counters).
    pub registry: Arc<MetricsRegistry>,
    /// Parsed span rows, ready to render.
    pub report: SpanReport,
}

/// Runs the seeded Zipf chain: worst-case shifted routing for the
/// first part of the stream, a mid-stream reconfiguration wave to
/// aligned modulo routing for the rest. Sampling is 1 key in
/// `sample_denominator`; the stream is deterministic, so the sampled
/// key set is too.
#[must_use]
pub fn run_live_demo(quick: bool, sample_denominator: u64) -> LatencyDemo {
    const SERVERS: usize = 3;
    const KEYS: usize = 1_000;
    let total: u64 = if quick { 45_000 } else { 120_000 };
    let per_source = total / SERVERS as u64;

    let mut b = Topology::builder();
    let s = b.source("S", SERVERS, SourceRate::PerSecond(40_000.0), move |i| {
        let zipf = Zipf::new(KEYS, 1.0);
        let mut rng = SplitMix64::new(0x1a7e_0000 ^ i as u64);
        let mut left = per_source;
        Box::new(move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            let k = zipf.sample(&mut rng) as u64;
            Some(Tuple::new([Key::new(k), Key::new(k)], 64))
        })
    });
    let a = b.stateful("A", SERVERS, CountOperator::factory());
    let bb = b.stateful("B", SERVERS, CountOperator::factory());
    b.connect(s, a, Grouping::fields_with(0, Arc::new(ModuloRouter)));
    // Worst case (paper §4.2): every A → B hop changes server.
    let hop = b.connect(a, bb, Grouping::fields_with(1, Arc::new(ShiftedRouter::new(1))));
    let topo = b.build().expect("valid chain");
    let placement = Placement::aligned(&topo, SERVERS);

    let registry = Arc::new(MetricsRegistry::new());
    let config = LiveConfig {
        batch_size: 64,
        columnar: true,
        metrics: Some(Arc::clone(&registry)),
        span_sampler: Some(SpanSampler::new(0xC0FFEE, sample_denominator)),
        ..LiveConfig::default()
    };
    let rt = LiveRuntime::start(topo, placement, SERVERS, config);

    // Let epoch 0 accumulate all-remote spans, then swap the hop to
    // the aligned router (epoch 1: all-local).
    std::thread::sleep(Duration::from_millis(150));
    let migrations: Vec<(PoId, Key, usize, usize)> = (0..KEYS as u64)
        .map(|k| {
            let old = ((k + 1) % SERVERS as u64) as usize;
            let new = (k % SERVERS as u64) as usize;
            (bb, Key::new(k), old, new)
        })
        .filter(|&(_, _, old, new)| old != new)
        .collect();
    rt.reconfigure(LiveReconfig {
        routers: vec![(a, hop, Arc::new(ModuloRouter))],
        migrations,
    });
    let _ = rt.join();

    let report = SpanReport::from_registry(&registry);
    LatencyDemo { registry, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamloc_engine::{log2_bounds, SpanRecorder};

    #[test]
    fn percentile_walks_cumulative_buckets() {
        let snap = HistogramSnapshot {
            bounds: vec![1, 2, 4, 8],
            counts: vec![0, 50, 40, 9, 1], // 100 obs, 1 overflow
            sum: 0,
            total: 100,
        };
        assert_eq!(percentile(&snap, 0.50), 2);
        assert_eq!(percentile(&snap, 0.90), 4);
        assert_eq!(percentile(&snap, 0.99), 8);
        assert_eq!(percentile(&snap, 0.999), 16); // overflow → 2 * last bound
        let empty = HistogramSnapshot {
            bounds: vec![1],
            counts: vec![0, 0],
            sum: 0,
            total: 0,
        };
        assert_eq!(percentile(&empty, 0.5), 0);
    }

    #[test]
    fn formats_ns_at_human_scale() {
        assert_eq!(format_ns(640), "640ns");
        assert_eq!(format_ns(1_200), "1.2µs");
        assert_eq!(format_ns(34_000_000), "34.0ms");
        assert_eq!(format_ns(2_500_000_000), "2.50s");
    }

    #[test]
    fn report_renders_tables_and_delta() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut rec = SpanRecorder::new(Some(Arc::clone(&reg)));
        // Epoch 0: remote hops, slow end-to-end. Epoch 1: local, fast.
        for _ in 0..100 {
            rec.record_hop(1, 0, true, 4_000, 1_000);
            rec.record_end(2, 0, 1_000_000);
            rec.record_hop(1, 1, false, 500, 1_000);
            rec.record_end(2, 1, 100_000);
        }
        let report = SpanReport::from_registry(&reg);
        assert_eq!(report.epochs(), vec![0, 1]);
        assert!((report.remote_share(0).unwrap() - 1.0).abs() < 1e-9);
        assert!((report.remote_share(1).unwrap() - 0.0).abs() < 1e-9);
        let text = report.render();
        assert!(text.contains("== epoch 0 =="), "{text}");
        assert!(text.contains("== epoch 1 =="), "{text}");
        assert!(text.contains("remote"), "{text}");
        assert!(text.contains("locality-latency delta e0 → e1"), "{text}");
        assert!(text.contains("remote hop share: 100.0% → 0.0%"), "{text}");
        assert!(text.contains("po2 e2e p50"), "{text}");
    }

    #[test]
    fn non_span_histograms_are_ignored() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("other_latency", "", &log2_bounds(4));
        h.observe(3);
        let report = SpanReport::from_registry(&reg);
        assert!(report.rows.is_empty());
        assert!(report.render().contains("no sampled spans"));
    }
}
