//! The synthetic-workload runner behind Figs. 7–9.

use std::sync::Arc;

use streamloc_core::RoutingTable;
use streamloc_engine::{
    ClusterSpec, CountOperator, Grouping, Key, KeyRouter, ModuloRouter, Placement, SimConfig,
    Simulation, SourceRate, Topology,
};
use streamloc_workloads::SyntheticWorkload;

/// The three fields-grouping implementations compared in §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingStrategy {
    /// Explicit tables: tuple `(i, j)` → instance `i`, then `j`
    /// (the tables the optimizer would generate for this workload).
    LocalityAware,
    /// Default hash-based fields grouping. Storm's integer hash
    /// spreads the n keys evenly over the n instances (Java's Integer
    /// hash is the identity), but the alignment of each assignment
    /// with the data placement and with the other operator is
    /// arbitrary — modeled by the statistically representative
    /// permutations with one alignment point per hop, matching the
    /// expected n · 1/n = 1 co-locations of a random assignment.
    HashBased,
    /// Adversarial tables with zero alignment anywhere: every
    /// correlated tuple crosses the network on both hops (the paper's
    /// lower bound).
    WorstCase,
}

impl RoutingStrategy {
    /// Short label used in tables and CSV files.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RoutingStrategy::LocalityAware => "locality-aware",
            RoutingStrategy::HashBased => "hash-based",
            RoutingStrategy::WorstCase => "worst-case",
        }
    }

    /// All three strategies, in the paper's plotting order.
    #[must_use]
    pub fn all() -> [RoutingStrategy; 3] {
        [
            RoutingStrategy::LocalityAware,
            RoutingStrategy::HashBased,
            RoutingStrategy::WorstCase,
        ]
    }

    /// The `(first hop, second hop)` routers this strategy installs
    /// for a deployment of `parallelism` instances.
    #[must_use]
    pub fn routers(self, parallelism: usize) -> (Arc<dyn KeyRouter>, Arc<dyn KeyRouter>) {
        match self {
            RoutingStrategy::LocalityAware => (Arc::new(ModuloRouter), Arc::new(ModuloRouter)),
            RoutingStrategy::HashBased => {
                let (h1, h2) = hash_tables(parallelism);
                (Arc::new(h1), Arc::new(h2))
            }
            RoutingStrategy::WorstCase => {
                let (w1, w2) = worst_tables(parallelism);
                (Arc::new(w1), Arc::new(w2))
            }
        }
    }
}

/// Builds a routing table from an explicit permutation of `0..n`.
fn table_of(n: usize, perm: impl Fn(u64) -> u32) -> RoutingTable {
    RoutingTable::from_assignments((0..n as u64).map(|k| (Key::new(k), perm(k))))
}

/// The rotation with one fixed point: `0 → 0`, cycle on the rest.
fn one_fixed_rotation(n: usize, k: u64) -> u32 {
    if n <= 2 {
        // n = 2 cannot have exactly one fixed point; the swap (zero
        // fixed points) is the conventional degenerate choice.
        ((n as u64 - 1) - k) as u32
    } else if k == 0 {
        0
    } else {
        (1 + (k % (n as u64 - 1))) as u32
    }
}

/// Hash-based model: hop 1 uses the one-fixed-point rotation `R`
/// (source `s` emits key `s`, so exactly one source is aligned with
/// its first-hop instance — the expected count under random hashing);
/// hop 2 uses `R∘R`, which agrees with `R` on exactly one key, so one
/// in `n` correlated pairs stays local.
fn hash_tables(n: usize) -> (RoutingTable, RoutingTable) {
    let h1 = table_of(n, |k| one_fixed_rotation(n, k));
    let h2 = table_of(n, |k| {
        one_fixed_rotation(n, u64::from(one_fixed_rotation(n, k)))
    });
    (h1, h2)
}

/// Worst-case model: hop 1 rotates every key off its source's server
/// and hop 2 rotates one step further, so no correlated tuple is ever
/// local on either hop.
fn worst_tables(n: usize) -> (RoutingTable, RoutingTable) {
    let w1 = table_of(n, |k| ((k + 1) % n as u64) as u32);
    let w2 = table_of(n, |k| ((k + 2) % n as u64) as u32);
    (w1, w2)
}

/// Measured outcome of one synthetic run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticRun {
    /// Steady-state sink throughput, tuples/second.
    pub throughput: f64,
    /// Achieved locality of the A→B hop.
    pub locality: f64,
}

/// Runs the §4.1 evaluation topology (source → two stateful counters,
/// instance `i` of each on server `i`) over the synthetic workload and
/// returns steady-state throughput and hop locality.
///
/// `windows` simulation windows of 100 ms are executed; the first
/// third is discarded as warm-up.
///
/// # Panics
///
/// Panics on invalid workload parameters (see
/// [`SyntheticWorkload::new`]).
#[must_use]
pub fn run_synthetic(
    parallelism: usize,
    locality: f64,
    padding: u32,
    strategy: RoutingStrategy,
    windows: usize,
) -> SyntheticRun {
    let workload = SyntheticWorkload::new(parallelism, locality, padding, 0xbe9c);
    let (router_sa, router_ab) = strategy.routers(parallelism);

    let mut builder = Topology::builder();
    let s = builder.source("S", parallelism, SourceRate::Saturate, move |i| {
        workload.source(i)
    });
    let a = builder.stateful("A", parallelism, CountOperator::factory());
    let b = builder.stateful("B", parallelism, CountOperator::factory());
    builder.connect(s, a, Grouping::fields_with(0, router_sa));
    let edge_ab = builder.connect(a, b, Grouping::fields_with(1, router_ab));
    let topology = builder.build().expect("valid chain");

    let placement = Placement::aligned(&topology, parallelism);
    let mut sim = Simulation::new(
        topology,
        ClusterSpec::lan_10g(parallelism),
        placement,
        SimConfig::default(),
    );
    sim.run(windows);
    let skip = windows / 3;
    SyntheticRun {
        throughput: sim.metrics().avg_throughput(skip),
        locality: sim.metrics().edge_locality(edge_ab, skip),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_aware_beats_hash_beats_worst_case() {
        let n = 4;
        let la = run_synthetic(n, 0.8, 8 * 1024, RoutingStrategy::LocalityAware, 20);
        let hash = run_synthetic(n, 0.8, 8 * 1024, RoutingStrategy::HashBased, 20);
        let worst = run_synthetic(n, 0.8, 8 * 1024, RoutingStrategy::WorstCase, 20);
        assert!(
            la.throughput > hash.throughput,
            "locality-aware {} <= hash {}",
            la.throughput,
            hash.throughput
        );
        assert!(
            hash.throughput >= worst.throughput * 0.9,
            "hash {} well below worst {}",
            hash.throughput,
            worst.throughput
        );
        assert!(la.locality > 0.75);
        // Worst-case: correlated tuples (80%) always cross; the
        // uncorrelated rest lands locally 1/(n-1) of the time.
        assert!(worst.locality < 0.1, "worst locality {}", worst.locality);
    }

    #[test]
    fn full_locality_elides_padding_effect() {
        // With 100% locality and locality-aware routing, everything is
        // in-memory: padding must not matter (Fig. 7d–f).
        let small = run_synthetic(3, 1.0, 0, RoutingStrategy::LocalityAware, 16);
        let large = run_synthetic(3, 1.0, 20 * 1024, RoutingStrategy::LocalityAware, 16);
        assert_eq!(small.locality, 1.0);
        assert!(
            (small.throughput - large.throughput).abs() / small.throughput < 0.05,
            "padding changed fully-local throughput: {} vs {}",
            small.throughput,
            large.throughput
        );
    }
}
