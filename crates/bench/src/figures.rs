//! One driver function per paper figure. Each prints the series the
//! paper plots and writes `results/<figure>.csv`; `EXPERIMENTS.md`
//! records the comparison against the published curves.

use std::path::PathBuf;

use streamloc_core::{Manager, ManagerConfig, PartitionerKind, ReconfigPolicy};
use streamloc_engine::{
    ClusterSpec, CountOperator, Grouping, Placement, SimConfig, Simulation, SourceRate, Topology,
};
use streamloc_workloads::{loc_key, tag_key, TwitterConfig, TwitterWorkload};

use crate::csv::{f1, f3, CsvWriter};
use crate::flickr_runs::run_flickr;
use crate::replay::{replay_locality, tables_from_batch, weekly_imbalance};
use crate::synthetic_runs::{run_synthetic, RoutingStrategy};

/// Simulation windows per synthetic measurement (100 ms each).
fn synthetic_windows(quick: bool) -> usize {
    if quick {
        15
    } else {
        40
    }
}

/// Fig. 7: throughput vs parallelism for locality ∈ {60, 100}% and
/// padding ∈ {0, 8 kB, 20 kB}, three routing strategies.
pub fn fig07(quick: bool) -> PathBuf {
    let mut csv = CsvWriter::create(
        "fig07",
        &["locality", "padding", "parallelism", "strategy", "ktuples_per_s"],
    );
    let windows = synthetic_windows(quick);
    println!("Fig. 7 — throughput (Ktuples/s) vs parallelism");
    for &locality in &[0.6, 1.0] {
        for &padding in &[0u32, 8 * 1024, 20 * 1024] {
            println!("\n  locality={:.0}% padding={}B", locality * 100.0, padding);
            println!("  par   locality-aware   hash-based   worst-case");
            for parallelism in 1..=6usize {
                let mut cells = Vec::new();
                for strategy in RoutingStrategy::all() {
                    // On one server every strategy is all-local; the
                    // non-local synthetic draw needs n >= 2.
                    let eff_locality = if parallelism == 1 { 1.0 } else { locality };
                    let run =
                        run_synthetic(parallelism, eff_locality, padding, strategy, windows);
                    csv.row(&[
                        f1(locality * 100.0),
                        padding.to_string(),
                        parallelism.to_string(),
                        strategy.label().to_owned(),
                        f1(run.throughput / 1e3),
                    ]);
                    cells.push(run.throughput / 1e3);
                }
                println!(
                    "  {parallelism:>3}   {:>14.1}   {:>10.1}   {:>10.1}",
                    cells[0], cells[1], cells[2]
                );
            }
        }
    }
    csv.finish()
}

/// Fig. 8: throughput vs data locality (60–100%), padding 12 kB,
/// parallelism ∈ {2, 4, 6}.
pub fn fig08(quick: bool) -> PathBuf {
    let mut csv = CsvWriter::create(
        "fig08",
        &["parallelism", "locality", "strategy", "ktuples_per_s"],
    );
    let windows = synthetic_windows(quick);
    let padding = 12 * 1024;
    let step = if quick { 20 } else { 5 };
    println!("Fig. 8 — throughput (Ktuples/s) vs locality, padding 12 kB");
    for &parallelism in &[2usize, 4, 6] {
        println!("\n  parallelism={parallelism}");
        println!("  loc%   locality-aware   hash-based   worst-case");
        for locality_pct in (60..=100).step_by(step) {
            let locality = locality_pct as f64 / 100.0;
            let mut cells = Vec::new();
            for strategy in RoutingStrategy::all() {
                let run = run_synthetic(parallelism, locality, padding, strategy, windows);
                csv.row(&[
                    parallelism.to_string(),
                    locality_pct.to_string(),
                    strategy.label().to_owned(),
                    f1(run.throughput / 1e3),
                ]);
                cells.push(run.throughput / 1e3);
            }
            println!(
                "  {locality_pct:>4}   {:>14.1}   {:>10.1}   {:>10.1}",
                cells[0], cells[1], cells[2]
            );
        }
    }
    csv.finish()
}

/// Fig. 9: throughput vs padding (0–5 kB), locality 80%, parallelism
/// ∈ {2, 4, 6}.
pub fn fig09(quick: bool) -> PathBuf {
    let mut csv = CsvWriter::create(
        "fig09",
        &["parallelism", "padding", "strategy", "ktuples_per_s"],
    );
    let windows = synthetic_windows(quick);
    let locality = 0.8;
    let step = if quick { 2500 } else { 1000 };
    println!("Fig. 9 — throughput (Ktuples/s) vs padding, locality 80%");
    for &parallelism in &[2usize, 4, 6] {
        println!("\n  parallelism={parallelism}");
        println!("  padding   locality-aware   hash-based   worst-case");
        for padding in (0..=5000u32).step_by(step) {
            let mut cells = Vec::new();
            for strategy in RoutingStrategy::all() {
                let run = run_synthetic(parallelism, locality, padding, strategy, windows);
                csv.row(&[
                    parallelism.to_string(),
                    padding.to_string(),
                    strategy.label().to_owned(),
                    f1(run.throughput / 1e3),
                ]);
                cells.push(run.throughput / 1e3);
            }
            println!(
                "  {padding:>7}   {:>14.1}   {:>10.1}   {:>10.1}",
                cells[0], cells[1], cells[2]
            );
        }
    }
    csv.finish()
}

/// Fig. 10: daily frequency of one flash-event hashtag in three
/// locations, showing the transient correlations that motivate online
/// reconfiguration.
pub fn fig10(_quick: bool) -> PathBuf {
    let mut csv = CsvWriter::create("fig10", &["day", "location", "frequency"]);
    let mut workload = TwitterWorkload::new(TwitterConfig::default());

    // Pick a hashtag that flashes in three different locations in
    // three different weeks (the paper's #nevertrump moves between
    // Florida, Virginia and Texas within March 2016).
    let mut chosen: Option<(usize, Vec<(usize, usize)>)> = None; // tag, [(week, loc)]
    'outer: for tag in 0..100 {
        let mut spikes = Vec::new();
        for week in 1..10 {
            for ev in workload.events(week) {
                if ev.hashtag == tag {
                    spikes.push((week, ev.location));
                }
            }
        }
        let mut locs: Vec<usize> = spikes.iter().map(|&(_, l)| l).collect();
        locs.dedup();
        if spikes.len() >= 3 && locs.len() >= 3 {
            chosen = Some((tag, spikes));
            break 'outer;
        }
    }
    let (tag, spikes) = chosen.unwrap_or((0, vec![(1, 0), (3, 1), (5, 2)]));
    let locations: Vec<usize> = {
        let mut l: Vec<usize> = spikes.iter().map(|&(_, loc)| loc).collect();
        l.dedup();
        l.truncate(3);
        l
    };
    let last_week = spikes.iter().map(|&(w, _)| w).max().unwrap_or(5);

    println!("Fig. 10 — daily occurrences of #tag{tag} per location");
    println!("  day   {}", locations
        .iter()
        .map(|l| format!("loc{l:<6}"))
        .collect::<Vec<_>>()
        .join(" "));
    let tag_k = tag_key(tag);
    for day in 0..(last_week + 2) * 7 {
        let batch = workload.day(day);
        let mut row = vec![day.to_string()];
        let mut cells = Vec::new();
        for &loc in &locations {
            let loc_k = loc_key(loc);
            let count = batch
                .iter()
                .filter(|&&(l, t)| l == loc_k && t == tag_k)
                .count();
            csv.row(&[day.to_string(), loc.to_string(), count.to_string()]);
            cells.push(count);
        }
        row.extend(cells.iter().map(ToString::to_string));
        if cells.iter().any(|&c| c > 0) {
            println!(
                "  {day:>3}   {}",
                cells
                    .iter()
                    .map(|c| format!("{c:<9}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
    }
    csv.finish()
}

/// Fig. 11: locality (a) and load balance (b) over 25 weeks for
/// online, offline and hash routing at parallelism 6.
pub fn fig11(quick: bool) -> PathBuf {
    let mut csv = CsvWriter::create(
        "fig11",
        &[
            "week",
            "hash_locality",
            "offline_locality",
            "online_locality",
            "hash_balance",
            "offline_balance",
            "online_balance",
        ],
    );
    let servers = 6;
    let weeks = if quick { 8 } else { 25 };
    let mut workload = TwitterWorkload::new(TwitterConfig::default());
    let mut offline = None;
    let mut online = None;
    println!("Fig. 11 — locality / load balance over {weeks} weeks, parallelism 6");
    println!("  week   hash     offline   online   | balance: hash  offline  online");
    for week in 0..weeks {
        let batch = workload.week(week);
        let loc_hash = replay_locality(&batch, None, servers);
        let loc_off = replay_locality(&batch, offline.as_ref(), servers);
        let loc_on = replay_locality(&batch, online.as_ref(), servers);
        let bal_hash = weekly_imbalance(&batch, None, servers);
        let bal_off = weekly_imbalance(&batch, offline.as_ref(), servers);
        let bal_on = weekly_imbalance(&batch, online.as_ref(), servers);
        println!(
            "  {week:>4}   {:>5.1}%   {:>6.1}%   {:>5.1}%  |          {:>5.3}  {:>6.3}  {:>6.3}",
            loc_hash * 100.0,
            loc_off * 100.0,
            loc_on * 100.0,
            bal_hash,
            bal_off,
            bal_on
        );
        csv.row(&[
            week.to_string(),
            f3(loc_hash),
            f3(loc_off),
            f3(loc_on),
            f3(bal_hash),
            f3(bal_off),
            f3(bal_on),
        ]);
        if week == 0 {
            offline = Some(tables_from_batch(&batch, servers, 100_000, usize::MAX, 1.03));
        }
        online = Some(tables_from_batch(&batch, servers, 100_000, usize::MAX, 1.03));
    }
    csv.finish()
}

/// Fig. 12: locality achieved vs number of pair edges used for
/// partitioning, for parallelism 2–6.
pub fn fig12(quick: bool) -> PathBuf {
    let mut csv = CsvWriter::create("fig12", &["parallelism", "edges", "locality"]);
    let mut workload = TwitterWorkload::new(TwitterConfig::default());
    // Train on one week, evaluate on the following week.
    let train = workload.week(2);
    let eval = workload.week(3);
    let edge_counts: &[usize] = if quick {
        &[10, 1_000, 100_000]
    } else {
        &[10, 30, 100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000]
    };
    println!("Fig. 12 — locality vs edges considered (train week 2, eval week 3)");
    print!("  edges    ");
    for p in 2..=6 {
        print!("  n={p}   ");
    }
    println!();
    for &edges in edge_counts {
        print!("  {edges:>8}");
        for parallelism in 2..=6usize {
            let tables = tables_from_batch(&train, parallelism, 1_000_000, edges, 1.03);
            let locality = replay_locality(&eval, Some(&tables), parallelism);
            csv.row(&[parallelism.to_string(), edges.to_string(), f3(locality)]);
            print!("  {:>5.1}%", locality * 100.0);
        }
        println!();
    }
    csv.finish()
}

/// Fig. 13: throughput timelines with/without reconfiguration for
/// network ∈ {10, 1} Gb/s and padding ∈ {4, 8, 12} kB, parallelism 6.
pub fn fig13(quick: bool) -> PathBuf {
    let mut csv = CsvWriter::create(
        "fig13",
        &["network_gbps", "padding", "second", "without", "with"],
    );
    let servers = 6;
    let seconds = if quick { 12 } else { 30 };
    let period = seconds / 3;
    println!("Fig. 13 — throughput timeline, reconfiguration every {period}s (1 s ↔ 1 paper-minute)");
    for &gbps in &[10.0, 1.0] {
        for &padding_kb in &[4u32, 8, 12] {
            let padding = padding_kb * 1024;
            let without = run_flickr(servers, gbps, padding, None, seconds);
            let with = run_flickr(servers, gbps, padding, Some(period), seconds);
            println!("\n  network={gbps}Gb/s padding={padding_kb}kB");
            println!("  t(s)   w/o reconf   w/ reconf  (Ktuples/s)");
            let wps = 10;
            for second in 0..seconds {
                let avg = |series: &[f64]| {
                    series[second * wps..(second + 1) * wps].iter().sum::<f64>() / wps as f64
                };
                let w0 = avg(&without.timeline) / 1e3;
                let w1 = avg(&with.timeline) / 1e3;
                csv.row(&[
                    gbps.to_string(),
                    padding.to_string(),
                    second.to_string(),
                    f1(w0),
                    f1(w1),
                ]);
                if second % 2 == 0 {
                    println!("  {second:>4}   {w0:>10.1}   {w1:>9.1}");
                }
            }
            println!(
                "  steady: {:.1} → {:.1} Ktuples/s (×{:.2})",
                without.steady_throughput / 1e3,
                with.steady_throughput / 1e3,
                with.steady_throughput / without.steady_throughput
            );
        }
    }
    csv.finish()
}

/// Fig. 14: average throughput vs parallelism (2–6), padding 4 kB,
/// 1 Gb/s network, with vs without reconfiguration.
pub fn fig14(quick: bool) -> PathBuf {
    let mut csv = CsvWriter::create(
        "fig14",
        &["parallelism", "without_ktuples", "with_ktuples"],
    );
    let seconds = if quick { 9 } else { 21 };
    let period = seconds / 3;
    println!("Fig. 14 — avg throughput vs parallelism, 4 kB tuples, 1 Gb/s");
    println!("  par   w/o reconf   w/ reconf   (Ktuples/s)");
    for parallelism in 2..=6usize {
        let without = run_flickr(parallelism, 1.0, 4 * 1024, None, seconds);
        let with = run_flickr(parallelism, 1.0, 4 * 1024, Some(period), seconds);
        csv.row(&[
            parallelism.to_string(),
            f1(without.steady_throughput / 1e3),
            f1(with.steady_throughput / 1e3),
        ]);
        println!(
            "  {parallelism:>3}   {:>10.1}   {:>9.1}",
            without.steady_throughput / 1e3,
            with.steady_throughput / 1e3
        );
    }
    csv.finish()
}

/// Ablation: partitioner quality (multilevel vs greedy vs hash) on
/// live correlated traffic.
pub fn ablation_partitioner(quick: bool) -> PathBuf {
    let mut csv = CsvWriter::create(
        "ablation_partitioner",
        &["partitioner", "expected_locality", "achieved_locality", "imbalance"],
    );
    let servers = 6;
    let windows = if quick { 20 } else { 50 };
    println!("Ablation — partitioner choice (Twitter-like live run, {servers} servers)");
    println!("  partitioner   expected   achieved   imbalance");
    for (kind, label) in [
        (PartitionerKind::Multilevel, "multilevel"),
        (PartitionerKind::Greedy, "greedy"),
        (PartitionerKind::Hash, "hash"),
    ] {
        let workload = TwitterWorkload::new(TwitterConfig {
            tuples_per_day: 4_000,
            ..TwitterConfig::default()
        });
        let mut builder = Topology::builder();
        let w = workload.clone();
        let s = builder.source("S", servers, SourceRate::Saturate, move |i| {
            w.clone().source(i, servers, 512)
        });
        let a = builder.stateful("A", servers, CountOperator::factory());
        let b = builder.stateful("B", servers, CountOperator::factory());
        builder.connect(s, a, Grouping::fields(0));
        let hop = builder.connect(a, b, Grouping::fields(1));
        let topology = builder.build().expect("valid chain");
        let placement = Placement::aligned(&topology, servers);
        let mut sim = Simulation::new(
            topology,
            ClusterSpec::lan_10g(servers),
            placement,
            SimConfig::default(),
        );
        let mut manager = Manager::attach(
            &mut sim,
            ManagerConfig {
                partitioner: kind,
                ..ManagerConfig::default()
            },
        );
        sim.run(windows);
        let summary = manager.reconfigure(&mut sim).expect("no wave running");
        sim.run(windows);
        let achieved = sim.metrics().edge_locality(hop, windows + windows / 3);
        let b_pois = sim.poi_ids(sim.topology().po_by_name("B").unwrap());
        let imbalance = sim.metrics().load_imbalance(&b_pois, windows + windows / 3);
        csv.row(&[
            label.to_owned(),
            f3(summary.expected_locality),
            f3(achieved),
            f3(imbalance),
        ]);
        println!(
            "  {label:<11}   {:>7.1}%   {:>7.1}%   {:>9.3}",
            summary.expected_locality * 100.0,
            achieved * 100.0,
            imbalance
        );
    }
    csv.finish()
}

/// Ablation: reconfiguration period vs achieved locality on the
/// drifting workload (replay, 20 weeks).
pub fn ablation_period(quick: bool) -> PathBuf {
    let mut csv = CsvWriter::create("ablation_period", &["period_weeks", "avg_locality"]);
    let servers = 6;
    let weeks = if quick { 10 } else { 20 };
    println!("Ablation — reconfiguration period (drifting workload, {weeks} weeks)");
    println!("  period(w)   avg locality");
    for period in [1usize, 2, 4, 8] {
        let mut workload = TwitterWorkload::new(TwitterConfig::default());
        let mut tables = None;
        let mut sum = 0.0;
        let mut measured = 0usize;
        for week in 0..weeks {
            let batch = workload.week(week);
            if week >= 1 {
                sum += replay_locality(&batch, tables.as_ref(), servers);
                measured += 1;
            }
            if week % period == 0 {
                tables = Some(tables_from_batch(&batch, servers, 100_000, usize::MAX, 1.03));
            }
        }
        let avg = sum / measured as f64;
        csv.row(&[period.to_string(), f3(avg)]);
        println!("  {period:>9}   {:>10.1}%", avg * 100.0);
    }
    csv.finish()
}

/// Ablation: imbalance bound α vs locality/balance trade-off.
pub fn ablation_alpha(_quick: bool) -> PathBuf {
    let mut csv = CsvWriter::create(
        "ablation_alpha",
        &["alpha", "expected_locality", "next_week_locality", "next_week_imbalance"],
    );
    let servers = 6;
    let mut workload = TwitterWorkload::new(TwitterConfig::default());
    let train = workload.week(1);
    let eval = workload.week(2);
    println!("Ablation — imbalance bound α (train week 1, eval week 2)");
    println!("  alpha   expected   next-week locality   next-week imbalance");
    for &alpha in &[1.0, 1.03, 1.1, 1.3, 1.5, 2.0] {
        let tables = tables_from_batch(&train, servers, 100_000, usize::MAX, alpha);
        let locality = replay_locality(&eval, Some(&tables), servers);
        let imbalance = weekly_imbalance(&eval, Some(&tables), servers);
        csv.row(&[
            alpha.to_string(),
            f3(tables.expected_locality),
            f3(locality),
            f3(imbalance),
        ]);
        println!(
            "  {alpha:>5}   {:>7.1}%   {:>18.1}%   {:>19.3}",
            tables.expected_locality * 100.0,
            locality * 100.0,
            imbalance
        );
    }
    csv.finish()
}

/// Ablation: flat vs rack-aware partitioning on a hierarchical
/// cluster with a constrained uplink (paper §6 future work).
pub fn ablation_racks(quick: bool) -> PathBuf {
    use streamloc_workloads::{FlickrConfig, FlickrWorkload};
    let mut csv = CsvWriter::create(
        "ablation_racks",
        &[
            "mode",
            "ktuples_per_s",
            "server_locality",
            "rack_locality",
        ],
    );
    let servers = 6;
    let windows = if quick { 60 } else { 150 };
    println!("Ablation — rack-aware routing (2 racks × 3 servers, 1.2 Gb/s uplinks)");
    println!("  mode         throughput   server-locality   rack-locality");
    for (rack_aware, label) in [(false, "flat"), (true, "rack-aware")] {
        // Few, very heavy countries: each correlation group exceeds
        // the per-server balance cap, so the partitioner *must* split
        // groups across servers — the case rack-awareness exists for.
        let workload = FlickrWorkload::new(FlickrConfig {
            padding: 2 * 1024,
            countries: 5,
            tags: 20_000,
            zipf_s: 0.6,
            correlation: 0.95,
            ..FlickrConfig::default()
        });
        let mut builder = Topology::builder();
        let s = builder.source("photos", servers, SourceRate::Saturate, move |i| {
            workload.source(i)
        });
        let a = builder.stateful("by_tag", servers, CountOperator::factory());
        let b = builder.stateful("by_country", servers, CountOperator::factory());
        builder.connect(s, a, Grouping::fields(0));
        let hop = builder.connect(a, b, Grouping::fields(1));
        let topology = builder.build().expect("valid chain");
        let cluster = ClusterSpec::lan_10g(servers).with_racks(2, 1.2e9);
        let placement = Placement::aligned(&topology, servers);
        let mut sim = Simulation::new(topology, cluster, placement, SimConfig::default());
        let mut manager = Manager::attach(
            &mut sim,
            ManagerConfig {
                rack_aware,
                ..ManagerConfig::default()
            },
        );
        sim.run(windows / 3);
        manager.reconfigure(&mut sim).expect("no wave running");
        sim.run(windows);
        let skip = windows / 3 + 20;
        let tput = sim.metrics().avg_throughput(skip);
        let server_loc = sim.metrics().edge_locality(hop, skip);
        let rack_loc = sim.metrics().edge_rack_locality(hop, skip);
        csv.row(&[
            label.to_owned(),
            f1(tput / 1e3),
            f3(server_loc),
            f3(rack_loc),
        ]);
        println!(
            "  {label:<10}   {:>8.1}k    {:>13.1}%   {:>12.1}%",
            tput / 1e3,
            server_loc * 100.0,
            rack_loc * 100.0
        );
    }
    csv.finish()
}

/// Ablation: unconditional periodic reconfiguration vs the §6 impact
/// estimator gating it on predicted locality gain, on both a drifting
/// and a stable workload. On the stable stream the estimator should
/// deploy once and then stop paying migration costs.
pub fn ablation_estimator(quick: bool) -> PathBuf {
    use streamloc_workloads::{FlickrConfig, FlickrWorkload};
    let mut csv = CsvWriter::create(
        "ablation_estimator",
        &["workload", "policy", "reconfigurations", "migrations", "avg_locality"],
    );
    let servers = 6;
    let periods = if quick { 8 } else { 16 };
    let windows_per_period = 30;
    println!("Ablation — reconfigure always vs only-when-beneficial (gain ≥ 5%)");
    println!("  workload   policy       reconfigs   migrations   avg locality");
    for workload_kind in ["drifting", "stable"] {
        for (threshold, label) in [(None, "always"), (Some(0.05), "estimator")] {
            let mut builder = Topology::builder();
            let src_name = if workload_kind == "drifting" {
                "tweets"
            } else {
                "photos"
            };
            let s = if workload_kind == "drifting" {
                let workload = TwitterWorkload::new(TwitterConfig {
                    locations: 100,
                    hashtags: 5_000,
                    tuples_per_day: 4_000,
                    fresh_per_week: 100,
                    ..TwitterConfig::default()
                });
                builder.source(src_name, servers, SourceRate::Saturate, move |i| {
                    workload.clone().source(i, servers, 512)
                })
            } else {
                let workload = FlickrWorkload::new(FlickrConfig {
                    padding: 512,
                    ..FlickrConfig::default()
                });
                builder.source(src_name, servers, SourceRate::Saturate, move |i| {
                    workload.source(i)
                })
            };
            let a = builder.stateful("first", servers, CountOperator::factory());
            let b = builder.stateful("second", servers, CountOperator::factory());
            builder.connect(s, a, Grouping::fields(0));
            let hop = builder.connect(a, b, Grouping::fields(1));
            let topology = builder.build().expect("valid chain");
            let placement = Placement::aligned(&topology, servers);
            let mut sim = Simulation::new(
                topology,
                ClusterSpec::lan_10g(servers),
                placement,
                SimConfig::default(),
            );
            let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
            let mut reconfigs = 0usize;
            let mut migrations = 0usize;
            let mut locality_sum = 0.0;
            for period in 0..periods {
                let skip = sim.metrics().windows().len();
                sim.run(windows_per_period);
                if period >= 1 {
                    locality_sum += sim.metrics().edge_locality(hop, skip + 5);
                }
                let outcome = match threshold {
                    None => manager.reconfigure(&mut sim).ok(),
                    Some(min_gain) => manager
                        .reconfigure_if_beneficial(
                            &mut sim,
                            ReconfigPolicy {
                                min_locality_gain: min_gain,
                                ..ReconfigPolicy::default()
                            },
                        )
                        .ok()
                        .flatten(),
                };
                if let Some(summary) = outcome {
                    reconfigs += 1;
                    migrations += summary.migrations;
                }
            }
            let avg_locality = locality_sum / (periods - 1) as f64;
            csv.row(&[
                workload_kind.to_owned(),
                label.to_owned(),
                reconfigs.to_string(),
                migrations.to_string(),
                f3(avg_locality),
            ]);
            println!(
                "  {workload_kind:<8}   {label:<10}   {reconfigs:>8}   {migrations:>10}   {:>11.1}%",
                avg_locality * 100.0
            );
        }
    }
    csv.finish()
}

/// Ablation: load balance under key skew — hash vs partial key
/// grouping vs a DKG-style heavy-hitter table vs the manager's tables
/// (paper §5.2 baselines).
pub fn ablation_balance(quick: bool) -> PathBuf {
    use std::sync::Arc;
    use streamloc_core::RoutingTable;
    use streamloc_engine::{HashRouter, Key, KeyRouter, PartialKeyRouter, Tuple};
    use streamloc_workloads::Zipf;

    let mut csv = CsvWriter::create(
        "ablation_balance",
        &["policy", "imbalance", "ktuples_per_s"],
    );
    let servers = 6;
    let keys = 10_000usize;
    let windows = if quick { 40 } else { 100 };

    // DKG-style table: the exact heavy hitters are explicitly packed
    // onto the least-loaded instances; the tail stays hashed.
    let zipf = Zipf::new(keys, 1.2);
    let mut heavy: Vec<(u64, f64)> = (0..200u64).map(|r| (r, zipf.pmf(r as usize))).collect();
    heavy.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let mut loads = vec![0.0f64; servers];
    let mut dkg = RoutingTable::new();
    for (key, weight) in heavy {
        let (idx, _) = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("servers > 0");
        dkg.insert(Key::new(key), idx as u32);
        loads[idx] += weight;
    }

    let policies: Vec<(&str, Arc<dyn KeyRouter>)> = vec![
        ("hash", Arc::new(HashRouter)),
        ("pkg", Arc::new(PartialKeyRouter::new(servers))),
        ("dkg-table", Arc::new(dkg)),
    ];

    println!("Ablation — load balance under Zipf(1.2) skew, {servers} servers");
    println!("  policy      imbalance   throughput");
    for (label, router) in policies {
        let mut builder = Topology::builder();
        let s = builder.source("S", servers, SourceRate::Saturate, move |i| {
            let zipf = Zipf::new(keys, 1.2);
            let mut rng = streamloc_workloads::SplitMix64::new(0x5eed ^ i as u64);
            Box::new(move || {
                let k: u64 = zipf.sample(&mut rng) as u64;
                Some(Tuple::new([Key::new(k)], 256))
            })
        });
        let a = builder.stateful("A", servers, CountOperator::factory());
        builder.connect(s, a, Grouping::fields_with(0, router));
        let topology = builder.build().expect("valid chain");
        let placement = Placement::aligned(&topology, servers);
        let mut sim = Simulation::new(
            topology,
            ClusterSpec::lan_10g(servers),
            placement,
            SimConfig::default(),
        );
        sim.run(windows);
        let pois = sim.poi_ids(sim.topology().po_by_name("A").expect("A"));
        let imbalance = sim.metrics().load_imbalance(&pois, windows / 3);
        let tput = sim.metrics().avg_throughput(windows / 3);
        csv.row(&[label.to_owned(), f3(imbalance), f1(tput / 1e3)]);
        println!("  {label:<9}   {imbalance:>9.3}   {:>8.1}k", tput / 1e3);
    }
    csv.finish()
}

/// Ablation: end-to-end latency under a fixed offered load — the
/// paper motivates stream processing with millisecond results (§1);
/// locality removes NIC queueing from the critical path.
pub fn ablation_latency(quick: bool) -> PathBuf {
    use crate::synthetic_runs::RoutingStrategy;
    use streamloc_workloads::SyntheticWorkload;

    let mut csv = CsvWriter::create(
        "ablation_latency",
        &["strategy", "offered_ktuples", "throughput_ktuples", "avg_latency_ms", "max_latency_ms"],
    );
    let servers = 4;
    let padding = 8 * 1024;
    let windows = if quick { 40 } else { 100 };
    println!("Ablation — latency at fixed offered load ({servers} servers, 8 kB tuples)");
    println!("  (latency resolution = one 100 ms simulation window; 0.0 ms = same-window)");
    println!("  strategy         offered   achieved   avg latency   max latency");
    for strategy in RoutingStrategy::all() {
        // Offer ~70% of the locality-aware capacity so queues stay
        // finite for the fast strategy but grow for the slow ones.
        let offered_per_source = 60_000.0;
        let workload = SyntheticWorkload::new(servers, 0.8, padding, 0xbe9c);
        let (router_sa, router_ab) = strategy.routers(servers);
        let mut builder = Topology::builder();
        let s = builder.source(
            "S",
            servers,
            SourceRate::PerSecond(offered_per_source),
            move |i| workload.source(i),
        );
        let a = builder.stateful("A", servers, CountOperator::factory());
        let b = builder.stateful("B", servers, CountOperator::factory());
        builder.connect(s, a, Grouping::fields_with(0, router_sa));
        builder.connect(a, b, Grouping::fields_with(1, router_ab));
        let topology = builder.build().expect("valid chain");
        let placement = Placement::aligned(&topology, servers);
        let mut sim = Simulation::new(
            topology,
            ClusterSpec::lan_10g(servers),
            placement,
            SimConfig::default(),
        );
        sim.run(windows);
        let skip = windows / 2;
        let throughput = sim.metrics().avg_throughput(skip);
        let avg_ms = sim.metrics().avg_latency(skip) * 1e3;
        let max_ms = sim.metrics().max_latency(skip) * 1e3;
        csv.row(&[
            strategy.label().to_owned(),
            f1(offered_per_source * servers as f64 / 1e3),
            f1(throughput / 1e3),
            f1(avg_ms),
            f1(max_ms),
        ]);
        println!(
            "  {:<14}   {:>6.0}k   {:>7.1}k   {:>8.1} ms   {:>8.1} ms",
            strategy.label(),
            offered_per_source * servers as f64 / 1e3,
            throughput / 1e3,
            avg_ms,
            max_ms
        );
    }
    csv.finish()
}
