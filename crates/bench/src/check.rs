//! Bench regression checker: compares the latest hot-path smoke run
//! (`BENCH_throughput.json`, `BENCH_rebuild.json`) against the
//! committed `BENCH_baseline.json`.
//!
//! Throughput regressions beyond the tolerance **fail** the check (CI
//! gates on them); rebuild-latency drift only **warns**, because the
//! partitioner's wall time is far noisier across machines than the
//! data plane's tuples/second. The JSON involved is the fixed format
//! written by [`crate::hotpath`], so the parsing here is a small
//! hand-rolled scan — no serialization dependency.

use std::fmt::Write as _;

/// Fraction of the baseline a throughput mode may lose before the
/// check fails (>20% regression fails, per EXPERIMENTS.md).
pub const THROUGHPUT_TOLERANCE: f64 = 0.20;

/// Fractional rebuild-latency growth over baseline that triggers a
/// warning.
pub const REBUILD_TOLERANCE: f64 = 0.20;

/// Minimum best-columnar over best-batched ratio the data plane must
/// hold, independent of the baseline file.
pub const MIN_COLUMNAR_SPEEDUP: f64 = 1.5;

/// Extracts the number following `"key":` in `json`, if present.
///
/// Only suitable for the flat, machine-written bench JSON — it scans
/// for the quoted key and parses the first numeric token after the
/// colon.
#[must_use]
pub fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Best `tuples_per_s` among the throughput runs labelled `mode`, or
/// `None` when the mode never appears.
#[must_use]
pub fn best_mode_throughput(json: &str, mode: &str) -> Option<f64> {
    let tag = format!("\"mode\": \"{mode}\"");
    let mut best: Option<f64> = None;
    let mut rest = json;
    while let Some(at) = rest.find(&tag) {
        rest = &rest[at + tag.len()..];
        let object = &rest[..rest.find('}').unwrap_or(rest.len())];
        if let Some(v) = extract_number(object, "tuples_per_s") {
            best = Some(best.map_or(v, |b: f64| b.max(v)));
        }
    }
    best
}

/// Outcome of one baseline comparison.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Human-readable lines for every comparison made.
    pub lines: Vec<String>,
    /// Hard failures (throughput regressions, missing data).
    pub failures: Vec<String>,
    /// Soft warnings (rebuild latency drift).
    pub warnings: Vec<String>,
}

impl CheckReport {
    /// Whether the check passed (warnings do not fail it).
    #[must_use]
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

fn check_mode(report: &mut CheckReport, throughput: &str, baseline: &str, mode: &str) {
    let base_key = format!("throughput_{mode}_tuples_per_s");
    let Some(base) = extract_number(baseline, &base_key) else {
        report
            .failures
            .push(format!("baseline is missing \"{base_key}\""));
        return;
    };
    let Some(now) = best_mode_throughput(throughput, mode) else {
        report
            .failures
            .push(format!("BENCH_throughput.json has no \"{mode}\" runs"));
        return;
    };
    let ratio = now / base.max(f64::MIN_POSITIVE);
    let mut line = String::new();
    let _ = write!(
        line,
        "  {mode:<9}  baseline {base:>12.0} t/s   now {now:>12.0} t/s   ({ratio:>5.2}x)"
    );
    report.lines.push(line);
    if ratio < 1.0 - THROUGHPUT_TOLERANCE {
        report.failures.push(format!(
            "{mode} throughput regressed {:.0}% vs baseline (tolerance {:.0}%)",
            (1.0 - ratio) * 100.0,
            THROUGHPUT_TOLERANCE * 100.0
        ));
    }
}

fn check_rebuild(report: &mut CheckReport, rebuild: &str, baseline: &str, key: &str) {
    let base_key = format!("rebuild_{key}");
    let (Some(base), Some(now)) = (
        extract_number(baseline, &base_key),
        extract_number(rebuild, key),
    ) else {
        report
            .warnings
            .push(format!("rebuild \"{key}\" missing from baseline or run"));
        return;
    };
    let ratio = now / base.max(f64::MIN_POSITIVE);
    report.lines.push(format!(
        "  {key:<14}  baseline {base:>8.2} ms    now {now:>8.2} ms    ({ratio:>5.2}x)"
    ));
    if ratio > 1.0 + REBUILD_TOLERANCE {
        report.warnings.push(format!(
            "{key} grew {:.0}% vs baseline (warn-only, tolerance {:.0}%)",
            (ratio - 1.0) * 100.0,
            REBUILD_TOLERANCE * 100.0
        ));
    }
}

/// Compares one throughput + rebuild run against the baseline.
///
/// Fails on: any mode regressing more than [`THROUGHPUT_TOLERANCE`],
/// a missing mode, or a best-columnar/best-batched ratio below
/// [`MIN_COLUMNAR_SPEEDUP`]. Rebuild latency drift only warns.
#[must_use]
pub fn check(baseline: &str, throughput: &str, rebuild: &str) -> CheckReport {
    let mut report = CheckReport::default();
    for mode in ["unbatched", "batched", "columnar"] {
        check_mode(&mut report, throughput, baseline, mode);
    }
    if let (Some(batched), Some(columnar)) = (
        best_mode_throughput(throughput, "batched"),
        best_mode_throughput(throughput, "columnar"),
    ) {
        let speedup = columnar / batched.max(f64::MIN_POSITIVE);
        report
            .lines
            .push(format!("  columnar / batched speedup: {speedup:.2}x"));
        if speedup < MIN_COLUMNAR_SPEEDUP {
            report.failures.push(format!(
                "columnar speedup {speedup:.2}x below the {MIN_COLUMNAR_SPEEDUP:.1}x floor"
            ));
        }
    }
    check_rebuild(&mut report, rebuild, baseline, "warm_ms");
    check_rebuild(&mut report, rebuild, baseline, "cold_steady_ms");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
  "bench": "hotpath_baseline",
  "throughput_unbatched_tuples_per_s": 1000.0,
  "throughput_batched_tuples_per_s": 2000.0,
  "throughput_columnar_tuples_per_s": 4000.0,
  "rebuild_warm_ms": 10.0,
  "rebuild_cold_steady_ms": 8.0
}"#;

    fn throughput(unbatched: f64, batched: f64, columnar: f64) -> String {
        format!(
            r#"{{"runs": [
  {{"mode": "unbatched", "batch_size": 1, "tuples_per_s": {unbatched}}},
  {{"mode": "batched", "batch_size": 64, "tuples_per_s": {batched}}},
  {{"mode": "batched", "batch_size": 256, "tuples_per_s": {}}},
  {{"mode": "columnar", "batch_size": 256, "tuples_per_s": {columnar}}}
]}}"#,
            batched / 2.0
        )
    }

    const REBUILD: &str = r#"{"warm_ms": 11.0, "cold_steady_ms": 7.5}"#;

    #[test]
    fn extracts_numbers_and_bests() {
        assert_eq!(extract_number(BASELINE, "rebuild_warm_ms"), Some(10.0));
        assert_eq!(extract_number(BASELINE, "absent"), None);
        let t = throughput(900.0, 2100.0, 4000.0);
        assert_eq!(best_mode_throughput(&t, "batched"), Some(2100.0));
        assert_eq!(best_mode_throughput(&t, "absent"), None);
    }

    #[test]
    fn passes_within_tolerance() {
        let report = check(BASELINE, &throughput(900.0, 1900.0, 4100.0), REBUILD);
        assert!(report.ok(), "failures: {:?}", report.failures);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    #[test]
    fn fails_on_throughput_regression() {
        let report = check(BASELINE, &throughput(900.0, 1900.0, 3000.0), REBUILD);
        assert!(!report.ok());
        assert!(report.failures.iter().any(|f| f.contains("columnar")));
    }

    #[test]
    fn fails_below_columnar_speedup_floor() {
        // No mode regressed >20%, but columnar/batched fell under 1.5x.
        let report = check(BASELINE, &throughput(1000.0, 2600.0, 3700.0), REBUILD);
        assert!(!report.ok());
        assert!(report.failures.iter().any(|f| f.contains("floor")));
    }

    #[test]
    fn rebuild_drift_only_warns() {
        let slow = r#"{"warm_ms": 30.0, "cold_steady_ms": 8.0}"#;
        let report = check(BASELINE, &throughput(1000.0, 2000.0, 4000.0), slow);
        assert!(report.ok());
        assert!(report.warnings.iter().any(|w| w.contains("warm_ms")));
    }

    #[test]
    fn missing_baseline_mode_fails() {
        let report = check("{}", &throughput(1.0, 2.0, 3.0), REBUILD);
        assert!(!report.ok());
        assert_eq!(report.failures.len(), 3);
    }
}
