//! Compares the latest hot-path bench artifacts against the committed
//! `BENCH_baseline.json`: exits non-zero on a throughput regression
//! beyond tolerance, warns (only) on rebuild-latency drift.
//!
//! Run `hotpath` first to produce `BENCH_throughput.json` and
//! `BENCH_rebuild.json`, then this binary. With `--history`, a passing
//! check also appends the run to `BENCH_history.jsonl` (machine tag,
//! commit, throughput, rebuild latency) and warns when a metric has
//! declined on three consecutive runs of the same machine.

use std::fs;
use std::process::ExitCode;

use streamloc_bench::check::check;
use streamloc_bench::history::{append_and_check, current_entry};
use streamloc_bench::hotpath::workspace_root;

fn main() -> ExitCode {
    let record_history = std::env::args().any(|a| a == "--history");
    let root = workspace_root();
    let read = |name: &str| {
        fs::read_to_string(root.join(name))
            .unwrap_or_else(|e| panic!("read {name}: {e} (run the hotpath bench first)"))
    };
    let baseline = read("BENCH_baseline.json");
    let throughput = read("BENCH_throughput.json");
    let rebuild = read("BENCH_rebuild.json");

    let report = check(&baseline, &throughput, &rebuild);
    println!("Bench baseline check");
    for line in &report.lines {
        println!("{line}");
    }
    for warning in &report.warnings {
        println!("WARN: {warning}");
    }
    for failure in &report.failures {
        println!("FAIL: {failure}");
    }
    if !report.ok() {
        return ExitCode::FAILURE;
    }
    println!("bench check passed");

    if record_history {
        let Some(entry) = current_entry(&root, &throughput, &rebuild) else {
            println!("WARN: bench artifacts incomplete, history entry not recorded");
            return ExitCode::SUCCESS;
        };
        let path = root.join("BENCH_history.jsonl");
        let warnings = append_and_check(&path, &entry);
        println!(
            "history: appended {} @ {} ({:.0} t/s, warm rebuild {:.2} ms) to {}",
            entry.commit,
            entry.machine,
            entry.tuples_per_s,
            entry.rebuild_warm_ms,
            path.display()
        );
        for warning in &warnings {
            println!("WARN: {warning}");
        }
    }
    ExitCode::SUCCESS
}
