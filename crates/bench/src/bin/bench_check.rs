//! Compares the latest hot-path bench artifacts against the committed
//! `BENCH_baseline.json`: exits non-zero on a throughput regression
//! beyond tolerance, warns (only) on rebuild-latency drift.
//!
//! Run `hotpath` first to produce `BENCH_throughput.json` and
//! `BENCH_rebuild.json`, then this binary.

use std::fs;
use std::process::ExitCode;

use streamloc_bench::check::check;
use streamloc_bench::hotpath::workspace_root;

fn main() -> ExitCode {
    let root = workspace_root();
    let read = |name: &str| {
        fs::read_to_string(root.join(name))
            .unwrap_or_else(|e| panic!("read {name}: {e} (run the hotpath bench first)"))
    };
    let baseline = read("BENCH_baseline.json");
    let throughput = read("BENCH_throughput.json");
    let rebuild = read("BENCH_rebuild.json");

    let report = check(&baseline, &throughput, &rebuild);
    println!("Bench baseline check");
    for line in &report.lines {
        println!("{line}");
    }
    for warning in &report.warnings {
        println!("WARN: {warning}");
    }
    for failure in &report.failures {
        println!("FAIL: {failure}");
    }
    if report.ok() {
        println!("bench check passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
