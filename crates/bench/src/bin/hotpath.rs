//! Hot-path bench: live throughput (unbatched vs batched vs columnar),
//! manager rebuild latency, and span-tracing overhead, emitting
//! `BENCH_throughput.json`, `BENCH_rebuild.json` and
//! `BENCH_span_overhead.json` at the workspace root.

fn main() {
    let quick = streamloc_bench::quick_mode();
    let (throughput, tpath) = streamloc_bench::hotpath::bench_throughput(quick);
    println!("wrote {}", tpath.display());
    let (_, rpath) = streamloc_bench::hotpath::bench_rebuild(quick);
    println!("wrote {}", rpath.display());
    let (span, spath) = streamloc_bench::hotpath::bench_span_overhead(quick);
    println!("wrote {}", spath.display());
    let speedup = throughput.speedup();
    assert!(
        speedup >= 2.0,
        "batched data plane must be >= 2x the unbatched baseline, got {speedup:.2}x"
    );
    let columnar = throughput.columnar_speedup();
    assert!(
        columnar >= 1.5,
        "columnar data plane must be >= 1.5x the batched path, got {columnar:.2}x"
    );
    let overhead = span.overhead();
    assert!(
        overhead <= 0.05,
        "span sampling at 1/64 must cost <= 5% throughput, got {:.2}%",
        overhead * 100.0
    );
}
