//! Reproduces the paper's Fig. 12. See `streamloc_bench::figures`.

fn main() {
    let path = streamloc_bench::figures::fig12(streamloc_bench::quick_mode());
    println!("\nwrote {}", path.display());
}
