//! Reproduces the paper's Fig. 14. See `streamloc_bench::figures`.

fn main() {
    let path = streamloc_bench::figures::fig14(streamloc_bench::quick_mode());
    println!("\nwrote {}", path.display());
}
