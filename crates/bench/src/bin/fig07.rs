//! Reproduces the paper's Fig. 07. See `streamloc_bench::figures`.

fn main() {
    let path = streamloc_bench::figures::fig07(streamloc_bench::quick_mode());
    println!("\nwrote {}", path.display());
}
