//! Reproduces the paper's Fig. 13. See `streamloc_bench::figures`.

fn main() {
    let path = streamloc_bench::figures::fig13(streamloc_bench::quick_mode());
    println!("\nwrote {}", path.display());
}
