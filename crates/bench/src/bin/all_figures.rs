//! Runs the complete evaluation: every figure of the paper plus the
//! ablations, writing one CSV per experiment under `results/`.
//!
//! ```bash
//! cargo run -p streamloc-bench --bin all_figures --release
//! ```
//!
//! Set `STREAMLOC_QUICK=1` for a fast smoke pass with smaller sweeps.

use streamloc_bench::figures;

type FigureFn = fn(bool) -> std::path::PathBuf;

fn main() {
    let quick = streamloc_bench::quick_mode();
    let figures: &[(&str, FigureFn)] = &[
        ("fig07", figures::fig07),
        ("fig08", figures::fig08),
        ("fig09", figures::fig09),
        ("fig10", figures::fig10),
        ("fig11", figures::fig11),
        ("fig12", figures::fig12),
        ("fig13", figures::fig13),
        ("fig14", figures::fig14),
        ("ablation_partitioner", figures::ablation_partitioner),
        ("ablation_period", figures::ablation_period),
        ("ablation_alpha", figures::ablation_alpha),
        ("ablation_racks", figures::ablation_racks),
        ("ablation_estimator", figures::ablation_estimator),
        ("ablation_balance", figures::ablation_balance),
        ("ablation_latency", figures::ablation_latency),
    ];
    let total = figures.len();
    for (i, (name, run)) in figures.iter().enumerate() {
        println!("\n=== [{}/{total}] {name} ===\n", i + 1);
        let start = std::time::Instant::now();
        let path = run(quick);
        println!(
            "\n{name} done in {:.1}s → {}",
            start.elapsed().as_secs_f64(),
            path.display()
        );
    }
}
