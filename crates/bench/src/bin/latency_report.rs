//! Renders per-hop span-latency percentile tables (local vs. remote,
//! per routing epoch) and the per-wave locality-latency delta.
//!
//! ```bash
//! # Seeded live demo: worst-case shifted routing, then a mid-stream
//! # wave to aligned modulo routing. Writes results/latency_report.csv
//! # and results/latency_report.prom, then prints the tables:
//! cargo run --release -p streamloc-bench --bin latency-report
//! ```
//!
//! Sampling uses the deterministic 1/16 per-key sampler by default;
//! set `STREAMLOC_SPAN_DENOM` to change the denominator.

use streamloc_bench::csv::results_dir;
use streamloc_bench::latency::run_live_demo;

fn main() {
    let quick = streamloc_bench::quick_mode();
    let denominator = std::env::var("STREAMLOC_SPAN_DENOM")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let demo = run_live_demo(quick, denominator);

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results directory");
    let prom = dir.join("latency_report.prom");
    std::fs::write(&prom, demo.registry.render_prometheus()).expect("write prometheus dump");
    let csv = demo.report.write_csv("latency_report");

    print!("{}", demo.report.render());
    println!("prometheus: {}", prom.display());
    println!("csv: {}", csv.display());

    // The demo is seeded: both epochs must have sampled spans, split
    // local/remote as the routers dictate, or the run is broken.
    let epochs = demo.report.epochs();
    assert!(
        epochs.len() >= 2,
        "expected spans under at least 2 epochs, got {epochs:?}"
    );
    let before = demo.report.remote_share(epochs[0]).expect("epoch 0 hops");
    let after = demo
        .report
        .remote_share(*epochs.last().expect("non-empty"))
        .expect("last epoch hops");
    assert!(
        after < before,
        "reconfiguration must cut the remote hop share ({before:.2} → {after:.2})"
    );
}
