//! Reproduces the paper's Fig. 11. See `streamloc_bench::figures`.

fn main() {
    let path = streamloc_bench::figures::fig11(streamloc_bench::quick_mode());
    println!("\nwrote {}", path.display());
}
