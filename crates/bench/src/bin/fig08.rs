//! Reproduces the paper's Fig. 08. See `streamloc_bench::figures`.

fn main() {
    let path = streamloc_bench::figures::fig08(streamloc_bench::quick_mode());
    println!("\nwrote {}", path.display());
}
