//! Reproduces the paper's Fig. 10. See `streamloc_bench::figures`.

fn main() {
    let path = streamloc_bench::figures::fig10(streamloc_bench::quick_mode());
    println!("\nwrote {}", path.display());
}
