//! Ablation: partitioner. See `streamloc_bench::figures`.

fn main() {
    let path = streamloc_bench::figures::ablation_partitioner(streamloc_bench::quick_mode());
    println!("\nwrote {}", path.display());
}
