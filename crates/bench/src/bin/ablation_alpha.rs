//! Ablation: alpha. See `streamloc_bench::figures`.

fn main() {
    let path = streamloc_bench::figures::ablation_alpha(streamloc_bench::quick_mode());
    println!("\nwrote {}", path.display());
}
