//! Renders a per-wave timeline summary from a JSONL event trace.
//!
//! ```bash
//! # Summarize an existing trace dump:
//! cargo run --release -p streamloc-bench --bin trace-report results/fault_recovery_trace.jsonl
//!
//! # No argument: run a small seeded demo (one wave under fault
//! # injection), write results/trace_demo.jsonl and the matching CSV
//! # time series, then summarize it:
//! cargo run --release -p streamloc-bench --bin trace-report
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use streamloc_bench::csv::{results_dir, CsvWriter};
use streamloc_bench::latency::format_ns;
use streamloc_core::{Manager, ManagerConfig};
use streamloc_engine::obs::export::{csv_rows, parse_jsonl, write_jsonl, CSV_HEADER};
use streamloc_engine::{
    ClusterSpec, ControlClass, CountOperator, FaultEvent, FaultPlan, Grouping, Key,
    MetricsRegistry, Placement, SimConfig, Simulation, SourceRate, SpanSampler, Topology,
    TraceEvent, TraceEventKind, Tuple,
};

fn main() {
    let events = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            });
            let events = parse_jsonl(&text).unwrap_or_else(|e| {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            });
            println!("trace: {path}");
            events
        }
        None => demo_trace(),
    };
    report(&events);
}

/// Runs a small deterministic S → A → B pipeline through one
/// manager-driven reconfiguration wave with a crash and a delayed ⑤,
/// dumps the trace and CSV time series under `results/`, and returns
/// the events.
fn demo_trace() -> Vec<TraceEvent> {
    const KEYS: u64 = 24;
    const PARALLELISM: usize = 3;

    let mut b = Topology::builder();
    let s = b.source("S", PARALLELISM, SourceRate::PerSecond(20_000.0), |i| {
        let mut c = i as u64;
        Box::new(move || {
            c = c.wrapping_add(0x9e37_79b9);
            // Skewed keys so the manager finds locality to exploit.
            let k = (c % KEYS).min(c % 7);
            Some(Tuple::new([Key::new(k), Key::new(k)], 64))
        })
    });
    let a = b.stateful("A", PARALLELISM, CountOperator::factory());
    let bb = b.stateful("B", PARALLELISM, CountOperator::factory());
    b.connect(s, a, Grouping::fields(0));
    b.connect(a, bb, Grouping::fields(1));
    let topo = b.build().expect("demo topology");
    let placement = Placement::aligned(&topo, PARALLELISM);
    let mut sim = Simulation::new(
        topo,
        ClusterSpec::lan_10g(PARALLELISM),
        placement,
        SimConfig::default(),
    );

    sim.enable_tracing(16_384);
    let registry = Arc::new(MetricsRegistry::new());
    sim.attach_metrics(&registry);
    // Sample 1 key in 4 so the timeline also shows span begin/hop/end
    // lines alongside the wave protocol.
    sim.enable_span_tracing(SpanSampler::new(0xC0FFEE, 4), Some(Arc::clone(&registry)));
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    manager.attach_metrics(&registry);
    sim.install_fault_plan(
        FaultPlan::new()
            .with(FaultEvent::CrashPoi { poi: 4, window: 12 })
            .with(FaultEvent::DelayControl {
                class: ControlClass::Propagate,
                occurrence: 0,
                windows: 2,
            }),
    );

    sim.run(8);
    manager.reconfigure(&mut sim).expect("demo wave accepted");
    sim.run(24);

    let events = sim.take_trace_events();
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join("trace_demo.jsonl");
    let file = std::fs::File::create(&path).expect("create trace dump");
    write_jsonl(&events, std::io::BufWriter::new(file)).expect("write trace dump");
    println!("trace: {} ({} events)", path.display(), events.len());

    let mut csv = CsvWriter::create("trace_demo_timeseries", CSV_HEADER);
    for row in csv_rows(sim.metrics()) {
        csv.row(&row);
    }
    println!("time series: {}", csv.finish().display());
    events
}

/// One aggregated timeline line: an event kind seen `count` times over
/// a window span.
struct StepLine {
    first_window: u64,
    last_window: u64,
    count: u64,
    bytes: u64,
    /// Accumulated span time (queue + proc of hops), nanoseconds.
    span_ns: u64,
    /// Slowest end-to-end span seen, nanoseconds.
    span_max_ns: u64,
    /// Hops that crossed a server boundary.
    remote_hops: u64,
    detail: String,
}

fn report(events: &[TraceEvent]) {
    if events.is_empty() {
        println!("no events.");
        return;
    }
    let first = events.first().expect("non-empty");
    let last = events.last().expect("non-empty");
    let waves: Vec<u64> = {
        let mut w: Vec<u64> = events.iter().filter_map(|e| e.wave).collect();
        w.sort_unstable();
        w.dedup();
        w
    };
    println!(
        "{} events, windows {}..{}, {} wave(s)\n",
        events.len(),
        first.window,
        last.window,
        waves.len()
    );

    for &wave in &waves {
        println!("-- wave {wave} --");
        print_timeline(events.iter().filter(|e| e.wave == Some(wave)));
    }

    let unattributed: Vec<&TraceEvent> = events.iter().filter(|e| e.wave.is_none()).collect();
    if !unattributed.is_empty() {
        println!("-- no wave --");
        print_timeline(unattributed.into_iter());
    }
}

fn print_timeline<'a>(events: impl Iterator<Item = &'a TraceEvent>) {
    // Aggregate by kind name, keeping first-seen order via seq.
    let mut lines: BTreeMap<(u64, &'static str), StepLine> = BTreeMap::new();
    let mut order: Vec<&'static str> = Vec::new();
    for e in events {
        let name = e.kind.name();
        if !order.contains(&name) {
            order.push(name);
        }
        let slot = order.iter().position(|&n| n == name).expect("just pushed") as u64;
        let line = lines.entry((slot, name)).or_insert_with(|| StepLine {
            first_window: e.window,
            last_window: e.window,
            count: 0,
            bytes: 0,
            span_ns: 0,
            span_max_ns: 0,
            remote_hops: 0,
            detail: String::new(),
        });
        line.first_window = line.first_window.min(e.window);
        line.last_window = line.last_window.max(e.window);
        line.count += 1;
        match e.kind {
            TraceEventKind::SendMetrics { bytes, .. }
            | TraceEventKind::MigrateSent { bytes, .. } => line.bytes += bytes,
            TraceEventKind::WaveStarted {
                routers,
                migrations,
                attempt,
            } => {
                line.detail =
                    format!("routers={routers} migrations={migrations} attempt={attempt}");
            }
            TraceEventKind::WaveCompleted { duration_windows } => {
                line.detail = format!("took {duration_windows} window(s)");
            }
            TraceEventKind::WaveRolledBack { nacked, attempt } => {
                line.detail = format!("nacked={nacked} attempt={attempt}");
            }
            TraceEventKind::SpanHop {
                queue_ns,
                proc_ns,
                remote,
                ..
            } => {
                line.span_ns += queue_ns + proc_ns;
                line.remote_hops += u64::from(remote);
            }
            TraceEventKind::SpanEnd { total_ns, .. } => {
                line.span_max_ns = line.span_max_ns.max(total_ns);
            }
            _ => {}
        }
    }
    for ((_, name), line) in &lines {
        let span = if line.first_window == line.last_window {
            format!("window {:>4}", line.first_window)
        } else {
            format!("windows {}..{}", line.first_window, line.last_window)
        };
        let mut extras = Vec::new();
        if line.count > 1 {
            extras.push(format!("x{}", line.count));
        }
        if line.bytes > 0 {
            extras.push(format!("{} bytes", line.bytes));
        }
        if line.span_ns > 0 {
            extras.push(format!(
                "Σ {} ({} remote)",
                format_ns(line.span_ns),
                line.remote_hops
            ));
        }
        if line.span_max_ns > 0 {
            extras.push(format!("max {}", format_ns(line.span_max_ns)));
        }
        if !line.detail.is_empty() {
            extras.push(line.detail.clone());
        }
        println!("  {span:<16} {name:<18} {}", extras.join("  "));
    }
    println!();
}
