//! Reproduces the paper's Fig. 09. See `streamloc_bench::figures`.

fn main() {
    let path = streamloc_bench::figures::fig09(streamloc_bench::quick_mode());
    println!("\nwrote {}", path.display());
}
