//! Balanced graph partitioning for key co-occurrence graphs.
//!
//! The routing manager of Caneill et al. (Middleware 2016) reduces the
//! assignment of correlated keys to servers to a **balanced graph
//! partitioning** problem: vertices are keys weighted by frequency,
//! edges are weighted by pair co-occurrence counts, and the goal is to
//! split the vertices into `k` parts minimizing the cut edge weight
//! while keeping each part's vertex weight below `α · total / k`
//! (paper §3.3, using Metis with α = 1.03).
//!
//! Since Metis is a C library outside this reproduction's dependency
//! budget, this crate implements the same multilevel scheme from
//! scratch (Karypis & Kumar 1998):
//!
//! 1. **coarsening** by heavy-edge matching,
//! 2. **initial partitioning** of the coarse graph by greedy growth,
//! 3. **uncoarsening** with greedy boundary refinement at every level.
//!
//! Two cheaper baselines used by the ablation benches are also
//! provided: [`HashPartitioner`] (what plain fields grouping does) and
//! [`GreedyPartitioner`] (one-pass streaming assignment, LDG-style).
//!
//! # Example
//!
//! ```
//! use streamloc_partition::{Graph, MultilevelPartitioner, Partitioner};
//!
//! let mut builder = Graph::builder();
//! let a = builder.add_vertex(10);
//! let b = builder.add_vertex(10);
//! let c = builder.add_vertex(10);
//! let d = builder.add_vertex(10);
//! builder.add_edge(a, b, 100); // a-b strongly correlated
//! builder.add_edge(c, d, 100); // c-d strongly correlated
//! builder.add_edge(a, c, 1);
//! let graph = builder.build();
//!
//! let partition = MultilevelPartitioner::default().partition(&graph, 2, 1.05, 42);
//! assert_eq!(partition.part(a), partition.part(b));
//! assert_eq!(partition.part(c), partition.part(d));
//! assert_ne!(partition.part(a), partition.part(c));
//! assert_eq!(partition.edge_cut(&graph), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod bipartite;
mod graph;
mod greedy;
mod hash;
mod hierarchy;
mod multilevel;
mod partition;
mod refine;

pub use bipartite::{KeyAssignment, KeyGraph, Side};
pub use graph::{Graph, GraphBuilder, VertexId};
pub use greedy::GreedyPartitioner;
pub use hash::HashPartitioner;
pub use hierarchy::HierarchicalPartitioner;
pub use multilevel::MultilevelPartitioner;
pub use partition::Partition;

/// A balanced `k`-way graph partitioner.
///
/// Implementations must assign every vertex of `graph` to one of `k`
/// parts, attempting to minimize the cut edge weight while keeping
/// every part's vertex weight at most `alpha * total_weight / k`
/// (the imbalance bound α ≥ 1 of paper §3.1). The bound is treated as
/// a soft constraint when it is infeasible (e.g. a single vertex
/// heavier than the cap).
pub trait Partitioner {
    /// Partitions `graph` into `k` parts under imbalance bound `alpha`,
    /// using `seed` for any internal randomness (same seed → same
    /// partition).
    ///
    /// # Panics
    ///
    /// Implementations panic if `k == 0` or `alpha < 1.0`.
    fn partition(&self, graph: &Graph, k: usize, alpha: f64, seed: u64) -> Partition;
}

/// Computes the per-part weight cap `max(alpha * total / k, heaviest
/// vertex)` used by all partitioners; the `heaviest` floor keeps the
/// constraint feasible on skewed graphs.
pub(crate) fn weight_cap(graph: &Graph, k: usize, alpha: f64) -> u64 {
    let total = graph.total_vertex_weight();
    let avg = (total as f64 / k as f64).ceil();
    let cap = (alpha * avg).ceil() as u64;
    cap.max(graph.max_vertex_weight())
}

pub(crate) fn validate_args(k: usize, alpha: f64) {
    assert!(k > 0, "partition count k must be positive");
    assert!(alpha >= 1.0, "imbalance bound alpha must be >= 1.0");
}
