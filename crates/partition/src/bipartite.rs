//! Bipartite key graphs built from pair-frequency statistics.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use crate::graph::{Graph, GraphBuilder, VertexId};
use crate::partition::Partition;
use crate::Partitioner;

/// Which side of the bipartite key graph a key belongs to.
///
/// `Left` keys route to the upstream stateful operator, `Right` keys
/// to the downstream one (e.g. locations and hashtags in the paper's
/// running example).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Keys of the upstream fields grouping.
    Left,
    /// Keys of the downstream fields grouping.
    Right,
}

/// The bipartite graph of co-occurring keys (paper Fig. 5).
///
/// Vertices are keys weighted by their frequency; an edge weighted
/// `f(k, k')` connects a left key to a right key each time the pair is
/// reported by the instrumentation. Partitioning this graph yields the
/// key→server assignment.
///
/// # Example
///
/// ```
/// use streamloc_partition::{KeyGraph, MultilevelPartitioner};
///
/// let mut kg = KeyGraph::new();
/// kg.add_pair("Asia", "#java", 3463);
/// kg.add_pair("Asia", "#ruby", 3011);
/// kg.add_pair("Oceania", "#python", 3108);
/// let assignment = kg.partition(&MultilevelPartitioner::default(), 2, 1.05, 7);
/// assert_eq!(assignment.left("Asia"), assignment.right("#java"));
/// assert_eq!(assignment.left("Oceania"), assignment.right("#python"));
/// assert_ne!(assignment.left("Asia"), assignment.left("Oceania"));
/// ```
#[derive(Clone, Default)]
pub struct KeyGraph<L, R> {
    left_ids: HashMap<L, VertexId>,
    right_ids: HashMap<R, VertexId>,
    builder: GraphBuilder,
}

impl<L: fmt::Debug, R: fmt::Debug> fmt::Debug for KeyGraph<L, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KeyGraph")
            .field("left_keys", &self.left_ids.len())
            .field("right_keys", &self.right_ids.len())
            .finish_non_exhaustive()
    }
}

impl<L, R> KeyGraph<L, R>
where
    L: Eq + Hash + Clone,
    R: Eq + Hash + Clone,
{
    /// Creates an empty key graph.
    #[must_use]
    pub fn new() -> Self {
        Self {
            left_ids: HashMap::new(),
            right_ids: HashMap::new(),
            builder: GraphBuilder::new(),
        }
    }

    /// Number of distinct left keys.
    #[must_use]
    pub fn left_len(&self) -> usize {
        self.left_ids.len()
    }

    /// Number of distinct right keys.
    #[must_use]
    pub fn right_len(&self) -> usize {
        self.right_ids.len()
    }

    /// Records that the pair `(left, right)` was observed `count`
    /// times: both vertex weights and the edge weight grow by `count`.
    pub fn add_pair(&mut self, left: L, right: R, count: u64) {
        if count == 0 {
            return;
        }
        let builder = &mut self.builder;
        let l = *self
            .left_ids
            .entry(left)
            .or_insert_with(|| builder.add_vertex(0));
        let r = *self
            .right_ids
            .entry(right)
            .or_insert_with(|| builder.add_vertex(0));
        self.builder.add_vertex_weight(l, count);
        self.builder.add_vertex_weight(r, count);
        self.builder.add_edge(l, r, count);
    }

    /// Adds standalone frequency weight to a left key (for keys whose
    /// pair partner was not retained by the sketch but whose load still
    /// matters for balancing).
    pub fn add_left_weight(&mut self, left: L, count: u64) {
        let builder = &mut self.builder;
        let l = *self
            .left_ids
            .entry(left)
            .or_insert_with(|| builder.add_vertex(0));
        self.builder.add_vertex_weight(l, count);
    }

    /// Adds standalone frequency weight to a right key.
    pub fn add_right_weight(&mut self, right: R, count: u64) {
        let builder = &mut self.builder;
        let r = *self
            .right_ids
            .entry(right)
            .or_insert_with(|| builder.add_vertex(0));
        self.builder.add_vertex_weight(r, count);
    }

    /// Builds the underlying [`Graph`] (consuming the accumulated
    /// edges) and returns it with the key→vertex maps.
    #[must_use]
    pub fn into_graph(self) -> (Graph, HashMap<L, VertexId>, HashMap<R, VertexId>) {
        (self.builder.build(), self.left_ids, self.right_ids)
    }

    /// Partitions the key graph into `k` parts under imbalance bound
    /// `alpha` and returns the per-key assignment (paper §3.3).
    #[must_use]
    pub fn partition<P: Partitioner>(
        &self,
        partitioner: &P,
        k: usize,
        alpha: f64,
        seed: u64,
    ) -> KeyAssignment<L, R> {
        let graph = self.builder.clone().build();
        let partition = partitioner.partition(&graph, k, alpha, seed);
        let left = self
            .left_ids
            .iter()
            .map(|(key, &v)| (key.clone(), partition.part(v)))
            .collect();
        let right = self
            .right_ids
            .iter()
            .map(|(key, &v)| (key.clone(), partition.part(v)))
            .collect();
        let expected_locality = partition.locality(&graph);
        let imbalance = partition.imbalance(&graph);
        KeyAssignment {
            left,
            right,
            k,
            expected_locality,
            imbalance,
            partition,
        }
    }
}

/// A key→part assignment produced by partitioning a [`KeyGraph`].
///
/// Parts correspond to servers; the routing-table generator turns this
/// into explicit key→instance routing tables.
#[derive(Debug, Clone)]
pub struct KeyAssignment<L, R> {
    left: HashMap<L, u32>,
    right: HashMap<R, u32>,
    k: usize,
    expected_locality: f64,
    imbalance: f64,
    partition: Partition,
}

impl<L, R> KeyAssignment<L, R>
where
    L: Eq + Hash,
    R: Eq + Hash,
{
    /// Part assigned to left key `key`, if it was in the graph.
    #[must_use]
    pub fn left<Q>(&self, key: Q) -> Option<u32>
    where
        Q: std::borrow::Borrow<L>,
    {
        self.left.get(key.borrow()).copied()
    }

    /// Part assigned to right key `key`, if it was in the graph.
    #[must_use]
    pub fn right<Q>(&self, key: Q) -> Option<u32>
    where
        Q: std::borrow::Borrow<R>,
    {
        self.right.get(key.borrow()).copied()
    }

    /// Iterates over `(left key, part)` assignments.
    pub fn left_iter(&self) -> impl Iterator<Item = (&L, u32)> {
        self.left.iter().map(|(k, &p)| (k, p))
    }

    /// Iterates over `(right key, part)` assignments.
    pub fn right_iter(&self) -> impl Iterator<Item = (&R, u32)> {
        self.right.iter().map(|(k, &p)| (k, p))
    }

    /// Number of parts.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Locality the partitioner expects on the statistics it was given
    /// (the "Metis reports an expected locality of 75%" figure of
    /// §4.3). Future data with unseen keys will achieve less.
    #[must_use]
    pub fn expected_locality(&self) -> f64 {
        self.expected_locality
    }

    /// Imbalance (max part weight over average) on the statistics.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        self.imbalance
    }

    /// The raw partition over the internal vertex ids.
    #[must_use]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MultilevelPartitioner;

    /// The exact example of paper Fig. 4/5.
    fn paper_example() -> KeyGraph<&'static str, &'static str> {
        let mut kg = KeyGraph::new();
        kg.add_pair("Asia", "#java", 3463);
        kg.add_pair("Asia", "#ruby", 3011);
        kg.add_pair("Asia", "#python", 969);
        kg.add_pair("Oceania", "#java", 1201);
        kg.add_pair("Oceania", "#ruby", 881);
        kg.add_pair("Oceania", "#python", 3108);
        kg
    }

    #[test]
    fn reproduces_paper_figure_5_partition() {
        // Fig. 5: Asia, #java, #ruby on one server; Oceania, #python on
        // the other.
        let kg = paper_example();
        let a = kg.partition(&MultilevelPartitioner::default(), 2, 1.6, 42);
        let asia = a.left("Asia").unwrap();
        assert_eq!(a.right("#java"), Some(asia));
        assert_eq!(a.right("#ruby"), Some(asia));
        let oceania = a.left("Oceania").unwrap();
        assert_ne!(asia, oceania);
        assert_eq!(a.right("#python"), Some(oceania));
    }

    #[test]
    fn vertex_weights_accumulate() {
        let kg = paper_example();
        let (graph, left, _right) = kg.into_graph();
        let asia = left["Asia"];
        assert_eq!(graph.vertex_weight(asia), 3463 + 3011 + 969);
        assert_eq!(graph.total_edge_weight(), 3463 + 3011 + 969 + 1201 + 881 + 3108);
    }

    #[test]
    fn zero_count_pairs_ignored() {
        let mut kg: KeyGraph<u32, u32> = KeyGraph::new();
        kg.add_pair(1, 2, 0);
        assert_eq!(kg.left_len(), 0);
        assert_eq!(kg.right_len(), 0);
    }

    #[test]
    fn standalone_weights_balance() {
        let mut kg: KeyGraph<&str, &str> = KeyGraph::new();
        kg.add_pair("a", "x", 100);
        kg.add_left_weight("b", 100);
        kg.add_right_weight("y", 100);
        let a = kg.partition(&MultilevelPartitioner::default(), 2, 1.1, 0);
        // "a"+"x" are glued (200 weight); "b" and "y" (100 each) must
        // go to the other part to balance.
        let ax = a.left("a").unwrap();
        assert_eq!(a.right("x"), Some(ax));
        assert_eq!(a.left("b").unwrap(), a.right("y").unwrap());
        assert_ne!(a.left("b").unwrap(), ax);
    }

    #[test]
    fn unknown_keys_are_none() {
        let kg = paper_example();
        let a = kg.partition(&MultilevelPartitioner::default(), 2, 1.2, 0);
        assert_eq!(a.left("Europe"), None);
        assert_eq!(a.right("#scala"), None);
    }
}
