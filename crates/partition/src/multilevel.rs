//! Multilevel k-way partitioning (Karypis & Kumar 1998 scheme).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::graph::{Graph, VertexId};
use crate::greedy::GreedyPartitioner;
use crate::partition::Partition;
use crate::refine::refine_boundary;
use crate::{weight_cap, Partitioner};

const UNMATCHED: u32 = u32::MAX;

/// Multilevel partitioner: heavy-edge-matching coarsening, greedy
/// initial partitioning of the coarse graph, then uncoarsening with
/// greedy boundary refinement at every level.
///
/// This plays the role Metis plays in the paper (§3.3): it is the
/// partitioner the routing manager invokes on the bipartite key graph.
/// Quality on key-correlation graphs is within a few percent of the
/// greedy baseline's *best case* while being far more robust on
/// clustered inputs (see `benches/partitioner.rs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultilevelPartitioner {
    /// Stop coarsening once the graph has at most
    /// `max(coarse_target, 8 * k)` vertices.
    pub coarse_target: usize,
    /// Maximum refinement passes per level.
    pub refine_passes: usize,
}

impl Default for MultilevelPartitioner {
    fn default() -> Self {
        Self {
            coarse_target: 64,
            refine_passes: 8,
        }
    }
}

impl MultilevelPartitioner {
    /// Creates a partitioner with the default coarsening target and
    /// refinement effort.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The full multilevel pipeline: coarsen, partition the coarsest
    /// graph, uncoarsen with refinement at every level.
    fn multilevel_candidate(&self, graph: &Graph, k: usize, alpha: f64, seed: u64) -> Partition {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cap = weight_cap(graph, k, alpha);
        let coarse_limit = self.coarse_target.max(8 * k);

        // Coarsening: stack of (fine graph, fine→coarse map).
        let mut levels: Vec<(Graph, Vec<u32>)> = Vec::new();
        let mut current = graph.clone();
        while current.vertex_count() > coarse_limit {
            let (coarse, map) = coarsen_once(&current, cap, &mut rng);
            if coarse.vertex_count() as f64 > 0.95 * current.vertex_count() as f64 {
                break; // matching stalled; further levels would not help
            }
            levels.push((current, map));
            current = coarse;
        }

        // Initial partition of the coarsest graph, then refine it.
        let initial = GreedyPartitioner.partition(&current, k, alpha, seed);
        let mut parts = initial.as_slice().to_vec();
        let coarse_cap = weight_cap(&current, k, alpha);
        refine_boundary(
            &current,
            &mut parts,
            k,
            coarse_cap,
            self.refine_passes,
            seed ^ 0xc0a5,
        );

        // Uncoarsen: project and refine at each finer level.
        for (depth, (fine, map)) in levels.iter().enumerate().rev() {
            let mut fine_parts = vec![0u32; fine.vertex_count()];
            for v in 0..fine.vertex_count() {
                fine_parts[v] = parts[map[v] as usize];
            }
            let level_cap = weight_cap(fine, k, alpha);
            refine_boundary(
                fine,
                &mut fine_parts,
                k,
                level_cap,
                self.refine_passes,
                seed ^ (depth as u64).wrapping_mul(0x9e37),
            );
            parts = fine_parts;
        }
        Partition::from_parts(parts, k)
    }

    /// The fine-level greedy candidate with boundary refinement. On
    /// graphs whose clusters exceed the balance cap (hub-and-spoke key
    /// graphs), coarse chunks can misplace whole groups in ways
    /// boundary refinement cannot repair, while the fine-grained
    /// greedy splits groups exactly at the cap (Metis likewise tries
    /// several initial partitions).
    fn refined_greedy_candidate(
        graph: &Graph,
        k: usize,
        alpha: f64,
        seed: u64,
        refine_passes: usize,
    ) -> Partition {
        let cap = weight_cap(graph, k, alpha);
        let mut greedy_parts = GreedyPartitioner
            .partition(graph, k, alpha, seed)
            .as_slice()
            .to_vec();
        refine_boundary(graph, &mut greedy_parts, k, cap, refine_passes, seed ^ 0x91ee);
        Partition::from_parts(greedy_parts, k)
    }

    /// Warm-started repartitioning: instead of coarsening from
    /// scratch, seed the assignment from `hint` — the part each vertex
    /// held in the *previous* window's partition (`u32::MAX` for
    /// vertices with no history) — then place the unhinted vertices
    /// greedily and run boundary refinement. Steady-state
    /// repartitioning therefore only moves the keys whose
    /// neighborhoods actually changed, at the cost of one refinement
    /// sweep instead of a full multilevel pipeline.
    ///
    /// The output is deterministic in `(graph, hint, seed)` and always
    /// a valid `k`-way partition; a hint that no longer fits the
    /// balance cap is partially discarded (cap-respecting prefix wins,
    /// overflow vertices are re-placed greedily).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `alpha < 1.0`, or `hint.len()` differs from
    /// the graph's vertex count.
    #[must_use]
    pub fn partition_with_hint(
        &self,
        graph: &Graph,
        k: usize,
        alpha: f64,
        seed: u64,
        hint: &[u32],
    ) -> Partition {
        crate::validate_args(k, alpha);
        let n = graph.vertex_count();
        assert_eq!(hint.len(), n, "hint length must match the vertex count");
        if n == 0 {
            return Partition::from_parts(Vec::new(), k);
        }
        if k == 1 {
            return Partition::from_parts(vec![0; n], k);
        }
        let cap = weight_cap(graph, k, alpha);
        let mut parts = vec![UNMATCHED; n];
        let mut loads = vec![0u64; k];
        // Seed from the hint while it fits the cap (visit order is the
        // vertex order, so the outcome is deterministic).
        for v in 0..n {
            let h = hint[v];
            if h != UNMATCHED && (h as usize) < k {
                let w = graph.vertex_weight(v as VertexId);
                if loads[h as usize] + w <= cap {
                    parts[v] = h;
                    loads[h as usize] += w;
                }
            }
        }
        // Place unhinted (and cap-overflow) vertices where they
        // connect most strongly, like the greedy initial partitioner.
        let mut conn = vec![0u64; k];
        for v in 0..n {
            if parts[v] != UNMATCHED {
                continue;
            }
            let w = graph.vertex_weight(v as VertexId);
            for c in conn.iter_mut() {
                *c = 0;
            }
            for (u, ew) in graph.neighbors(v as VertexId) {
                let p = parts[u as usize];
                if p != UNMATCHED {
                    conn[p as usize] += ew;
                }
            }
            let mut best: Option<usize> = None;
            for p in 0..k {
                if loads[p] + w > cap {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        conn[p] > conn[b] || (conn[p] == conn[b] && loads[p] < loads[b])
                    }
                };
                if better {
                    best = Some(p);
                }
            }
            let p = best.unwrap_or_else(|| {
                // Cap infeasible everywhere (degenerate hint): fall
                // back to the lightest part, like the greedy baseline.
                (0..k).min_by_key(|&p| loads[p]).expect("k > 0")
            });
            parts[v] = p as u32;
            loads[p] += w;
        }
        refine_boundary(graph, &mut parts, k, cap, self.refine_passes, seed ^ 0x3a3a);
        Partition::from_parts(parts, k)
    }
}

impl Partitioner for MultilevelPartitioner {
    fn partition(&self, graph: &Graph, k: usize, alpha: f64, seed: u64) -> Partition {
        crate::validate_args(k, alpha);
        let n = graph.vertex_count();
        if n == 0 {
            return Partition::from_parts(Vec::new(), k);
        }
        if k == 1 {
            return Partition::from_parts(vec![0; n], k);
        }
        // The two candidates are independent; compute them on separate
        // threads (scoped: no allocation outlives the call, no extra
        // dependencies) and keep whichever cuts less.
        let (multilevel, greedy) = std::thread::scope(|s| {
            let ml = s.spawn(|| self.multilevel_candidate(graph, k, alpha, seed));
            let greedy =
                Self::refined_greedy_candidate(graph, k, alpha, seed, self.refine_passes);
            (
                ml.join().expect("multilevel candidate thread panicked"),
                greedy,
            )
        });
        if greedy.edge_cut(graph) < multilevel.edge_cut(graph) {
            greedy
        } else {
            multilevel
        }
    }
}

/// One round of heavy-edge matching with a 2-hop fallback. Returns
/// the coarse graph and the fine→coarse vertex map. Pairs whose
/// combined weight would exceed `cap` are not matched, so coarse
/// vertices stay placeable.
///
/// The 2-hop pass pairs still-unmatched vertices that share their
/// heaviest neighbor. Without it, star-shaped graphs — exactly the
/// shape of key-correlation graphs, where a popular location is the
/// hub of thousands of hashtags — stall the coarsening after one
/// round (tags have no tag–tag edges to match over) and the initial
/// partition then runs on a nearly uncoarsened graph, wrecking
/// quality for small `k`. Metis applies the same remedy to power-law
/// graphs.
fn coarsen_once(graph: &Graph, cap: u64, rng: &mut SmallRng) -> (Graph, Vec<u32>) {
    let n = graph.vertex_count();
    let mut order: Vec<VertexId> = graph.vertices().collect();
    order.shuffle(rng);
    // A match over an edge far weaker than either endpoint's strongest
    // incident edge would glue unrelated clusters together — a mistake
    // no later refinement can undo, since refinement moves single
    // (coarse) vertices. Refusing such matches makes the coarsening
    // stall instead, which ends it cleanly at the current level.
    let max_incident: Vec<u64> = (0..n as VertexId)
        .map(|v| graph.neighbors(v).map(|(_, w)| w).max().unwrap_or(0))
        .collect();
    let strong = |u: VertexId, v: VertexId, w: u64| {
        4 * w >= max_incident[u as usize] && 4 * w >= max_incident[v as usize]
    };
    let mut mate = vec![UNMATCHED; n];
    for &u in &order {
        if mate[u as usize] != UNMATCHED {
            continue;
        }
        let wu = graph.vertex_weight(u);
        let mut best: Option<(VertexId, u64)> = None;
        for (v, w) in graph.neighbors(u) {
            if mate[v as usize] != UNMATCHED || v == u {
                continue;
            }
            if wu + graph.vertex_weight(v) > cap || !strong(u, v, w) {
                continue;
            }
            let better = match best {
                None => true,
                Some((bv, bw)) => w > bw || (w == bw && v < bv),
            };
            if better {
                best = Some((v, w));
            }
        }
        if let Some((v, _)) = best {
            mate[u as usize] = v;
            mate[v as usize] = u;
        }
    }

    // 2-hop pass: pair unmatched vertices hanging off the same hub.
    let mut pending_by_hub: std::collections::HashMap<VertexId, VertexId> =
        std::collections::HashMap::new();
    for &u in &order {
        if mate[u as usize] != UNMATCHED {
            continue;
        }
        let hub = graph
            .neighbors(u)
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(v, _)| v);
        let Some(hub) = hub else { continue };
        match pending_by_hub.get(&hub) {
            Some(&v)
                if graph.vertex_weight(u) + graph.vertex_weight(v) <= cap =>
            {
                mate[u as usize] = v;
                mate[v as usize] = u;
                pending_by_hub.remove(&hub);
            }
            _ => {
                pending_by_hub.insert(hub, u);
            }
        }
    }

    let mut map = vec![UNMATCHED; n];
    let mut builder = Graph::builder();
    for v in 0..n as u32 {
        if map[v as usize] != UNMATCHED {
            continue;
        }
        let mut weight = graph.vertex_weight(v);
        let m = mate[v as usize];
        if m != UNMATCHED {
            weight += graph.vertex_weight(m);
        }
        let cid = builder.add_vertex(weight);
        map[v as usize] = cid;
        if m != UNMATCHED {
            map[m as usize] = cid;
        }
    }
    for (u, v, w) in graph.edges() {
        let (cu, cv) = (map[u as usize], map[v as usize]);
        if cu != cv {
            builder.add_edge(cu, cv, w);
        }
    }
    (builder.build(), map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HashPartitioner;
    use rand::Rng;

    /// `clusters` cliques of `size` vertices with strong internal edges
    /// and sparse weak edges between consecutive clusters.
    fn clustered(clusters: usize, size: usize) -> Graph {
        let mut b = Graph::builder();
        for _ in 0..clusters * size {
            b.add_vertex(1);
        }
        for c in 0..clusters {
            let base = (c * size) as u32;
            for i in 0..size as u32 {
                for j in (i + 1)..size as u32 {
                    b.add_edge(base + i, base + j, 100);
                }
            }
            if c + 1 < clusters {
                b.add_edge(base, base + size as u32, 1);
            }
        }
        b.build()
    }

    #[test]
    fn finds_cluster_structure() {
        let g = clustered(4, 8);
        let p = MultilevelPartitioner::default().partition(&g, 4, 1.05, 11);
        // Optimal cut severs only the 3 weak bridges.
        assert_eq!(p.edge_cut(&g), 3);
        assert!((p.imbalance(&g) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn beats_hash_on_clustered_graphs() {
        let g = clustered(6, 16);
        let ml = MultilevelPartitioner::default().partition(&g, 6, 1.05, 3);
        let hash = HashPartitioner.partition(&g, 6, 1.05, 3);
        assert!(
            ml.edge_cut(&g) * 10 < hash.edge_cut(&g),
            "multilevel cut {} not ≪ hash cut {}",
            ml.edge_cut(&g),
            hash.edge_cut(&g)
        );
    }

    #[test]
    fn deterministic() {
        let g = clustered(4, 10);
        let ml = MultilevelPartitioner::default();
        assert_eq!(ml.partition(&g, 3, 1.1, 5), ml.partition(&g, 3, 1.1, 5));
    }

    #[test]
    fn handles_large_random_graph_balanced() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut b = Graph::builder();
        let n = 3000u32;
        for _ in 0..n {
            b.add_vertex(rng.gen_range(1..20));
        }
        for _ in 0..9000 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            b.add_edge(u, v, rng.gen_range(1..50));
        }
        let g = b.build();
        let p = MultilevelPartitioner::default().partition(&g, 6, 1.05, 17);
        assert_eq!(p.len(), g.vertex_count());
        // Balance should respect the cap up to the feasibility floor.
        let cap = crate::weight_cap(&g, 6, 1.05);
        let max = *p.part_weights(&g).iter().max().unwrap();
        assert!(max <= cap, "part weight {max} exceeds cap {cap}");
    }

    #[test]
    fn trivial_cases() {
        let g = clustered(2, 4);
        let ml = MultilevelPartitioner::default();
        let p1 = ml.partition(&g, 1, 1.0, 0);
        assert_eq!(p1.edge_cut(&g), 0);

        let empty = Graph::builder().build();
        let pe = ml.partition(&empty, 4, 1.0, 0);
        assert!(pe.is_empty());
    }

    #[test]
    fn more_parts_than_vertices() {
        let mut b = Graph::builder();
        for _ in 0..3 {
            b.add_vertex(1);
        }
        b.add_edge(0, 1, 1);
        let g = b.build();
        let p = MultilevelPartitioner::default().partition(&g, 8, 1.5, 0);
        assert_eq!(p.len(), 3);
    }

    #[test]
    #[should_panic(expected = "alpha must be >= 1.0")]
    fn rejects_bad_alpha() {
        let g = Graph::builder().build();
        let _ = MultilevelPartitioner::default().partition(&g, 2, 0.5, 0);
    }

    #[test]
    fn warm_start_preserves_an_optimal_hint() {
        // Hinting the previous (optimal) assignment must keep it:
        // refinement finds no improving move, so no key migrates.
        let g = clustered(4, 8);
        let ml = MultilevelPartitioner::default();
        let cold = ml.partition(&g, 4, 1.05, 11);
        assert_eq!(cold.edge_cut(&g), 3);
        let hint: Vec<u32> = cold.as_slice().to_vec();
        let warm = ml.partition_with_hint(&g, 4, 1.05, 11, &hint);
        assert_eq!(warm.as_slice(), cold.as_slice(), "optimal hint was perturbed");
    }

    #[test]
    fn warm_start_without_history_still_partitions() {
        let g = clustered(4, 8);
        let ml = MultilevelPartitioner::default();
        let hint = vec![u32::MAX; g.vertex_count()];
        let p = ml.partition_with_hint(&g, 4, 1.05, 7, &hint);
        assert_eq!(p.len(), g.vertex_count());
        let cap = crate::weight_cap(&g, 4, 1.05);
        let max = *p.part_weights(&g).iter().max().unwrap();
        assert!(max <= cap, "part weight {max} exceeds cap {cap}");
        // Greedy seeding + refinement still finds the cluster cut.
        assert_eq!(p.edge_cut(&g), 3);
    }

    #[test]
    fn warm_start_repairs_a_partially_stale_hint() {
        // Half the hint points at the wrong cluster's part; the warm
        // path must still land within cap and close to the optimum.
        let g = clustered(4, 8);
        let ml = MultilevelPartitioner::default();
        let cold = ml.partition(&g, 4, 1.05, 11);
        let mut hint: Vec<u32> = cold.as_slice().to_vec();
        for (v, h) in hint.iter_mut().enumerate() {
            if v % 2 == 0 {
                *h = u32::MAX; // new key, no history
            }
        }
        let warm = ml.partition_with_hint(&g, 4, 1.05, 11, &hint);
        let cap = crate::weight_cap(&g, 4, 1.05);
        let max = *warm.part_weights(&g).iter().max().unwrap();
        assert!(max <= cap);
        assert!(
            warm.edge_cut(&g) <= cold.edge_cut(&g) + 2,
            "warm cut {} far above cold cut {}",
            warm.edge_cut(&g),
            cold.edge_cut(&g)
        );
    }

    #[test]
    fn warm_start_respects_cap_against_overloaded_hint() {
        // A hint cramming everything into part 0 must be partially
        // discarded, never violating the balance cap.
        let g = clustered(4, 8);
        let ml = MultilevelPartitioner::default();
        let hint = vec![0u32; g.vertex_count()];
        let p = ml.partition_with_hint(&g, 4, 1.05, 3, &hint);
        let cap = crate::weight_cap(&g, 4, 1.05);
        let max = *p.part_weights(&g).iter().max().unwrap();
        assert!(max <= cap, "part weight {max} exceeds cap {cap}");
    }

    #[test]
    fn warm_start_is_deterministic() {
        let g = clustered(3, 10);
        let ml = MultilevelPartitioner::default();
        let hint: Vec<u32> = (0..g.vertex_count() as u32).map(|v| v % 3).collect();
        assert_eq!(
            ml.partition_with_hint(&g, 3, 1.1, 5, &hint),
            ml.partition_with_hint(&g, 3, 1.1, 5, &hint)
        );
    }
}
