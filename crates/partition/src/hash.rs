//! Hash-based assignment, the fields-grouping default.

use crate::graph::Graph;
use crate::partition::Partition;
use crate::Partitioner;

/// Assigns each vertex to `hash(vertex) % k`, ignoring edges and
/// weights entirely.
///
/// This reproduces the default fields-grouping implementation of
/// Storm-like engines (paper §2.2): a random but deterministic
/// mapping, used as the baseline in every experiment. The expected
/// locality of this scheme is `1/k`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HashPartitioner;

impl HashPartitioner {
    /// Creates the hash partitioner.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

/// The 64-bit finalizer of SplitMix64; a high-quality deterministic
/// integer hash shared with the engine's hash routing.
#[must_use]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Partitioner for HashPartitioner {
    fn partition(&self, graph: &Graph, k: usize, alpha: f64, seed: u64) -> Partition {
        crate::validate_args(k, alpha);
        let parts = graph
            .vertices()
            .map(|v| (splitmix64(u64::from(v) ^ seed) % k as u64) as u32)
            .collect();
        Partition::from_parts(parts, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique(n: usize) -> Graph {
        let mut b = Graph::builder();
        for _ in 0..n {
            b.add_vertex(1);
        }
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                b.add_edge(u, v, 1);
            }
        }
        b.build()
    }

    #[test]
    fn deterministic_for_seed() {
        let g = clique(50);
        let a = HashPartitioner.partition(&g, 4, 1.0, 7);
        let b = HashPartitioner.partition(&g, 4, 1.0, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let g = clique(50);
        let a = HashPartitioner.partition(&g, 4, 1.0, 7);
        let b = HashPartitioner.partition(&g, 4, 1.0, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn roughly_uniform() {
        let g = clique(4000);
        let p = HashPartitioner.partition(&g, 4, 1.0, 1);
        let weights = p.part_weights(&g);
        for &w in &weights {
            assert!((800..=1200).contains(&w), "part weight {w} far from 1000");
        }
    }

    #[test]
    fn expected_locality_is_one_over_k() {
        // On a large clique the hash cut should keep ~1/k of edges local.
        let g = clique(200);
        let p = HashPartitioner.partition(&g, 5, 1.0, 3);
        let locality = p.locality(&g);
        assert!(
            (locality - 0.2).abs() < 0.05,
            "locality {locality} not near 1/k"
        );
    }
}
