//! Partition assignments and their quality metrics.

use crate::graph::{Graph, VertexId};

/// An assignment of every vertex of a graph to one of `k` parts.
///
/// Produced by a [`Partitioner`](crate::Partitioner); in the routing
/// use case a part corresponds to a server, so the quality metrics map
/// directly to the paper's evaluation: [`edge_cut`] is remote traffic,
/// [`locality`] the fraction of co-occurrences kept on one server, and
/// [`imbalance`] the load-balance factor of Fig. 11b.
///
/// [`edge_cut`]: Partition::edge_cut
/// [`locality`]: Partition::locality
/// [`imbalance`]: Partition::imbalance
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    parts: Vec<u32>,
    k: usize,
}

impl Partition {
    /// Wraps an explicit assignment vector.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or any part id is `>= k`.
    #[must_use]
    pub fn from_parts(parts: Vec<u32>, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(
            parts.iter().all(|&p| (p as usize) < k),
            "part id out of range"
        );
        Self { parts, k }
    }

    /// Number of parts.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of assigned vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Returns `true` when no vertex is assigned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Part of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn part(&self, v: VertexId) -> u32 {
        self.parts[v as usize]
    }

    /// The raw assignment slice, indexed by vertex id.
    #[must_use]
    pub fn as_slice(&self) -> &[u32] {
        &self.parts
    }

    /// Sum of the weights of edges whose endpoints lie in different
    /// parts — the objective minimized by the paper's manager.
    ///
    /// # Panics
    ///
    /// Panics if `graph` has a different vertex count.
    #[must_use]
    pub fn edge_cut(&self, graph: &Graph) -> u64 {
        assert_eq!(graph.vertex_count(), self.parts.len());
        graph
            .edges()
            .filter(|&(u, v, _)| self.parts[u as usize] != self.parts[v as usize])
            .map(|(_, _, w)| w)
            .sum()
    }

    /// Fraction of total edge weight kept inside parts, in `[0, 1]`
    /// (1.0 when the graph has no edges). This is the "locality" the
    /// paper reports for a routing configuration, evaluated on the
    /// statistics graph itself (e.g. the 75% Metis-reported locality
    /// of §4.3).
    ///
    /// # Panics
    ///
    /// Panics if `graph` has a different vertex count.
    #[must_use]
    pub fn locality(&self, graph: &Graph) -> f64 {
        let total = graph.total_edge_weight();
        if total == 0 {
            return 1.0;
        }
        1.0 - self.edge_cut(graph) as f64 / total as f64
    }

    /// Vertex weight per part.
    ///
    /// # Panics
    ///
    /// Panics if `graph` has a different vertex count.
    #[must_use]
    pub fn part_weights(&self, graph: &Graph) -> Vec<u64> {
        assert_eq!(graph.vertex_count(), self.parts.len());
        let mut weights = vec![0u64; self.k];
        for v in graph.vertices() {
            weights[self.parts[v as usize] as usize] += graph.vertex_weight(v);
        }
        weights
    }

    /// Load-balance factor: heaviest part weight divided by the average
    /// part weight (1.0 = perfectly balanced; the paper's α bound says
    /// this should stay ≤ α on the training data).
    ///
    /// Returns 1.0 for a graph with zero total weight.
    ///
    /// # Panics
    ///
    /// Panics if `graph` has a different vertex count.
    #[must_use]
    pub fn imbalance(&self, graph: &Graph) -> f64 {
        let weights = self.part_weights(graph);
        let total: u64 = weights.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let avg = total as f64 / self.k as f64;
        let max = *weights.iter().max().expect("k > 0") as f64;
        max / avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        let mut b = Graph::builder();
        for _ in 0..4 {
            b.add_vertex(5);
        }
        b.add_edge(0, 1, 10);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 10);
        b.build()
    }

    #[test]
    fn cut_and_locality() {
        let g = path4();
        let p = Partition::from_parts(vec![0, 0, 1, 1], 2);
        assert_eq!(p.edge_cut(&g), 1);
        let expected = 1.0 - 1.0 / 21.0;
        assert!((p.locality(&g) - expected).abs() < 1e-12);
    }

    #[test]
    fn worst_cut() {
        let g = path4();
        let p = Partition::from_parts(vec![0, 1, 0, 1], 2);
        assert_eq!(p.edge_cut(&g), 21);
        assert_eq!(p.locality(&g), 0.0);
    }

    #[test]
    fn balance_metrics() {
        let g = path4();
        let balanced = Partition::from_parts(vec![0, 0, 1, 1], 2);
        assert_eq!(balanced.part_weights(&g), vec![10, 10]);
        assert!((balanced.imbalance(&g) - 1.0).abs() < 1e-12);

        let skewed = Partition::from_parts(vec![0, 0, 0, 1], 2);
        assert_eq!(skewed.part_weights(&g), vec![15, 5]);
        assert!((skewed.imbalance(&g) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_locality_is_one() {
        let g = Graph::builder().build();
        let p = Partition::from_parts(vec![], 3);
        assert_eq!(p.locality(&g), 1.0);
        assert_eq!(p.imbalance(&g), 1.0);
        assert!(p.is_empty());
    }

    #[test]
    #[should_panic(expected = "part id out of range")]
    fn rejects_out_of_range_part() {
        let _ = Partition::from_parts(vec![0, 2], 2);
    }
}
