//! One-pass greedy (LDG-style) partitioning baseline.

use crate::graph::{Graph, VertexId};
use crate::partition::Partition;
use crate::{weight_cap, Partitioner};

/// Streaming greedy partitioner.
///
/// Vertices are visited in descending weight order (heaviest keys
/// placed first, while every part still has room); each vertex goes to
/// the part holding the largest edge weight to already-placed
/// neighbors among the parts that still fit under the balance cap,
/// breaking ties toward the lightest part. Linear in the graph size,
/// used as the cheap comparison point in the partitioner ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedyPartitioner;

impl GreedyPartitioner {
    /// Creates the greedy partitioner.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Partitioner for GreedyPartitioner {
    fn partition(&self, graph: &Graph, k: usize, alpha: f64, _seed: u64) -> Partition {
        crate::validate_args(k, alpha);
        let n = graph.vertex_count();
        let cap = weight_cap(graph, k, alpha);
        let mut order: Vec<VertexId> = graph.vertices().collect();
        order.sort_by_key(|&v| std::cmp::Reverse((graph.vertex_weight(v), std::cmp::Reverse(v))));

        const UNASSIGNED: u32 = u32::MAX;
        let mut parts = vec![UNASSIGNED; n];
        let mut loads = vec![0u64; k];
        let mut conn = vec![0u64; k];
        for v in order {
            for c in conn.iter_mut() {
                *c = 0;
            }
            for (u, w) in graph.neighbors(v) {
                let p = parts[u as usize];
                if p != UNASSIGNED {
                    conn[p as usize] += w;
                }
            }
            let wv = graph.vertex_weight(v);
            let mut best: Option<usize> = None;
            for p in 0..k {
                if loads[p] + wv > cap {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        conn[p] > conn[b] || (conn[p] == conn[b] && loads[p] < loads[b])
                    }
                };
                if better {
                    best = Some(p);
                }
            }
            // Cap infeasible for every part: fall back to lightest part.
            let p = best.unwrap_or_else(|| {
                (0..k)
                    .min_by_key(|&p| (loads[p], p))
                    .expect("k > 0")
            });
            parts[v as usize] = p as u32;
            loads[p] += wv;
        }
        Partition::from_parts(parts, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two weight-10 cliques joined by one weak edge.
    fn two_clusters() -> Graph {
        let mut b = Graph::builder();
        for _ in 0..8 {
            b.add_vertex(10);
        }
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v, 100);
            }
        }
        for u in 4..8u32 {
            for v in (u + 1)..8 {
                b.add_edge(u, v, 100);
            }
        }
        b.add_edge(0, 4, 1);
        b.build()
    }

    #[test]
    fn separates_clusters() {
        let g = two_clusters();
        let p = GreedyPartitioner.partition(&g, 2, 1.05, 0);
        assert_eq!(p.edge_cut(&g), 1);
        assert!((p.imbalance(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn respects_balance_cap() {
        // One heavy vertex and many light ones; heavy goes alone.
        let mut b = Graph::builder();
        let heavy = b.add_vertex(100);
        let mut light = Vec::new();
        for _ in 0..10 {
            light.push(b.add_vertex(10));
        }
        // All light vertices correlated with the heavy one.
        for &l in &light {
            b.add_edge(heavy, l, 50);
        }
        let g = b.build();
        let p = GreedyPartitioner.partition(&g, 2, 1.1, 0);
        let weights = p.part_weights(&g);
        let max = *weights.iter().max().unwrap();
        // cap = max(1.1 * 100, 100) = 110
        assert!(max <= 110, "part weight {max} exceeds cap");
    }

    #[test]
    fn assigns_every_vertex() {
        let g = two_clusters();
        let p = GreedyPartitioner.partition(&g, 3, 1.2, 0);
        assert_eq!(p.len(), g.vertex_count());
    }

    #[test]
    fn single_part_takes_all() {
        let g = two_clusters();
        let p = GreedyPartitioner.partition(&g, 1, 1.0, 0);
        assert_eq!(p.edge_cut(&g), 0);
        assert!(p.as_slice().iter().all(|&x| x == 0));
    }
}
