//! Rack-aware partitioning for hierarchical clusters.

use crate::graph::Graph;
use crate::multilevel::MultilevelPartitioner;
use crate::partition::Partition;
use crate::Partitioner;

/// Rack-aware partitioner — the paper's §6 future-work extension
/// ("distances between servers can be taken into account to leverage
/// rack locality when load balancing prevents server locality").
///
/// The key graph is first partitioned into `k = racks ×
/// servers_per_rack` parts exactly as the flat partitioner would —
/// so per-server locality and balance are untouched — and the parts
/// are then *grouped into racks* by minimizing the cross-rack cut of
/// the quotient graph (exactly, by enumeration, for practical rack
/// counts). Keys that cannot share a server because of the balance
/// bound therefore still share a rack whenever the correlation
/// structure allows.
///
/// Part ids `r * servers_per_rack ..` belong to rack `r`, matching
/// the engine's contiguous rack assignment.
///
/// # Example
///
/// ```
/// use streamloc_partition::{Graph, HierarchicalPartitioner, Partitioner};
///
/// let mut builder = Graph::builder();
/// for _ in 0..8 {
///     builder.add_vertex(1);
/// }
/// // Two heavy 4-cliques — one per rack of 2 servers.
/// for base in [0u32, 4] {
///     for i in 0..4 {
///         for j in (i + 1)..4 {
///             builder.add_edge(base + i, base + j, 100);
///         }
///     }
/// }
/// builder.add_edge(0, 4, 1);
/// let graph = builder.build();
///
/// let partitioner = HierarchicalPartitioner::new(2, 2);
/// let partition = partitioner.partition(&graph, 4, 1.3, 7);
/// // Each clique stays within one rack (servers {0,1} or {2,3}).
/// let rack = |v: u32| partition.part(v) / 2;
/// assert_eq!(rack(0), rack(3));
/// assert_eq!(rack(4), rack(7));
/// assert_ne!(rack(0), rack(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalPartitioner {
    racks: usize,
    servers_per_rack: usize,
    inner: MultilevelPartitioner,
}

impl HierarchicalPartitioner {
    /// Creates a partitioner for `racks` racks of `servers_per_rack`
    /// servers each.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    #[must_use]
    pub fn new(racks: usize, servers_per_rack: usize) -> Self {
        assert!(racks > 0, "at least one rack");
        assert!(servers_per_rack > 0, "at least one server per rack");
        Self {
            racks,
            servers_per_rack,
            inner: MultilevelPartitioner::default(),
        }
    }

    /// Total number of servers (= parts produced).
    #[must_use]
    pub fn servers(&self) -> usize {
        self.racks * self.servers_per_rack
    }
}

impl Partitioner for HierarchicalPartitioner {
    /// Partitions into exactly `self.servers()` parts.
    ///
    /// # Panics
    ///
    /// Panics if `k` differs from `racks * servers_per_rack`.
    fn partition(&self, graph: &Graph, k: usize, alpha: f64, seed: u64) -> Partition {
        crate::validate_args(k, alpha);
        assert_eq!(k, self.servers(), "k must equal racks * servers_per_rack");
        let flat = self.inner.partition(graph, k, alpha, seed);
        if self.racks == 1 || graph.vertex_count() == 0 {
            return flat;
        }

        // Quotient cut matrix between flat parts.
        let mut cut = vec![vec![0u64; k]; k];
        for (u, v, w) in graph.edges() {
            let (pu, pv) = (flat.part(u) as usize, flat.part(v) as usize);
            if pu != pv {
                cut[pu][pv] += w;
                cut[pv][pu] += w;
            }
        }

        let rack_of_part = best_grouping(k, self.racks, self.servers_per_rack, &cut);

        // Relabel so rack r owns part ids [r*per, (r+1)*per).
        let per = self.servers_per_rack;
        let mut relabel = vec![0u32; k];
        let mut next_slot = vec![0usize; self.racks];
        for part in 0..k {
            let rack = rack_of_part[part];
            relabel[part] = (rack * per + next_slot[rack]) as u32;
            next_slot[rack] += 1;
        }
        let parts = flat
            .as_slice()
            .iter()
            .map(|&p| relabel[p as usize])
            .collect();
        Partition::from_parts(parts, k)
    }
}

/// Assigns `k` parts to `racks` racks of exactly `per` parts each,
/// minimizing the summed cut weight between parts in different racks.
/// Exact enumeration while the search space is small (k ≤ 12 covers
/// every realistic rack layout here), greedy otherwise.
fn best_grouping(k: usize, racks: usize, per: usize, cut: &[Vec<u64>]) -> Vec<usize> {
    debug_assert_eq!(k, racks * per);
    if k <= 12 {
        let mut assignment = vec![usize::MAX; k];
        let mut capacity = vec![per; racks];
        let mut best: Option<(u64, Vec<usize>)> = None;
        enumerate(0, k, racks, cut, &mut assignment, &mut capacity, 0, &mut best);
        best.expect("at least one grouping exists").1
    } else {
        // Greedy: seed each rack with the heaviest unassigned part,
        // then repeatedly add the part with the strongest connection
        // to a rack that still has room.
        let mut assignment = vec![usize::MAX; k];
        let mut capacity = vec![per; racks];
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by_key(|&p| std::cmp::Reverse(cut[p].iter().sum::<u64>()));
        for &part in &order {
            let mut best_rack = 0;
            let mut best_score = -1i128;
            for (rack, &room) in capacity.iter().enumerate() {
                if room == 0 {
                    continue;
                }
                let score: u64 = (0..k)
                    .filter(|&q| assignment[q] == rack)
                    .map(|q| cut[part][q])
                    .sum();
                if i128::from(score) > best_score {
                    best_score = i128::from(score);
                    best_rack = rack;
                }
            }
            assignment[part] = best_rack;
            capacity[best_rack] -= 1;
        }
        assignment
    }
}

/// Exhaustive search over balanced groupings. `racks` are
/// interchangeable; forcing part 0 into rack 0 etc. is handled by the
/// capacity pruning plus the canonical first-fit rack order.
#[allow(clippy::too_many_arguments)]
fn enumerate(
    part: usize,
    k: usize,
    racks: usize,
    cut: &[Vec<u64>],
    assignment: &mut Vec<usize>,
    capacity: &mut Vec<usize>,
    cost_so_far: u64,
    best: &mut Option<(u64, Vec<usize>)>,
) {
    if let Some((best_cost, _)) = best {
        if cost_so_far >= *best_cost {
            return; // branch and bound
        }
    }
    if part == k {
        *best = Some((cost_so_far, assignment.clone()));
        return;
    }
    let mut seen_empty_rack = false;
    for rack in 0..racks {
        if capacity[rack] == 0 {
            continue;
        }
        // Symmetry breaking: all still-empty racks are equivalent.
        let is_empty = capacity[rack] == k / racks && assignment[..part].iter().all(|&a| a != rack);
        if is_empty {
            if seen_empty_rack {
                continue;
            }
            seen_empty_rack = true;
        }
        let added: u64 = (0..part)
            .filter(|&q| assignment[q] != rack && assignment[q] != usize::MAX)
            .map(|q| cut[part][q])
            .sum();
        assignment[part] = rack;
        capacity[rack] -= 1;
        enumerate(
            part + 1,
            k,
            racks,
            cut,
            assignment,
            capacity,
            cost_so_far + added,
            best,
        );
        capacity[rack] += 1;
        assignment[part] = usize::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `groups` cliques of `size` vertices, weak chain between them.
    fn clustered(groups: usize, size: usize) -> Graph {
        let mut b = Graph::builder();
        for _ in 0..groups * size {
            b.add_vertex(1);
        }
        for g in 0..groups {
            let base = (g * size) as u32;
            for i in 0..size as u32 {
                for j in (i + 1)..size as u32 {
                    b.add_edge(base + i, base + j, 100);
                }
            }
            if g + 1 < groups {
                b.add_edge(base, base + size as u32, 1);
            }
        }
        b.build()
    }

    /// Big hub clusters that exceed the per-server cap, so they must
    /// split across servers: the case rack-awareness exists for.
    fn oversized_hubs(hubs: usize, spokes: usize) -> Graph {
        let mut b = Graph::builder();
        let mut hub_ids = Vec::new();
        for _ in 0..hubs {
            hub_ids.push(b.add_vertex(10));
        }
        for (h, &hub) in hub_ids.iter().enumerate() {
            for s in 0..spokes as u32 {
                let spoke = b.add_vertex(10);
                b.add_edge(hub, spoke, 100 + u64::from(s % 7));
                let _ = h;
            }
        }
        b.build()
    }

    #[test]
    fn server_partition_matches_flat_quality() {
        let g = clustered(6, 8);
        let flat = MultilevelPartitioner::default().partition(&g, 6, 1.1, 9);
        let hier = HierarchicalPartitioner::new(2, 3).partition(&g, 6, 1.1, 9);
        assert_eq!(
            hier.edge_cut(&g),
            flat.edge_cut(&g),
            "grouping must not change the server-level cut"
        );
    }

    #[test]
    fn rack_grouping_beats_arbitrary_grouping() {
        let g = oversized_hubs(4, 20);
        let hier = HierarchicalPartitioner::new(2, 3).partition(&g, 6, 1.05, 5);
        let flat = MultilevelPartitioner::default().partition(&g, 6, 1.05, 5);
        let rack_cut = |p: &Partition| -> u64 {
            g.edges()
                .filter(|&(u, v, _)| p.part(u) / 3 != p.part(v) / 3)
                .map(|(_, _, w)| w)
                .sum()
        };
        assert!(
            rack_cut(&hier) <= rack_cut(&flat),
            "optimized grouping {} must not exceed arbitrary grouping {}",
            rack_cut(&hier),
            rack_cut(&flat)
        );
        // Server-level cut identical by construction.
        assert_eq!(hier.edge_cut(&g), flat.edge_cut(&g));
    }

    #[test]
    fn clusters_share_racks() {
        // 4 clusters on 2 racks × 2 servers: each cluster on one
        // server, clusters paired into racks along the weak chain.
        let g = clustered(4, 6);
        let p = HierarchicalPartitioner::new(2, 2).partition(&g, 4, 1.1, 3);
        for cluster in 0..4u32 {
            let base = cluster * 6;
            let server = p.part(base);
            for v in base..base + 6 {
                assert_eq!(p.part(v), server, "cluster {cluster} split");
            }
        }
        assert_eq!(p.edge_cut(&g), 3, "only the weak chain edges cut");
    }

    #[test]
    fn deterministic() {
        let g = clustered(4, 5);
        let h = HierarchicalPartitioner::new(2, 2);
        assert_eq!(h.partition(&g, 4, 1.2, 5), h.partition(&g, 4, 1.2, 5));
    }

    #[test]
    fn balances_across_all_servers() {
        let g = clustered(8, 4);
        let h = HierarchicalPartitioner::new(2, 2);
        let p = h.partition(&g, 4, 1.1, 1);
        let weights = p.part_weights(&g);
        assert_eq!(weights.len(), 4);
        let max = *weights.iter().max().unwrap();
        let min = *weights.iter().min().unwrap();
        assert!(max <= min * 2, "unbalanced: {weights:?}");
    }

    #[test]
    fn greedy_grouping_used_for_many_parts() {
        // 16 parts on 4 racks exceeds the enumeration bound; the
        // greedy path must still produce a valid balanced grouping.
        let g = clustered(16, 3);
        let h = HierarchicalPartitioner::new(4, 4);
        let p = h.partition(&g, 16, 1.2, 2);
        assert_eq!(p.len(), g.vertex_count());
        let mut per_rack = [0u32; 4];
        for part in 0..16u32 {
            let members = p.as_slice().iter().filter(|&&x| x == part).count();
            if members > 0 {
                per_rack[(part / 4) as usize] += 1;
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must equal")]
    fn wrong_k_panics() {
        let g = clustered(2, 3);
        let _ = HierarchicalPartitioner::new(2, 2).partition(&g, 3, 1.1, 0);
    }
}
