//! Greedy boundary refinement (the uncoarsening-phase local search).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::graph::{Graph, VertexId};

/// Runs up to `max_passes` passes of greedy k-way boundary refinement
/// over `parts`, in place, under the per-part weight `cap`.
///
/// Each pass visits boundary vertices in a seeded random order and
/// moves a vertex to the part maximizing the cut-weight gain, provided
/// the destination stays under `cap`. Zero-gain moves are taken only
/// when they strictly improve balance, which lets the refinement walk
/// along plateaus without oscillating. Stops early when a pass makes
/// no move. This mirrors the greedy refinement Metis applies during
/// uncoarsening.
///
/// Returns the number of moves applied.
pub(crate) fn refine_boundary(
    graph: &Graph,
    parts: &mut [u32],
    k: usize,
    cap: u64,
    max_passes: usize,
    seed: u64,
) -> usize {
    debug_assert_eq!(graph.vertex_count(), parts.len());
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut loads = vec![0u64; k];
    for v in graph.vertices() {
        loads[parts[v as usize] as usize] += graph.vertex_weight(v);
    }
    let mut conn = vec![0u64; k];
    let mut total_moves = 0;
    let mut order: Vec<VertexId> = graph.vertices().collect();
    for _ in 0..max_passes {
        order.shuffle(&mut rng);
        let mut moves = 0;
        for &v in &order {
            let current = parts[v as usize] as usize;
            for c in conn.iter_mut() {
                *c = 0;
            }
            let mut boundary = false;
            for (u, w) in graph.neighbors(v) {
                let p = parts[u as usize] as usize;
                conn[p] += w;
                if p != current {
                    boundary = true;
                }
            }
            if !boundary {
                continue;
            }
            let wv = graph.vertex_weight(v);
            let mut best: Option<usize> = None;
            for p in 0..k {
                if p == current || loads[p] + wv > cap {
                    continue;
                }
                let gain = conn[p] as i128 - conn[current] as i128;
                let improves = gain > 0
                    || (gain == 0 && loads[p] + wv < loads[current]);
                if !improves {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        let bgain = conn[b] as i128 - conn[current] as i128;
                        gain > bgain || (gain == bgain && loads[p] < loads[b])
                    }
                };
                if better {
                    best = Some(p);
                }
            }
            if let Some(p) = best {
                loads[current] -= wv;
                loads[p] += wv;
                parts[v as usize] = p as u32;
                moves += 1;
            }
        }
        total_moves += moves;
        if moves == 0 {
            break;
        }
    }
    total_moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Partition;

    /// A 6-vertex barbell: triangle 0-1-2, triangle 3-4-5, bridge 2-3.
    fn barbell() -> Graph {
        let mut b = Graph::builder();
        for _ in 0..6 {
            b.add_vertex(1);
        }
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 10);
        }
        b.add_edge(2, 3, 1);
        b.build()
    }

    #[test]
    fn repairs_a_bad_split() {
        let g = barbell();
        // Start from a deliberately bad split mixing the triangles. A
        // cap of 4 (α = 4/3) leaves room for single-vertex moves; with
        // cap = ceil(total/k) exactly, only swaps could help, which is
        // why the paper's α > 1 slack matters.
        let mut parts = vec![0, 1, 0, 1, 0, 1];
        let moves = refine_boundary(&g, &mut parts, 2, 4, 10, 42);
        assert!(moves > 0);
        let p = Partition::from_parts(parts, 2);
        assert_eq!(p.edge_cut(&g), 1, "refinement should find the bridge cut");
        assert!((p.imbalance(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn respects_cap() {
        let g = barbell();
        // cap of 3 forbids piling everything on one side.
        let mut parts = vec![0, 0, 0, 1, 1, 1];
        refine_boundary(&g, &mut parts, 2, 3, 10, 1);
        let p = Partition::from_parts(parts, 2);
        assert_eq!(p.part_weights(&g), vec![3, 3]);
    }

    #[test]
    fn interior_vertices_not_moved() {
        let g = barbell();
        let mut parts = vec![0, 0, 0, 1, 1, 1];
        // Already optimal: a full pass makes no move.
        let moves = refine_boundary(&g, &mut parts, 2, 3, 10, 9);
        assert_eq!(moves, 0);
    }
}
