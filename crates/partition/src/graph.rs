//! Weighted undirected graphs in compressed sparse row form.

use std::collections::HashMap;
use std::fmt;

/// Index of a vertex in a [`Graph`].
pub type VertexId = u32;

/// An immutable, undirected, vertex- and edge-weighted graph stored in
/// CSR (compressed sparse row) form.
///
/// Vertices carry a `u64` weight (key frequency in the routing use
/// case) and edges a `u64` weight (pair co-occurrence count). Self
/// loops are rejected at build time and parallel edges are merged by
/// summing their weights.
///
/// # Example
///
/// ```
/// use streamloc_partition::Graph;
///
/// let mut builder = Graph::builder();
/// let a = builder.add_vertex(3);
/// let b = builder.add_vertex(5);
/// builder.add_edge(a, b, 2);
/// builder.add_edge(a, b, 4); // merged: weight 6
/// let graph = builder.build();
/// assert_eq!(graph.vertex_count(), 2);
/// assert_eq!(graph.edge_count(), 1);
/// assert_eq!(graph.total_edge_weight(), 6);
/// assert_eq!(graph.neighbors(a).collect::<Vec<_>>(), vec![(b, 6)]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    vweights: Vec<u64>,
    xadj: Vec<usize>,
    adjncy: Vec<VertexId>,
    adjwgt: Vec<u64>,
    total_vweight: u64,
    total_eweight: u64,
    max_vweight: u64,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("vertices", &self.vertex_count())
            .field("edges", &self.edge_count())
            .field("total_vertex_weight", &self.total_vweight)
            .field("total_edge_weight", &self.total_eweight)
            .finish()
    }
}

impl Graph {
    /// Starts building a graph.
    #[must_use]
    pub fn builder() -> GraphBuilder {
        GraphBuilder::new()
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.vweights.len()
    }

    /// Number of undirected edges (each counted once).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Weight of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn vertex_weight(&self, v: VertexId) -> u64 {
        self.vweights[v as usize]
    }

    /// Sum of all vertex weights.
    #[must_use]
    pub fn total_vertex_weight(&self) -> u64 {
        self.total_vweight
    }

    /// Sum of all edge weights (each undirected edge counted once).
    #[must_use]
    pub fn total_edge_weight(&self) -> u64 {
        self.total_eweight
    }

    /// Largest single vertex weight (0 for an empty graph).
    #[must_use]
    pub fn max_vertex_weight(&self) -> u64 {
        self.max_vweight
    }

    /// Degree (number of distinct neighbors) of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Iterates over `(neighbor, edge_weight)` pairs of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, u64)> + '_ {
        let v = v as usize;
        let range = self.xadj[v]..self.xadj[v + 1];
        self.adjncy[range.clone()]
            .iter()
            .zip(&self.adjwgt[range])
            .map(|(&n, &w)| (n, w))
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.vweights.len() as VertexId).map(|v| v as VertexId)
    }

    /// Iterates over each undirected edge once as `(u, v, weight)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, u64)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&(v, _)| u < v)
                .map(move |(v, w)| (u, v, w))
        })
    }
}

/// Incremental builder for [`Graph`].
///
/// Parallel edges are merged by summing weights; self loops are
/// ignored (a key is always co-located with itself).
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    vweights: Vec<u64>,
    edges: HashMap<(VertexId, VertexId), u64>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vertex with `weight` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the vertex count would exceed `u32::MAX`.
    pub fn add_vertex(&mut self, weight: u64) -> VertexId {
        let id = VertexId::try_from(self.vweights.len()).expect("too many vertices");
        self.vweights.push(weight);
        id
    }

    /// Adds `delta` to the weight of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` has not been added.
    pub fn add_vertex_weight(&mut self, v: VertexId, delta: u64) {
        self.vweights[v as usize] += delta;
    }

    /// Number of vertices added so far.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.vweights.len()
    }

    /// Adds an undirected edge between `u` and `v` with `weight`,
    /// merging with any existing edge. Self loops are silently ignored.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` has not been added.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, weight: u64) {
        assert!((u as usize) < self.vweights.len(), "unknown vertex {u}");
        assert!((v as usize) < self.vweights.len(), "unknown vertex {v}");
        if u == v {
            return;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        *self.edges.entry(key).or_default() += weight;
    }

    /// Finalizes into an immutable CSR [`Graph`].
    #[must_use]
    pub fn build(self) -> Graph {
        let n = self.vweights.len();
        let mut degree = vec![0usize; n];
        for &(u, v) in self.edges.keys() {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut xadj = vec![0usize; n + 1];
        for i in 0..n {
            xadj[i + 1] = xadj[i] + degree[i];
        }
        let m = xadj[n];
        let mut adjncy = vec![0 as VertexId; m];
        let mut adjwgt = vec![0u64; m];
        let mut cursor = xadj.clone();
        // Deterministic adjacency order: insert edges sorted by endpoints.
        let mut edges: Vec<((VertexId, VertexId), u64)> = self.edges.into_iter().collect();
        edges.sort_unstable_by_key(|&(e, _)| e);
        let mut total_eweight = 0u64;
        for ((u, v), w) in edges {
            adjncy[cursor[u as usize]] = v;
            adjwgt[cursor[u as usize]] = w;
            cursor[u as usize] += 1;
            adjncy[cursor[v as usize]] = u;
            adjwgt[cursor[v as usize]] = w;
            cursor[v as usize] += 1;
            total_eweight += w;
        }
        let total_vweight = self.vweights.iter().sum();
        let max_vweight = self.vweights.iter().copied().max().unwrap_or(0);
        Graph {
            vweights: self.vweights,
            xadj,
            adjncy,
            adjwgt,
            total_vweight,
            total_eweight,
            max_vweight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0-1, 1-2, 2-3, 3-0, 0-2
        let mut b = Graph::builder();
        for w in [1, 2, 3, 4] {
            b.add_vertex(w);
        }
        b.add_edge(0, 1, 10);
        b.add_edge(1, 2, 20);
        b.add_edge(2, 3, 30);
        b.add_edge(3, 0, 40);
        b.add_edge(0, 2, 50);
        b.build()
    }

    #[test]
    fn counts_and_weights() {
        let g = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.total_vertex_weight(), 10);
        assert_eq!(g.total_edge_weight(), 150);
        assert_eq!(g.max_vertex_weight(), 4);
        assert_eq!(g.vertex_weight(2), 3);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = diamond();
        for u in g.vertices() {
            for (v, w) in g.neighbors(u) {
                assert!(
                    g.neighbors(v).any(|(x, wx)| x == u && wx == w),
                    "edge {u}-{v} not symmetric"
                );
            }
        }
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 2);
    }

    #[test]
    fn parallel_edges_merge() {
        let mut b = Graph::builder();
        let a = b.add_vertex(1);
        let c = b.add_vertex(1);
        b.add_edge(a, c, 3);
        b.add_edge(c, a, 4);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(a).next(), Some((c, 7)));
    }

    #[test]
    fn self_loops_ignored() {
        let mut b = Graph::builder();
        let a = b.add_vertex(1);
        b.add_edge(a, a, 99);
        let g = b.build();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(a), 0);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 5);
        let total: u64 = edges.iter().map(|&(_, _, w)| w).sum();
        assert_eq!(total, g.total_edge_weight());
        for &(u, v, _) in &edges {
            assert!(u < v);
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::builder().build();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_vertex_weight(), 0);
    }

    #[test]
    fn vertex_weight_accumulation() {
        let mut b = Graph::builder();
        let a = b.add_vertex(1);
        b.add_vertex_weight(a, 4);
        let g = b.build();
        assert_eq!(g.vertex_weight(a), 5);
    }
}
