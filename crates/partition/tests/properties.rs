//! Property-based tests for the partitioners: structural soundness,
//! balance-cap respect, quality vs the hash baseline, determinism.

use proptest::prelude::*;
use streamloc_partition::{
    Graph, GreedyPartitioner, HashPartitioner, MultilevelPartitioner, Partitioner,
};

#[derive(Debug, Clone)]
pub struct RandomGraph {
    pub vertex_weights: Vec<u64>,
    pub edges: Vec<(u32, u32, u64)>,
}

pub fn random_graph() -> impl Strategy<Value = RandomGraph> {
    (2usize..120).prop_flat_map(|n| {
        let weights = prop::collection::vec(1u64..50, n);
        let edges = prop::collection::vec(
            (0..n as u32, 0..n as u32, 1u64..100),
            0..(n * 3).min(400),
        );
        (weights, edges).prop_map(|(vertex_weights, edges)| RandomGraph {
            vertex_weights,
            edges,
        })
    })
}

pub fn build(rg: &RandomGraph) -> Graph {
    let mut b = Graph::builder();
    for &w in &rg.vertex_weights {
        b.add_vertex(w);
    }
    for &(u, v, w) in &rg.edges {
        b.add_edge(u, v, w);
    }
    b.build()
}

/// The feasible per-part cap used by every partitioner.
fn cap(graph: &Graph, k: usize, alpha: f64) -> u64 {
    let avg = (graph.total_vertex_weight() as f64 / k as f64).ceil();
    ((alpha * avg).ceil() as u64).max(graph.max_vertex_weight())
}

proptest! {
    #[test]
    fn multilevel_is_sound(rg in random_graph(), k in 1usize..8, seed in any::<u64>()) {
        let graph = build(&rg);
        let p = MultilevelPartitioner::default().partition(&graph, k, 1.1, seed);
        prop_assert_eq!(p.len(), graph.vertex_count());
        prop_assert_eq!(p.k(), k);
        let weights = p.part_weights(&graph);
        prop_assert_eq!(weights.iter().sum::<u64>(), graph.total_vertex_weight());
        let locality = p.locality(&graph);
        prop_assert!((0.0..=1.0).contains(&locality));
        // cut + kept == total edge weight
        let kept = (p.locality(&graph) * graph.total_edge_weight() as f64).round() as i64;
        let cut = p.edge_cut(&graph) as i64;
        prop_assert!((kept + cut - graph.total_edge_weight() as i64).abs() <= 1);
    }

    #[test]
    fn multilevel_overflow_is_bounded(rg in random_graph(), k in 2usize..6, seed in any::<u64>()) {
        // The cap is a soft constraint (bin packing can make it
        // infeasible, as with Metis); the provable bound is one
        // placement overshoot above the cap: the initial greedy pass
        // places into a part of weight ≤ avg ≤ cap and coarse
        // vertices never exceed the cap (matching refuses heavier
        // pairs), so parts stay ≤ 2·cap.
        let graph = build(&rg);
        let alpha = 1.1;
        let p = MultilevelPartitioner::default().partition(&graph, k, alpha, seed);
        let max = p.part_weights(&graph).into_iter().max().unwrap_or(0);
        prop_assert!(
            max <= 2 * cap(&graph, k, alpha),
            "part weight {} exceeds 2×cap {}", max, 2 * cap(&graph, k, alpha)
        );
    }

    #[test]
    fn greedy_overflow_is_bounded(rg in random_graph(), k in 2usize..6) {
        // Greedy's fallback places into the lightest part (≤ avg ≤
        // cap), so overflow is at most one vertex weight.
        let graph = build(&rg);
        let alpha = 1.2;
        let p = GreedyPartitioner.partition(&graph, k, alpha, 0);
        let max = p.part_weights(&graph).into_iter().max().unwrap_or(0);
        let bound = cap(&graph, k, alpha) + graph.max_vertex_weight();
        prop_assert!(max <= bound, "part weight {} exceeds {}", max, bound);
    }

    #[test]
    fn multilevel_no_worse_than_feasible_hash(
        rg in random_graph(), k in 2usize..6, seed in any::<u64>(),
    ) {
        // Hash ignores both edges and balance; it is only a fair
        // comparator when its own partition happens to respect the
        // balance cap (otherwise it can "win" by piling correlated
        // heavy vertices on one overloaded part, which the
        // balance-constrained partitioners are forbidden to do).
        let graph = build(&rg);
        let alpha = 1.2;
        let ml = MultilevelPartitioner::default().partition(&graph, k, alpha, seed);
        let hash = HashPartitioner.partition(&graph, k, alpha, seed);
        let hash_feasible = hash
            .part_weights(&graph)
            .into_iter()
            .all(|w| w <= cap(&graph, k, alpha));
        prop_assume!(hash_feasible);
        let slack = graph.total_edge_weight() / 10 + 200;
        prop_assert!(
            ml.edge_cut(&graph) <= hash.edge_cut(&graph) + slack,
            "multilevel cut {} vs hash cut {}",
            ml.edge_cut(&graph), hash.edge_cut(&graph)
        );
    }

    #[test]
    fn partitioners_are_deterministic(rg in random_graph(), k in 1usize..6, seed in any::<u64>()) {
        let graph = build(&rg);
        let ml = MultilevelPartitioner::default();
        prop_assert_eq!(
            ml.partition(&graph, k, 1.1, seed),
            ml.partition(&graph, k, 1.1, seed)
        );
        prop_assert_eq!(
            GreedyPartitioner.partition(&graph, k, 1.1, seed),
            GreedyPartitioner.partition(&graph, k, 1.1, seed)
        );
        prop_assert_eq!(
            HashPartitioner.partition(&graph, k, 1.1, seed),
            HashPartitioner.partition(&graph, k, 1.1, seed)
        );
    }

    #[test]
    fn single_part_has_zero_cut(rg in random_graph(), seed in any::<u64>()) {
        let graph = build(&rg);
        let p = MultilevelPartitioner::default().partition(&graph, 1, 1.0, seed);
        prop_assert_eq!(p.edge_cut(&graph), 0);
        prop_assert!((p.imbalance(&graph) - 1.0).abs() < 1e-9);
    }
}

mod hierarchy_props {
    use super::{build, random_graph};
    use proptest::prelude::*;
    use streamloc_partition::{HierarchicalPartitioner, MultilevelPartitioner, Partitioner};

    proptest! {
        #[test]
        fn hierarchical_preserves_server_cut(
            rg in random_graph(), seed in any::<u64>(),
        ) {
            // By construction the hierarchical partitioner only
            // relabels the flat partition's parts, so the server-level
            // cut must be identical.
            let graph = build(&rg);
            let flat = MultilevelPartitioner::default().partition(&graph, 6, 1.2, seed);
            let hier = HierarchicalPartitioner::new(2, 3).partition(&graph, 6, 1.2, seed);
            prop_assert_eq!(hier.edge_cut(&graph), flat.edge_cut(&graph));
            // And the part *contents* are a permutation: same sorted
            // part weights.
            let mut a = flat.part_weights(&graph);
            let mut b = hier.part_weights(&graph);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn hierarchical_rack_cut_not_worse_than_contiguous(
            rg in random_graph(), seed in any::<u64>(),
        ) {
            let graph = build(&rg);
            let flat = MultilevelPartitioner::default().partition(&graph, 6, 1.2, seed);
            let hier = HierarchicalPartitioner::new(2, 3).partition(&graph, 6, 1.2, seed);
            let rack_cut = |p: &streamloc_partition::Partition| -> u64 {
                graph
                    .edges()
                    .filter(|&(u, v, _)| p.part(u) / 3 != p.part(v) / 3)
                    .map(|(_, _, w)| w)
                    .sum()
            };
            prop_assert!(
                rack_cut(&hier) <= rack_cut(&flat),
                "optimized grouping {} worse than contiguous {}",
                rack_cut(&hier), rack_cut(&flat)
            );
        }
    }
}
