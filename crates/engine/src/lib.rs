//! A Storm-like stream-processing topology model and a deterministic
//! cluster simulator.
//!
//! This crate is the substrate on which the locality-aware routing
//! reproduction runs (Caneill et al., Middleware 2016 — see the
//! workspace DESIGN.md). It provides:
//!
//! * the **application model** of paper §2: processing operators
//!   ([`Topology`], [`Operator`]) replicated into instances (POIs),
//!   connected by streams with the three grouping policies of §2.2
//!   ([`Grouping::Shuffle`], [`Grouping::LocalOrShuffle`],
//!   [`Grouping::Fields`]);
//! * a pluggable fields-grouping policy ([`KeyRouter`]) — the hook the
//!   locality-aware routing tables plug into;
//! * a **deterministic discrete-time simulator** ([`Simulation`]) that
//!   substitutes for the paper's 8-server Storm testbed: per-instance
//!   CPU budgets, per-server NIC budgets ([`ClusterSpec`]), in-memory
//!   local handoffs vs. priced remote transfers, queues and source
//!   admission control;
//! * the **reconfiguration mechanism** of §3.4 ([`ReconfigPlan`],
//!   [`Simulation::start_reconfiguration`]): routing-table waves,
//!   online key-state migration and tuple buffering without stream
//!   disruption;
//! * the **instrumentation hook** of §3.2 ([`PairObserver`]) invoked
//!   with the (input key, output key) pair of every processed tuple.
//!
//! # Quickstart
//!
//! ```
//! use streamloc_engine::{
//!     ClusterSpec, CountOperator, Grouping, Key, Placement, SimConfig,
//!     Simulation, SourceRate, Topology, Tuple,
//! };
//!
//! // Geo-tagged messages: route on location, then on hashtag.
//! let mut builder = Topology::builder();
//! let source = builder.source("tweets", 2, SourceRate::Saturate, |i| {
//!     let mut c = i as u64;
//!     Box::new(move || {
//!         c += 1;
//!         Some(Tuple::new([Key::new(c % 10), Key::new(c % 50)], 140))
//!     })
//! });
//! let by_location = builder.stateful("by_location", 2, CountOperator::factory());
//! let by_hashtag = builder.stateful("by_hashtag", 2, CountOperator::factory());
//! builder.connect(source, by_location, Grouping::fields(0));
//! builder.connect(by_location, by_hashtag, Grouping::fields(1));
//! let topology = builder.build()?;
//!
//! let cluster = ClusterSpec::lan_10g(2);
//! let placement = Placement::aligned(&topology, 2);
//! let mut sim = Simulation::new(topology, cluster, placement, SimConfig::default());
//! sim.run(20);
//! println!("throughput: {:.0} tuples/s", sim.metrics().avg_throughput(10));
//! # Ok::<(), streamloc_engine::BuildTopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod checkpoint;
mod cluster;
mod fault;
mod key;
mod live;
mod metrics;
pub mod obs;
mod operator;
mod operators_ext;
mod reconfig;
mod router;
mod sim;
mod topology;
mod tuple;

pub use checkpoint::{CheckpointError, ClusterCheckpoint};
pub use cluster::ClusterSpec;
pub use fault::{ControlClass, ControlFate, FaultEvent, FaultInjector, FaultPlan};
pub use key::{splitmix64, Key, KeyInterner};
pub use live::{InstanceReport, LiveConfig, LiveObserver, LiveReconfig, LiveRuntime};
pub use metrics::{EdgeWindowStats, MetricsLog, WindowMetrics};
pub use obs::{
    log2_bounds, Counter, EventTracer, Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
    SpanMetricName, SpanPhase, SpanRecorder, SpanSampler, TraceEvent, TraceEventKind,
};
pub use operator::{
    CountOperator, FnOperator, IdentityOperator, OpContext, Operator, OperatorFactory, StateValue,
};
pub use operators_ext::{ApproxDistinctOperator, WindowedCountOperator};
pub use reconfig::{ReconfigError, ReconfigInProgress, ReconfigPlan, WaveConfig};
pub use router::{
    key_run_len, push_dest_run, DestRun, HashRouter, KeyRouter, ModuloRouter, PartialKeyRouter,
    PermutationRouter, ShiftedRouter,
};
pub use sim::{PairObserver, Placement, SimConfig, Simulation};
pub use topology::{
    BuildTopologyError, Edge, EdgeId, Grouping, PoId, PoSpec, PoiId, ServerId, SourceFactory,
    SourceRate, Topology, TopologyBuilder, TupleSource,
};
pub use tuple::{Tuple, MAX_FIELDS};
