//! Cluster checkpointing: snapshot and restore of all keyed state and
//! routing tables.
//!
//! Paper §3.4 delegates crash recovery to the streaming engine ("If a
//! POI crashes, the guarantees are the ones provided by the streaming
//! engine and are not impacted by state migration"). This module is
//! that engine mechanism for the simulator: a [`ClusterCheckpoint`]
//! captures every instance's keyed state plus the currently installed
//! fields routers; [`Simulation::restore`] rolls a deployment back to
//! it, dropping in-flight tuples — the at-most-once behaviour of an
//! unacked Storm topology after a crash.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::key::Key;
use crate::operator::StateValue;
use crate::router::KeyRouter;
use crate::sim::{OutKind, Simulation};
use crate::topology::EdgeId;

/// A point-in-time snapshot of a [`Simulation`]'s recoverable state.
#[derive(Clone)]
pub struct ClusterCheckpoint {
    pub(crate) window_index: u64,
    pub(crate) states: Vec<HashMap<Key, StateValue>>,
    pub(crate) routers: Vec<Vec<(EdgeId, Arc<dyn KeyRouter>)>>,
}

impl fmt::Debug for ClusterCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterCheckpoint")
            .field("window_index", &self.window_index)
            .field("instances", &self.states.len())
            .field(
                "keys",
                &self.states.iter().map(HashMap::len).sum::<usize>(),
            )
            .finish()
    }
}

impl ClusterCheckpoint {
    /// Window index at which the snapshot was taken.
    #[must_use]
    pub fn window_index(&self) -> u64 {
        self.window_index
    }

    /// Total keys captured across all instances.
    #[must_use]
    pub fn total_keys(&self) -> usize {
        self.states.iter().map(HashMap::len).sum()
    }

    /// Deterministic fingerprint of the captured routing tables: for
    /// every instance and every captured fields edge, where keys
    /// `0..keys` would route among `parallelism` destinations. Two
    /// checkpoints with equal fingerprints route identically — the
    /// comparison tests use to verify an aborted wave reverted every
    /// table.
    #[must_use]
    pub fn router_fingerprint(&self, keys: u64, parallelism: usize) -> Vec<Vec<(EdgeId, Vec<u32>)>> {
        self.routers
            .iter()
            .map(|per_poi| {
                per_poi
                    .iter()
                    .map(|(edge, router)| {
                        (
                            *edge,
                            (0..keys)
                                .map(|k| router.route(Key::new(k), parallelism))
                                .collect(),
                        )
                    })
                    .collect()
            })
            .collect()
    }
}

/// Error returned by [`Simulation::checkpoint`] and
/// [`Simulation::restore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// A reconfiguration wave or pending migration is in flight;
    /// snapshotting mid-migration would capture a split state.
    ReconfigurationInFlight,
    /// The checkpoint's shape does not match this deployment.
    ShapeMismatch,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ReconfigurationInFlight => {
                f.write_str("a reconfiguration or state migration is in flight")
            }
            Self::ShapeMismatch => f.write_str("checkpoint does not match this topology"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl Simulation {
    /// Captures every instance's keyed state and the currently
    /// installed fields routers.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::ReconfigurationInFlight`] while a
    /// wave is propagating or key state is still migrating — a
    /// consistent cut requires quiescent ownership.
    pub fn checkpoint(&self) -> Result<ClusterCheckpoint, CheckpointError> {
        if self.reconfig_active() || self.pending_migrations() > 0 {
            return Err(CheckpointError::ReconfigurationInFlight);
        }
        let states = self.pois.iter().map(|p| p.state.clone()).collect();
        let routers = self
            .pois
            .iter()
            .map(|p| {
                p.out
                    .iter()
                    .filter_map(|o| match &o.kind {
                        OutKind::Fields { router, .. } => Some((o.edge, Arc::clone(router))),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        Ok(ClusterCheckpoint {
            window_index: self.window_index(),
            states,
            routers,
        })
    }

    /// Rolls the deployment back to `checkpoint`: keyed state and
    /// routing tables are restored, and everything volatile —
    /// input queues, network backlogs, buffered tuples, straggler
    /// forwarding maps — is dropped, exactly as a cluster-wide crash
    /// restart would. Metrics and the window clock keep running
    /// forward.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::ShapeMismatch`] if the checkpoint
    /// was taken on a different deployment, or
    /// [`CheckpointError::ReconfigurationInFlight`] if called while a
    /// wave is active (cancel semantics are not modeled).
    pub fn restore(&mut self, checkpoint: &ClusterCheckpoint) -> Result<(), CheckpointError> {
        if self.reconfig_active() {
            return Err(CheckpointError::ReconfigurationInFlight);
        }
        if checkpoint.states.len() != self.pois.len() {
            return Err(CheckpointError::ShapeMismatch);
        }
        for (poi, routers) in self.pois.iter().zip(&checkpoint.routers) {
            let fields_edges = poi
                .out
                .iter()
                .filter(|o| matches!(o.kind, OutKind::Fields { .. }))
                .count();
            if fields_edges != routers.len() {
                return Err(CheckpointError::ShapeMismatch);
            }
        }

        let mut dropped = 0i64;
        for (poi, (state, routers)) in self
            .pois
            .iter_mut()
            .zip(checkpoint.states.iter().zip(&checkpoint.routers))
        {
            dropped += poi.input.len() as i64;
            dropped += poi.pending.values().map(|b| b.len() as i64).sum::<i64>();
            poi.input.clear();
            poi.pending.clear();
            poi.departed.clear();
            poi.staged = None;
            poi.awaiting_propagates = 0;
            poi.state = state.clone();
            for (edge, router) in routers {
                for out in poi.out.iter_mut() {
                    if out.edge == *edge {
                        if let OutKind::Fields { router: slot, .. } = &mut out.kind {
                            *slot = Arc::clone(router);
                        }
                    }
                }
            }
        }
        for server in &mut self.servers {
            dropped += server
                .backlog
                .iter()
                .filter(|m| matches!(m.payload, crate::sim::NetPayload::Data { .. }))
                .count() as i64;
            server.backlog.clear();
        }
        self.control_queue.clear();
        self.in_flight -= dropped;
        debug_assert!(self.in_flight >= 0, "in-flight accounting underflow");
        Ok(())
    }
}
