//! Run metrics: throughput, locality, load balance, network usage.

use crate::reconfig::ReconfigError;
use crate::topology::{EdgeId, PoiId};

/// Per-edge transfer counters for one window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeWindowStats {
    /// Tuples handed to an instance on the same server (in-memory).
    pub local: u64,
    /// Tuples sent to an instance on another server.
    pub remote: u64,
    /// Among `remote`, tuples that also crossed a rack boundary.
    pub cross_rack: u64,
    /// Bytes put on the wire (remote tuples only, incl. overhead).
    pub bytes: u64,
}

impl EdgeWindowStats {
    /// Records `count` local (in-memory) transfers in one add — the
    /// columnar data plane's bulk entry point for run-length batches.
    pub fn record_local(&mut self, count: u64) {
        self.local += count;
    }

    /// Records `count` remote transfers carrying `bytes` on the wire,
    /// `cross_rack` of which also crossed a rack boundary.
    pub fn record_remote(&mut self, count: u64, cross_rack: u64, bytes: u64) {
        self.remote += count;
        self.cross_rack += cross_rack;
        self.bytes += bytes;
    }

    /// Fraction of transfers that stayed local (1.0 when idle).
    #[must_use]
    pub fn locality(&self) -> f64 {
        let total = self.local + self.remote;
        if total == 0 {
            1.0
        } else {
            self.local as f64 / total as f64
        }
    }
}

/// Everything measured during one simulation window.
#[derive(Debug, Clone, Default)]
pub struct WindowMetrics {
    /// Simulated time at the *end* of the window, seconds.
    pub time: f64,
    /// Tuples emitted by sources this window.
    pub emitted: u64,
    /// Tuples fully processed by sink operators this window.
    pub sink_tuples: u64,
    /// Per-edge transfer counters, indexed by edge id.
    pub edges: Vec<EdgeWindowStats>,
    /// Tuples processed per instance, indexed by global POI id.
    pub poi_processed: Vec<u64>,
    /// Key states migrated this window (reconfiguration traffic).
    pub migrated_states: u64,
    /// Bytes of state migrated this window.
    pub migrated_bytes: u64,
    /// Tuples that reached an instance after its key's state had
    /// already departed and were forwarded to the new owner.
    pub late_forwarded: u64,
    /// Tuples buffered while awaiting a migrated key state.
    pub buffered: u64,
    /// Sum over sink tuples of the windows spent between source
    /// emission and sink processing.
    pub latency_window_sum: u64,
    /// Number of sink tuples contributing to the latency sum.
    pub latency_count: u64,
    /// Largest per-tuple latency observed this window, in windows.
    pub latency_window_max: u64,
    /// Deepest instance input queue at the end of the window.
    pub max_queue_depth: usize,
    /// Messages waiting in network backlogs at the end of the window.
    pub backlog_messages: usize,
    /// Control messages dropped by fault injection this window.
    pub dropped_control: u64,
    /// Control messages delayed by fault injection this window.
    pub delayed_control: u64,
    /// Instances crashed by fault injection this window.
    pub crashes: u64,
    /// Reconfiguration failures surfaced this window (timeouts, nacks,
    /// lost migrations, aborts). Empty in fault-free runs.
    pub reconfig_errors: Vec<ReconfigError>,
}

/// The full log of a simulation run.
///
/// # Example
///
/// ```
/// use streamloc_engine::MetricsLog;
///
/// let log = MetricsLog::new(0.1);
/// assert_eq!(log.window_len(), 0.1);
/// assert!(log.windows().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct MetricsLog {
    window_len: f64,
    windows: Vec<WindowMetrics>,
}

impl MetricsLog {
    /// Creates an empty log for windows of `window_len` seconds.
    #[must_use]
    pub fn new(window_len: f64) -> Self {
        Self {
            window_len,
            windows: Vec::new(),
        }
    }

    /// Window length in seconds.
    #[must_use]
    pub fn window_len(&self) -> f64 {
        self.window_len
    }

    /// All recorded windows, oldest first.
    #[must_use]
    pub fn windows(&self) -> &[WindowMetrics] {
        &self.windows
    }

    pub(crate) fn push(&mut self, window: WindowMetrics) {
        self.windows.push(window);
    }

    /// Sink throughput per window, tuples/second.
    #[must_use]
    pub fn throughput_series(&self) -> Vec<f64> {
        self.windows
            .iter()
            .map(|w| w.sink_tuples as f64 / self.window_len)
            .collect()
    }

    /// Mean sink throughput (tuples/second) over windows
    /// `skip..windows.len()` — skip the warm-up.
    #[must_use]
    pub fn avg_throughput(&self, skip: usize) -> f64 {
        let tail = &self.windows[skip.min(self.windows.len())..];
        if tail.is_empty() {
            return 0.0;
        }
        let total: u64 = tail.iter().map(|w| w.sink_tuples).sum();
        total as f64 / (tail.len() as f64 * self.window_len)
    }

    /// Locality of `edge` over windows `skip..`: local transfers over
    /// all transfers (1.0 when the edge was idle).
    #[must_use]
    pub fn edge_locality(&self, edge: EdgeId, skip: usize) -> f64 {
        let tail = &self.windows[skip.min(self.windows.len())..];
        let (mut local, mut remote) = (0u64, 0u64);
        for w in tail {
            if let Some(stats) = w.edges.get(edge.index()) {
                local += stats.local;
                remote += stats.remote;
            }
        }
        if local + remote == 0 {
            1.0
        } else {
            local as f64 / (local + remote) as f64
        }
    }

    /// Load-balance factor over the given instances for windows
    /// `skip..`: max processed over average processed (1.0 = even).
    #[must_use]
    pub fn load_imbalance(&self, pois: &[PoiId], skip: usize) -> f64 {
        let tail = &self.windows[skip.min(self.windows.len())..];
        if pois.is_empty() {
            return 1.0;
        }
        let mut loads = vec![0u64; pois.len()];
        for w in tail {
            for (slot, poi) in loads.iter_mut().zip(pois) {
                *slot += w.poi_processed.get(poi.index()).copied().unwrap_or(0);
            }
        }
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let avg = total as f64 / loads.len() as f64;
        *loads.iter().max().expect("non-empty") as f64 / avg
    }

    /// Total bytes sent over the network in the whole run.
    #[must_use]
    pub fn total_network_bytes(&self) -> u64 {
        self.windows
            .iter()
            .map(|w| {
                w.edges.iter().map(|e| e.bytes).sum::<u64>() + w.migrated_bytes
            })
            .sum()
    }

    /// Total tuples emitted by sources in the whole run.
    #[must_use]
    pub fn total_emitted(&self) -> u64 {
        self.windows.iter().map(|w| w.emitted).sum()
    }

    /// Total tuples processed by sinks in the whole run.
    #[must_use]
    pub fn total_sink(&self) -> u64 {
        self.windows.iter().map(|w| w.sink_tuples).sum()
    }

    /// Rack locality of `edge` over windows `skip..`: fraction of
    /// transfers that stayed within one rack (local transfers count as
    /// in-rack). 1.0 when the edge was idle.
    #[must_use]
    pub fn edge_rack_locality(&self, edge: EdgeId, skip: usize) -> f64 {
        let tail = &self.windows[skip.min(self.windows.len())..];
        let (mut total, mut crossed) = (0u64, 0u64);
        for w in tail {
            if let Some(stats) = w.edges.get(edge.index()) {
                total += stats.local + stats.remote;
                crossed += stats.cross_rack;
            }
        }
        if total == 0 {
            1.0
        } else {
            1.0 - crossed as f64 / total as f64
        }
    }

    /// Mean end-to-end latency (source emission → sink processing)
    /// over windows `skip..`, in seconds. Returns 0.0 when no sink
    /// tuple was recorded. Resolution is one window.
    #[must_use]
    pub fn avg_latency(&self, skip: usize) -> f64 {
        let tail = &self.windows[skip.min(self.windows.len())..];
        let (sum, count) = tail.iter().fold((0u64, 0u64), |(s, c), w| {
            (s + w.latency_window_sum, c + w.latency_count)
        });
        if count == 0 {
            return 0.0;
        }
        sum as f64 / count as f64 * self.window_len
    }

    /// Largest end-to-end latency over windows `skip..`, seconds.
    #[must_use]
    pub fn max_latency(&self, skip: usize) -> f64 {
        let tail = &self.windows[skip.min(self.windows.len())..];
        tail.iter()
            .map(|w| w.latency_window_max)
            .max()
            .unwrap_or(0) as f64
            * self.window_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(sink: u64, edges: Vec<EdgeWindowStats>, poi: Vec<u64>) -> WindowMetrics {
        WindowMetrics {
            sink_tuples: sink,
            edges,
            poi_processed: poi,
            ..WindowMetrics::default()
        }
    }

    #[test]
    fn throughput_and_average() {
        let mut log = MetricsLog::new(0.5);
        log.push(window(50, vec![], vec![]));
        log.push(window(100, vec![], vec![]));
        log.push(window(200, vec![], vec![]));
        assert_eq!(log.throughput_series(), vec![100.0, 200.0, 400.0]);
        assert!((log.avg_throughput(1) - 300.0).abs() < 1e-9);
        assert_eq!(log.avg_throughput(10), 0.0);
    }

    #[test]
    fn edge_locality_aggregates() {
        let mut log = MetricsLog::new(1.0);
        let e = EdgeWindowStats {
            local: 3,
            remote: 1,
            cross_rack: 0,
            bytes: 100,
        };
        log.push(window(0, vec![e], vec![]));
        log.push(window(0, vec![e], vec![]));
        assert!((log.edge_locality(EdgeId(0), 0) - 0.75).abs() < 1e-12);
        assert_eq!(log.edge_locality(EdgeId(1), 0), 1.0, "idle edge is local");
    }

    #[test]
    fn imbalance_over_pois() {
        let mut log = MetricsLog::new(1.0);
        log.push(window(0, vec![], vec![30, 10, 20]));
        let pois = [PoiId(0), PoiId(1), PoiId(2)];
        assert!((log.load_imbalance(&pois, 0) - 1.5).abs() < 1e-12);
        assert_eq!(log.load_imbalance(&[], 0), 1.0);
    }

    #[test]
    fn bulk_records_match_unit_increments() {
        let mut bulk = EdgeWindowStats::default();
        bulk.record_local(3);
        bulk.record_remote(4, 1, 400);
        let mut unit = EdgeWindowStats::default();
        for _ in 0..3 {
            unit.local += 1;
        }
        for _ in 0..4 {
            unit.remote += 1;
            unit.bytes += 100;
        }
        unit.cross_rack += 1;
        assert_eq!(bulk, unit);
        assert!((bulk.locality() - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn idle_stats_default_to_balanced() {
        let log = MetricsLog::new(1.0);
        assert_eq!(log.avg_throughput(0), 0.0);
        assert_eq!(log.total_network_bytes(), 0);
        assert_eq!(EdgeWindowStats::default().locality(), 1.0);
    }
}
