//! Additional stateful operators beyond the paper's counting
//! evaluation operator: tumbling-window counts and approximate
//! distinct counts. Both keep serialized (`Bytes`) state, so
//! migrating them exercises realistic state sizes.

use crate::key::{splitmix64, Key};
use crate::operator::{OpContext, Operator, OperatorFactory, StateValue};
use crate::tuple::Tuple;

/// Counts tuples per key within tumbling windows of `window_tuples`
/// global input tuples, forwarding each input downstream.
///
/// State layout (16 bytes): `window_id: u64 | count: u64`. When an
/// instance sees a tuple belonging to a newer window, the key's
/// counter restarts — the behaviour of per-window trending statistics
/// such as "hashtags this hour".
///
/// # Example
///
/// ```
/// use streamloc_engine::WindowedCountOperator;
///
/// let op = WindowedCountOperator::new(1000);
/// assert_eq!(op.window_tuples(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedCountOperator {
    window_tuples: u64,
    seen: u64,
}

impl WindowedCountOperator {
    /// Creates the operator with the given tumbling-window length,
    /// measured in tuples processed by this instance.
    ///
    /// # Panics
    ///
    /// Panics if `window_tuples` is zero.
    #[must_use]
    pub fn new(window_tuples: u64) -> Self {
        assert!(window_tuples > 0, "window must be positive");
        Self {
            window_tuples,
            seen: 0,
        }
    }

    /// The configured window length in tuples.
    #[must_use]
    pub fn window_tuples(&self) -> u64 {
        self.window_tuples
    }

    /// A factory deploying one instance per POI.
    #[must_use]
    pub fn factory(window_tuples: u64) -> OperatorFactory {
        Box::new(move |_| Box::new(WindowedCountOperator::new(window_tuples)))
    }

    /// Decodes `(window_id, count)` from a state value.
    #[must_use]
    pub fn decode(state: &StateValue) -> Option<(u64, u64)> {
        match state {
            StateValue::Bytes(b) if b.len() == 16 => {
                let window = u64::from_le_bytes(b[..8].try_into().ok()?);
                let count = u64::from_le_bytes(b[8..].try_into().ok()?);
                Some((window, count))
            }
            _ => None,
        }
    }

    fn encode(window: u64, count: u64) -> StateValue {
        let mut bytes = Vec::with_capacity(16);
        bytes.extend_from_slice(&window.to_le_bytes());
        bytes.extend_from_slice(&count.to_le_bytes());
        StateValue::Bytes(bytes)
    }
}

impl Operator for WindowedCountOperator {
    fn process(&mut self, tuple: Tuple, ctx: &mut OpContext<'_>) {
        self.seen += 1;
        let window = self.seen / self.window_tuples;
        let state = ctx.state();
        let count = match Self::decode(state) {
            Some((w, c)) if w == window => c + 1,
            _ => 1,
        };
        *state = Self::encode(window, count);
        ctx.emit(tuple);
    }

    fn init_state(&self) -> StateValue {
        Self::encode(0, 0)
    }

    /// Applies the run chunk-by-chunk, one state write per tumbling
    /// window the run spans (usually one), instead of a decode/encode
    /// round trip per tuple.
    fn on_batch(&mut self, tuples: &[Tuple], ctx: &mut OpContext<'_>) {
        let state = ctx.state();
        let mut remaining = tuples.len() as u64;
        while remaining > 0 {
            let window = (self.seen + 1) / self.window_tuples;
            // Largest `seen` value still inside `window`.
            let window_end = window * self.window_tuples + (self.window_tuples - 1);
            let chunk = remaining.min(window_end - self.seen);
            self.seen += chunk;
            let count = match Self::decode(state) {
                Some((w, c)) if w == window => c + chunk,
                _ => chunk,
            };
            *state = Self::encode(window, count);
            remaining -= chunk;
        }
        ctx.emitted.extend_from_slice(tuples);
    }
}

/// Number of HyperLogLog registers kept per key (64 → ~13% relative
/// error, 64 bytes of state per key).
const HLL_REGISTERS: usize = 64;

/// Approximate per-key distinct count of a companion field, using a
/// small per-key HyperLogLog sketch — e.g. "distinct hashtags per
/// location". Forwards each input downstream.
///
/// State layout: `HLL_REGISTERS` one-byte registers.
#[derive(Debug, Clone)]
pub struct ApproxDistinctOperator {
    companion_field: usize,
}

impl ApproxDistinctOperator {
    /// Creates the operator counting distinct values of tuple field
    /// `companion_field`.
    #[must_use]
    pub fn new(companion_field: usize) -> Self {
        Self { companion_field }
    }

    /// A factory deploying one instance per POI.
    #[must_use]
    pub fn factory(companion_field: usize) -> OperatorFactory {
        Box::new(move |_| Box::new(ApproxDistinctOperator::new(companion_field)))
    }

    /// Estimated distinct count from a state value (the standard HLL
    /// estimator with small-range correction).
    #[must_use]
    pub fn estimate(state: &StateValue) -> Option<f64> {
        let StateValue::Bytes(registers) = state else {
            return None;
        };
        if registers.len() != HLL_REGISTERS {
            return None;
        }
        let m = HLL_REGISTERS as f64;
        let sum: f64 = registers.iter().map(|&r| 2f64.powi(-i32::from(r))).sum();
        let alpha = 0.709; // alpha_64
        let raw = alpha * m * m / sum;
        let zeros = registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            Some(m * (m / zeros as f64).ln())
        } else {
            Some(raw)
        }
    }

    fn add(registers: &mut [u8], value: Key) {
        let h = splitmix64(value.value() ^ 0xd15c);
        let idx = (h % HLL_REGISTERS as u64) as usize;
        let rank = ((h >> 6) | (1 << 57)).trailing_zeros() as u8 + 1;
        if registers[idx] < rank {
            registers[idx] = rank;
        }
    }
}

impl Operator for ApproxDistinctOperator {
    fn process(&mut self, tuple: Tuple, ctx: &mut OpContext<'_>) {
        let companion = tuple.key(self.companion_field);
        if let StateValue::Bytes(registers) = ctx.state() {
            Self::add(registers, companion);
        }
        ctx.emit(tuple);
    }

    fn init_state(&self) -> StateValue {
        StateValue::Bytes(vec![0u8; HLL_REGISTERS])
    }

    /// Borrows the register array once for the whole run (the
    /// companion field still varies per tuple, so each tuple hashes
    /// individually).
    fn on_batch(&mut self, tuples: &[Tuple], ctx: &mut OpContext<'_>) {
        if let StateValue::Bytes(registers) = ctx.state() {
            for tuple in tuples {
                Self::add(registers, tuple.key(self.companion_field));
            }
        }
        ctx.emitted.extend_from_slice(tuples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(op: &mut dyn Operator, tuple: Tuple, state: &mut StateValue) -> Vec<Tuple> {
        let mut emitted = Vec::new();
        let mut ctx = OpContext {
            state: Some(state),
            routing_key: Some(tuple.key(0)),
            emitted: &mut emitted,
        };
        op.process(tuple, &mut ctx);
        emitted
    }

    #[test]
    fn windowed_count_restarts_each_window() {
        let mut op = WindowedCountOperator::new(4);
        let mut state = op.init_state();
        let t = Tuple::new([Key::new(1)], 0);
        for _ in 0..3 {
            run(&mut op, t, &mut state);
        }
        assert_eq!(WindowedCountOperator::decode(&state), Some((0, 3)));
        // Tuple 4 crosses into window 1: counter restarts.
        run(&mut op, t, &mut state);
        assert_eq!(WindowedCountOperator::decode(&state), Some((1, 1)));
    }

    #[test]
    fn windowed_count_forwards_input() {
        let mut op = WindowedCountOperator::new(10);
        let mut state = op.init_state();
        let t = Tuple::new([Key::new(7)], 123);
        let out = run(&mut op, t, &mut state);
        assert_eq!(out, vec![t]);
    }

    #[test]
    fn windowed_state_is_sixteen_bytes() {
        let op = WindowedCountOperator::new(5);
        assert_eq!(op.init_state().size_bytes(), 16);
    }

    #[test]
    fn windowed_on_batch_matches_per_tuple_across_boundaries() {
        let t = Tuple::new([Key::new(1)], 0);
        // Run lengths chosen to land on, straddle and skip whole
        // window boundaries (window = 4).
        for lens in [vec![3, 1, 4], vec![6, 6], vec![1, 1, 1, 1, 9], vec![13]] {
            let mut batch_op = WindowedCountOperator::new(4);
            let mut batch_state = batch_op.init_state();
            let mut tuple_op = WindowedCountOperator::new(4);
            let mut tuple_state = tuple_op.init_state();
            for &n in &lens {
                let tuples = vec![t; n];
                let mut emitted = Vec::new();
                let mut ctx = OpContext {
                    state: Some(&mut batch_state),
                    routing_key: Some(t.key(0)),
                    emitted: &mut emitted,
                };
                batch_op.on_batch(&tuples, &mut ctx);
                assert_eq!(emitted, tuples);
                let mut per_tuple = Vec::new();
                for &tt in &tuples {
                    per_tuple.extend(run(&mut tuple_op, tt, &mut tuple_state));
                }
                assert_eq!(
                    WindowedCountOperator::decode(&batch_state),
                    WindowedCountOperator::decode(&tuple_state),
                    "diverged after runs {lens:?}"
                );
            }
        }
    }

    #[test]
    fn approx_distinct_on_batch_matches_per_tuple() {
        let tuples: Vec<Tuple> = (0..50u64)
            .map(|v| Tuple::new([Key::new(1), Key::new(v % 7)], 0))
            .collect();
        let mut batch_op = ApproxDistinctOperator::new(1);
        let mut batch_state = batch_op.init_state();
        let mut emitted = Vec::new();
        let mut ctx = OpContext {
            state: Some(&mut batch_state),
            routing_key: Some(Key::new(1)),
            emitted: &mut emitted,
        };
        batch_op.on_batch(&tuples, &mut ctx);
        assert_eq!(emitted, tuples);

        let mut tuple_op = ApproxDistinctOperator::new(1);
        let mut tuple_state = tuple_op.init_state();
        for &t in &tuples {
            run(&mut tuple_op, t, &mut tuple_state);
        }
        assert_eq!(batch_state, tuple_state);
    }

    #[test]
    fn approx_distinct_estimates_cardinality() {
        let mut op = ApproxDistinctOperator::new(1);
        let mut state = op.init_state();
        let n = 1000u64;
        for v in 0..n {
            let t = Tuple::new([Key::new(1), Key::new(v)], 0);
            run(&mut op, t, &mut state);
        }
        let est = ApproxDistinctOperator::estimate(&state).unwrap();
        let err = (est - n as f64).abs() / n as f64;
        assert!(err < 0.35, "estimate {est} too far from {n}");
    }

    #[test]
    fn approx_distinct_ignores_duplicates() {
        let mut op = ApproxDistinctOperator::new(1);
        let mut state = op.init_state();
        for _ in 0..500 {
            let t = Tuple::new([Key::new(1), Key::new(42)], 0);
            run(&mut op, t, &mut state);
        }
        let est = ApproxDistinctOperator::estimate(&state).unwrap();
        assert!((0.9..4.0).contains(&est), "single value estimated as {est}");
    }

    #[test]
    fn approx_distinct_state_is_fixed_size() {
        let op = ApproxDistinctOperator::new(1);
        assert_eq!(op.init_state().size_bytes(), HLL_REGISTERS as u64);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = WindowedCountOperator::new(0);
    }
}
