//! A real multi-threaded runtime executing the same [`Topology`] the
//! simulator models: one OS thread per operator instance, bounded
//! crossbeam channels between them, and the online reconfiguration
//! protocol of paper §3.4 running over actual message passing.
//!
//! The simulator (`sim.rs`) answers *performance* questions with a
//! controlled cost model; this runtime answers *functional* ones — it
//! executes user operators for real, under real thread interleavings,
//! with real backpressure. The reconfiguration wave (SEND_RECONF →
//! ACK → PROPAGATE → MIGRATE with tuple buffering) is the same
//! algorithm, here exercised against genuine concurrency instead of
//! deterministic windows. "Servers" are placement tags: transfers
//! between instances with different tags are counted as remote, so
//! locality statistics remain meaningful even though everything runs
//! in one process.
//!
//! Termination is by end-of-stream tokens: an exhausted (or stopped)
//! source sends `Eos` to every successor instance; an operator
//! forwards `Eos` once it has received one from every predecessor
//! instance and holds no tuple buffered for in-flight state — so
//! [`LiveRuntime::join`] returns exactly when the pipeline has fully
//! drained.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::checkpoint::ClusterCheckpoint;
use crate::fault::{ControlClass, ControlFate, FaultInjector, FaultPlan};
use crate::key::Key;
use crate::obs::{Counter, MetricsRegistry, SpanRecorder, SpanSampler};
use crate::operator::{OpContext, Operator, StateValue};
use crate::reconfig::{ReconfigError, WaveConfig};

/// Per-edge router updates carried by a `Reconf` message.
type RouterUpdates = Vec<(EdgeId, Arc<dyn KeyRouter>)>;
use crate::router::{DestRun, HashRouter, KeyRouter};
use crate::sim::{PairObserver, Placement};
use crate::topology::{EdgeId, Grouping, PoId, PoKind, SourceRate, Topology, TupleSource};
use crate::tuple::{tuple_run_len, Tuple};

/// Messages on an instance's inbox. Data and control share one FIFO
/// channel per receiver (like a TCP connection in Storm), so per-
/// sender ordering guarantees hold for `Eos`.
enum Msg {
    /// A data tuple.
    Data(Tuple),
    /// A run of data tuples coalesced by the sender (one channel
    /// message instead of `len()`); the receiver processes them in
    /// order, so FIFO semantics are identical to `len()` `Data`s.
    Batch(Vec<Tuple>),
    /// ③ New configuration for this instance.
    Reconf {
        routers: RouterUpdates,
        send: Vec<(Key, usize)>,
        receive: Vec<Key>,
    },
    /// ⑤ One predecessor instance (or the coordinator) has switched.
    Propagate,
    /// ⑥ Migrated state for a key this instance now owns.
    Migrate {
        key: Key,
        state: Option<StateValue>,
    },
    /// End of stream from one predecessor instance.
    Eos,
    /// Snapshot request: reply with a clone of the keyed state.
    StateProbe(Sender<HashMap<Key, StateValue>>),
    /// Wave recovery: apply the staged configuration *now*, without
    /// waiting for the remaining predecessor propagates (the manager
    /// resends this when ⑤ messages were lost and the wave deadline
    /// expired).
    ForceApply,
    /// Fault injection: the instance "crashes" — keyed state, queued
    /// messages and any staged wave configuration are lost — then
    /// respawns with the carried checkpoint state.
    Crash {
        restore: HashMap<Key, StateValue>,
    },
}

/// Worker → coordinator notifications, tagged with the worker's global
/// instance index so retries and duplicates never double count.
enum CoordMsg {
    /// ④ An instance staged its new configuration.
    Ack(usize),
    /// An instance applied its configuration and forwarded the wave.
    Applied(usize),
    /// An instance shut down (its `Eos` tokens are out).
    Exited(usize),
}

/// Per-edge transfer counters shared with the caller.
#[derive(Debug, Default)]
struct EdgeCounters {
    local: AtomicU64,
    remote: AtomicU64,
}

/// An instrumentation registration for the live runtime:
/// `(operator, instance, out edge, observed field, observer)`.
pub type LiveObserver = (PoId, usize, EdgeId, usize, Box<dyn PairObserver>);

/// The per-edge observer slots a worker holds.
type ObserverSlots = HashMap<usize, Vec<(usize, Box<dyn PairObserver>)>>;

/// A reconfiguration for the live runtime, in instance coordinates.
pub struct LiveReconfig {
    /// `(sender po, out edge, new router)` — installed on every
    /// instance of the sender operator.
    pub routers: Vec<(PoId, EdgeId, Arc<dyn KeyRouter>)>,
    /// `(operator, key, old instance, new instance)` state transfers.
    pub migrations: Vec<(PoId, Key, usize, usize)>,
}

impl std::fmt::Debug for LiveReconfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveReconfig")
            .field("router_updates", &self.routers.len())
            .field("migrations", &self.migrations.len())
            .finish()
    }
}

/// Final report of one operator instance after shutdown.
#[derive(Debug)]
pub struct InstanceReport {
    /// The operator this instance belonged to.
    pub po: PoId,
    /// Instance index within the operator.
    pub instance: usize,
    /// Keyed state at shutdown (empty for sources and stateless).
    pub state: HashMap<Key, StateValue>,
    /// Tuples processed (for sources: tuples emitted).
    pub processed: u64,
}

/// Runtime tuning knobs.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Bounded capacity of each instance inbox (backpressure).
    pub channel_capacity: usize,
    /// Data-plane batching: tuples per destination are coalesced into
    /// `Msg::Batch` sends of up to this many tuples. Buffers are
    /// flushed when full, whenever the worker would otherwise block on
    /// an empty inbox, and on every control-plane boundary (staging a
    /// `Reconf`, forwarding `Propagate`, answering a `StateProbe`,
    /// sending `Eos`) so per-sender FIFO ordering relative to control
    /// messages is preserved. `0` or `1` disables batching (one
    /// `Msg::Data` per tuple, the pre-batching behavior).
    pub batch_size: usize,
    /// Columnar data plane: batches stay first-class *inside* the
    /// workers, not only on the channel. Sources and operators route
    /// whole batches via [`KeyRouter::route_batch`] (one route per run
    /// of equal keys), edge and hot counters get one relaxed add per
    /// batch instead of one RMW per tuple, operators dispatch through
    /// [`Operator::on_batch`] (one state lookup per key run), and pair
    /// observers receive coalesced [`PairObserver::observe_run`]s.
    /// Strictly equivalent to the per-tuple path — final operator
    /// state, locality statistics and sketch contents are
    /// bit-identical — so it is on by default; disable to measure the
    /// per-tuple baseline.
    pub columnar: bool,
    /// Observability registry. When set, the runtime registers its
    /// hot-path counters (tuples routed/remote, migrations, migration
    /// bytes, batch sends/flushes) there; workers feed them with
    /// relaxed atomic increments.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Span tracing: a deterministic per-key sampler selecting the
    /// tuples whose per-hop latency is measured. Sources stamp sampled
    /// tuples with a monotonic origin time; every hop records queue
    /// wait and processing time into `span_*` histograms of
    /// [`metrics`](Self::metrics) (see
    /// [`SpanMetricName`](crate::SpanMetricName)), split by local vs.
    /// remote hop and tagged with the active routing epoch. `None`
    /// (the default) disables tracing: the hot path pays one
    /// never-taken branch per tuple.
    pub span_sampler: Option<SpanSampler>,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            channel_capacity: 8_192,
            batch_size: 64,
            columnar: true,
            metrics: None,
            span_sampler: None,
        }
    }
}

/// Hot-path instruments shared by every worker. Detached (unexported)
/// counters when no registry is attached, so increments never branch.
struct LiveHot {
    tuples_routed: Counter,
    tuples_remote: Counter,
    migrations_sent: Counter,
    migration_bytes: Counter,
    batch_sends: Counter,
    batch_tuples: Counter,
    batch_control_flushes: Counter,
    batch_drops: Counter,
    batch_dropped_tuples: Counter,
}

impl LiveHot {
    fn new(registry: Option<&MetricsRegistry>) -> Self {
        match registry {
            Some(reg) => Self {
                tuples_routed: reg.counter(
                    "live_tuples_routed_total",
                    "tuples sent on all edges by the live runtime",
                ),
                tuples_remote: reg.counter(
                    "live_tuples_remote_total",
                    "live tuples that crossed a server boundary",
                ),
                migrations_sent: reg.counter(
                    "live_migrations_total",
                    "key states shipped by live reconfiguration waves",
                ),
                migration_bytes: reg.counter(
                    "live_migration_bytes_total",
                    "bytes of key state shipped by live waves",
                ),
                batch_sends: reg.counter(
                    "live_batch_sends_total",
                    "coalesced Batch messages sent on the live data plane",
                ),
                batch_tuples: reg.counter(
                    "live_batch_tuples_total",
                    "tuples carried inside live Batch messages",
                ),
                batch_control_flushes: reg.counter(
                    "live_batch_control_flushes_total",
                    "send-buffer flushes forced by control-plane boundaries",
                ),
                batch_drops: reg.counter(
                    "live_batch_drops_total",
                    "Batch messages lost mid-flight to fault injection",
                ),
                batch_dropped_tuples: reg.counter(
                    "live_batch_dropped_tuples_total",
                    "tuples lost inside fault-dropped Batch messages",
                ),
            },
            None => Self {
                tuples_routed: Counter::detached(),
                tuples_remote: Counter::detached(),
                migrations_sent: Counter::detached(),
                migration_bytes: Counter::detached(),
                batch_sends: Counter::detached(),
                batch_tuples: Counter::detached(),
                batch_control_flushes: Counter::detached(),
                batch_drops: Counter::detached(),
                batch_dropped_tuples: Counter::detached(),
            },
        }
    }
}

/// Static routing description of one out edge (shared by the
/// instances of its sender operator).
struct OutInfo {
    edge: usize,
    dest_po: usize,
    field: Option<usize>,
    local_or_shuffle: bool,
    router: Arc<dyn KeyRouter>,
}

/// Everything workers share.
struct WorkerShared {
    inboxes: Vec<Sender<Msg>>,
    server: Vec<usize>,
    edges: Vec<EdgeCounters>,
    stop: AtomicBool,
    coord: Sender<CoordMsg>,
    outs: Vec<Vec<OutInfo>>,
    parallelism: Vec<usize>,
    poi_base: Vec<usize>,
    /// Fault injector consulted for every control message: ③/⑤ by the
    /// wave driver, ⑥ by the sending worker.
    fault: Mutex<Option<FaultInjector>>,
    /// `true` when the installed fault plan schedules data-plane batch
    /// drops. Gates the injector lock out of the batch send path: the
    /// hot path pays one relaxed load, never a mutex, unless batch
    /// faults are actually armed.
    batch_faults: AtomicBool,
    /// Data-plane batch size (≤ 1 disables batching).
    batch_size: usize,
    /// Columnar batch processing (see [`LiveConfig::columnar`]).
    columnar: bool,
    /// Hot-path observability counters (see [`LiveHot`]).
    hot: LiveHot,
    /// Span sampler (see [`LiveConfig::span_sampler`]); `None` keeps
    /// every span branch on the hot path never-taken.
    sampler: Option<SpanSampler>,
    /// Registry span histograms are registered in (each worker owns a
    /// [`SpanRecorder`]; idempotent registration shares the buckets).
    span_metrics: Option<Arc<MetricsRegistry>>,
    /// The runtime's monotonic clock epoch: all span timestamps are
    /// nanoseconds since this instant, so they are comparable across
    /// worker threads.
    clock: Instant,
    /// Routing epoch, bumped when a reconfiguration wave completes.
    /// Workers read it (relaxed) when recording span observations, so
    /// latency histograms are split before/after each wave.
    epoch: AtomicU64,
}

/// Nanoseconds since the runtime clock's epoch.
fn span_now_ns(clock: &Instant) -> u64 {
    clock.elapsed().as_nanos() as u64
}

/// Sends one coalesced batch, consulting the armed fault injector
/// first: a dropped batch is lost on the wire with every tuple in it
/// (at-most-once), accounted by the `live_batch_drop*` counters.
fn send_batch(shared: &WorkerShared, dest_idx: usize, batch: Vec<Tuple>) {
    shared.hot.batch_sends.inc();
    shared.hot.batch_tuples.add(batch.len() as u64);
    if shared.batch_faults.load(Ordering::Relaxed) {
        let dropped = shared
            .fault
            .lock()
            .as_mut()
            .is_some_and(|inj| inj.on_batch_send());
        if dropped {
            shared.hot.batch_drops.inc();
            shared.hot.batch_dropped_tuples.add(batch.len() as u64);
            return;
        }
    }
    let _ = shared.inboxes[dest_idx].send(Msg::Batch(batch));
}

/// Per-worker context threaded through the routing helper.
struct WorkerCtx {
    po_idx: usize,
    my_idx: usize,
    rr: usize,
    overrides: HashMap<usize, Arc<dyn KeyRouter>>,
    /// Per-destination send buffers (indexed by global instance), the
    /// data-plane batching of `LiveConfig::batch_size`. Edge counters
    /// and observers fire with the same aggregate totals as the
    /// per-tuple path (bulk adds on the columnar path), so locality
    /// statistics are bit-identical with and without batching.
    out_buf: Vec<Vec<Tuple>>,
    batch: usize,
    /// Columnar batch routing (copied from [`WorkerShared::columnar`]).
    columnar: bool,
    /// Scratch column of routing keys extracted from a staged batch.
    key_buf: Vec<Key>,
    /// Scratch `(dest, len)` runs produced by `route_batch`.
    run_buf: Vec<DestRun>,
}

impl WorkerCtx {
    fn new(po_idx: usize, instance: usize, shared: &WorkerShared) -> Self {
        Self {
            po_idx,
            my_idx: shared.poi_base[po_idx] + instance,
            rr: instance,
            overrides: HashMap::new(),
            out_buf: vec![Vec::new(); shared.inboxes.len()],
            batch: shared.batch_size,
            columnar: shared.columnar,
            key_buf: Vec::new(),
            run_buf: Vec::new(),
        }
    }

    /// Enqueues (or directly sends) one routed tuple to `dest_idx`.
    fn push_tuple(&mut self, shared: &WorkerShared, dest_idx: usize, tuple: Tuple) {
        if self.batch <= 1 {
            let _ = shared.inboxes[dest_idx].send(Msg::Data(tuple));
            return;
        }
        let buf = &mut self.out_buf[dest_idx];
        buf.push(tuple);
        if buf.len() >= self.batch {
            let batch = std::mem::replace(buf, Vec::with_capacity(self.batch));
            send_batch(shared, dest_idx, batch);
        }
    }

    /// Flushes every non-empty send buffer. `control` marks flushes
    /// forced by a control-plane boundary (counted separately); those
    /// must happen *before* the control message is sent so per-sender
    /// FIFO ordering — data routed under the old configuration arrives
    /// ahead of `Propagate`/`Eos` — is preserved.
    fn flush_outputs(&mut self, shared: &WorkerShared, control: bool) {
        if self.batch <= 1 {
            return;
        }
        let mut flushed = false;
        for dest_idx in 0..self.out_buf.len() {
            if self.out_buf[dest_idx].is_empty() {
                continue;
            }
            let batch = std::mem::take(&mut self.out_buf[dest_idx]);
            send_batch(shared, dest_idx, batch);
            flushed = true;
        }
        if control && flushed {
            shared.hot.batch_control_flushes.inc();
        }
    }

    /// Drops buffered tuples (crash semantics: unsent output dies with
    /// the instance, at-most-once).
    fn discard_outputs(&mut self) {
        for buf in &mut self.out_buf {
            buf.clear();
        }
    }

    fn route_out(&mut self, shared: &WorkerShared, tuple: Tuple) {
        let my_server = shared.server[self.my_idx];
        for out in &shared.outs[self.po_idx] {
            let dest_parallelism = shared.parallelism[out.dest_po];
            let dest_instance = match out.field {
                Some(field) => {
                    let router = self.overrides.get(&out.edge).unwrap_or(&out.router);
                    router.route(tuple.key(field), dest_parallelism) as usize
                }
                None => {
                    self.rr = self.rr.wrapping_add(1);
                    if out.local_or_shuffle {
                        let base = shared.poi_base[out.dest_po];
                        let locals: Vec<usize> = (0..dest_parallelism)
                            .filter(|&i| shared.server[base + i] == my_server)
                            .collect();
                        if locals.is_empty() {
                            self.rr % dest_parallelism
                        } else {
                            locals[self.rr % locals.len()]
                        }
                    } else {
                        self.rr % dest_parallelism
                    }
                }
            };
            let dest_idx = shared.poi_base[out.dest_po] + dest_instance;
            let counters = &shared.edges[out.edge];
            shared.hot.tuples_routed.inc();
            let remote_hop = shared.server[dest_idx] != my_server;
            if remote_hop {
                counters.remote.fetch_add(1, Ordering::Relaxed);
                shared.hot.tuples_remote.inc();
            } else {
                counters.local.fetch_add(1, Ordering::Relaxed);
            }
            // Span hop stamp: the sender knows the hop's locality, so
            // it stamps send time + remote bit per destination. Only
            // sampled tuples pay the clock read.
            let mut tuple = tuple;
            if tuple.is_span_sampled() {
                tuple.set_span_hop(span_now_ns(&shared.clock), remote_hop);
            }
            self.push_tuple(shared, dest_idx, tuple);
        }
    }

    /// Routes a staged batch of tuples in columnar form when this
    /// operator has exactly one fields-grouped out edge: the key
    /// column is extracted once, the router sees it whole
    /// ([`KeyRouter::route_batch`] — one route per run of equal keys),
    /// and the edge / hot counters get one relaxed add per batch
    /// instead of one contended RMW per tuple. Aggregate side effects
    /// (edge totals, fallback counters) are exactly those of routing
    /// per tuple.
    ///
    /// Operators with several out edges or shuffle grouping fall back
    /// to the per-tuple path — interleaving whole per-edge runs would
    /// reorder tuples *across* edges relative to per-tuple routing,
    /// and round-robin shuffle state is inherently per tuple.
    fn route_out_batch(&mut self, shared: &WorkerShared, tuples: &mut [Tuple]) {
        if tuples.is_empty() {
            return;
        }
        let outs = &shared.outs[self.po_idx];
        if !(self.columnar && outs.len() == 1 && outs[0].field.is_some()) {
            for tuple in tuples.iter().copied() {
                self.route_out(shared, tuple);
            }
            return;
        }
        let out = &outs[0];
        let field = out.field.expect("columnar edge is fields-grouped");
        let dest_parallelism = shared.parallelism[out.dest_po];
        let base = shared.poi_base[out.dest_po];
        let my_server = shared.server[self.my_idx];

        self.key_buf.clear();
        self.key_buf.extend(tuples.iter().map(|t| t.key(field)));
        let mut runs = std::mem::take(&mut self.run_buf);
        runs.clear();
        self.overrides
            .get(&out.edge)
            .unwrap_or(&out.router)
            .route_batch(&self.key_buf, dest_parallelism, &mut runs);

        // One clock read per batch covers every span hop stamp in it;
        // sampler off ⇒ the whole block is skipped.
        let hop_now = shared.sampler.as_ref().map(|_| span_now_ns(&shared.clock));

        let (mut local, mut remote) = (0u64, 0u64);
        let mut offset = 0usize;
        for run in &runs {
            let len = run.len as usize;
            let dest_idx = base + run.dest as usize;
            let remote_hop = shared.server[dest_idx] != my_server;
            if remote_hop {
                remote += u64::from(run.len);
            } else {
                local += u64::from(run.len);
            }
            if let Some(now) = hop_now {
                // One predictable branch per tuple: at 1/64 sampling
                // the stamp is almost never taken, and the plain pass
                // beats re-detecting key runs just to share it.
                for t in &mut tuples[offset..offset + len] {
                    if t.is_span_sampled() {
                        t.set_span_hop(now, remote_hop);
                    }
                }
            }
            let mut rest = &tuples[offset..offset + len];
            offset += len;
            if self.batch <= 1 {
                for &tuple in rest {
                    let _ = shared.inboxes[dest_idx].send(Msg::Data(tuple));
                }
                continue;
            }
            // Append the run in chunks sized to the remaining buffer
            // room, so batch boundaries land exactly where per-tuple
            // pushes would put them.
            while !rest.is_empty() {
                let buf = &mut self.out_buf[dest_idx];
                let take = rest.len().min(self.batch - buf.len());
                buf.extend_from_slice(&rest[..take]);
                rest = &rest[take..];
                if buf.len() >= self.batch {
                    let batch = std::mem::replace(buf, Vec::with_capacity(self.batch));
                    send_batch(shared, dest_idx, batch);
                }
            }
        }
        self.run_buf = runs;

        // One deferred add per counter per batch — the contended
        // atomics are the dominant per-tuple cost this path removes.
        shared.hot.tuples_routed.add(tuples.len() as u64);
        let counters = &shared.edges[out.edge];
        if local > 0 {
            counters.local.fetch_add(local, Ordering::Relaxed);
        }
        if remote > 0 {
            counters.remote.fetch_add(remote, Ordering::Relaxed);
            shared.hot.tuples_remote.add(remote);
        }
    }
}

/// A running multi-threaded deployment of a [`Topology`].
///
/// # Example
///
/// ```
/// use streamloc_engine::{
///     CountOperator, Grouping, Key, LiveConfig, LiveRuntime, Placement,
///     SourceRate, Topology, Tuple,
/// };
///
/// let mut builder = Topology::builder();
/// let s = builder.source("S", 2, SourceRate::Saturate, |i| {
///     let mut left = 1000u32;
///     let mut c = i as u64;
///     Box::new(move || {
///         if left == 0 {
///             return None;
///         }
///         left -= 1;
///         c += 1;
///         Some(Tuple::new([Key::new(c % 8)], 0))
///     })
/// });
/// let a = builder.stateful("A", 2, CountOperator::factory());
/// builder.connect(s, a, Grouping::fields(0));
/// let topology = builder.build()?;
///
/// let placement = Placement::aligned(&topology, 2);
/// let runtime = LiveRuntime::start(topology, placement, 2, LiveConfig::default());
/// let reports = runtime.join();
/// let counted: u64 = reports
///     .iter()
///     .flat_map(|r| r.state.values())
///     .filter_map(|v| v.as_count())
///     .sum();
/// assert_eq!(counted, 2000);
/// # Ok::<(), streamloc_engine::BuildTopologyError>(())
/// ```
pub struct LiveRuntime {
    shared: Arc<WorkerShared>,
    handles: Vec<JoinHandle<InstanceReport>>,
    coord_rx: Receiver<CoordMsg>,
    roots: Vec<usize>,
    n_instances: usize,
    last_checkpoint: Option<ClusterCheckpoint>,
    checkpoint_seq: u64,
}

impl std::fmt::Debug for LiveRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveRuntime")
            .field("instances", &self.n_instances)
            .finish_non_exhaustive()
    }
}

impl LiveRuntime {
    /// Deploys `topology` on `servers` placement tags and starts every
    /// instance thread.
    ///
    /// # Panics
    ///
    /// Panics if the placement references servers outside
    /// `0..servers`.
    #[must_use]
    pub fn start(
        topology: Topology,
        placement: Placement,
        servers: usize,
        config: LiveConfig,
    ) -> Self {
        Self::start_with_observers(topology, placement, servers, config, Vec::new())
    }

    /// Like [`start`](Self::start), additionally installing pair
    /// observers: `(operator, instance, out edge, observed field,
    /// observer)` — the §3.2 instrumentation for live deployments.
    /// The observed field is normally the routed field of the edge;
    /// see [`Simulation::add_pair_observer`] for the
    /// through-stateless case.
    ///
    /// [`Simulation::add_pair_observer`]: crate::Simulation::add_pair_observer
    ///
    /// # Panics
    ///
    /// Panics if the placement references servers outside
    /// `0..servers`.
    #[must_use]
    pub fn start_with_observers(
        topology: Topology,
        placement: Placement,
        servers: usize,
        config: LiveConfig,
        observers: Vec<LiveObserver>,
    ) -> Self {
        assert!(servers > 0, "at least one server tag");
        let n_pos = topology.operator_count();
        let mut poi_base = Vec::with_capacity(n_pos);
        let mut parallelism = Vec::with_capacity(n_pos);
        let mut next = 0usize;
        for po_idx in 0..n_pos {
            poi_base.push(next);
            let p = topology.po(PoId(po_idx)).parallelism();
            parallelism.push(p);
            next += p;
        }
        let n_instances = next;

        let mut inboxes = Vec::with_capacity(n_instances);
        let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(n_instances);
        for _ in 0..n_instances {
            let (tx, rx) = bounded::<Msg>(config.channel_capacity);
            inboxes.push(tx);
            receivers.push(Some(rx));
        }
        let mut server = Vec::with_capacity(n_instances);
        for (po_idx, &p) in parallelism.iter().enumerate() {
            for i in 0..p {
                let tag = placement.server(PoId(po_idx), i).0;
                assert!(tag < servers, "placement server out of range");
                server.push(tag);
            }
        }
        // Bounded: per wave attempt a worker sends at most one Ack and
        // one Applied, plus one lifetime Exited; with the default retry
        // budget this capacity is never reached, so workers never block
        // on coordinator notifications.
        let (coord_tx, coord_rx) = bounded(8 * n_instances + 16);

        let mut outs: Vec<Vec<OutInfo>> = Vec::with_capacity(n_pos);
        for po_idx in 0..n_pos {
            outs.push(
                topology
                    .out_edges(PoId(po_idx))
                    .iter()
                    .map(|&eid| {
                        let e = topology.edge(eid);
                        let (field, router, los): (Option<usize>, Arc<dyn KeyRouter>, bool) =
                            match e.grouping() {
                                Grouping::Fields { field, router } => {
                                    (Some(*field), Arc::clone(router), false)
                                }
                                Grouping::LocalOrShuffle => (None, Arc::new(HashRouter), true),
                                Grouping::Shuffle => (None, Arc::new(HashRouter), false),
                            };
                        OutInfo {
                            edge: eid.index(),
                            dest_po: e.to().index(),
                            field,
                            local_or_shuffle: los,
                            router,
                        }
                    })
                    .collect(),
            );
        }
        let state_fields: Vec<Option<usize>> = (0..n_pos)
            .map(|po_idx| topology.state_field(PoId(po_idx)))
            .collect();
        let pred_instances: Vec<usize> = (0..n_pos)
            .map(|po_idx| {
                topology
                    .in_edges(PoId(po_idx))
                    .iter()
                    .map(|&e| parallelism[topology.edge(e).from().index()])
                    .sum()
            })
            .collect();
        let succ_instances: Vec<Vec<usize>> = (0..n_pos)
            .map(|po_idx| {
                topology
                    .out_edges(PoId(po_idx))
                    .iter()
                    .flat_map(|&e| {
                        let to = topology.edge(e).to().index();
                        let base = poi_base[to];
                        (0..parallelism[to]).map(move |i| base + i)
                    })
                    .collect()
            })
            .collect();
        let roots: Vec<usize> = (0..n_pos)
            .filter(|&po| topology.in_edges(PoId(po)).is_empty())
            .flat_map(|po| {
                let base = poi_base[po];
                (0..parallelism[po]).map(move |i| base + i)
            })
            .collect();

        let shared = Arc::new(WorkerShared {
            inboxes,
            server,
            edges: (0..topology.edges().len())
                .map(|_| EdgeCounters::default())
                .collect(),
            stop: AtomicBool::new(false),
            coord: coord_tx,
            outs,
            parallelism: parallelism.clone(),
            poi_base: poi_base.clone(),
            fault: Mutex::new(None),
            batch_faults: AtomicBool::new(false),
            batch_size: config.batch_size,
            columnar: config.columnar,
            hot: LiveHot::new(config.metrics.as_deref()),
            sampler: config.span_sampler,
            span_metrics: config.metrics.clone(),
            clock: Instant::now(),
            epoch: AtomicU64::new(0),
        });

        type ObserverEntry = (EdgeId, usize, Box<dyn PairObserver>);
        let mut observer_map: HashMap<(usize, usize), Vec<ObserverEntry>> = HashMap::new();
        for (po, instance, edge, field, obs) in observers {
            observer_map
                .entry((po.index(), instance))
                .or_default()
                .push((edge, field, obs));
        }

        let Topology { pos, .. } = topology;
        let mut handles = Vec::with_capacity(n_instances);
        for (po_idx, po) in pos.into_iter().enumerate() {
            let base = poi_base[po_idx];
            for instance in 0..po.parallelism {
                let shared = Arc::clone(&shared);
                let rx = receivers[base + instance].take().expect("unique receiver");
                let succs = succ_instances[po_idx].clone();
                match &po.kind {
                    PoKind::Source { factory, rate } => {
                        let gen = factory(instance);
                        let rate = *rate;
                        handles.push(std::thread::spawn(move || {
                            source_loop(po_idx, instance, gen, rate, shared, succs, rx)
                        }));
                    }
                    PoKind::Operator { factory, stateful } => {
                        let op = factory(instance);
                        let stateful = *stateful;
                        let state_field = state_fields[po_idx];
                        let preds = pred_instances[po_idx];
                        let obs = observer_map.remove(&(po_idx, instance)).unwrap_or_default();
                        handles.push(std::thread::spawn(move || {
                            operator_loop(
                                po_idx,
                                instance,
                                op,
                                stateful,
                                state_field,
                                preds,
                                succs,
                                obs,
                                shared,
                                rx,
                            )
                        }));
                    }
                }
            }
        }

        Self {
            shared,
            handles,
            coord_rx,
            roots,
            n_instances,
            last_checkpoint: None,
            checkpoint_seq: 0,
        }
    }

    /// Number of instance threads.
    #[must_use]
    pub fn instances(&self) -> usize {
        self.n_instances
    }

    /// Locality of `edge` so far: local transfers / all transfers
    /// (1.0 when idle).
    ///
    /// # Panics
    ///
    /// Panics if `edge` is unknown.
    #[must_use]
    pub fn edge_locality(&self, edge: EdgeId) -> f64 {
        let counters = &self.shared.edges[edge.index()];
        let local = counters.local.load(Ordering::Relaxed);
        let remote = counters.remote.load(Ordering::Relaxed);
        if local + remote == 0 {
            1.0
        } else {
            local as f64 / (local + remote) as f64
        }
    }

    /// Snapshot of one instance's keyed state (blocks briefly).
    #[must_use]
    pub fn probe_state(&self, po: PoId, instance: usize) -> Option<HashMap<Key, StateValue>> {
        let idx = self.shared.poi_base[po.index()] + instance;
        let (tx, rx) = bounded(1);
        if self.shared.inboxes[idx].send(Msg::StateProbe(tx)).is_err() {
            return None;
        }
        rx.recv().ok()
    }

    /// Runs the online reconfiguration protocol (③–⑥ of Algorithm 1)
    /// and blocks until every instance has applied its new routing
    /// tables. Data keeps flowing throughout; tuples for keys whose
    /// state is still in flight are buffered at their new owner.
    ///
    /// Equivalent to [`reconfigure_with_deadline`] with the default
    /// [`WaveConfig`].
    ///
    /// [`reconfigure_with_deadline`]: Self::reconfigure_with_deadline
    ///
    /// # Panics
    ///
    /// Panics if the wave fails — e.g. the pipeline drains (sources
    /// exhaust and instances shut down) while the wave is still
    /// propagating, or the deadline and every retry are exhausted.
    pub fn reconfigure(&self, plan: LiveReconfig) {
        if let Err(e) = self.reconfigure_with_deadline(plan, WaveConfig::default()) {
            panic!("live reconfiguration failed: {e}");
        }
    }

    /// What the injector (if armed) decides about one control message.
    fn control_fate(&self, class: ControlClass) -> ControlFate {
        self.shared
            .fault
            .lock()
            .as_mut()
            .map_or(ControlFate::Deliver, |inj| inj.on_control(class))
    }

    /// Runs the reconfiguration wave under a deadline with bounded
    /// retries, the live runtime's failure-recovery protocol:
    ///
    /// * ③ `SEND_RECONF` messages that get lost (fault injection, dead
    ///   instance) are detected by the wave missing its per-attempt
    ///   deadline and resent on the next attempt — instances that
    ///   already applied are left alone.
    /// * ⑤ `PROPAGATE` losses are recovered by resending the staged
    ///   configuration and then force-applying it directly at each
    ///   straggler, which re-forwards the wave downstream.
    /// * An instance that exits (or whose inbox is gone) counts as
    ///   done — its `Eos` tokens are out and it holds no state the
    ///   wave could move — but the wave reports
    ///   [`ReconfigError::Nack`] since it could not complete as sent.
    ///
    /// One "window" of [`WaveConfig::deadline_windows`] is interpreted
    /// as 100 ms here; retry `k` gets `deadline × backoff^k`. Injected
    /// [`ControlFate::Delay`] fates use the same scale: a delay of `d`
    /// windows holds the message in a coordinator-side timer queue for
    /// `d × 100 ms` — the coordinator keeps collecting acks meanwhile
    /// instead of sleeping.
    ///
    /// # Errors
    ///
    /// [`ReconfigError::Timeout`] when the deadline and every retry
    /// are exhausted with instances still unapplied;
    /// [`ReconfigError::Nack`] when the wave completed but one or more
    /// participants had exited mid-wave.
    pub fn reconfigure_with_deadline(
        &self,
        plan: LiveReconfig,
        wave: WaveConfig,
    ) -> Result<(), ReconfigError> {
        let n = self.n_instances;
        // Pre-split the plan per instance so retries can resend it.
        let mut routers: Vec<RouterUpdates> = vec![Vec::new(); n];
        for (po, edge, router) in &plan.routers {
            let base = self.shared.poi_base[po.index()];
            for i in 0..self.shared.parallelism[po.index()] {
                routers[base + i].push((*edge, Arc::clone(router)));
            }
        }
        let mut send: Vec<Vec<(Key, usize)>> = vec![Vec::new(); n];
        let mut receive: Vec<Vec<Key>> = vec![Vec::new(); n];
        for &(po, key, old, new) in &plan.migrations {
            let base = self.shared.poi_base[po.index()];
            send[base + old].push((key, base + new));
            receive[base + new].push(key);
        }

        let mut acked: HashSet<usize> = HashSet::new();
        let mut applied: HashSet<usize> = HashSet::new();
        let mut exited: HashSet<usize> = HashSet::new();
        // Discard coordinator leftovers of earlier waves; exits are
        // permanent and kept.
        while let Ok(msg) = self.coord_rx.try_recv() {
            if let CoordMsg::Exited(idx) = msg {
                exited.insert(idx);
            }
        }
        let staged_done = |acked: &HashSet<usize>,
                           applied: &HashSet<usize>,
                           exited: &HashSet<usize>| {
            (0..n).all(|i| acked.contains(&i) || applied.contains(&i) || exited.contains(&i))
        };
        let apply_done = |applied: &HashSet<usize>, exited: &HashSet<usize>| {
            (0..n).all(|i| applied.contains(&i) || exited.contains(&i))
        };

        // Delay-injected control messages wait here with their real
        // due time instead of blocking the coordinator; they are
        // delivered from the ④/⑥ collection loops as they come due.
        let mut timers: Vec<(Instant, usize, Msg)> = Vec::new();

        let mut last_attempt = 0;
        for attempt in 0..=wave.max_retries {
            last_attempt = attempt;
            let budget = Duration::from_millis(
                100 * wave.deadline_windows.max(2)
                    * wave.backoff.max(1).saturating_pow(attempt),
            );
            let deadline = Instant::now() + budget;

            // ③ stage at every instance that has not applied yet. The
            // injector may drop (recovered by the next attempt) or
            // delay messages (queued with their configured duration).
            for idx in (0..n).rev() {
                if applied.contains(&idx) || exited.contains(&idx) {
                    continue;
                }
                let msg = Msg::Reconf {
                    routers: routers[idx].clone(),
                    send: send[idx].clone(),
                    receive: receive[idx].clone(),
                };
                match self.control_fate(ControlClass::SendReconf) {
                    ControlFate::Deliver => {
                        if self.shared.inboxes[idx].send(msg).is_err() {
                            exited.insert(idx);
                        }
                    }
                    ControlFate::Drop => {}
                    ControlFate::Delay(d) => timers.push((
                        Instant::now() + Duration::from_millis(100 * d.max(1)),
                        idx,
                        msg,
                    )),
                }
            }

            // ④ collect acks until the deadline, delivering queued
            // delayed messages as they come due.
            while !staged_done(&acked, &applied, &exited) {
                deliver_due_timers(&self.shared, &mut timers, &applied, &mut exited);
                let now = Instant::now();
                let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    break;
                };
                let wait = next_timer_due(&timers)
                    .map_or(left, |due| due.saturating_duration_since(now).min(left));
                match self.coord_rx.recv_timeout(wait) {
                    Ok(CoordMsg::Ack(idx)) => {
                        acked.insert(idx);
                    }
                    Ok(CoordMsg::Applied(idx)) => {
                        applied.insert(idx);
                    }
                    Ok(CoordMsg::Exited(idx)) => {
                        exited.insert(idx);
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            if !staged_done(&acked, &applied, &exited) {
                continue; // deadline missed in the stage phase: retry
            }

            // ⑤ release the wave. First attempt: propagate from the
            // roots, the paper's progressive wave. Retries: force-apply
            // directly at each straggler — the propagates it was
            // waiting for are lost for good.
            if attempt == 0 {
                for &root in &self.roots {
                    match self.control_fate(ControlClass::Propagate) {
                        ControlFate::Deliver => {
                            // A dead root is tracked immediately — the
                            // wave must not wait on its apply.
                            if self.shared.inboxes[root].send(Msg::Propagate).is_err() {
                                exited.insert(root);
                            }
                        }
                        ControlFate::Drop => {}
                        ControlFate::Delay(d) => timers.push((
                            Instant::now() + Duration::from_millis(100 * d.max(1)),
                            root,
                            Msg::Propagate,
                        )),
                    }
                }
            } else {
                for idx in 0..n {
                    if !applied.contains(&idx)
                        && !exited.contains(&idx)
                        && self.shared.inboxes[idx].send(Msg::ForceApply).is_err()
                    {
                        exited.insert(idx);
                    }
                }
            }

            // ⑥ wait for every instance to apply, until the deadline.
            while !apply_done(&applied, &exited) {
                deliver_due_timers(&self.shared, &mut timers, &applied, &mut exited);
                let now = Instant::now();
                let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    break;
                };
                let wait = next_timer_due(&timers)
                    .map_or(left, |due| due.saturating_duration_since(now).min(left));
                match self.coord_rx.recv_timeout(wait) {
                    Ok(CoordMsg::Ack(idx)) => {
                        acked.insert(idx);
                    }
                    Ok(CoordMsg::Applied(idx)) => {
                        applied.insert(idx);
                    }
                    Ok(CoordMsg::Exited(idx)) => {
                        exited.insert(idx);
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            if apply_done(&applied, &exited) {
                // Bump the routing epoch: span observations recorded
                // from here on ran under the new tables. Use the
                // epoch the manager stamped on its tables when
                // available (keeps live and manager numbering
                // aligned), but never go backwards.
                let stamped = plan
                    .routers
                    .iter()
                    .filter_map(|(_, _, r)| r.epoch())
                    .max()
                    .unwrap_or(0);
                let next = (self.shared.epoch.load(Ordering::Relaxed) + 1).max(stamped);
                self.shared.epoch.store(next, Ordering::Relaxed);
                return if exited.is_empty() {
                    Ok(())
                } else {
                    Err(ReconfigError::Nack)
                };
            }
        }
        Err(ReconfigError::Timeout {
            attempt: last_attempt,
        })
    }

    /// Arms fault injection: [`DropControl`] / [`DelayControl`] events
    /// fire against the control messages of subsequent waves (③/⑤ at
    /// the wave driver, ⑥ at the sending worker). `CrashPoi` and
    /// `KillManager` events are simulator-driven; crash live instances
    /// explicitly with [`crash_instance`](Self::crash_instance).
    ///
    /// [`DropControl`]: crate::FaultEvent::DropControl
    /// [`DelayControl`]: crate::FaultEvent::DelayControl
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        // Arm the batch-send hook before the injector is visible, so a
        // concurrent sender that sees the gate up always finds the
        // injector installed.
        self.shared
            .batch_faults
            .store(plan.has_batch_faults(), Ordering::Relaxed);
        *self.shared.fault.lock() = Some(FaultInjector::new(plan));
    }

    /// Snapshots every instance's keyed state into a
    /// [`ClusterCheckpoint`] and keeps it as the respawn point for
    /// [`crash_instance`](Self::crash_instance). Blocks briefly (one
    /// state probe per instance). Routing tables are not captured: a
    /// respawned live instance re-fetches the *current* tables from
    /// the manager, not the checkpoint's.
    pub fn checkpoint_now(&mut self) -> ClusterCheckpoint {
        let mut states = Vec::with_capacity(self.n_instances);
        for po_idx in 0..self.shared.parallelism.len() {
            for i in 0..self.shared.parallelism[po_idx] {
                states.push(self.probe_state(PoId(po_idx), i).unwrap_or_default());
            }
        }
        self.checkpoint_seq += 1;
        let cp = ClusterCheckpoint {
            window_index: self.checkpoint_seq,
            states,
            routers: vec![Vec::new(); self.n_instances],
        };
        self.last_checkpoint = Some(cp.clone());
        cp
    }

    /// The snapshot [`crash_instance`](Self::crash_instance) respawns
    /// from, if [`checkpoint_now`](Self::checkpoint_now) was called.
    #[must_use]
    pub fn last_checkpoint(&self) -> Option<&ClusterCheckpoint> {
        self.last_checkpoint.as_ref()
    }

    /// Crashes one instance: its keyed state, queued inbox messages
    /// and any staged wave configuration are lost, then it respawns
    /// from the last [`checkpoint_now`](Self::checkpoint_now) snapshot
    /// (empty state if none was taken). Crashed sources stay down — a
    /// restarted generator would replay its stream. At-most-once:
    /// state updates since the checkpoint and queued tuples are gone.
    pub fn crash_instance(&self, po: PoId, instance: usize) {
        let idx = self.shared.poi_base[po.index()] + instance;
        let restore = self
            .last_checkpoint
            .as_ref()
            .and_then(|cp| cp.states.get(idx).cloned())
            .unwrap_or_default();
        let _ = self.shared.inboxes[idx].send(Msg::Crash { restore });
    }

    /// Asks saturating sources to stop; finite sources stop on their
    /// own when exhausted.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
    }

    /// Waits for the pipeline to drain (all `Eos` tokens delivered)
    /// and returns every instance's final report, sorted by
    /// `(operator, instance)`. Infinite sources must be stopped with
    /// [`stop`](Self::stop) first.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    #[must_use]
    pub fn join(self) -> Vec<InstanceReport> {
        let mut reports: Vec<InstanceReport> = self
            .handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        reports.sort_by_key(|r| (r.po.index(), r.instance));
        reports
    }
}

/// Delivers every delay-injected control message whose due time has
/// passed. Timers aimed at an instance that already finished the wave
/// are dropped (stale); a failed send marks the target as exited so
/// the wave never waits on a dead instance.
fn deliver_due_timers(
    shared: &WorkerShared,
    timers: &mut Vec<(Instant, usize, Msg)>,
    applied: &HashSet<usize>,
    exited: &mut HashSet<usize>,
) {
    let now = Instant::now();
    let mut i = 0;
    while i < timers.len() {
        if timers[i].0 > now {
            i += 1;
            continue;
        }
        let (_, idx, msg) = timers.swap_remove(i);
        if applied.contains(&idx) || exited.contains(&idx) {
            continue;
        }
        if shared.inboxes[idx].send(msg).is_err() {
            exited.insert(idx);
        }
    }
}

/// Earliest due time among the queued delayed control messages.
fn next_timer_due(timers: &[(Instant, usize, Msg)]) -> Option<Instant> {
    timers.iter().map(|t| t.0).min()
}

fn source_loop(
    po_idx: usize,
    instance: usize,
    mut gen: Box<dyn TupleSource>,
    rate: SourceRate,
    shared: Arc<WorkerShared>,
    successors: Vec<usize>,
    rx: Receiver<Msg>,
) -> InstanceReport {
    let mut ctx = WorkerCtx::new(po_idx, instance, &shared);
    let my_idx = ctx.my_idx;
    let mut emitted = 0u64;
    let mut stage: Vec<Tuple> = Vec::with_capacity(64);
    let mut staged: Option<RouterUpdates> = None;
    let mut down = false;
    let batch_sleep = match rate {
        SourceRate::Saturate => None,
        SourceRate::PerSecond(r) => Some(std::time::Duration::from_secs_f64(
            64.0 / r.max(1.0),
        )),
    };
    loop {
        // Participate in the control plane between batches.
        while let Ok(msg) = rx.try_recv() {
            match msg {
                Msg::Reconf { routers, .. } => {
                    ctx.flush_outputs(&shared, true);
                    staged = Some(routers);
                    let _ = shared.coord.send(CoordMsg::Ack(my_idx));
                }
                Msg::Propagate | Msg::ForceApply => {
                    // Tuples routed under the old tables must reach
                    // their destinations before the wave does.
                    ctx.flush_outputs(&shared, true);
                    if let Some(routers) = staged.take() {
                        for (edge, router) in routers {
                            ctx.overrides.insert(edge.index(), router);
                        }
                    }
                    for &succ in &successors {
                        let _ = shared.inboxes[succ].send(Msg::Propagate);
                    }
                    let _ = shared.coord.send(CoordMsg::Applied(my_idx));
                }
                Msg::StateProbe(reply) => {
                    ctx.flush_outputs(&shared, true);
                    let _ = reply.send(HashMap::new());
                }
                // A crashed source stays down: restarting the
                // generator would replay its whole stream.
                Msg::Crash { .. } => {
                    ctx.discard_outputs();
                    down = true;
                }
                Msg::Data { .. } | Msg::Batch { .. } | Msg::Migrate { .. } | Msg::Eos => {}
            }
        }
        if down || shared.stop.load(Ordering::Relaxed) {
            break;
        }
        // Stage up to one batch of generated tuples, then route them
        // as a column: the batch-first data plane begins at the source.
        let mut exhausted = false;
        stage.clear();
        for _ in 0..64 {
            match gen.next_tuple() {
                Some(tuple) => stage.push(tuple),
                None => {
                    exhausted = true;
                    break;
                }
            }
        }
        emitted += stage.len() as u64;
        // Span origin: sampled tuples get their birth timestamp here,
        // once, before entering the data plane. Sampling is decided on
        // the field the (first) fields-grouped out edge routes on.
        if let Some(sampler) = &shared.sampler {
            if let Some(field) = shared.outs[po_idx].iter().find_map(|o| o.field) {
                sampler.stamp_batch(&mut stage, field, span_now_ns(&shared.clock));
            }
        }
        ctx.route_out_batch(&shared, &mut stage);
        if exhausted {
            break;
        }
        if let Some(d) = batch_sleep {
            // A rate-limited source is about to idle: hand off what it
            // has so downstream latency stays bounded by the rate, not
            // by the batch size.
            ctx.flush_outputs(&shared, false);
            std::thread::sleep(d);
        }
    }
    // Serve any control messages already queued (common race: a wave
    // started just as the stream ran dry), then announce the exit.
    while let Ok(msg) = rx.try_recv() {
        match msg {
            Msg::Reconf { routers, .. } => {
                staged = Some(routers);
                let _ = shared.coord.send(CoordMsg::Ack(my_idx));
            }
            Msg::Propagate | Msg::ForceApply => {
                ctx.flush_outputs(&shared, true);
                if let Some(routers) = staged.take() {
                    for (edge, router) in routers {
                        ctx.overrides.insert(edge.index(), router);
                    }
                }
                for &succ in &successors {
                    let _ = shared.inboxes[succ].send(Msg::Propagate);
                }
                let _ = shared.coord.send(CoordMsg::Applied(my_idx));
            }
            Msg::StateProbe(reply) => {
                let _ = reply.send(HashMap::new());
            }
            Msg::Data { .. } | Msg::Batch { .. } | Msg::Migrate { .. } | Msg::Eos
            | Msg::Crash { .. } => {}
        }
    }
    // The last partial batches must precede the end-of-stream tokens
    // in every destination channel (per-sender FIFO).
    ctx.flush_outputs(&shared, true);
    for &succ in &successors {
        let _ = shared.inboxes[succ].send(Msg::Eos);
    }
    let _ = shared.coord.send(CoordMsg::Exited(my_idx));
    InstanceReport {
        po: PoId(po_idx),
        instance,
        state: HashMap::new(),
        processed: emitted,
    }
}

#[allow(clippy::too_many_arguments)]
fn operator_loop(
    po_idx: usize,
    instance: usize,
    mut op: Box<dyn Operator>,
    stateful: bool,
    state_field: Option<usize>,
    pred_instances: usize,
    successors: Vec<usize>,
    observers: Vec<(EdgeId, usize, Box<dyn PairObserver>)>,
    shared: Arc<WorkerShared>,
    rx: Receiver<Msg>,
) -> InstanceReport {
    let mut ctx = WorkerCtx::new(po_idx, instance, &shared);
    let my_idx = ctx.my_idx;
    let mut observers: ObserverSlots = {
        let mut map: ObserverSlots = HashMap::new();
        for (e, f, o) in observers {
            map.entry(e.index()).or_default().push((f, o));
        }
        map
    };
    let mut state: HashMap<Key, StateValue> = HashMap::new();
    let mut processed = 0u64;
    let mut emitted: Vec<Tuple> = Vec::new();

    // Span tracing: each worker owns a recorder (idempotent registry
    // registration shares the histograms across workers); `None` when
    // the sampler is off, so the hot path pays one never-taken branch.
    let mut span_rec: Option<SpanRecorder> = shared
        .sampler
        .map(|_| SpanRecorder::new(shared.span_metrics.clone()));
    let is_sink = shared.outs[po_idx].is_empty();
    // Scratch `(hop_send_ns, remote, origin_ns)` stamps collected from
    // a batch before processing (the batch is consumed by dispatch).
    let mut sampled_buf: Vec<(u64, bool, u64)> = Vec::new();

    // Reconfiguration runtime.
    let mut staged: Option<(RouterUpdates, Vec<(Key, usize)>)> = None;
    let mut awaiting = 0usize;
    let mut pending: HashMap<Key, Vec<Tuple>> = HashMap::new();
    let mut departed: HashMap<Key, usize> = HashMap::new();
    let mut eos_seen = 0usize;

    /// The per-tuple data path; returns `false` if the tuple was
    /// buffered or forwarded instead of processed.
    #[allow(clippy::too_many_arguments)]
    fn process_one(
        tuple: Tuple,
        op: &mut dyn Operator,
        stateful: bool,
        state_field: Option<usize>,
        state: &mut HashMap<Key, StateValue>,
        pending: &mut HashMap<Key, Vec<Tuple>>,
        departed: &HashMap<Key, usize>,
        observers: &mut ObserverSlots,
        emitted: &mut Vec<Tuple>,
        ctx: &mut WorkerCtx,
        shared: &WorkerShared,
    ) -> bool {
        let state_key = state_field.map(|f| tuple.key(f));
        if let Some(key) = state_key {
            if let Some(buf) = pending.get_mut(&key) {
                buf.push(tuple);
                return false;
            }
            if let Some(&new_owner) = departed.get(&key) {
                let _ = shared.inboxes[new_owner].send(Msg::Data(tuple));
                return false;
            }
        }
        emitted.clear();
        {
            let state_slot = if stateful {
                let key = state_key.expect("stateful operators have a state field");
                Some(state.entry(key).or_insert_with(|| op.init_state()))
            } else {
                None
            };
            let mut op_ctx = OpContext {
                state: state_slot,
                routing_key: state_key,
                emitted,
            };
            op.process(tuple, &mut op_ctx);
        }
        // Derived output inherits the input's span origin, so a span
        // follows the tuple's lineage across transforming operators
        // (forwarding operators copy the stamp implicitly).
        if tuple.is_span_sampled() {
            let origin = tuple.span_origin_ns();
            for t in emitted.iter_mut() {
                t.set_span_origin(origin);
            }
        }
        if let Some(in_key) = state_key {
            if !observers.is_empty() {
                for out in &shared.outs[ctx.po_idx] {
                    let Some(slots) = observers.get_mut(&out.edge) else {
                        continue;
                    };
                    for (field, obs) in slots {
                        for t in emitted.iter() {
                            obs.observe(in_key, t.key(*field));
                        }
                    }
                }
            }
        }
        for t in std::mem::take(emitted) {
            ctx.route_out(shared, t);
        }
        true
    }

    /// The columnar data path: processes a whole batch, one operator
    /// dispatch and one state lookup per run of equal state keys,
    /// coalesced observer runs, and columnar routing of the emitted
    /// tuples. Only called when the instance is "quiet" — no keys
    /// pending a migration, none departed — so every tuple is
    /// processed (never buffered or forwarded), exactly as
    /// `process_one` would.
    #[allow(clippy::too_many_arguments)]
    fn process_batch(
        tuples: &[Tuple],
        op: &mut dyn Operator,
        stateful: bool,
        state_field: Option<usize>,
        state: &mut HashMap<Key, StateValue>,
        observers: &mut ObserverSlots,
        emitted: &mut Vec<Tuple>,
        ctx: &mut WorkerCtx,
        shared: &WorkerShared,
    ) {
        let Some(field) = state_field else {
            // No routed input field: no per-key state, no observers.
            // One dispatch covers the whole batch.
            emitted.clear();
            let mut op_ctx = OpContext {
                state: None,
                routing_key: None,
                emitted: &mut *emitted,
            };
            op.on_batch(tuples, &mut op_ctx);
            let mut out = std::mem::take(emitted);
            ctx.route_out_batch(shared, &mut out);
            *emitted = out;
            return;
        };
        // Output accumulates across runs and is routed once per batch:
        // routing is order-preserving and appends per destination, so
        // deferring it to the batch boundary leaves every buffer and
        // send boundary exactly where per-run routing would put them —
        // while paying the columnar routing setup (key column, run
        // detection, counter adds) once per batch instead of once per
        // run.
        emitted.clear();
        let mut rest = tuples;
        while !rest.is_empty() {
            let len = tuple_run_len(rest, field);
            let key = rest[0].key(field);
            let run_start = emitted.len();
            {
                let state_slot = if stateful {
                    Some(state.entry(key).or_insert_with(|| op.init_state()))
                } else {
                    None
                };
                let mut op_ctx = OpContext {
                    state: state_slot,
                    routing_key: Some(key),
                    emitted: &mut *emitted,
                };
                op.on_batch(&rest[..len], &mut op_ctx);
            }
            // One branch per key run: sampling is per key, so the run
            // head decides span-origin inheritance for the whole run's
            // derived output (see `process_one`).
            if rest[0].is_span_sampled() {
                let origin = rest[0].span_origin_ns();
                for t in emitted[run_start..].iter_mut() {
                    t.set_span_origin(origin);
                }
            }
            if !observers.is_empty() {
                for out in &shared.outs[ctx.po_idx] {
                    let Some(slots) = observers.get_mut(&out.edge) else {
                        continue;
                    };
                    for (obs_field, obs) in slots {
                        // Emitted tuples within a run may still vary
                        // in the observed field; coalesce the emitted
                        // runs too so each costs one observe.
                        let mut out_rest = &emitted[run_start..];
                        while !out_rest.is_empty() {
                            let out_len = tuple_run_len(out_rest, *obs_field);
                            obs.observe_run(key, out_rest[0].key(*obs_field), out_len as u64);
                            out_rest = &out_rest[out_len..];
                        }
                    }
                }
            }
            rest = &rest[len..];
        }
        let mut out = std::mem::take(emitted);
        ctx.route_out_batch(shared, &mut out);
        *emitted = out;
    }

    // Once every predecessor `Eos` is in but keys are still buffered
    // awaiting a `Migrate`, the loop switches to a bounded-patience
    // drain: if the state transfer was lost (fault injection, crashed
    // sender), the orphaned keys are adopted after the grace period
    // instead of hanging `join()` forever.
    let mut draining = false;
    loop {
        // Drain the inbox opportunistically; only once it runs dry are
        // the send buffers flushed and the thread allowed to block —
        // so batches fill under load but never sit on an idle worker.
        let msg = match rx.try_recv() {
            Ok(m) => m,
            Err(crossbeam::channel::TryRecvError::Disconnected) => break,
            Err(crossbeam::channel::TryRecvError::Empty) => {
                ctx.flush_outputs(&shared, false);
                if draining {
                    match rx.recv_timeout(Duration::from_millis(500)) {
                        Ok(m) => m,
                        Err(_) => break,
                    }
                } else {
                    match rx.recv() {
                        Ok(m) => m,
                        Err(_) => break,
                    }
                }
            }
        };
        match msg {
            Msg::Data(tuple) => {
                // Capture the sender's hop stamp and an arrival clock
                // before dispatch; record only if the tuple was
                // actually processed (buffered/forwarded tuples get a
                // fresh stamp when they re-enter the data path).
                let hop = if span_rec.is_some() { tuple.span_hop() } else { None };
                let arrive = hop.map(|_| span_now_ns(&shared.clock));
                if process_one(
                    tuple,
                    op.as_mut(),
                    stateful,
                    state_field,
                    &mut state,
                    &mut pending,
                    &departed,
                    &mut observers,
                    &mut emitted,
                    &mut ctx,
                    &shared,
                ) {
                    processed += 1;
                    if let (Some(rec), Some((sent, remote)), Some(arrive)) =
                        (span_rec.as_mut(), hop, arrive)
                    {
                        let done = span_now_ns(&shared.clock);
                        let epoch = shared.epoch.load(Ordering::Relaxed);
                        rec.record_hop(
                            po_idx,
                            epoch,
                            remote,
                            arrive.saturating_sub(sent),
                            done.saturating_sub(arrive),
                        );
                        if is_sink {
                            rec.record_end(
                                po_idx,
                                epoch,
                                done.saturating_sub(tuple.span_origin_ns()),
                            );
                        }
                    }
                }
            }
            Msg::Batch(tuples) => {
                // Collect the batch's span stamps up front (dispatch
                // consumes the tuples): one `(sent, remote, origin)`
                // entry per sampled tuple. Queue wait is per sender
                // stamp; processing time is attributed as an equal
                // share of the batch's dispatch, since columnar
                // processing has no per-tuple boundary to time.
                let mut arrive = None;
                if span_rec.is_some() {
                    sampled_buf.clear();
                    for t in &tuples {
                        if let Some((sent, remote)) = t.span_hop() {
                            sampled_buf.push((sent, remote, t.span_origin_ns()));
                        }
                    }
                    if !sampled_buf.is_empty() {
                        arrive = Some(span_now_ns(&shared.clock));
                    }
                }
                let batch_len = tuples.len() as u64;
                // Columnar dispatch requires a quiet instance: with
                // keys pending migration or departed, individual
                // tuples may need buffering/forwarding, so the batch
                // drops to the per-tuple path. Neither map mutates
                // while a batch is processed, so the guard holds for
                // the whole batch.
                if shared.columnar && pending.is_empty() && departed.is_empty() {
                    process_batch(
                        &tuples,
                        op.as_mut(),
                        stateful,
                        state_field,
                        &mut state,
                        &mut observers,
                        &mut emitted,
                        &mut ctx,
                        &shared,
                    );
                    processed += tuples.len() as u64;
                } else {
                    for tuple in tuples {
                        if process_one(
                            tuple,
                            op.as_mut(),
                            stateful,
                            state_field,
                            &mut state,
                            &mut pending,
                            &departed,
                            &mut observers,
                            &mut emitted,
                            &mut ctx,
                            &shared,
                        ) {
                            processed += 1;
                        }
                    }
                }
                if let (Some(rec), Some(arrive)) = (span_rec.as_mut(), arrive) {
                    let done = span_now_ns(&shared.clock);
                    let per_tuple = done.saturating_sub(arrive) / batch_len.max(1);
                    let epoch = shared.epoch.load(Ordering::Relaxed);
                    for &(sent, remote, origin) in &sampled_buf {
                        rec.record_hop(
                            po_idx,
                            epoch,
                            remote,
                            arrive.saturating_sub(sent),
                            per_tuple,
                        );
                        if is_sink {
                            rec.record_end(po_idx, epoch, done.saturating_sub(origin));
                        }
                    }
                }
            }
            Msg::Reconf {
                routers,
                send,
                receive,
            } => {
                ctx.flush_outputs(&shared, true);
                departed.clear();
                for key in receive {
                    pending.entry(key).or_default();
                }
                awaiting = pred_instances.max(1);
                staged = Some((routers, send));
                let _ = shared.coord.send(CoordMsg::Ack(my_idx));
            }
            m @ (Msg::Propagate | Msg::ForceApply) => {
                // ForceApply is the wave driver's retry path: apply
                // regardless of how many predecessor propagates are
                // still outstanding (they were lost for good).
                if matches!(m, Msg::ForceApply) {
                    awaiting = awaiting.min(1);
                }
                awaiting = awaiting.saturating_sub(1);
                if awaiting == 0 {
                    if let Some((routers, send)) = staged.take() {
                        // Flush before switching tables and forwarding
                        // the wave: buffered tuples were routed under
                        // the old configuration and must stay ahead of
                        // the `Propagate`s in every channel.
                        ctx.flush_outputs(&shared, true);
                        for (edge, router) in routers {
                            ctx.overrides.insert(edge.index(), router);
                        }
                        for (key, dest) in send {
                            let moved = state.remove(&key);
                            departed.insert(key, dest);
                            let fate = shared
                                .fault
                                .lock()
                                .as_mut()
                                .map_or(ControlFate::Deliver, |inj| {
                                    inj.on_control(ControlClass::Migrate)
                                });
                            // A dropped ⑥ loses the moved state (at-
                            // most-once); the new owner adopts the key
                            // with fresh state when it drains.
                            if !matches!(fate, ControlFate::Drop) {
                                shared.hot.migrations_sent.inc();
                                shared.hot.migration_bytes.add(
                                    moved.as_ref().map_or(0, StateValue::size_bytes),
                                );
                                let _ = shared.inboxes[dest]
                                    .send(Msg::Migrate { key, state: moved });
                            }
                        }
                        for &succ in &successors {
                            let _ = shared.inboxes[succ].send(Msg::Propagate);
                        }
                        let _ = shared.coord.send(CoordMsg::Applied(my_idx));
                    }
                }
            }
            Msg::Migrate { key, state: moved } => {
                if let Some(moved) = moved {
                    state.insert(key, moved);
                }
                if let Some(buffered) = pending.remove(&key) {
                    for tuple in buffered {
                        if process_one(
                            tuple,
                            op.as_mut(),
                            stateful,
                            state_field,
                            &mut state,
                            &mut pending,
                            &departed,
                            &mut observers,
                            &mut emitted,
                            &mut ctx,
                            &shared,
                        ) {
                            processed += 1;
                        }
                    }
                }
                if draining && pending.values().all(Vec::is_empty) {
                    break;
                }
            }
            Msg::Eos => {
                eos_seen += 1;
                if eos_seen >= pred_instances {
                    if pending.values().all(Vec::is_empty) {
                        break;
                    }
                    draining = true;
                }
            }
            Msg::StateProbe(reply) => {
                // Checkpoint boundary: buffered output is handed off
                // before the state snapshot is taken.
                ctx.flush_outputs(&shared, true);
                let _ = reply.send(state.clone());
            }
            Msg::Crash { restore } => {
                // Everything volatile is lost; respawn from the
                // checkpoint the coordinator carried over.
                ctx.discard_outputs();
                state = restore;
                pending.clear();
                departed.clear();
                staged = None;
                awaiting = 0;
                // Queued messages die with the instance — except the
                // stream-lifecycle `Eos` tokens (a respawned instance
                // still knows its predecessors finished) and state
                // probes, which must always be answered.
                while let Ok(m) = rx.try_recv() {
                    match m {
                        Msg::Eos => eos_seen += 1,
                        Msg::StateProbe(reply) => {
                            let _ = reply.send(state.clone());
                        }
                        _ => {}
                    }
                }
                if eos_seen >= pred_instances {
                    if pending.values().all(Vec::is_empty) {
                        break;
                    }
                    draining = true;
                }
            }
        }
    }
    // Adopt keys still buffered for a `Migrate` that never came (lost
    // transfer): their state starts fresh — at-most-once — but no
    // tuple is silently discarded.
    let mut orphans: Vec<Key> = pending
        .iter()
        .filter(|(_, buf)| !buf.is_empty())
        .map(|(&k, _)| k)
        .collect();
    orphans.sort_unstable();
    for key in orphans {
        let buffered = pending.remove(&key).unwrap_or_default();
        for tuple in buffered {
            if process_one(
                tuple,
                op.as_mut(),
                stateful,
                state_field,
                &mut state,
                &mut pending,
                &departed,
                &mut observers,
                &mut emitted,
                &mut ctx,
                &shared,
            ) {
                processed += 1;
            }
        }
    }
    // Per-sender FIFO: the final partial batches precede this
    // instance's `Eos` tokens.
    ctx.flush_outputs(&shared, true);
    for &succ in &successors {
        let _ = shared.inboxes[succ].send(Msg::Eos);
    }
    let _ = shared.coord.send(CoordMsg::Exited(my_idx));
    InstanceReport {
        po: PoId(po_idx),
        instance,
        state,
        processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::CountOperator;
    use crate::router::ModuloRouter;
    use crate::topology::Topology;

    /// n sources emitting `total/n` tuples each of (c % keys, c % keys).
    fn chain(n: usize, keys: u64, total: u64) -> Topology {
        let mut b = Topology::builder();
        let s = b.source("S", n, SourceRate::Saturate, move |i| {
            let mut c = i as u64;
            let mut left = total / n as u64;
            Box::new(move || {
                if left == 0 {
                    return None;
                }
                left -= 1;
                c = c.wrapping_add(0x9e37_79b9);
                let k = c % keys;
                Some(Tuple::new([Key::new(k), Key::new(k)], 0))
            })
        });
        let a = b.stateful("A", n, CountOperator::factory());
        let bb = b.stateful("B", n, CountOperator::factory());
        b.connect(s, a, Grouping::fields(0));
        b.connect(a, bb, Grouping::fields(1));
        b.build().unwrap()
    }

    fn counts_of(reports: &[InstanceReport], po: PoId) -> HashMap<Key, u64> {
        let mut out = HashMap::new();
        for r in reports.iter().filter(|r| r.po == po) {
            for (&k, v) in &r.state {
                *out.entry(k).or_insert(0) += v.as_count().unwrap();
            }
        }
        out
    }

    #[test]
    fn finite_pipeline_drains_and_counts_everything() {
        let total = 30_000u64;
        let topo = chain(3, 12, total);
        let placement = Placement::aligned(&topo, 3);
        let rt = LiveRuntime::start(topo, placement, 3, LiveConfig::default());
        let reports = rt.join();
        let a_counts = counts_of(&reports, PoId(1));
        let b_counts = counts_of(&reports, PoId(2));
        assert_eq!(a_counts.values().sum::<u64>(), total);
        assert_eq!(b_counts.values().sum::<u64>(), total);
        // Keys identical across the two hops (same key used twice).
        assert_eq!(a_counts, b_counts);
    }

    #[test]
    fn stop_halts_infinite_sources() {
        let mut b = Topology::builder();
        let s = b.source("S", 2, SourceRate::Saturate, |i| {
            let mut c = i as u64;
            Box::new(move || {
                c += 1;
                Some(Tuple::new([Key::new(c % 5)], 0))
            })
        });
        let a = b.stateful("A", 2, CountOperator::factory());
        b.connect(s, a, Grouping::fields(0));
        let topo = b.build().unwrap();
        let placement = Placement::aligned(&topo, 2);
        let rt = LiveRuntime::start(topo, placement, 2, LiveConfig::default());
        std::thread::sleep(std::time::Duration::from_millis(50));
        rt.stop();
        let reports = rt.join();
        let emitted: u64 = reports
            .iter()
            .filter(|r| r.po == PoId(0))
            .map(|r| r.processed)
            .sum();
        let counted: u64 = counts_of(&reports, PoId(1)).values().sum();
        assert!(emitted > 0);
        assert_eq!(emitted, counted, "every emitted tuple counted");
    }

    #[test]
    fn unique_key_ownership() {
        let topo = chain(4, 32, 20_000);
        let placement = Placement::aligned(&topo, 4);
        let rt = LiveRuntime::start(topo, placement, 4, LiveConfig::default());
        let reports = rt.join();
        let mut seen = std::collections::HashSet::new();
        for r in reports.iter().filter(|r| r.po == PoId(2)) {
            for &k in r.state.keys() {
                assert!(seen.insert(k), "key {k} owned twice");
            }
        }
    }

    #[test]
    fn live_reconfiguration_conserves_counts() {
        let n = 3;
        let keys = 9u64;
        let total = 60_000u64;
        // Rate-limit sources so the stream comfortably outlives the
        // reconfiguration wave.
        let mut b = Topology::builder();
        let s = b.source("S", n, SourceRate::PerSecond(50_000.0), move |i| {
            let mut c = i as u64;
            let mut left = total / n as u64;
            Box::new(move || {
                if left == 0 {
                    return None;
                }
                left -= 1;
                c = c.wrapping_add(0x9e37_79b9);
                let k = c % keys;
                Some(Tuple::new([Key::new(k), Key::new(k)], 0))
            })
        });
        let a = b.stateful("A", n, CountOperator::factory());
        let bb = b.stateful("B", n, CountOperator::factory());
        b.connect(s, a, Grouping::fields(0));
        b.connect(a, bb, Grouping::fields(1));
        let topo = b.build().unwrap();
        let placement = Placement::aligned(&topo, n);
        let rt = LiveRuntime::start(topo, placement, n, LiveConfig::default());
        std::thread::sleep(std::time::Duration::from_millis(20));

        // Swap hop A→B to modulo routing with the matching migrations:
        // new owner of key k is instance k % n; old owner is by hash.
        let hash = HashRouter;
        let migrations: Vec<(PoId, Key, usize, usize)> = (0..keys)
            .map(|k| {
                let key = Key::new(k);
                let old = hash.route(key, n) as usize;
                let new = (k % n as u64) as usize;
                (PoId(2), key, old, new)
            })
            .filter(|&(_, _, old, new)| old != new)
            .collect();
        assert!(!migrations.is_empty());
        rt.reconfigure(LiveReconfig {
            routers: vec![(PoId(1), EdgeId(1), Arc::new(ModuloRouter))],
            migrations,
        });

        let reports = rt.join();
        let b_counts = counts_of(&reports, PoId(2));
        assert_eq!(
            b_counts.values().sum::<u64>(),
            total,
            "no tuple lost or double counted across live migration"
        );
        // Ownership matches the new table.
        for r in reports.iter().filter(|r| r.po == PoId(2)) {
            for &k in r.state.keys() {
                assert_eq!(
                    r.instance,
                    (k.value() % n as u64) as usize,
                    "key {k} at wrong owner after live migration"
                );
            }
        }
    }

    #[test]
    fn span_sampling_records_hop_histograms_split_by_epoch() {
        use crate::obs::{SpanMetricName, SpanPhase};

        let n = 3;
        let keys = 9u64;
        let total = 40_000u64;
        let mut b = Topology::builder();
        let s = b.source("S", n, SourceRate::PerSecond(50_000.0), move |i| {
            let mut c = i as u64;
            let mut left = total / n as u64;
            Box::new(move || {
                if left == 0 {
                    return None;
                }
                left -= 1;
                c = c.wrapping_add(0x9e37_79b9);
                let k = c % keys;
                Some(Tuple::new([Key::new(k), Key::new(k)], 0))
            })
        });
        let a = b.stateful("A", n, CountOperator::factory());
        let bb = b.stateful("B", n, CountOperator::factory());
        b.connect(s, a, Grouping::fields(0));
        b.connect(a, bb, Grouping::fields(1));
        let topo = b.build().unwrap();
        let placement = Placement::aligned(&topo, n);
        let registry = Arc::new(MetricsRegistry::new());
        let rt = LiveRuntime::start(
            topo,
            placement,
            n,
            LiveConfig {
                metrics: Some(Arc::clone(&registry)),
                span_sampler: Some(SpanSampler::new(7, 2)),
                ..LiveConfig::default()
            },
        );
        std::thread::sleep(std::time::Duration::from_millis(30));

        let hash = HashRouter;
        let migrations: Vec<(PoId, Key, usize, usize)> = (0..keys)
            .map(|k| {
                let key = Key::new(k);
                let old = hash.route(key, n) as usize;
                let new = (k % n as u64) as usize;
                (PoId(2), key, old, new)
            })
            .filter(|&(_, _, old, new)| old != new)
            .collect();
        rt.reconfigure(LiveReconfig {
            routers: vec![(PoId(1), EdgeId(1), Arc::new(ModuloRouter))],
            migrations,
        });
        let reports = rt.join();

        // Sampling must not perturb the data plane.
        let b_counts = counts_of(&reports, PoId(2));
        let expected = (total / n as u64) * n as u64;
        assert_eq!(b_counts.values().sum::<u64>(), expected);

        let span_names: Vec<SpanMetricName> = registry
            .histograms()
            .iter()
            .filter(|(_, snap)| snap.total > 0)
            .filter_map(|(name, _)| SpanMetricName::parse(name))
            .collect();
        assert!(!span_names.is_empty(), "sampled run must populate span histograms");
        for phase in [SpanPhase::Queue, SpanPhase::Proc, SpanPhase::EndToEnd] {
            assert!(
                span_names.iter().any(|nm| nm.phase == phase),
                "phase {phase:?} missing"
            );
        }
        // End-to-end latency lands only at the sink operator.
        assert!(span_names
            .iter()
            .filter(|nm| nm.phase == SpanPhase::EndToEnd)
            .all(|nm| nm.po == 2));
        // The wave completion bumps the routing epoch: observations
        // recorded before and after it land in distinct histograms.
        let mut epochs: Vec<u64> = span_names.iter().map(|nm| nm.epoch).collect();
        epochs.sort_unstable();
        epochs.dedup();
        assert!(
            epochs.len() >= 2,
            "epoch tagging must split pre/post-wave observations, got {epochs:?}"
        );
    }

    #[test]
    fn locality_counters_track_placement() {
        // Everything on one server tag: all transfers are local.
        let topo = chain(3, 6, 5_000);
        let placement = Placement::aligned(&topo, 1);
        let rt = LiveRuntime::start(topo, placement, 1, LiveConfig::default());
        std::thread::sleep(std::time::Duration::from_millis(50));
        let one_server_locality = rt.edge_locality(EdgeId(1));
        let _ = rt.join();
        assert_eq!(one_server_locality, 1.0);

        // Aligned modulo routing on 3 servers: (k, k) tuples stay put
        // on the A→B hop.
        let mut b = Topology::builder();
        let s = b.source("S", 3, SourceRate::Saturate, |i| {
            let mut left = 5_000u32;
            let key = Key::new(i as u64);
            Box::new(move || {
                if left == 0 {
                    return None;
                }
                left -= 1;
                Some(Tuple::new([key, key], 0))
            })
        });
        let a = b.stateful("A", 3, CountOperator::factory());
        let bb = b.stateful("B", 3, CountOperator::factory());
        b.connect(s, a, Grouping::fields_with(0, Arc::new(ModuloRouter)));
        let hop = b.connect(a, bb, Grouping::fields_with(1, Arc::new(ModuloRouter)));
        let topo = b.build().unwrap();
        let placement = Placement::aligned(&topo, 3);
        let rt = LiveRuntime::start(topo, placement, 3, LiveConfig::default());
        std::thread::sleep(std::time::Duration::from_millis(50));
        let hop_locality = rt.edge_locality(hop);
        let _ = rt.join();
        assert_eq!(hop_locality, 1.0, "aligned modulo must stay local");
    }

    /// Shared pair-count map standing in for a sketch: observer totals
    /// must come out identical whether fed per tuple (`observe`) or in
    /// coalesced runs (`observe_run`).
    #[derive(Clone, Default)]
    struct PairCounts(Arc<Mutex<HashMap<(Key, Key), u64>>>);

    impl PairObserver for PairCounts {
        fn observe(&mut self, input: Key, output: Key) {
            *self.0.lock().entry((input, output)).or_insert(0) += 1;
        }

        fn observe_run(&mut self, input: Key, output: Key, count: u64) {
            *self.0.lock().entry((input, output)).or_insert(0) += count;
        }
    }

    /// Runs a topology and reduces it to a fully deterministic
    /// fingerprint: every instance's sorted `(key, count)` state,
    /// every edge's `(local, remote)` transfer totals, and the sorted
    /// pair-observation totals of operator `A`'s out edge.
    type Fingerprint = (
        Vec<(usize, usize, Vec<(Key, u64)>)>,
        Vec<(u64, u64)>,
        Vec<((Key, Key), u64)>,
    );

    fn run_fingerprint(topo: Topology, servers: usize, config: LiveConfig) -> Fingerprint {
        let placement = Placement::aligned(&topo, servers);
        let pairs = PairCounts::default();
        let observers: Vec<LiveObserver> = (0..topo.po(PoId(1)).parallelism())
            .map(|i| {
                (
                    PoId(1),
                    i,
                    EdgeId(1),
                    1,
                    Box::new(pairs.clone()) as Box<dyn PairObserver>,
                )
            })
            .collect();
        let rt = LiveRuntime::start_with_observers(topo, placement, servers, config, observers);
        let shared = Arc::clone(&rt.shared);
        let reports = rt.join();
        let mut states = Vec::new();
        for r in &reports {
            let mut kv: Vec<(Key, u64)> = r
                .state
                .iter()
                .map(|(&k, v)| (k, v.as_count().unwrap()))
                .collect();
            kv.sort_unstable();
            states.push((r.po.index(), r.instance, kv));
        }
        let edges = shared
            .edges
            .iter()
            .map(|e| {
                (
                    e.local.load(Ordering::Relaxed),
                    e.remote.load(Ordering::Relaxed),
                )
            })
            .collect();
        let mut pair_counts: Vec<((Key, Key), u64)> =
            pairs.0.lock().iter().map(|(&p, &c)| (p, c)).collect();
        pair_counts.sort_unstable();
        (states, edges, pair_counts)
    }

    #[test]
    fn batching_is_bit_identical_to_unbatched() {
        // Same topology, same deterministic fields-grouped routing:
        // the only difference is how many tuples ride per channel
        // message. Final operator state AND the per-edge locality
        // statistics must match exactly.
        let unbatched = run_fingerprint(
            chain(3, 12, 30_000),
            3,
            LiveConfig {
                batch_size: 1,
                ..LiveConfig::default()
            },
        );
        for batch_size in [2, 64, 1024] {
            let batched = run_fingerprint(
                chain(3, 12, 30_000),
                3,
                LiveConfig {
                    batch_size,
                    ..LiveConfig::default()
                },
            );
            assert_eq!(
                unbatched, batched,
                "batch_size={batch_size} changed state or locality stats"
            );
        }
    }

    #[test]
    fn columnar_is_bit_identical_to_per_tuple() {
        // The tentpole equivalence gate: run-length routing, bulk
        // counter adds, batched operator dispatch and coalesced
        // observer runs must leave operator state, locality statistics
        // and pair-observation totals exactly as the per-tuple path
        // does — across degenerate, default and jumbo batch sizes.
        for batch_size in [1, 64, 1024] {
            let per_tuple = run_fingerprint(
                chain(3, 12, 30_000),
                3,
                LiveConfig {
                    batch_size,
                    columnar: false,
                    ..LiveConfig::default()
                },
            );
            let columnar = run_fingerprint(
                chain(3, 12, 30_000),
                3,
                LiveConfig {
                    batch_size,
                    columnar: true,
                    ..LiveConfig::default()
                },
            );
            assert_eq!(
                per_tuple, columnar,
                "batch_size={batch_size}: columnar path diverged"
            );
        }
    }

    #[test]
    fn batch_counters_account_for_every_tuple() {
        let total = 20_000u64;
        let metrics = Arc::new(MetricsRegistry::new());
        let topo = chain(2, 8, total);
        let placement = Placement::aligned(&topo, 2);
        let rt = LiveRuntime::start(
            topo,
            placement,
            2,
            LiveConfig {
                batch_size: 64,
                metrics: Some(Arc::clone(&metrics)),
                ..LiveConfig::default()
            },
        );
        let _ = rt.join();
        let get = |name: &str| {
            metrics
                .snapshot()
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("{name} not registered"))
        };
        // Two hops, every tuple crosses both: routed == 2 × total, and
        // in batch mode every routed tuple travels inside a batch.
        assert_eq!(get("live_tuples_routed_total"), 2 * total);
        assert_eq!(get("live_batch_tuples_total"), 2 * total);
        let sends = get("live_batch_sends_total");
        assert!(sends > 0, "no batches sent");
        assert!(
            sends < 2 * total,
            "batching did not coalesce ({sends} sends for {} tuples)",
            2 * total
        );
    }

    #[test]
    fn unbatched_mode_sends_no_batches() {
        let metrics = Arc::new(MetricsRegistry::new());
        let topo = chain(2, 8, 5_000);
        let placement = Placement::aligned(&topo, 2);
        let rt = LiveRuntime::start(
            topo,
            placement,
            2,
            LiveConfig {
                batch_size: 1,
                metrics: Some(Arc::clone(&metrics)),
                ..LiveConfig::default()
            },
        );
        let _ = rt.join();
        let snap = metrics.snapshot();
        let get = |name: &str| snap.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(get("live_batch_sends_total"), Some(0));
        assert_eq!(get("live_batch_tuples_total"), Some(0));
    }

    #[test]
    fn probe_state_sees_live_counts() {
        let mut b = Topology::builder();
        let s = b.source("S", 1, SourceRate::Saturate, |_| {
            Box::new(|| Some(Tuple::new([Key::new(1)], 0)))
        });
        let a = b.stateful("A", 1, CountOperator::factory());
        b.connect(s, a, Grouping::fields(0));
        let topo = b.build().unwrap();
        let placement = Placement::aligned(&topo, 1);
        let rt = LiveRuntime::start(topo, placement, 1, LiveConfig::default());
        std::thread::sleep(std::time::Duration::from_millis(30));
        let snapshot = rt.probe_state(PoId(1), 0).expect("instance alive");
        assert!(snapshot.get(&Key::new(1)).and_then(StateValue::as_count) > Some(0));
        rt.stop();
        let _ = rt.join();
    }
}
