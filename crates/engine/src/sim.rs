//! The deterministic discrete-time cluster simulator.
//!
//! Time advances in fixed windows (default 100 ms of simulated time).
//! Within a window each operator instance (POI) has a CPU budget of
//! one window-second, each server NIC an ingress and an egress byte
//! budget, and tuples are routed *individually* through the same
//! grouping code a real deployment would run — so locality statistics,
//! pair observation and routing-table behaviour are exact, while
//! throughput emerges from the CPU/NIC budget contention. See
//! DESIGN.md §5 for the substitution rationale.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::checkpoint::ClusterCheckpoint;
use crate::cluster::ClusterSpec;
use crate::fault::{FaultInjector, FaultPlan};
use crate::key::Key;
use crate::metrics::{MetricsLog, WindowMetrics};
use crate::obs::{
    log2_bounds, Counter, EventTracer, Gauge, Histogram, MetricsRegistry, SpanRecorder,
    SpanSampler, TraceEvent, TraceEventKind,
};
use crate::operator::{OpContext, Operator, StateValue};
use crate::reconfig::{ControlMsg, ReconfigExec, StagedReconf};
use crate::router::KeyRouter;
use crate::topology::{
    EdgeId, Grouping, PoId, PoKind, PoiId, ServerId, SourceRate, Topology, TupleSource,
};
use crate::tuple::Tuple;

/// Observes the `(input key, output key)` pairs flowing through a
/// stateful instance — the instrumentation hook of paper §3.2.
///
/// The locality-aware routing crate installs a SpaceSaving-backed
/// implementation on every stateful POI; the engine invokes it for
/// each processed tuple that leaves through a fields-grouped edge.
pub trait PairObserver: Send {
    /// Records one co-occurrence of `input` (the key the tuple arrived
    /// on) and `output` (the key it departs on).
    fn observe(&mut self, input: Key, output: Key);

    /// Records `count` co-occurrences of the same `(input, output)`
    /// pair at once — the columnar data plane coalesces runs of equal
    /// keys before observing them.
    ///
    /// Must be equivalent to calling [`observe`](PairObserver::observe)
    /// `count` times; the default does exactly that. Sketch-backed
    /// observers override it with one weighted offer (one lock
    /// acquisition per run instead of per tuple).
    fn observe_run(&mut self, input: Key, output: Key, count: u64) {
        for _ in 0..count {
            self.observe(input, output);
        }
    }
}

impl<F> PairObserver for F
where
    F: FnMut(Key, Key) + Send,
{
    fn observe(&mut self, input: Key, output: Key) {
        self(input, output);
    }
}

/// Simulator tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Window length, seconds of simulated time.
    pub window: f64,
    /// Source admission cap: sources pause while more than this many
    /// tuples are in flight (queued, buffered or on the wire). This
    /// bounds queue growth at saturation, like Storm's max spout
    /// pending.
    pub max_in_flight: usize,
    /// Hard cap on tuples emitted per source instance per window.
    pub source_burst_per_window: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            window: 0.1,
            max_in_flight: 100_000,
            source_burst_per_window: 200_000,
        }
    }
}

/// Assignment of operator instances to servers.
///
/// The paper deploys instance `i` of every operator on server `i`
/// (§4.1), which [`Placement::aligned`] reproduces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    per_po: Vec<Vec<ServerId>>,
}

impl Placement {
    /// Instance `i` of each operator on server `i % servers`.
    #[must_use]
    pub fn aligned(topology: &Topology, servers: usize) -> Self {
        assert!(servers > 0, "cluster must have at least one server");
        let per_po = topology
            .pos
            .iter()
            .map(|po| {
                (0..po.parallelism)
                    .map(|i| ServerId(i % servers))
                    .collect()
            })
            .collect();
        Self { per_po }
    }

    /// Explicit per-operator, per-instance server assignment.
    ///
    /// # Panics
    ///
    /// Panics if the shape does not match the topology or a server id
    /// is out of range.
    #[must_use]
    pub fn custom(topology: &Topology, servers: usize, per_po: Vec<Vec<ServerId>>) -> Self {
        assert_eq!(per_po.len(), topology.pos.len(), "one entry per operator");
        for (po, servers_of) in topology.pos.iter().zip(&per_po) {
            assert_eq!(
                servers_of.len(),
                po.parallelism,
                "one server per instance of {}",
                po.name
            );
            assert!(
                servers_of.iter().all(|s| s.0 < servers),
                "server id out of range"
            );
        }
        Self { per_po }
    }

    /// Server of instance `instance` of operator `po`.
    #[must_use]
    pub fn server(&self, po: PoId, instance: usize) -> ServerId {
        self.per_po[po.index()][instance]
    }
}

/// The per-edge observer slots an instance holds.
pub(crate) type ObserverSlots = HashMap<EdgeId, Vec<(usize, Box<dyn PairObserver>)>>;

/// A tuple waiting in an input queue, with its arrival mode.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InTuple {
    pub(crate) tuple: Tuple,
    pub(crate) remote: bool,
    /// Window index at which the source emitted the originating tuple
    /// (for end-to-end latency accounting).
    pub(crate) born: u64,
    /// Window index at which the tuple entered this input queue (for
    /// span queue-wait attribution; equals `born` on the first hop).
    pub(crate) enqueued: u64,
}

pub(crate) enum PoiKindRt {
    Source {
        gen: Box<dyn TupleSource>,
        rate: SourceRate,
        exhausted: bool,
        credit: f64,
    },
    Operator {
        op: Box<dyn Operator>,
        stateful: bool,
        state_field: Option<usize>,
    },
}

pub(crate) enum OutKind {
    Shuffle {
        next: usize,
    },
    LocalOrShuffle {
        local: Vec<usize>,
        next: usize,
    },
    Fields {
        field: usize,
        router: Arc<dyn KeyRouter>,
    },
}

pub(crate) struct OutRt {
    pub(crate) edge: EdgeId,
    pub(crate) dest_po: PoId,
    pub(crate) kind: OutKind,
}

pub(crate) struct PoiRt {
    pub(crate) po: PoId,
    pub(crate) instance: usize,
    pub(crate) server: ServerId,
    pub(crate) kind: PoiKindRt,
    pub(crate) cost_per_tuple: f64,
    pub(crate) input: VecDeque<InTuple>,
    pub(crate) state: HashMap<Key, StateValue>,
    pub(crate) out: Vec<OutRt>,
    /// Per out-edge instrumentation: `(observed tuple field, observer)`
    /// entries; an edge can carry several (a stateless fan-out behind
    /// it may lead to several stateful successors).
    pub(crate) observers: ObserverSlots,
    // --- reconfiguration runtime (see reconfig.rs) ---
    pub(crate) staged: Option<StagedReconf>,
    pub(crate) awaiting_propagates: usize,
    pub(crate) pending: HashMap<Key, VecDeque<InTuple>>,
    pub(crate) departed: HashMap<Key, PoiId>,
}

pub(crate) enum NetPayload {
    Data {
        tuple: Tuple,
        edge: EdgeId,
        born: u64,
    },
    Migrate {
        key: Key,
        state: Option<StateValue>,
    },
}

pub(crate) struct NetMsg {
    pub(crate) from_server: usize,
    pub(crate) to_poi: usize,
    pub(crate) bytes: u64,
    pub(crate) payload: NetPayload,
}

/// A ⑥ `MIGRATE` message the injector dropped or delayed, queued for
/// retransmission (see `reconfig.rs`).
pub(crate) struct LostMigration {
    pub(crate) redeliver_at: u64,
    pub(crate) from: usize,
    pub(crate) to: usize,
    pub(crate) key: Key,
    pub(crate) state: Option<StateValue>,
    pub(crate) attempts: u32,
}

pub(crate) struct ServerRt {
    pub(crate) egress: f64,
    pub(crate) ingress: f64,
    pub(crate) rack: usize,
    pub(crate) backlog: VecDeque<NetMsg>,
}

/// Per-window budgets of one rack's aggregation uplink.
pub(crate) struct RackRt {
    pub(crate) up: f64,
    pub(crate) down: f64,
}

/// A deployed topology executing on a simulated cluster.
///
/// # Example
///
/// ```
/// use streamloc_engine::{
///     ClusterSpec, CountOperator, Grouping, Key, Placement, SimConfig,
///     Simulation, SourceRate, Topology, Tuple,
/// };
///
/// let mut builder = Topology::builder();
/// let n = 2;
/// let s = builder.source("S", n, SourceRate::PerSecond(1000.0), |i| {
///     let mut c = 0u64;
///     Box::new(move || {
///         c += 1;
///         Some(Tuple::new([Key::new(c % 4), Key::new(c % 8)], 0))
///     })
/// });
/// let a = builder.stateful("A", n, CountOperator::factory());
/// let b = builder.stateful("B", n, CountOperator::factory());
/// builder.connect(s, a, Grouping::fields(0));
/// builder.connect(a, b, Grouping::fields(1));
/// let topology = builder.build()?;
///
/// let cluster = ClusterSpec::lan_10g(n);
/// let placement = Placement::aligned(&topology, n);
/// let mut sim = Simulation::new(topology, cluster, placement, SimConfig::default());
/// sim.run(50); // 5 simulated seconds
/// assert!(sim.metrics().total_sink() > 0);
/// # Ok::<(), streamloc_engine::BuildTopologyError>(())
/// ```
pub struct Simulation {
    pub(crate) topo: Topology,
    pub(crate) cluster: ClusterSpec,
    pub(crate) config: SimConfig,
    pub(crate) pois: Vec<PoiRt>,
    pub(crate) poi_base: Vec<usize>,
    pub(crate) servers: Vec<ServerRt>,
    pub(crate) racks: Vec<RackRt>,
    pub(crate) window_index: u64,
    pub(crate) in_flight: i64,
    /// Management-plane bytes to debit from each server's egress at
    /// the next budget refill (statistics uploads to the manager).
    pub(crate) mgmt_debt: Vec<f64>,
    pub(crate) metrics: MetricsLog,
    pub(crate) control_queue: Vec<(u64, usize, ControlMsg)>,
    pub(crate) reconfig: Option<ReconfigExec>,
    // --- failure injection & recovery (see fault.rs) ---
    pub(crate) fault: Option<FaultInjector>,
    pub(crate) manager_down: bool,
    pub(crate) degraded: bool,
    pub(crate) last_checkpoint: Option<ClusterCheckpoint>,
    pub(crate) auto_checkpoint_every: Option<u64>,
    pub(crate) lost_migrations: Vec<LostMigration>,
    // --- observability (see obs/) ---
    /// Control-plane event ring; `None` until tracing is enabled.
    pub(crate) tracer: Option<Box<EventTracer>>,
    /// Registry-backed counters fed once per window; `None` until a
    /// registry is attached.
    pub(crate) obs_metrics: Option<SimObsMetrics>,
    /// Per-key span sampler; `None` until span tracing is enabled.
    pub(crate) span_sampler: Option<SpanSampler>,
    /// Histogram-backed span recorder, created with the sampler.
    pub(crate) span_rec: Option<SpanRecorder>,
    /// Waves started so far; the next wave gets this id.
    pub(crate) wave_seq: u64,
    /// Id of the most recently started wave, kept after completion so
    /// late migrations and buffering events stay attributable.
    pub(crate) last_wave: Option<u64>,
}

/// The simulator's registry-backed instruments. Fed from per-window
/// aggregates at the end of [`Simulation::step`], never per tuple, so
/// the data-plane hot path is untouched.
#[derive(Debug, Clone)]
pub(crate) struct SimObsMetrics {
    pub(crate) tuples_routed: Counter,
    pub(crate) tuples_remote: Counter,
    pub(crate) sink_tuples: Counter,
    pub(crate) migrated_states: Counter,
    pub(crate) migration_bytes: Counter,
    pub(crate) buffered_tuples: Counter,
    pub(crate) late_forwarded: Counter,
    pub(crate) dropped_control: Counter,
    pub(crate) delayed_control: Counter,
    pub(crate) crashes: Counter,
    pub(crate) statistics_bytes: Counter,
    pub(crate) max_queue_depth: Gauge,
    pub(crate) backlog_messages: Gauge,
    /// Distribution of per-window maximum tuple latency, in windows.
    pub(crate) window_latency: Histogram,
    /// Distribution of completed wave durations, in windows.
    pub(crate) wave_duration: Histogram,
}

impl SimObsMetrics {
    fn register(reg: &MetricsRegistry) -> Self {
        Self {
            tuples_routed: reg.counter("sim_tuples_routed_total", "tuples sent on all edges"),
            tuples_remote: reg.counter(
                "sim_tuples_remote_total",
                "tuples that crossed a server boundary",
            ),
            sink_tuples: reg.counter("sim_sink_tuples_total", "tuples absorbed by sinks"),
            migrated_states: reg.counter(
                "sim_migrated_states_total",
                "key states moved by reconfiguration waves",
            ),
            migration_bytes: reg.counter(
                "sim_migration_bytes_total",
                "bytes of key state shipped over the network",
            ),
            buffered_tuples: reg.counter(
                "sim_buffered_tuples_total",
                "tuples buffered while their key's state was in flight",
            ),
            late_forwarded: reg.counter(
                "sim_late_forwarded_total",
                "stragglers forwarded from old to new key owners",
            ),
            dropped_control: reg.counter(
                "sim_dropped_control_total",
                "control messages dropped by fault injection",
            ),
            delayed_control: reg.counter(
                "sim_delayed_control_total",
                "control messages delayed by fault injection",
            ),
            crashes: reg.counter("sim_poi_crashes_total", "instance crashes injected"),
            statistics_bytes: reg.counter(
                "sim_statistics_bytes_total",
                "bytes of ①/② pair-statistics uploads charged to NICs",
            ),
            max_queue_depth: reg.gauge(
                "sim_max_queue_depth",
                "deepest instance input queue seen in any window",
            ),
            backlog_messages: reg.gauge(
                "sim_backlog_messages",
                "network messages awaiting delivery at window end",
            ),
            window_latency: reg.histogram(
                "sim_window_latency_windows",
                "per-window max tuple latency, in windows",
                &log2_bounds(6),
            ),
            wave_duration: reg.histogram(
                "sim_wave_duration_windows",
                "completed reconfiguration wave durations, in windows",
                &log2_bounds(7)[1..],
            ),
        }
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("operators", &self.topo.operator_count())
            .field("instances", &self.pois.len())
            .field("servers", &self.servers.len())
            .field("window_index", &self.window_index)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Deploys `topology` on `cluster` according to `placement`.
    ///
    /// # Panics
    ///
    /// Panics if the placement shape does not match the topology or
    /// references servers outside the cluster.
    #[must_use]
    pub fn new(
        topology: Topology,
        cluster: ClusterSpec,
        placement: Placement,
        config: SimConfig,
    ) -> Self {
        assert!(cluster.servers > 0, "cluster must have at least one server");
        assert_eq!(
            placement.per_po.len(),
            topology.pos.len(),
            "placement does not match topology"
        );
        let mut poi_base = Vec::with_capacity(topology.pos.len());
        let mut next = 0usize;
        for po in &topology.pos {
            poi_base.push(next);
            next += po.parallelism;
        }
        let mut pois = Vec::with_capacity(next);
        for (po_idx, po) in topology.pos.iter().enumerate() {
            let po_id = PoId(po_idx);
            for instance in 0..po.parallelism {
                let server = placement.server(po_id, instance);
                assert!(server.0 < cluster.servers, "placement server out of range");
                let kind = match &po.kind {
                    PoKind::Source { factory, rate } => PoiKindRt::Source {
                        gen: factory(instance),
                        rate: *rate,
                        exhausted: false,
                        credit: 0.0,
                    },
                    PoKind::Operator { factory, stateful } => PoiKindRt::Operator {
                        op: factory(instance),
                        stateful: *stateful,
                        state_field: topology.state_field(po_id),
                    },
                };
                let out = topology.out_edges[po_idx]
                    .iter()
                    .map(|&edge_id| {
                        let edge = &topology.edges[edge_id.index()];
                        let dest_po = edge.to;
                        let kind = match &edge.grouping {
                            Grouping::Shuffle => OutKind::Shuffle { next: instance },
                            Grouping::LocalOrShuffle => {
                                let local = (0..topology.pos[dest_po.index()].parallelism)
                                    .filter(|&i| placement.server(dest_po, i) == server)
                                    .collect();
                                OutKind::LocalOrShuffle {
                                    local,
                                    next: instance,
                                }
                            }
                            Grouping::Fields { field, router } => OutKind::Fields {
                                field: *field,
                                router: Arc::clone(router),
                            },
                        };
                        OutRt {
                            edge: edge_id,
                            dest_po,
                            kind,
                        }
                    })
                    .collect();
                pois.push(PoiRt {
                    po: po_id,
                    instance,
                    server,
                    kind,
                    cost_per_tuple: po
                        .cost_per_tuple
                        .unwrap_or(cluster.default_cost_per_tuple),
                    input: VecDeque::new(),
                    state: HashMap::new(),
                    out,
                    observers: HashMap::new(),
                    staged: None,
                    awaiting_propagates: 0,
                    pending: HashMap::new(),
                    departed: HashMap::new(),
                });
            }
        }
        let servers = (0..cluster.servers)
            .map(|s| ServerRt {
                egress: 0.0,
                ingress: 0.0,
                rack: cluster.rack_of(s),
                backlog: VecDeque::new(),
            })
            .collect();
        let racks = (0..cluster.rack_count)
            .map(|_| RackRt { up: 0.0, down: 0.0 })
            .collect();
        let window = config.window;
        let n_servers = cluster.servers;
        Self {
            topo: topology,
            cluster,
            config,
            pois,
            poi_base,
            servers,
            racks,
            window_index: 0,
            in_flight: 0,
            mgmt_debt: vec![0.0; n_servers],
            metrics: MetricsLog::new(window),
            control_queue: Vec::new(),
            reconfig: None,
            fault: None,
            manager_down: false,
            degraded: false,
            last_checkpoint: None,
            auto_checkpoint_every: None,
            lost_migrations: Vec::new(),
            tracer: None,
            obs_metrics: None,
            span_sampler: None,
            span_rec: None,
            wave_seq: 0,
            last_wave: None,
        }
    }

    /// Enables control-plane event tracing with a ring of `capacity`
    /// events (idempotent; an existing ring and its contents are
    /// kept). Only control-plane activity is recorded — waves,
    /// migrations, faults, first-stalls — so tracing does not perturb
    /// simulated throughput.
    pub fn enable_tracing(&mut self, capacity: usize) {
        if self.tracer.is_none() {
            self.tracer = Some(Box::new(EventTracer::new(capacity)));
        }
    }

    /// The event tracer, if tracing is enabled.
    #[must_use]
    pub fn tracer(&self) -> Option<&EventTracer> {
        self.tracer.as_deref()
    }

    /// Drains and returns all traced events (empty when tracing is
    /// disabled).
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.tracer.as_mut().map(|t| t.take()).unwrap_or_default()
    }

    /// Attaches `registry`: the simulator registers its counters,
    /// gauges and histograms there and feeds them per-window
    /// aggregates at the end of every [`step`](Self::step).
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.obs_metrics = Some(SimObsMetrics::register(registry));
    }

    /// Enables sampled end-to-end span tracing: `sampler` picks keys
    /// at source emit, and every hop records queue-wait and processing
    /// time (simulated windows and CPU charges converted to
    /// nanoseconds) into the same per-hop histograms the live runtime
    /// uses — see [`SpanMetricName`](crate::obs::SpanMetricName) for
    /// the shared schema. Pass a `registry` to export them; `None`
    /// keeps the histograms detached (events still reach the tracer).
    pub fn enable_span_tracing(
        &mut self,
        sampler: SpanSampler,
        registry: Option<Arc<MetricsRegistry>>,
    ) {
        self.span_sampler = Some(sampler);
        self.span_rec = Some(SpanRecorder::new(registry));
    }

    /// Simulated-time nanoseconds at the start of window `window`.
    #[inline]
    fn window_ns(&self, window: u64) -> u64 {
        (window as f64 * self.config.window * 1e9) as u64
    }

    /// Routing epoch for span attribution: 0 before any wave completes,
    /// then `last completed wave + 1` — mirroring the live runtime's
    /// post-wave epoch bump. `last_wave` is stamped at wave *start*, so
    /// while a wave is still in flight the previous epoch stays active.
    #[inline]
    fn span_epoch(&self) -> u64 {
        match self.last_wave {
            Some(w) if self.reconfig.is_some() => w,
            Some(w) => w + 1,
            None => 0,
        }
    }

    /// Records one trace event (no-op while tracing is disabled).
    #[inline]
    pub(crate) fn trace(&mut self, wave: Option<u64>, kind: TraceEventKind) {
        if let Some(tracer) = self.tracer.as_mut() {
            let window = self.window_index;
            tracer.record(window, window as f64 * self.config.window, wave, kind);
        }
    }

    /// Wave id for events that only make sense inside a running wave.
    #[inline]
    pub(crate) fn active_wave(&self) -> Option<u64> {
        self.reconfig.as_ref().map(|e| e.wave_id)
    }

    /// Wave id for events caused by the latest wave even after it
    /// finished (late migrations, buffering, straggler forwarding).
    #[inline]
    pub(crate) fn wave_hint(&self) -> Option<u64> {
        self.active_wave().or(self.last_wave)
    }

    /// The deployed topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The cluster specification.
    #[must_use]
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Global instance ids of operator `po`, in instance order.
    #[must_use]
    pub fn poi_ids(&self, po: PoId) -> Vec<PoiId> {
        let base = self.poi_base[po.index()];
        (0..self.topo.pos[po.index()].parallelism)
            .map(|i| PoiId(base + i))
            .collect()
    }

    /// Server hosting `poi`.
    ///
    /// # Panics
    ///
    /// Panics if `poi` is out of range.
    #[must_use]
    pub fn poi_server(&self, poi: PoiId) -> ServerId {
        self.pois[poi.index()].server
    }

    /// Operator `poi` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `poi` is out of range.
    #[must_use]
    pub fn poi_po(&self, poi: PoiId) -> PoId {
        self.pois[poi.index()].po
    }

    /// Instance index of `poi` within its operator.
    ///
    /// # Panics
    ///
    /// Panics if `poi` is out of range.
    #[must_use]
    pub fn poi_instance(&self, poi: PoiId) -> usize {
        self.pois[poi.index()].instance
    }

    /// The key state currently held by `poi` (for inspection/tests).
    ///
    /// # Panics
    ///
    /// Panics if `poi` is out of range.
    #[must_use]
    pub fn poi_state(&self, poi: PoiId) -> &HashMap<Key, StateValue> {
        &self.pois[poi.index()].state
    }

    /// Adds a pair-statistics observer on `poi` for its outgoing
    /// edge `edge` (paper §3.2 instrumentation); an edge can carry
    /// several observers. For every tuple the instance emits through
    /// `edge`, the observer sees `(input key,
    /// tuple.key(observed_field))`.
    ///
    /// `observed_field` is normally the routed field of `edge` itself,
    /// but when the next stateful operator sits behind a chain of
    /// stateless local-or-shuffle stages (the paper's Fig. 3 layout),
    /// it is the field of the eventual fields grouping — the tuple
    /// already carries that key here.
    ///
    /// # Panics
    ///
    /// Panics if `poi` has no outgoing edge `edge`.
    pub fn add_pair_observer(
        &mut self,
        poi: PoiId,
        edge: EdgeId,
        observed_field: usize,
        observer: Box<dyn PairObserver>,
    ) {
        assert!(
            self.pois[poi.index()].out.iter().any(|o| o.edge == edge),
            "instance has no such out edge"
        );
        self.pois[poi.index()]
            .observers
            .entry(edge)
            .or_default()
            .push((observed_field, observer));
    }

    /// Replaces the router `poi` uses on out-edge `edge`, immediately
    /// and without the reconfiguration protocol (offline mode: load
    /// tables before starting the stream, §3.4).
    ///
    /// # Panics
    ///
    /// Panics if `poi` does not have an outgoing fields edge `edge`.
    pub fn set_poi_router(&mut self, poi: PoiId, edge: EdgeId, router: Arc<dyn KeyRouter>) {
        let out = self.pois[poi.index()]
            .out
            .iter_mut()
            .find(|o| o.edge == edge)
            .expect("poi has no such out edge");
        match &mut out.kind {
            OutKind::Fields { router: slot, .. } => *slot = router,
            _ => panic!("edge is not fields-grouped"),
        }
        self.trace(
            self.wave_hint(),
            TraceEventKind::RouterSwapped {
                poi: poi.index(),
                edge: edge.index(),
            },
        );
    }

    /// Replaces the router on `edge` for every upstream instance at
    /// once (offline configuration).
    ///
    /// # Panics
    ///
    /// Panics if `edge` is not fields-grouped.
    pub fn set_edge_router(&mut self, edge: EdgeId, router: Arc<dyn KeyRouter>) {
        let from = self.topo.edges[edge.index()].from;
        for poi in self.poi_ids(from) {
            self.set_poi_router(poi, edge, Arc::clone(&router));
        }
    }

    /// Number of windows simulated so far.
    #[must_use]
    pub fn window_index(&self) -> u64 {
        self.window_index
    }

    /// Current simulated time, seconds.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.window_index as f64 * self.config.window
    }

    /// Tuples currently in flight (queued, buffered, or on the wire).
    #[must_use]
    pub fn in_flight(&self) -> i64 {
        self.in_flight
    }

    /// The metrics recorded so far.
    #[must_use]
    pub fn metrics(&self) -> &MetricsLog {
        &self.metrics
    }

    /// Charges `bytes` of management-plane egress to `server`,
    /// debited from its NIC budget over the following windows — the
    /// cost of a POI uploading its statistics to the manager
    /// (protocol steps ① GET_METRICS / ② SEND_METRICS of §3.4, whose
    /// payloads the manager otherwise reads out-of-band).
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn charge_management_traffic(&mut self, server: ServerId, bytes: u64) {
        self.mgmt_debt[server.0] += bytes as f64;
    }

    /// Like [`charge_management_traffic`], but attributed to a
    /// specific instance: records the ① `GET_METRICS` / ②
    /// `SEND_METRICS` exchange for `poi` in the trace, feeds the
    /// statistics-bytes counter, and charges the upload to its
    /// server's NIC. This is the entry point the manager uses when it
    /// polls instrumented POIs.
    ///
    /// While a wave is active the ①/② events are *not* re-emitted —
    /// the wave start already traced the exchange for every POI
    /// (see [`Simulation::start_reconfiguration`]) and a second pair
    /// would double-count the protocol step; only the byte accounting
    /// is applied then.
    ///
    /// [`charge_management_traffic`]: Self::charge_management_traffic
    ///
    /// # Panics
    ///
    /// Panics if `poi` is out of range.
    pub fn charge_statistics_upload(&mut self, poi: PoiId, bytes: u64) {
        let server = self.pois[poi.index()].server;
        if self.active_wave().is_none() {
            self.trace(None, TraceEventKind::GetMetrics { poi: poi.index() });
            self.trace(
                None,
                TraceEventKind::SendMetrics {
                    poi: poi.index(),
                    bytes,
                },
            );
        }
        if let Some(obs) = &self.obs_metrics {
            obs.statistics_bytes.add(bytes);
        }
        self.charge_management_traffic(server, bytes);
    }

    /// Arms fault injection: the failures scheduled in `plan` fire
    /// deterministically as the simulation advances. Replaces any
    /// previously installed plan (and its occurrence counters).
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(FaultInjector::new(plan));
    }

    /// Enables periodic checkpointing: every `every` windows the
    /// engine snapshots all keyed state and routing tables, and a
    /// crashed instance respawns from the latest snapshot. Windows
    /// where a wave or migration is in flight skip the snapshot (a
    /// consistent cut needs quiescent ownership). `None` disables.
    pub fn set_auto_checkpoint(&mut self, every: Option<u64>) {
        self.auto_checkpoint_every = every.filter(|&e| e > 0);
    }

    /// The most recent automatic checkpoint, if any was taken.
    #[must_use]
    pub fn last_checkpoint(&self) -> Option<&ClusterCheckpoint> {
        self.last_checkpoint.as_ref()
    }

    /// `true` once fault injection has killed the manager. While down,
    /// no new reconfiguration can start and a running wave can only
    /// time out and roll back.
    #[must_use]
    pub fn manager_down(&self) -> bool {
        self.manager_down
    }

    /// `true` once the deployment fell back to pure hash routing
    /// because the manager became unreachable.
    #[must_use]
    pub fn degraded_to_hash(&self) -> bool {
        self.degraded
    }

    /// Brings a killed manager back (a restarted manager process).
    /// Reconfiguration becomes possible again; a later manager death
    /// degrades the deployment afresh.
    pub fn revive_manager(&mut self) {
        self.manager_down = false;
        self.degraded = false;
    }

    /// Crashes instance `poi` right now, as [`FaultEvent::CrashPoi`]
    /// would: its keyed state, input queue and buffered tuples are
    /// lost, then it respawns from the last checkpoint (empty if none
    /// was taken). Crashed sources stay down. If a wave is running,
    /// the crash nacks it.
    ///
    /// [`FaultEvent::CrashPoi`]: crate::FaultEvent::CrashPoi
    ///
    /// # Panics
    ///
    /// Panics if `poi` is out of range.
    pub fn crash_poi(&mut self, poi: PoiId, wm: Option<&mut WindowMetrics>) {
        let idx = poi.index();
        assert!(idx < self.pois.len(), "poi out of range");
        if let Some(wm) = wm {
            wm.crashes += 1;
        }
        self.trace(self.active_wave(), TraceEventKind::PoiCrashed { poi: idx });
        // A wave participant died: its staged configuration and ack
        // are gone, so the wave cannot complete as sent.
        if let Some(exec) = self.reconfig.as_mut() {
            exec.nacked = true;
        }
        let mut dropped = self.pois[idx].input.len() as i64;
        dropped += self.pois[idx]
            .pending
            .values()
            .map(|b| b.len() as i64)
            .sum::<i64>();
        {
            let poi = &mut self.pois[idx];
            poi.input.clear();
            poi.pending.clear();
            poi.departed.clear();
            poi.staged = None;
            poi.awaiting_propagates = 0;
            poi.state.clear();
            // A restarted generator would replay its stream from the
            // beginning; keep it down instead.
            if let PoiKindRt::Source { exhausted, .. } = &mut poi.kind {
                *exhausted = true;
            }
        }
        self.in_flight -= dropped;
        debug_assert!(self.in_flight >= 0, "in-flight accounting underflow");

        // Respawn from the last checkpoint. Keys that have since
        // migrated to another live instance are skipped — the live
        // copy is newer and ownership must stay unique.
        let (restored_state, restored_routers) = match &self.last_checkpoint {
            Some(cp) if cp.states.len() == self.pois.len() => {
                (cp.states[idx].clone(), cp.routers[idx].clone())
            }
            _ => return,
        };
        let po = self.pois[idx].po;
        let base = self.poi_base[po.index()];
        let parallelism = self.topo.pos[po.index()].parallelism;
        for (key, state) in restored_state {
            let held_elsewhere = (0..parallelism)
                .map(|i| base + i)
                .any(|j| j != idx && self.pois[j].state.contains_key(&key));
            if !held_elsewhere {
                self.pois[idx].state.insert(key, state);
            }
        }
        for (edge, router) in restored_routers {
            self.set_poi_router(PoiId(idx), edge, router);
        }
    }

    /// Applies the faults scheduled for the current window.
    fn apply_due_faults(&mut self, wm: &mut WindowMetrics) {
        let now = self.window_index;
        let (crashes, kill) = match &mut self.fault {
            Some(injector) => (injector.poi_crashes_due(now), injector.manager_kill_due(now)),
            None => return,
        };
        for idx in crashes {
            if idx < self.pois.len() {
                self.crash_poi(PoiId(idx), Some(wm));
            }
        }
        if kill {
            self.manager_down = true;
            self.trace(self.active_wave(), TraceEventKind::ManagerKilled);
            // With no wave running there is nothing to wait for: fall
            // back to hash routing immediately. A running wave is given
            // until its deadline, then rolled back and degraded (see
            // check_wave_progress).
            if self.reconfig.is_none() {
                self.degrade_to_hash(wm);
            }
        }
    }

    /// Runs `windows` simulation windows.
    pub fn run(&mut self, windows: usize) {
        for _ in 0..windows {
            self.step();
        }
    }

    /// Runs until all sources are exhausted and no tuple remains in
    /// flight, or `max_windows` elapse. Returns the number of windows
    /// executed.
    pub fn run_until_drained(&mut self, max_windows: usize) -> usize {
        for executed in 0..max_windows {
            if self.is_drained() {
                return executed;
            }
            self.step();
        }
        max_windows
    }

    /// `true` when every source is exhausted and nothing is in flight.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.in_flight == 0
            && self.control_queue.is_empty()
            && self.reconfig.is_none()
            && self.lost_migrations.is_empty()
            && self.pois.iter().all(|p| match &p.kind {
                PoiKindRt::Source { exhausted, .. } => *exhausted,
                _ => p.input.is_empty() && p.pending.is_empty(),
            })
    }

    /// Executes one simulation window.
    pub fn step(&mut self) {
        let window = self.config.window;
        let mut wm = WindowMetrics {
            time: (self.window_index + 1) as f64 * window,
            edges: vec![Default::default(); self.topo.edges.len()],
            poi_processed: vec![0; self.pois.len()],
            ..WindowMetrics::default()
        };

        // 1. Refill NIC and rack-uplink budgets, debiting any
        // management-plane traffic (statistics uploads) queued since
        // the last window.
        let nic = self.cluster.nic_bytes_per_window(window);
        for (server, debt) in self.servers.iter_mut().zip(&mut self.mgmt_debt) {
            let paid = debt.min(nic);
            server.egress = nic - paid;
            server.ingress = nic;
            *debt -= paid;
        }
        let uplink = self.cluster.uplink_bytes_per_window(window);
        for rack in &mut self.racks {
            rack.up = uplink;
            rack.down = uplink;
        }

        // 2. Drain network backlogs: FIFO per sending server, round-
        // robin across servers so one blocked head does not strand the
        // other NICs' budgets. The starting server rotates per window
        // for long-run fairness.
        let n_servers = self.servers.len();
        let start = (self.window_index as usize) % n_servers.max(1);
        loop {
            let mut progressed = false;
            for offset in 0..n_servers {
                let s = (start + offset) % n_servers;
                // Transmit as many back-to-back messages from this
                // server as both budgets allow before rotating.
                while let Some(head) = self.servers[s].backlog.front() {
                    let bytes = head.bytes as f64;
                    let dest_server = self.pois[head.to_poi].server.0;
                    if !self.net_budget_ok(s, dest_server, bytes) {
                        break;
                    }
                    let msg = self.servers[s].backlog.pop_front().expect("peeked");
                    self.consume_net_budget(s, dest_server, bytes);
                    self.deliver_remote_payload(msg, &mut wm);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }

        // 3. Fire scheduled faults, then deliver due control messages
        // (reconfiguration protocol), retransmit lost migrations, and
        // check the running wave against its deadline.
        self.apply_due_faults(&mut wm);
        self.process_lost_migrations(&mut wm);
        self.process_due_control(&mut wm);
        self.check_wave_progress(&mut wm);

        // 4a. Sources emit, interleaved fairly so saturating sources
        // share the in-flight admission budget instead of the first
        // instance monopolizing it.
        self.run_sources(window, &mut wm);

        // 4b. Operators process, in topological order.
        for po_pos in 0..self.topo.topo_order.len() {
            let po = self.topo.topo_order[po_pos];
            if self.topo.pos[po.index()].is_source() {
                continue;
            }
            let base = self.poi_base[po.index()];
            let parallelism = self.topo.pos[po.index()].parallelism;
            for instance in 0..parallelism {
                self.run_operator(base + instance, window, &mut wm);
            }
        }

        // 5. Occupancy snapshot for diagnostics.
        wm.max_queue_depth = self.pois.iter().map(|p| p.input.len()).max().unwrap_or(0);
        wm.backlog_messages = self.servers.iter().map(|s| s.backlog.len()).sum();

        // 5b. Feed the attached metrics registry from the finished
        // window's aggregates — one batch of adds per window, so the
        // per-tuple hot path never touches an atomic.
        if let Some(m) = &self.obs_metrics {
            let (mut routed, mut remote) = (0u64, 0u64);
            for e in &wm.edges {
                routed += e.local + e.remote;
                remote += e.remote;
            }
            m.tuples_routed.add(routed);
            m.tuples_remote.add(remote);
            m.sink_tuples.add(wm.sink_tuples);
            m.migrated_states.add(wm.migrated_states);
            m.migration_bytes.add(wm.migrated_bytes);
            m.buffered_tuples.add(wm.buffered);
            m.late_forwarded.add(wm.late_forwarded);
            m.dropped_control.add(wm.dropped_control);
            m.delayed_control.add(wm.delayed_control);
            m.crashes.add(wm.crashes);
            m.max_queue_depth.max(wm.max_queue_depth as u64);
            m.backlog_messages.set(wm.backlog_messages as u64);
            if wm.latency_count > 0 {
                m.window_latency.observe(wm.latency_window_max);
            }
        }

        self.window_index += 1;
        self.metrics.push(wm);

        // 6. Periodic checkpoint for crash recovery (skipped while a
        // wave or migration is in flight — no consistent cut exists).
        if let Some(every) = self.auto_checkpoint_every {
            if self.window_index.is_multiple_of(every) {
                if let Ok(cp) = self.checkpoint() {
                    self.last_checkpoint = Some(cp);
                }
            }
        }
    }

    /// Emits from every source instance in round-robin batches until
    /// all are exhausted, rate-capped, CPU-exhausted, or admission
    /// control blocks further emission.
    fn run_sources(&mut self, window: f64, wm: &mut WindowMetrics) {
        const BATCH: usize = 64;
        let source_pois: Vec<usize> = (0..self.pois.len())
            .filter(|&i| matches!(self.pois[i].kind, PoiKindRt::Source { .. }))
            .collect();
        let n = source_pois.len();
        let mut budgets = vec![window; n];
        let mut remaining = Vec::with_capacity(n);
        for &idx in &source_pois {
            let PoiKindRt::Source { rate, credit, .. } = &mut self.pois[idx].kind else {
                unreachable!("filtered above");
            };
            remaining.push(match rate {
                SourceRate::Saturate => self.config.source_burst_per_window,
                SourceRate::PerSecond(r) => {
                    *credit += *r * window;
                    let whole = credit.floor();
                    *credit -= whole;
                    whole as usize
                }
            });
        }
        loop {
            let mut progressed = false;
            for si in 0..n {
                let idx = source_pois[si];
                for _ in 0..BATCH.min(remaining[si]) {
                    if self.in_flight >= self.config.max_in_flight as i64
                        || budgets[si] <= 0.0
                    {
                        remaining[si] = 0;
                        break;
                    }
                    let mut tuple = {
                        let PoiKindRt::Source { gen, exhausted, .. } =
                            &mut self.pois[idx].kind
                        else {
                            unreachable!("filtered above");
                        };
                        if *exhausted {
                            remaining[si] = 0;
                            break;
                        }
                        match gen.next_tuple() {
                            Some(t) => t,
                            None => {
                                *exhausted = true;
                                remaining[si] = 0;
                                break;
                            }
                        }
                    };
                    wm.emitted += 1;
                    remaining[si] -= 1;
                    let born = self.window_index;
                    // Span sampling at the source: the decision is
                    // made on the first fields-routed key, so sampled
                    // spans follow exactly the keys whose routing the
                    // manager controls.
                    if let Some(sampler) = self.span_sampler {
                        let field = self.pois[idx].out.iter().find_map(|o| match &o.kind {
                            OutKind::Fields { field, .. } => Some(*field),
                            _ => None,
                        });
                        if let Some(field) = field {
                            if tuple.field_count() > field && sampler.sampled(tuple.key(field))
                            {
                                tuple.set_span_origin(self.window_ns(born));
                                let key = tuple.key(field).value();
                                self.trace(
                                    self.wave_hint(),
                                    TraceEventKind::SpanBegin { poi: idx, key },
                                );
                            }
                        }
                    }
                    let copies = self.emit_from(idx, tuple, born, &mut budgets[si], wm);
                    self.in_flight += copies as i64;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    fn run_operator(&mut self, idx: usize, window: f64, wm: &mut WindowMetrics) {
        let mut budget = window;
        let mut emitted = Vec::with_capacity(4);
        while budget > 0.0 {
            let Some(in_tuple) = self.pois[idx].input.pop_front() else {
                break;
            };
            // Identify the state key for pending/departed handling.
            let state_key = match &self.pois[idx].kind {
                PoiKindRt::Operator {
                    state_field: Some(f),
                    ..
                } => Some(in_tuple.tuple.key(*f)),
                _ => None,
            };
            if let Some(key) = state_key {
                // Awaiting migrated state: buffer (paper §3.4). The
                // empty → non-empty transition is traced as one stall
                // per key (not per tuple).
                let stalled = match self.pois[idx].pending.get_mut(&key) {
                    Some(buf) => {
                        let first = buf.is_empty();
                        buf.push_back(in_tuple);
                        Some(first)
                    }
                    None => None,
                };
                if let Some(first) = stalled {
                    wm.buffered += 1;
                    if first {
                        self.trace(
                            self.wave_hint(),
                            TraceEventKind::BufferStall {
                                poi: idx,
                                key: key.value(),
                            },
                        );
                    }
                    continue;
                }
                // State departed to a new owner: forward the straggler.
                if let Some(&new_owner) = self.pois[idx].departed.get(&key) {
                    wm.late_forwarded += 1;
                    let from_server = self.pois[idx].server;
                    // Charged like any remote handoff.
                    budget -= self.cluster.remote_send_cpu;
                    let edge = self.topo.in_edges[self.pois[idx].po.index()]
                        .first()
                        .copied()
                        .expect("stateful operator has an input edge");
                    self.deliver_data(
                        from_server,
                        new_owner.index(),
                        in_tuple.tuple,
                        edge,
                        in_tuple.born,
                        wm,
                    );
                    continue;
                }
            }

            // Charge processing cost.
            let mut cost = self.pois[idx].cost_per_tuple;
            if in_tuple.remote {
                cost += self.cluster.remote_recv_cpu
                    + self.cluster.remote_cpu_per_byte * f64::from(in_tuple.tuple.payload_bytes());
            }
            budget -= cost;
            wm.poi_processed[idx] += 1;

            // Span hop: queue wait from the enqueue window, processing
            // time from the CPU charge, into the same log2 histograms
            // (and metric names) the live runtime uses.
            if self.span_rec.is_some() && in_tuple.tuple.is_span_sampled() {
                let queue_ns =
                    self.window_ns(self.window_index - in_tuple.enqueued);
                let proc_ns = (cost * 1e9) as u64;
                let epoch = self.span_epoch();
                let po = self.pois[idx].po.index();
                let is_sink = self.pois[idx].out.is_empty();
                let total_ns = self
                    .window_ns(self.window_index)
                    .saturating_sub(in_tuple.tuple.span_origin_ns());
                let rec = self.span_rec.as_mut().expect("checked above");
                rec.record_hop(po, epoch, in_tuple.remote, queue_ns, proc_ns);
                if is_sink {
                    rec.record_end(po, epoch, total_ns);
                }
                let key = state_key
                    .unwrap_or_else(|| in_tuple.tuple.key(0))
                    .value();
                self.trace(
                    self.wave_hint(),
                    TraceEventKind::SpanHop {
                        poi: idx,
                        key,
                        queue_ns,
                        proc_ns,
                        remote: in_tuple.remote,
                    },
                );
                if is_sink {
                    self.trace(
                        self.wave_hint(),
                        TraceEventKind::SpanEnd {
                            poi: idx,
                            key,
                            total_ns,
                        },
                    );
                }
            }

            // Run the operator with split borrows on the POI.
            emitted.clear();
            {
                let poi = &mut self.pois[idx];
                let PoiKindRt::Operator { op, stateful, .. } = &mut poi.kind else {
                    unreachable!("checked by caller");
                };
                let state_slot = if *stateful {
                    let key = state_key.expect("stateful operators have a state field");
                    Some(
                        poi.state
                            .entry(key)
                            .or_insert_with(|| op.init_state()),
                    )
                } else {
                    None
                };
                let mut ctx = OpContext {
                    state: state_slot.map(|s| &mut *s),
                    routing_key: state_key,
                    emitted: &mut emitted,
                };
                op.process(in_tuple.tuple, &mut ctx);

                // Pair instrumentation: input key × observed output
                // key, per instrumented out edge.
                if let Some(in_key) = state_key {
                    if !poi.observers.is_empty() {
                        for out in &poi.out {
                            let Some(slots) = poi.observers.get_mut(&out.edge) else {
                                continue;
                            };
                            for (field, observer) in slots {
                                for t in &emitted {
                                    observer.observe(in_key, t.key(*field));
                                }
                            }
                        }
                    }
                }
            }

            // Derived output inherits the input's span origin, so a
            // span follows the tuple's lineage across transforming
            // operators (forwarding operators copy it implicitly).
            if in_tuple.tuple.is_span_sampled() {
                let origin = in_tuple.tuple.span_origin_ns();
                for t in &mut emitted {
                    t.set_span_origin(origin);
                }
            }

            // Deliver emitted tuples.
            let mut copies = 0usize;
            let drained = std::mem::take(&mut emitted);
            for t in drained {
                copies += self.emit_from(idx, t, in_tuple.born, &mut budget, wm);
            }
            if self.pois[idx].out.is_empty() {
                wm.sink_tuples += 1;
                self.in_flight -= 1;
                let waited = self.window_index - in_tuple.born;
                wm.latency_window_sum += waited;
                wm.latency_count += 1;
                wm.latency_window_max = wm.latency_window_max.max(waited);
            } else {
                self.in_flight += copies as i64 - 1;
            }
        }
    }

    /// Routes `tuple` through every out edge of `idx`, charging remote
    /// serialization to `budget`. Returns the number of delivered
    /// copies.
    fn emit_from(
        &mut self,
        idx: usize,
        tuple: Tuple,
        born: u64,
        budget: &mut f64,
        wm: &mut WindowMetrics,
    ) -> usize {
        let from_server = self.pois[idx].server;
        let n_out = self.pois[idx].out.len();
        let mut copies = 0;
        for out_idx in 0..n_out {
            let (dest_global, edge) = {
                let out = &mut self.pois[idx].out[out_idx];
                let parallelism = self.topo.pos[out.dest_po.index()].parallelism;
                let dest_instance = match &mut out.kind {
                    OutKind::Shuffle { next } => {
                        let i = *next % parallelism;
                        *next = next.wrapping_add(1);
                        i
                    }
                    OutKind::LocalOrShuffle { local, next } => {
                        if local.is_empty() {
                            let i = *next % parallelism;
                            *next = next.wrapping_add(1);
                            i
                        } else {
                            let i = local[*next % local.len()];
                            *next = next.wrapping_add(1);
                            i
                        }
                    }
                    OutKind::Fields { field, router } => {
                        router.route(tuple.key(*field), parallelism) as usize
                    }
                };
                (
                    self.poi_base[out.dest_po.index()] + dest_instance,
                    out.edge,
                )
            };
            let dest_server = self.pois[dest_global].server;
            if dest_server != from_server {
                *budget -= self.cluster.remote_send_cpu
                    + self.cluster.remote_cpu_per_byte * f64::from(tuple.payload_bytes());
            }
            self.deliver_data(from_server, dest_global, tuple, edge, born, wm);
            copies += 1;
        }
        copies
    }

    /// Hands a data tuple to `to_poi`, in memory when co-located,
    /// otherwise through the NIC budgets or the egress backlog.
    pub(crate) fn deliver_data(
        &mut self,
        from_server: ServerId,
        to_poi: usize,
        tuple: Tuple,
        edge: EdgeId,
        born: u64,
        wm: &mut WindowMetrics,
    ) {
        let dest_server = self.pois[to_poi].server;
        if dest_server == from_server {
            wm.edges[edge.index()].record_local(1);
            self.pois[to_poi].input.push_back(InTuple {
                tuple,
                remote: false,
                born,
                enqueued: self.window_index,
            });
            return;
        }
        let bytes = self.cluster.message_bytes(tuple.wire_bytes());
        let fb = bytes as f64;
        let sender_clear = self.servers[from_server.0].backlog.is_empty();
        if sender_clear && self.net_budget_ok(from_server.0, dest_server.0, fb) {
            self.consume_net_budget(from_server.0, dest_server.0, fb);
            let crossed =
                u64::from(self.servers[from_server.0].rack != self.servers[dest_server.0].rack);
            wm.edges[edge.index()].record_remote(1, crossed, bytes);
            self.pois[to_poi].input.push_back(InTuple {
                tuple,
                remote: true,
                born,
                enqueued: self.window_index,
            });
        } else {
            self.servers[from_server.0].backlog.push_back(NetMsg {
                from_server: from_server.0,
                to_poi,
                bytes,
                payload: NetPayload::Data { tuple, edge, born },
            });
        }
    }

    /// Whether the NIC budgets (and rack uplinks when crossing racks)
    /// can carry `bytes` from `from` to `to` this window.
    fn net_budget_ok(&self, from: usize, to: usize, bytes: f64) -> bool {
        if self.servers[from].egress < bytes || self.servers[to].ingress < bytes {
            return false;
        }
        let (fr, tr) = (self.servers[from].rack, self.servers[to].rack);
        fr == tr || (self.racks[fr].up >= bytes && self.racks[tr].down >= bytes)
    }

    /// Consumes the budgets checked by [`net_budget_ok`].
    ///
    /// [`net_budget_ok`]: Simulation::net_budget_ok
    fn consume_net_budget(&mut self, from: usize, to: usize, bytes: f64) {
        self.servers[from].egress -= bytes;
        self.servers[to].ingress -= bytes;
        let (fr, tr) = (self.servers[from].rack, self.servers[to].rack);
        if fr != tr {
            self.racks[fr].up -= bytes;
            self.racks[tr].down -= bytes;
        }
    }

    /// Completes delivery of a backlogged remote message.
    fn deliver_remote_payload(&mut self, msg: NetMsg, wm: &mut WindowMetrics) {
        match msg.payload {
            NetPayload::Data { tuple, edge, born } => {
                let dest = self.pois[msg.to_poi].server.0;
                let crossed =
                    u64::from(self.servers[msg.from_server].rack != self.servers[dest].rack);
                wm.edges[edge.index()].record_remote(1, crossed, msg.bytes);
                self.pois[msg.to_poi].input.push_back(InTuple {
                    tuple,
                    remote: true,
                    born,
                    enqueued: self.window_index,
                });
            }
            NetPayload::Migrate { key, state } => {
                wm.migrated_states += 1;
                wm.migrated_bytes += msg.bytes;
                self.apply_migration(msg.to_poi, key, state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{CountOperator, IdentityOperator};
    use crate::router::ModuloRouter;

    /// The paper's evaluation topology: n sources → A (stateful count
    /// on field 0) → B (stateful count on field 1).
    fn chain(n: usize, keys: u64, payload: u32) -> Topology {
        let mut b = Topology::builder();
        let s = b.source("S", n, SourceRate::Saturate, move |i| {
            let mut c = i as u64;
            Box::new(move || {
                c += 1;
                Some(Tuple::new(
                    [Key::new(c % keys), Key::new((c / keys) % keys)],
                    payload,
                ))
            })
        });
        let a = b.stateful("A", n, CountOperator::factory());
        let bb = b.stateful("B", n, CountOperator::factory());
        b.connect(s, a, Grouping::fields(0));
        b.connect(a, bb, Grouping::fields(1));
        b.build().unwrap()
    }

    fn sim(topo: Topology, servers: usize) -> Simulation {
        let cluster = ClusterSpec::lan_10g(servers);
        let placement = Placement::aligned(&topo, servers);
        Simulation::new(topo, cluster, placement, SimConfig::default())
    }

    #[test]
    fn single_server_throughput_is_cpu_bound() {
        let mut s = sim(chain(1, 8, 0), 1);
        s.run(30);
        // One instance at 8 µs/tuple → 125 Ktuples/s; everything local.
        let tput = s.metrics().avg_throughput(10);
        assert!(
            (100_000.0..140_000.0).contains(&tput),
            "throughput {tput} out of CPU-bound range"
        );
        // All transfers local on one server.
        for w in s.metrics().windows() {
            for e in &w.edges {
                assert_eq!(e.remote, 0);
            }
        }
    }

    #[test]
    fn tuples_are_conserved() {
        let mut s = sim(chain(2, 6, 100), 2);
        s.run(20);
        let emitted = s.metrics().total_emitted();
        let sunk = s.metrics().total_sink();
        let queued: usize = s.pois.iter().map(|p| p.input.len()).sum();
        let backlog: usize = s.servers.iter().map(|sv| sv.backlog.len()).sum();
        assert!(emitted > 0);
        assert_eq!(
            emitted,
            sunk + queued as u64 + backlog as u64,
            "tuple conservation violated"
        );
        assert_eq!(s.in_flight(), (queued + backlog) as i64);
    }

    #[test]
    fn fields_grouping_sends_key_to_one_instance() {
        let mut s = sim(chain(3, 9, 0), 3);
        s.run(10);
        let a_pois = s.poi_ids(s.topology().po_by_name("A").unwrap());
        // Each key must appear in exactly one instance's state.
        let mut seen = HashMap::new();
        for &poi in &a_pois {
            for (&k, v) in s.poi_state(poi) {
                assert!(
                    seen.insert(k, v.as_count().unwrap()).is_none(),
                    "key {k} appears in two instances"
                );
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn state_counts_match_processed() {
        let mut s = sim(chain(2, 4, 0), 2);
        s.run(10);
        let a = s.topology().po_by_name("A").unwrap();
        let a_pois = s.poi_ids(a);
        let total_state: u64 = a_pois
            .iter()
            .flat_map(|&p| s.poi_state(p).values())
            .map(|v| v.as_count().unwrap())
            .sum();
        let processed: u64 = s
            .metrics()
            .windows()
            .iter()
            .map(|w| {
                a_pois
                    .iter()
                    .map(|p| w.poi_processed[p.index()])
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(total_state, processed);
    }

    #[test]
    fn modulo_routing_is_fully_local_for_aligned_keys() {
        // Keys 0..n with modulo routers on both hops: tuple (i, i)
        // stays on server i end to end.
        let n = 3;
        let mut b = Topology::builder();
        let s = b.source("S", n, SourceRate::Saturate, move |i| {
            let key = Key::new(i as u64);
            Box::new(move || Some(Tuple::new([key, key], 0)))
        });
        let a = b.stateful("A", n, CountOperator::factory());
        let bb = b.stateful("B", n, CountOperator::factory());
        b.connect(s, a, Grouping::fields_with(0, Arc::new(ModuloRouter)));
        b.connect(a, bb, Grouping::fields_with(1, Arc::new(ModuloRouter)));
        let topo = b.build().unwrap();
        let mut s = sim(topo, n);
        s.run(10);
        for w in s.metrics().windows() {
            for e in &w.edges {
                assert_eq!(e.remote, 0, "aligned modulo routing must stay local");
            }
        }
        assert!(s.metrics().total_sink() > 0);
    }

    #[test]
    fn network_bottleneck_limits_throughput() {
        // Large payloads on a 1 Gb/s network: remote traffic dominates.
        let topo = chain(2, 64, 12 * 1024);
        let cluster = ClusterSpec::lan_1g(2);
        let placement = Placement::aligned(&topo, 2);
        let mut s = Simulation::new(topo, cluster, placement, SimConfig::default());
        s.run(30);
        let tput = s.metrics().avg_throughput(10);
        // 1 Gb/s = 125 MB/s; at ~12 kB remote tuples the NIC caps the
        // remote stream at ~10 Ktuples/s, far below the CPU bound.
        assert!(
            tput < 60_000.0,
            "throughput {tput} should be network-bound"
        );
        assert!(tput > 1_000.0, "throughput {tput} should still flow");
        // The bottleneck shows up as standing network backlog.
        let w = s.metrics().windows().last().unwrap();
        assert!(w.backlog_messages > 0, "expected a standing backlog");
        assert!(w.max_queue_depth < 1_000_000);
    }

    #[test]
    fn local_or_shuffle_prefers_local() {
        let mut b = Topology::builder();
        let s = b.source("S", 2, SourceRate::PerSecond(10_000.0), |_| {
            Box::new(|| Some(Tuple::new([Key::new(0)], 0)))
        });
        let a = b.stateless("A", 2, IdentityOperator::factory());
        b.connect(s, a, Grouping::LocalOrShuffle);
        let topo = b.build().unwrap();
        let mut s = sim(topo, 2);
        s.run(10);
        for w in s.metrics().windows() {
            assert_eq!(w.edges[0].remote, 0, "local-or-shuffle crossed servers");
        }
    }

    #[test]
    fn shuffle_spreads_round_robin() {
        let mut b = Topology::builder();
        let s = b.source("S", 1, SourceRate::PerSecond(40_000.0), |_| {
            Box::new(|| Some(Tuple::new([Key::new(0)], 0)))
        });
        let a = b.stateless("A", 4, IdentityOperator::factory());
        b.connect(s, a, Grouping::Shuffle);
        let topo = b.build().unwrap();
        let mut s = sim(topo, 4);
        s.run(10);
        let a_po = s.topology().po_by_name("A").unwrap();
        let pois = s.poi_ids(a_po);
        let loads: Vec<u64> = pois
            .iter()
            .map(|&p| {
                s.metrics()
                    .windows()
                    .iter()
                    .map(|w| w.poi_processed[p.index()])
                    .sum()
            })
            .collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        assert!(max - min <= 1 + max / 100, "shuffle imbalance: {loads:?}");
    }

    #[test]
    fn rate_limited_source_obeys_rate() {
        let mut b = Topology::builder();
        let s = b.source("S", 1, SourceRate::PerSecond(1000.0), |_| {
            Box::new(|| Some(Tuple::new([Key::new(0)], 0)))
        });
        let a = b.stateful("A", 1, CountOperator::factory());
        b.connect(s, a, Grouping::fields(0));
        let topo = b.build().unwrap();
        let mut s = sim(topo, 1);
        s.run(10); // 1 second
        let emitted = s.metrics().total_emitted();
        assert!((900..=1100).contains(&(emitted as i64)), "emitted {emitted}");
    }

    #[test]
    fn finite_source_drains() {
        let mut b = Topology::builder();
        let s = b.source("S", 1, SourceRate::Saturate, |_| {
            let mut left = 500u32;
            Box::new(move || {
                if left == 0 {
                    None
                } else {
                    left -= 1;
                    Some(Tuple::new([Key::new(u64::from(left) % 7)], 0))
                }
            })
        });
        let a = b.stateful("A", 1, CountOperator::factory());
        b.connect(s, a, Grouping::fields(0));
        let topo = b.build().unwrap();
        let mut s = sim(topo, 1);
        let windows = s.run_until_drained(100);
        assert!(windows < 100, "should drain quickly");
        assert_eq!(s.metrics().total_emitted(), 500);
        assert_eq!(s.metrics().total_sink(), 500);
        assert!(s.is_drained());
    }

    #[test]
    fn management_traffic_debits_egress() {
        // A tight NIC: a large statistics upload visibly dents the
        // following windows' throughput, then recovers.
        let topo = chain(2, 16, 8 * 1024);
        let cluster = ClusterSpec::lan_1g(2);
        let placement = Placement::aligned(&topo, 2);
        let mut s = Simulation::new(topo, cluster, placement, SimConfig::default());
        s.run(20);
        let before = s.metrics().avg_throughput(10);
        // Debit ~3 windows of egress from server 0.
        let budget = s.cluster().nic_bytes_per_window(s.metrics().window_len());
        s.charge_management_traffic(crate::topology::ServerId(0), (3.0 * budget) as u64);
        s.run(4);
        let windows = s.metrics().windows();
        let during: u64 = windows[20..24].iter().map(|w| w.sink_tuples).sum();
        let dent = during as f64 / (4.0 * s.metrics().window_len());
        assert!(
            dent < before * 0.9,
            "upload should dent throughput: {before} -> {dent}"
        );
        s.run(20);
        let after = s.metrics().avg_throughput(34);
        assert!(
            after > before * 0.9,
            "throughput should recover: {before} -> {after}"
        );
    }

    #[test]
    fn observer_sees_pairs() {
        use parking_lot::Mutex;
        let pairs = Arc::new(Mutex::new(Vec::new()));
        let topo = chain(2, 4, 0);
        let mut s = sim(topo, 2);
        let a = s.topology().po_by_name("A").unwrap();
        let b = s.topology().po_by_name("B").unwrap();
        let edge = s.topology().edge_between(a, b).unwrap();
        for poi in s.poi_ids(a) {
            let sink = Arc::clone(&pairs);
            s.add_pair_observer(
                poi,
                edge,
                1,
                Box::new(move |i: Key, o: Key| {
                    sink.lock().push((i, o));
                }),
            );
        }
        s.run(3);
        let observed = pairs.lock();
        assert!(!observed.is_empty());
        // Source emits (c % 4, (c/4) % 4): both fields in 0..4.
        for &(i, o) in observed.iter() {
            assert!(i.value() < 4 && o.value() < 4);
        }
    }
}
