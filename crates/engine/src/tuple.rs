//! Data tuples flowing through a topology.

use crate::key::Key;
use std::fmt;

/// Maximum number of key fields a tuple can carry.
///
/// The evaluation applications use at most two (e.g. location and
/// hashtag); four leaves room for richer DAGs without heap-allocating
/// per tuple.
pub const MAX_FIELDS: usize = 4;

/// A data tuple: up to [`MAX_FIELDS`] routing keys plus an opaque
/// payload accounted for only by its size (the paper's "padding").
///
/// The payload contents are irrelevant to routing and to the cost
/// model — only `payload_bytes` matters for network transfer — so the
/// simulator does not materialize them.
///
/// # Example
///
/// ```
/// use streamloc_engine::{Key, Tuple};
///
/// // A geo-tagged message: (location, hashtag) with 8 kB of content.
/// let t = Tuple::new([Key::new(3), Key::new(17)], 8 * 1024);
/// assert_eq!(t.key(0), Key::new(3));
/// assert_eq!(t.key(1), Key::new(17));
/// assert_eq!(t.payload_bytes(), 8192);
/// ```
#[derive(Clone, Copy)]
pub struct Tuple {
    fields: [Key; MAX_FIELDS],
    field_count: u8,
    payload_bytes: u32,
    /// Span-tracing origin timestamp in nanoseconds; 0 = not sampled.
    /// Observability metadata — excluded from equality and hashing so
    /// a stamped tuple still compares equal to its unstamped twin.
    origin_ns: u64,
    /// Last-hop send timestamp (nanoseconds, shifted left one bit)
    /// with the remote flag packed into bit 0; 0 = no hop recorded.
    hop_ns: u64,
}

// Equality and hashing cover only the semantic fields (keys + payload
// size); span stamps ride along without changing tuple identity.
impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        self.keys() == other.keys() && self.payload_bytes == other.payload_bytes
    }
}

impl Eq for Tuple {}

impl std::hash::Hash for Tuple {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.keys().hash(state);
        self.payload_bytes.hash(state);
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tuple")
            .field("fields", &self.keys())
            .field("payload_bytes", &self.payload_bytes)
            .finish()
    }
}

impl Tuple {
    /// Creates a tuple from its key fields and payload size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_FIELDS`] keys are supplied.
    #[must_use]
    pub fn new<I>(keys: I, payload_bytes: u32) -> Self
    where
        I: IntoIterator<Item = Key>,
    {
        let mut fields = [Key::default(); MAX_FIELDS];
        let mut field_count = 0u8;
        for key in keys {
            assert!(
                (field_count as usize) < MAX_FIELDS,
                "tuple supports at most {MAX_FIELDS} key fields"
            );
            fields[field_count as usize] = key;
            field_count += 1;
        }
        Self {
            fields,
            field_count,
            payload_bytes,
            origin_ns: 0,
            hop_ns: 0,
        }
    }

    /// `true` when the span sampler selected this tuple at the source.
    #[inline]
    #[must_use]
    pub fn is_span_sampled(&self) -> bool {
        self.origin_ns != 0
    }

    /// Origin timestamp (nanoseconds since the runtime clock's epoch)
    /// stamped at the source; 0 when the tuple is not sampled.
    #[inline]
    #[must_use]
    pub fn span_origin_ns(&self) -> u64 {
        self.origin_ns
    }

    /// Marks the tuple as span-sampled with the given origin
    /// timestamp. A timestamp of 0 is clamped to 1 so "sampled at the
    /// clock's first tick" stays distinguishable from "not sampled".
    #[inline]
    pub fn set_span_origin(&mut self, now_ns: u64) {
        self.origin_ns = now_ns.max(1);
    }

    /// Stamps the send time of the current hop and whether the hop
    /// crosses to a different worker (`remote`). The receiver computes
    /// queue wait as its dequeue time minus this stamp.
    #[inline]
    pub fn set_span_hop(&mut self, now_ns: u64, remote: bool) {
        self.hop_ns = (now_ns.max(1) << 1) | u64::from(remote);
    }

    /// The current hop's `(send_time_ns, remote)` stamp, if one was
    /// recorded by the sender.
    #[inline]
    #[must_use]
    pub fn span_hop(&self) -> Option<(u64, bool)> {
        if self.hop_ns == 0 {
            None
        } else {
            Some((self.hop_ns >> 1, self.hop_ns & 1 == 1))
        }
    }

    /// Number of key fields.
    #[inline]
    #[must_use]
    pub fn field_count(&self) -> usize {
        self.field_count as usize
    }

    /// The key in field `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= field_count()`.
    #[inline]
    #[must_use]
    pub fn key(&self, index: usize) -> Key {
        assert!(index < self.field_count(), "field index out of range");
        self.fields[index]
    }

    /// All key fields as a slice.
    #[must_use]
    pub fn keys(&self) -> &[Key] {
        &self.fields[..self.field_count as usize]
    }

    /// Replaces the key in field `index`, returning the updated tuple.
    ///
    /// # Panics
    ///
    /// Panics if `index >= field_count()`.
    #[must_use]
    pub fn with_key(mut self, index: usize, key: Key) -> Self {
        assert!(index < self.field_count(), "field index out of range");
        self.fields[index] = key;
        self
    }

    /// Payload size in bytes (the paper's padding parameter).
    #[must_use]
    pub fn payload_bytes(&self) -> u32 {
        self.payload_bytes
    }

    /// Size of this tuple on the wire: payload plus per-field key
    /// encoding (8 bytes per key).
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        u64::from(self.payload_bytes) + 8 * self.field_count as u64
    }
}

/// Length of the leading run of tuples sharing the same key in
/// `field` (0 when `tuples` is empty).
///
/// The columnar data plane chunks batches into such runs so that each
/// distinct key pays for one route, one state lookup and one sketch
/// offer regardless of the run length.
///
/// # Panics
///
/// Panics if a tuple in the leading run has no field `field`.
#[inline]
#[must_use]
pub fn tuple_run_len(tuples: &[Tuple], field: usize) -> usize {
    match tuples.first() {
        None => 0,
        Some(first) => {
            let key = first.key(field);
            1 + tuples[1..]
                .iter()
                .take_while(|t| t.key(field) == key)
                .count()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_run_len_detects_leading_runs() {
        let t = |v: u64| Tuple::new([Key::new(v), Key::new(v * 10)], 0);
        let tuples = [t(1), t(1), t(1), t(2), t(1)];
        assert_eq!(tuple_run_len(&tuples, 0), 3);
        assert_eq!(tuple_run_len(&tuples[3..], 0), 1);
        assert_eq!(tuple_run_len(&tuples, 1), 3);
        assert_eq!(tuple_run_len(&[], 0), 0);
    }

    #[test]
    fn construction_and_access() {
        let t = Tuple::new([Key::new(1), Key::new(2)], 100);
        assert_eq!(t.field_count(), 2);
        assert_eq!(t.key(0), Key::new(1));
        assert_eq!(t.key(1), Key::new(2));
        assert_eq!(t.keys(), &[Key::new(1), Key::new(2)]);
        assert_eq!(t.payload_bytes(), 100);
        assert_eq!(t.wire_bytes(), 116);
    }

    #[test]
    fn with_key_replaces() {
        let t = Tuple::new([Key::new(1), Key::new(2)], 0);
        let t2 = t.with_key(1, Key::new(9));
        assert_eq!(t2.key(0), Key::new(1));
        assert_eq!(t2.key(1), Key::new(9));
        // original untouched (Copy semantics)
        assert_eq!(t.key(1), Key::new(2));
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::new([], 50);
        assert_eq!(t.field_count(), 0);
        assert_eq!(t.wire_bytes(), 50);
    }

    #[test]
    fn span_stamps_ride_outside_identity() {
        let plain = Tuple::new([Key::new(1)], 8);
        let mut stamped = plain;
        assert!(!stamped.is_span_sampled());
        assert_eq!(stamped.span_hop(), None);
        stamped.set_span_origin(42);
        stamped.set_span_hop(100, true);
        assert!(stamped.is_span_sampled());
        assert_eq!(stamped.span_origin_ns(), 42);
        assert_eq!(stamped.span_hop(), Some((100, true)));
        // Stamps are observability metadata, not identity.
        assert_eq!(plain, stamped);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |t: &Tuple| {
            let mut h = DefaultHasher::new();
            t.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&plain), hash(&stamped));
        // Clock tick 0 still reads as "sampled".
        let mut zero = plain;
        zero.set_span_origin(0);
        assert!(zero.is_span_sampled());
        zero.set_span_hop(0, false);
        assert_eq!(zero.span_hop(), Some((1, false)));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_fields_panics() {
        let _ = Tuple::new([Key::new(0); MAX_FIELDS + 1], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_field_panics() {
        let t = Tuple::new([Key::new(1)], 0);
        let _ = t.key(1);
    }
}
