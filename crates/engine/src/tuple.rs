//! Data tuples flowing through a topology.

use crate::key::Key;
use std::fmt;

/// Maximum number of key fields a tuple can carry.
///
/// The evaluation applications use at most two (e.g. location and
/// hashtag); four leaves room for richer DAGs without heap-allocating
/// per tuple.
pub const MAX_FIELDS: usize = 4;

/// A data tuple: up to [`MAX_FIELDS`] routing keys plus an opaque
/// payload accounted for only by its size (the paper's "padding").
///
/// The payload contents are irrelevant to routing and to the cost
/// model — only `payload_bytes` matters for network transfer — so the
/// simulator does not materialize them.
///
/// # Example
///
/// ```
/// use streamloc_engine::{Key, Tuple};
///
/// // A geo-tagged message: (location, hashtag) with 8 kB of content.
/// let t = Tuple::new([Key::new(3), Key::new(17)], 8 * 1024);
/// assert_eq!(t.key(0), Key::new(3));
/// assert_eq!(t.key(1), Key::new(17));
/// assert_eq!(t.payload_bytes(), 8192);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tuple {
    fields: [Key; MAX_FIELDS],
    field_count: u8,
    payload_bytes: u32,
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tuple")
            .field("fields", &self.keys())
            .field("payload_bytes", &self.payload_bytes)
            .finish()
    }
}

impl Tuple {
    /// Creates a tuple from its key fields and payload size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_FIELDS`] keys are supplied.
    #[must_use]
    pub fn new<I>(keys: I, payload_bytes: u32) -> Self
    where
        I: IntoIterator<Item = Key>,
    {
        let mut fields = [Key::default(); MAX_FIELDS];
        let mut field_count = 0u8;
        for key in keys {
            assert!(
                (field_count as usize) < MAX_FIELDS,
                "tuple supports at most {MAX_FIELDS} key fields"
            );
            fields[field_count as usize] = key;
            field_count += 1;
        }
        Self {
            fields,
            field_count,
            payload_bytes,
        }
    }

    /// Number of key fields.
    #[inline]
    #[must_use]
    pub fn field_count(&self) -> usize {
        self.field_count as usize
    }

    /// The key in field `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= field_count()`.
    #[inline]
    #[must_use]
    pub fn key(&self, index: usize) -> Key {
        assert!(index < self.field_count(), "field index out of range");
        self.fields[index]
    }

    /// All key fields as a slice.
    #[must_use]
    pub fn keys(&self) -> &[Key] {
        &self.fields[..self.field_count as usize]
    }

    /// Replaces the key in field `index`, returning the updated tuple.
    ///
    /// # Panics
    ///
    /// Panics if `index >= field_count()`.
    #[must_use]
    pub fn with_key(mut self, index: usize, key: Key) -> Self {
        assert!(index < self.field_count(), "field index out of range");
        self.fields[index] = key;
        self
    }

    /// Payload size in bytes (the paper's padding parameter).
    #[must_use]
    pub fn payload_bytes(&self) -> u32 {
        self.payload_bytes
    }

    /// Size of this tuple on the wire: payload plus per-field key
    /// encoding (8 bytes per key).
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        u64::from(self.payload_bytes) + 8 * self.field_count as u64
    }
}

/// Length of the leading run of tuples sharing the same key in
/// `field` (0 when `tuples` is empty).
///
/// The columnar data plane chunks batches into such runs so that each
/// distinct key pays for one route, one state lookup and one sketch
/// offer regardless of the run length.
///
/// # Panics
///
/// Panics if a tuple in the leading run has no field `field`.
#[inline]
#[must_use]
pub fn tuple_run_len(tuples: &[Tuple], field: usize) -> usize {
    match tuples.first() {
        None => 0,
        Some(first) => {
            let key = first.key(field);
            1 + tuples[1..]
                .iter()
                .take_while(|t| t.key(field) == key)
                .count()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_run_len_detects_leading_runs() {
        let t = |v: u64| Tuple::new([Key::new(v), Key::new(v * 10)], 0);
        let tuples = [t(1), t(1), t(1), t(2), t(1)];
        assert_eq!(tuple_run_len(&tuples, 0), 3);
        assert_eq!(tuple_run_len(&tuples[3..], 0), 1);
        assert_eq!(tuple_run_len(&tuples, 1), 3);
        assert_eq!(tuple_run_len(&[], 0), 0);
    }

    #[test]
    fn construction_and_access() {
        let t = Tuple::new([Key::new(1), Key::new(2)], 100);
        assert_eq!(t.field_count(), 2);
        assert_eq!(t.key(0), Key::new(1));
        assert_eq!(t.key(1), Key::new(2));
        assert_eq!(t.keys(), &[Key::new(1), Key::new(2)]);
        assert_eq!(t.payload_bytes(), 100);
        assert_eq!(t.wire_bytes(), 116);
    }

    #[test]
    fn with_key_replaces() {
        let t = Tuple::new([Key::new(1), Key::new(2)], 0);
        let t2 = t.with_key(1, Key::new(9));
        assert_eq!(t2.key(0), Key::new(1));
        assert_eq!(t2.key(1), Key::new(9));
        // original untouched (Copy semantics)
        assert_eq!(t.key(1), Key::new(2));
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::new([], 50);
        assert_eq!(t.field_count(), 0);
        assert_eq!(t.wire_bytes(), 50);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_fields_panics() {
        let _ = Tuple::new([Key::new(0); MAX_FIELDS + 1], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_field_panics() {
        let t = Tuple::new([Key::new(1)], 0);
        let _ = t.key(1);
    }
}
