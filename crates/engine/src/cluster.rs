//! Cluster description and cost model.

use crate::topology::ServerId;

/// Physical cluster specification and simulator cost model.
///
/// The defaults are calibrated so that the simulated paper topology
/// (source → two stateful counters) lands in the paper's throughput
/// range: ~100 Ktuples/s per server when all traffic is local, with
/// remote traffic paying a serialization CPU cost and consuming NIC
/// bandwidth. Substituted for the paper's 8-worker HPE testbed — see
/// DESIGN.md §2.
///
/// # Example
///
/// ```
/// use streamloc_engine::ClusterSpec;
///
/// let lan = ClusterSpec::lan_10g(6);
/// assert_eq!(lan.servers, 6);
/// let slow = ClusterSpec::lan_1g(6);
/// assert!(slow.nic_bandwidth_bps < lan.nic_bandwidth_bps);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Number of worker servers.
    pub servers: usize,
    /// NIC bandwidth per direction, in bits per second.
    pub nic_bandwidth_bps: f64,
    /// Fixed framing/header overhead added to every remote message,
    /// in bytes.
    pub per_message_overhead_bytes: u64,
    /// Default CPU time to process one tuple in an operator, seconds.
    pub default_cost_per_tuple: f64,
    /// Extra sender CPU per remote tuple (serialization), seconds.
    pub remote_send_cpu: f64,
    /// Extra receiver CPU per remote tuple (deserialization), seconds.
    pub remote_recv_cpu: f64,
    /// Extra CPU per payload byte for remote tuples (each side),
    /// seconds per byte.
    pub remote_cpu_per_byte: f64,
    /// Number of racks; servers are split into contiguous blocks.
    /// 1 (the default) models a flat network.
    pub rack_count: usize,
    /// Aggregate uplink bandwidth of each rack's switch, bits per
    /// second per direction. Only cross-rack traffic consumes it.
    pub rack_uplink_bps: f64,
}

impl ClusterSpec {
    /// A cluster of `servers` workers on a 10 Gb/s network — the
    /// paper's primary setup (§4.1, HPE ProLiant DL380 Gen9 workers,
    /// 10 Gb/s with jumbo frames).
    #[must_use]
    pub fn lan_10g(servers: usize) -> Self {
        Self {
            servers,
            nic_bandwidth_bps: 10e9,
            ..Self::base(servers)
        }
    }

    /// The same cluster throttled to 1 Gb/s (§4.4's second setting).
    #[must_use]
    pub fn lan_1g(servers: usize) -> Self {
        Self {
            servers,
            nic_bandwidth_bps: 1e9,
            ..Self::base(servers)
        }
    }

    fn base(servers: usize) -> Self {
        Self {
            servers,
            nic_bandwidth_bps: 10e9,
            per_message_overhead_bytes: 150,
            // 8 µs/tuple → 125 Ktuples/s per single-threaded instance.
            default_cost_per_tuple: 8e-6,
            // Storm-like serialization overheads: a remote hop costs
            // noticeably more CPU than an in-memory handoff even for
            // empty tuples (the paper measures 22% at padding 0,
            // which these constants are calibrated against).
            remote_send_cpu: 3e-6,
            remote_recv_cpu: 3e-6,
            remote_cpu_per_byte: 0.3e-9,
            rack_count: 1,
            rack_uplink_bps: f64::INFINITY,
        }
    }

    /// Splits the servers into `racks` contiguous blocks behind
    /// aggregation switches of `uplink_bps` per direction — the
    /// hierarchical network structure of the paper's future work (§6).
    ///
    /// # Panics
    ///
    /// Panics if `racks` is zero or exceeds the server count.
    #[must_use]
    pub fn with_racks(mut self, racks: usize, uplink_bps: f64) -> Self {
        assert!(racks > 0, "at least one rack");
        assert!(racks <= self.servers, "more racks than servers");
        self.rack_count = racks;
        self.rack_uplink_bps = uplink_bps;
        self
    }

    /// Rack of `server` (contiguous block assignment).
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    #[must_use]
    pub fn rack_of(&self, server: usize) -> usize {
        assert!(server < self.servers, "server out of range");
        server * self.rack_count / self.servers
    }

    /// Uplink byte budget per direction for a window of `window`
    /// seconds.
    #[must_use]
    pub fn uplink_bytes_per_window(&self, window: f64) -> f64 {
        self.rack_uplink_bps / 8.0 * window
    }

    /// NIC byte budget per direction for a window of `window` seconds.
    #[must_use]
    pub fn nic_bytes_per_window(&self, window: f64) -> f64 {
        self.nic_bandwidth_bps / 8.0 * window
    }

    /// Wire size of a remote message whose tuple-level size is
    /// `payload` bytes.
    #[must_use]
    pub fn message_bytes(&self, payload: u64) -> u64 {
        payload + self.per_message_overhead_bytes
    }

    /// Iterates over all server ids.
    pub fn server_ids(&self) -> impl Iterator<Item = ServerId> {
        (0..self.servers).map(ServerId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_only_in_bandwidth() {
        let fast = ClusterSpec::lan_10g(4);
        let slow = ClusterSpec::lan_1g(4);
        assert_eq!(fast.nic_bandwidth_bps, 10e9);
        assert_eq!(slow.nic_bandwidth_bps, 1e9);
        assert_eq!(fast.default_cost_per_tuple, slow.default_cost_per_tuple);
    }

    #[test]
    fn nic_budget_conversion() {
        let c = ClusterSpec::lan_10g(1);
        // 10 Gb/s = 1.25 GB/s; a 0.1 s window carries 125 MB.
        assert!((c.nic_bytes_per_window(0.1) - 125e6).abs() < 1.0);
    }

    #[test]
    fn message_overhead_applied() {
        let c = ClusterSpec::lan_10g(1);
        assert_eq!(c.message_bytes(1000), 1150);
    }

    #[test]
    fn rack_assignment_is_contiguous_and_even() {
        let c = ClusterSpec::lan_10g(6).with_racks(2, 40e9);
        let racks: Vec<usize> = (0..6).map(|s| c.rack_of(s)).collect();
        assert_eq!(racks, vec![0, 0, 0, 1, 1, 1]);
        let c = ClusterSpec::lan_10g(5).with_racks(2, 40e9);
        let racks: Vec<usize> = (0..5).map(|s| c.rack_of(s)).collect();
        assert_eq!(racks, vec![0, 0, 0, 1, 1]);
    }

    #[test]
    fn flat_cluster_has_one_rack() {
        let c = ClusterSpec::lan_10g(4);
        assert_eq!(c.rack_count, 1);
        assert!((0..4).all(|s| c.rack_of(s) == 0));
    }

    #[test]
    #[should_panic(expected = "more racks than servers")]
    fn too_many_racks_panics() {
        let _ = ClusterSpec::lan_10g(2).with_racks(3, 1e9);
    }

    #[test]
    fn server_ids_enumerate() {
        let c = ClusterSpec::lan_10g(3);
        let ids: Vec<_> = c.server_ids().collect();
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[2], ServerId(2));
    }
}
