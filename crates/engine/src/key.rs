//! Routing keys and string interning.

use std::collections::HashMap;
use std::fmt;

/// A routing key: the value of a tuple field used by fields grouping.
///
/// Keys are compact 64-bit identifiers. Applications with string keys
/// (locations, hashtags, words) intern them once through a
/// [`KeyInterner`] so the hot routing path never hashes strings.
///
/// # Example
///
/// ```
/// use streamloc_engine::Key;
///
/// let k = Key::new(42);
/// assert_eq!(k.value(), 42);
/// assert_eq!(format!("{k}"), "k42");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Key(u64);

impl Key {
    /// Wraps a raw key value.
    #[must_use]
    pub const fn new(value: u64) -> Self {
        Self(value)
    }

    /// The raw 64-bit value.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// A well-mixed hash of the key, as used by hash-based fields
    /// grouping. Stable across runs and platforms.
    #[must_use]
    pub fn stable_hash(self) -> u64 {
        splitmix64(self.0)
    }
}

impl From<u64> for Key {
    fn from(value: u64) -> Self {
        Self(value)
    }
}

impl From<Key> for u64 {
    fn from(key: Key) -> Self {
        key.0
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

// The deterministic integer mix used everywhere hashing is needed in
// the simulator. Canonically defined in `streamloc-sketch` (the bottom
// of the dependency graph) and re-exported here so every historical
// `streamloc_engine::splitmix64` import keeps working.
pub use streamloc_sketch::splitmix64;

/// Bidirectional map between application strings and [`Key`]s.
///
/// # Example
///
/// ```
/// use streamloc_engine::KeyInterner;
///
/// let mut interner = KeyInterner::new();
/// let asia = interner.intern("Asia");
/// assert_eq!(interner.intern("Asia"), asia);
/// assert_eq!(interner.resolve(asia), Some("Asia"));
/// assert_eq!(interner.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeyInterner {
    by_name: HashMap<String, Key>,
    names: Vec<String>,
}

impl KeyInterner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the key for `name`, interning it on first use.
    pub fn intern(&mut self, name: &str) -> Key {
        if let Some(&k) = self.by_name.get(name) {
            return k;
        }
        let key = Key::new(self.names.len() as u64);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), key);
        key
    }

    /// Looks up an already-interned name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Key> {
        self.by_name.get(name).copied()
    }

    /// Resolves a key back to its name, if it was produced by this
    /// interner.
    #[must_use]
    pub fn resolve(&self, key: Key) -> Option<&str> {
        self.names.get(key.value() as usize).map(String::as_str)
    }

    /// Number of interned strings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` when nothing is interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut interner = KeyInterner::new();
        let a = interner.intern("#java");
        let b = interner.intern("#ruby");
        assert_ne!(a, b);
        assert_eq!(interner.intern("#java"), a);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut interner = KeyInterner::new();
        let k = interner.intern("Oceania");
        assert_eq!(interner.resolve(k), Some("Oceania"));
        assert_eq!(interner.resolve(Key::new(99)), None);
        assert_eq!(interner.get("Oceania"), Some(k));
        assert_eq!(interner.get("missing"), None);
    }

    #[test]
    fn stable_hash_spreads() {
        // Consecutive keys should hash to well-spread values.
        let h0 = Key::new(0).stable_hash();
        let h1 = Key::new(1).stable_hash();
        assert_ne!(h0 % 6, h1 % 6, "adjacent keys should usually differ mod n");
        // Fixed expectations pin cross-platform stability.
        assert_eq!(Key::new(0).stable_hash(), splitmix64(0));
    }
}
