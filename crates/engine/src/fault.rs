//! Deterministic, seedable fault injection for the engine.
//!
//! The paper (§3.4) delegates crash recovery to the streaming engine;
//! this module provides the machinery to *test* that delegation: a
//! [`FaultPlan`] describes a reproducible schedule of failures — POI
//! crashes, dropped or delayed control messages, manager death — and a
//! [`FaultInjector`] executes it against either runtime. The same plan
//! (or the same seed, via [`FaultPlan::random`]) always produces the
//! same failures at the same points of the protocol, so every recovery
//! path has a deterministic regression test.
//!
//! Faults are expressed in protocol terms, not in wall-clock terms:
//!
//! * [`FaultEvent::CrashPoi`] kills one operator instance at a given
//!   simulation window; the engine respawns it from the last
//!   checkpoint (see [`Simulation::set_auto_checkpoint`]).
//! * [`FaultEvent::DropControl`] / [`FaultEvent::DelayControl`] hit
//!   the *n*-th control message of a class (③ `SEND_RECONF`,
//!   ⑤ `PROPAGATE`, ⑥ `MIGRATE`), counted per class over the run.
//! * [`FaultEvent::KillManager`] makes the manager unreachable from a
//!   given window on: active waves can no longer complete and the
//!   deployment degrades to pure hash routing.
//!
//! [`Simulation::set_auto_checkpoint`]: crate::Simulation::set_auto_checkpoint

use crate::key::splitmix64;

/// The class of a control-plane message, as seen by the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlClass {
    /// ③ `SEND_RECONF`: a staged configuration sent to one POI.
    SendReconf,
    /// ⑤ `PROPAGATE`: a wave-release token between POIs.
    Propagate,
    /// ⑥ `MIGRATE`: one key's state in transit to its new owner.
    Migrate,
}

impl ControlClass {
    fn index(self) -> usize {
        match self {
            ControlClass::SendReconf => 0,
            ControlClass::Propagate => 1,
            ControlClass::Migrate => 2,
        }
    }
}

/// One scheduled failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash the POI with global instance index `poi` at `window`. The
    /// instance loses its keyed state, input queue and buffered
    /// tuples, then respawns from the last checkpoint (empty state if
    /// none was taken). Crashed *source* instances stay down: a
    /// restarted generator would re-emit its stream from the start.
    CrashPoi {
        /// Global instance index (see [`Simulation::poi_ids`]).
        ///
        /// [`Simulation::poi_ids`]: crate::Simulation::poi_ids
        poi: usize,
        /// Simulation window at which the crash fires.
        window: u64,
    },
    /// Drop the `occurrence`-th message of `class` (0-based, counted
    /// over the whole run).
    DropControl {
        /// Message class the drop applies to.
        class: ControlClass,
        /// Which message of that class to drop (0-based).
        occurrence: u64,
    },
    /// Delay the `occurrence`-th message of `class` by `windows`
    /// windows instead of delivering it on time.
    DelayControl {
        /// Message class the delay applies to.
        class: ControlClass,
        /// Which message of that class to delay (0-based).
        occurrence: u64,
        /// Delivery delay, in windows.
        windows: u64,
    },
    /// Make the manager unreachable from `window` on. Any running wave
    /// can no longer be completed or retried; the deployment degrades
    /// to pure hash routing once the wave's deadline expires.
    KillManager {
        /// Simulation window at which the manager dies.
        window: u64,
    },
    /// Drop the `occurrence`-th `Msg::Batch` the live data plane would
    /// send (0-based, counted over the whole run across all workers).
    /// Every tuple in the batch is lost on the wire — the at-most-once
    /// data-plane loss the batched transport introduces. Accounted by
    /// the `live_batch_drops_total` / `live_batch_dropped_tuples_total`
    /// counters.
    DropBatch {
        /// Which batch send to drop (0-based).
        occurrence: u64,
    },
}

/// A reproducible schedule of failures.
///
/// Build one explicitly with [`FaultPlan::with`], or derive one from a
/// seed with [`FaultPlan::random`] — the same seed always yields the
/// same plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `event` to the plan (builder style).
    #[must_use]
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// The scheduled events, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` when the plan schedules at least one data-plane batch
    /// drop. The live runtime uses this to arm its batch-send hook —
    /// plans without batch faults keep the send path branch-light (one
    /// relaxed atomic load, no lock).
    #[must_use]
    pub fn has_batch_faults(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::DropBatch { .. }))
    }

    /// Derives a plan from `seed`: a few POI crashes spread over
    /// `0..horizon` windows, a handful of control-message drops and
    /// delays, and (for roughly one seed in eight) a manager kill.
    /// Deterministic: the same `(seed, pois, horizon)` always yields
    /// the same plan.
    #[must_use]
    pub fn random(seed: u64, pois: usize, horizon: u64) -> Self {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64(state)
        };
        let pois = pois.max(1) as u64;
        let horizon = horizon.max(2);
        let mut plan = FaultPlan::new();
        let crashes = 1 + next() % 2;
        for _ in 0..crashes {
            plan.events.push(FaultEvent::CrashPoi {
                poi: (next() % pois) as usize,
                window: 1 + next() % (horizon - 1),
            });
        }
        let drops = next() % 3;
        for _ in 0..drops {
            plan.events.push(FaultEvent::DropControl {
                class: CLASSES[(next() % 3) as usize],
                occurrence: next() % 4,
            });
        }
        let delays = next() % 3;
        for _ in 0..delays {
            plan.events.push(FaultEvent::DelayControl {
                class: CLASSES[(next() % 3) as usize],
                occurrence: next() % 4,
                windows: 1 + next() % 4,
            });
        }
        if next() % 8 == 0 {
            plan.events.push(FaultEvent::KillManager {
                window: 1 + next() % (horizon - 1),
            });
        }
        plan
    }
}

const CLASSES: [ControlClass; 3] = [
    ControlClass::SendReconf,
    ControlClass::Propagate,
    ControlClass::Migrate,
];

/// What the injector decided about one control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlFate {
    /// Deliver normally.
    Deliver,
    /// Drop the message (it is lost on the wire).
    Drop,
    /// Deliver the message late, after this many windows.
    Delay(u64),
}

/// Executes a [`FaultPlan`] against a runtime: the runtime asks it
/// which crashes are due each window and what to do with each control
/// message, and the injector answers deterministically from the plan.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    events: Vec<FaultEvent>,
    used: Vec<bool>,
    /// Per-class control-message counters (SendReconf, Propagate,
    /// Migrate).
    seen: [u64; 3],
    /// Data-plane batch-send counter (for [`FaultEvent::DropBatch`]).
    batches_seen: u64,
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        let used = vec![false; plan.events.len()];
        Self {
            events: plan.events,
            used,
            seen: [0; 3],
            batches_seen: 0,
        }
    }

    /// Decides the fate of the next data-plane `Msg::Batch` send:
    /// `true` means the batch is lost on the wire. Every call advances
    /// the global batch-send counter, whether or not a fault matches.
    pub fn on_batch_send(&mut self) -> bool {
        let occurrence = self.batches_seen;
        self.batches_seen += 1;
        for (i, event) in self.events.iter().enumerate() {
            if self.used[i] {
                continue;
            }
            if let FaultEvent::DropBatch { occurrence: o } = *event {
                if o == occurrence {
                    self.used[i] = true;
                    return true;
                }
            }
        }
        false
    }

    /// Global instance indices whose crash is due at or before
    /// `window`, each reported exactly once, in ascending order.
    pub fn poi_crashes_due(&mut self, window: u64) -> Vec<usize> {
        let mut due = Vec::new();
        for (i, event) in self.events.iter().enumerate() {
            if self.used[i] {
                continue;
            }
            if let FaultEvent::CrashPoi { poi, window: w } = *event {
                if w <= window {
                    self.used[i] = true;
                    due.push(poi);
                }
            }
        }
        due.sort_unstable();
        due.dedup();
        due
    }

    /// `true` exactly once, at the first call with `window` at or past
    /// a scheduled [`FaultEvent::KillManager`].
    pub fn manager_kill_due(&mut self, window: u64) -> bool {
        for (i, event) in self.events.iter().enumerate() {
            if self.used[i] {
                continue;
            }
            if let FaultEvent::KillManager { window: w } = *event {
                if w <= window {
                    self.used[i] = true;
                    return true;
                }
            }
        }
        false
    }

    /// Decides the fate of the next control message of `class`. Every
    /// call advances that class's occurrence counter, whether or not a
    /// fault matches.
    pub fn on_control(&mut self, class: ControlClass) -> ControlFate {
        let occurrence = self.seen[class.index()];
        self.seen[class.index()] += 1;
        for (i, event) in self.events.iter().enumerate() {
            if self.used[i] {
                continue;
            }
            match *event {
                FaultEvent::DropControl {
                    class: c,
                    occurrence: o,
                } if c == class && o == occurrence => {
                    self.used[i] = true;
                    return ControlFate::Drop;
                }
                FaultEvent::DelayControl {
                    class: c,
                    occurrence: o,
                    windows,
                } if c == class && o == occurrence => {
                    self.used[i] = true;
                    return ControlFate::Delay(windows.max(1));
                }
                _ => {}
            }
        }
        ControlFate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::random(42, 6, 30);
        let b = FaultPlan::random(42, 6, 30);
        assert_eq!(a, b);
        assert!(!a.events().is_empty());
        let c = FaultPlan::random(43, 6, 30);
        assert_ne!(a, c, "different seeds should differ (for these seeds)");
    }

    #[test]
    fn drop_matches_exact_occurrence() {
        let plan = FaultPlan::new().with(FaultEvent::DropControl {
            class: ControlClass::Migrate,
            occurrence: 1,
        });
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.on_control(ControlClass::Migrate), ControlFate::Deliver);
        // A different class does not advance Migrate's counter.
        assert_eq!(
            inj.on_control(ControlClass::Propagate),
            ControlFate::Deliver
        );
        assert_eq!(inj.on_control(ControlClass::Migrate), ControlFate::Drop);
        // The event is consumed: the next occurrence delivers.
        assert_eq!(inj.on_control(ControlClass::Migrate), ControlFate::Deliver);
    }

    #[test]
    fn crash_fires_once_even_if_polled_late() {
        let plan = FaultPlan::new()
            .with(FaultEvent::CrashPoi { poi: 3, window: 5 })
            .with(FaultEvent::CrashPoi { poi: 1, window: 5 });
        let mut inj = FaultInjector::new(plan);
        assert!(inj.poi_crashes_due(4).is_empty());
        assert_eq!(inj.poi_crashes_due(7), vec![1, 3]);
        assert!(inj.poi_crashes_due(8).is_empty());
    }

    #[test]
    fn manager_kill_fires_once() {
        let plan = FaultPlan::new().with(FaultEvent::KillManager { window: 2 });
        let mut inj = FaultInjector::new(plan);
        assert!(!inj.manager_kill_due(1));
        assert!(inj.manager_kill_due(2));
        assert!(!inj.manager_kill_due(3));
    }

    #[test]
    fn batch_drop_matches_exact_occurrence_once() {
        let plan = FaultPlan::new()
            .with(FaultEvent::DropBatch { occurrence: 2 })
            .with(FaultEvent::DropBatch { occurrence: 2 });
        assert!(plan.has_batch_faults());
        assert!(!FaultPlan::new().has_batch_faults());
        let mut inj = FaultInjector::new(plan);
        let fates: Vec<bool> = (0..5).map(|_| inj.on_batch_send()).collect();
        // Only the first matching event fires; its twin targets an
        // occurrence that has already passed.
        assert_eq!(fates, vec![false, false, true, false, false]);
    }

    #[test]
    fn batch_sends_do_not_advance_control_counters() {
        let plan = FaultPlan::new().with(FaultEvent::DropControl {
            class: ControlClass::Propagate,
            occurrence: 0,
        });
        let mut inj = FaultInjector::new(plan);
        assert!(!inj.on_batch_send());
        assert_eq!(inj.on_control(ControlClass::Propagate), ControlFate::Drop);
    }

    #[test]
    fn delay_is_at_least_one_window() {
        let plan = FaultPlan::new().with(FaultEvent::DelayControl {
            class: ControlClass::SendReconf,
            occurrence: 0,
            windows: 0,
        });
        let mut inj = FaultInjector::new(plan);
        assert_eq!(
            inj.on_control(ControlClass::SendReconf),
            ControlFate::Delay(1)
        );
    }
}
