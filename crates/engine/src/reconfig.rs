//! The online reconfiguration mechanism (paper §3.4, Algorithm 1).
//!
//! This module implements the *mechanism* side of the protocol — the
//! wave of control messages, routing-table swaps, state migration and
//! tuple buffering executed by the operator instances. The *policy*
//! side (collecting statistics, partitioning the key graph and
//! computing the [`ReconfigPlan`]) lives in `streamloc-core`'s
//! `Manager`, mirroring the paper's separation between POIs and the
//! manager process.
//!
//! Message flow, following Algorithm 1 (steps ① GET_METRICS and
//! ② SEND_METRICS are performed by the manager reading the installed
//! [`PairObserver`](crate::PairObserver)s):
//!
//! * ③ `SEND_RECONF` — every POI receives its routing-table update,
//!   send list and receive list; it immediately starts buffering
//!   tuples for receive-list keys.
//! * ④ `ACK_RECONF` — modeled by the executor counting staged POIs.
//! * ⑤ `PROPAGATE` — once all POIs acked, the manager propagates to
//!   the source POIs; each POI that has received a propagate from
//!   *every* instance of *every* predecessor operator applies its new
//!   routing table, ships reassigned key state (⑥ `MIGRATE`) to the
//!   new owners, and forwards the propagate wave downstream.
//!
//! Data streams are never suspended. A tuple reaching the new owner of
//! a key before that key's state arrives is buffered (Algorithm 1's
//! buffering rule); a tuple reaching the *old* owner after its state
//! departed — possible because in-flight tuples are not flushed — is
//! forwarded to the new owner, preserving exactly-once state updates.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::fault::{ControlClass, ControlFate};
use crate::key::Key;
use crate::metrics::WindowMetrics;
use crate::obs::TraceEventKind;
use crate::operator::StateValue;
use crate::router::{HashRouter, KeyRouter};
use crate::sim::{LostMigration, NetMsg, NetPayload, OutKind, Simulation};
use crate::topology::{EdgeId, Grouping, PoId, PoiId};

/// How many times a dropped ⑥ `MIGRATE` message is retransmitted
/// before the engine recovers the state out of band (from its
/// replicated copy) and surfaces [`ReconfigError::MigrationLost`].
pub(crate) const MAX_MIGRATE_RETRANSMITS: u32 = 3;

/// Windows between retransmissions of an undelivered migration.
pub(crate) const MIGRATE_RETRY_WINDOWS: u64 = 3;

/// A complete reconfiguration computed by the manager: new routers for
/// the fields-grouped edges and the key-state migrations they imply.
#[derive(Clone)]
pub struct ReconfigPlan {
    /// `(sender instance, out edge, new router)` updates.
    pub routers: Vec<(PoiId, EdgeId, Arc<dyn KeyRouter>)>,
    /// `(old owner, key, new owner)` state transfers. Old and new
    /// owner must be instances of the same operator.
    pub migrations: Vec<(PoiId, Key, PoiId)>,
}

impl fmt::Debug for ReconfigPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReconfigPlan")
            .field("router_updates", &self.routers.len())
            .field("migrations", &self.migrations.len())
            .finish()
    }
}

impl ReconfigPlan {
    /// An empty plan (useful as a no-op reconfiguration in tests).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            routers: Vec::new(),
            migrations: Vec::new(),
        }
    }
}

/// Error returned when a reconfiguration overlaps a running one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigInProgress;

impl fmt::Display for ReconfigInProgress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a reconfiguration wave is already in progress")
    }
}

impl std::error::Error for ReconfigInProgress {}

/// Why a reconfiguration wave failed (surfaced per window in
/// [`WindowMetrics::reconfig_errors`] and returned by the live
/// runtime's wave driver).
///
/// [`WindowMetrics::reconfig_errors`]: crate::WindowMetrics::reconfig_errors
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigError {
    /// The wave missed its deadline (attempt number is 0-based).
    Timeout {
        /// Which attempt timed out (0 = the first).
        attempt: u32,
    },
    /// A participant rejected or lost its staged configuration — e.g.
    /// it crashed mid-wave — so the wave cannot complete as sent.
    Nack,
    /// A state migration was lost in transit and, after retransmission
    /// attempts were exhausted, recovered out of band from the
    /// engine's replicated copy.
    MigrationLost,
    /// The wave was rolled back for good: routing tables and key
    /// ownership were reverted to their pre-wave values.
    Aborted,
}

impl fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Timeout { attempt } => {
                write!(f, "reconfiguration attempt {attempt} missed its deadline")
            }
            Self::Nack => f.write_str("a participant rejected the staged configuration"),
            Self::MigrationLost => {
                f.write_str("a state migration was lost and recovered out of band")
            }
            Self::Aborted => f.write_str("the reconfiguration wave was rolled back"),
        }
    }
}

impl std::error::Error for ReconfigError {}

/// Failure-handling knobs of one reconfiguration wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveConfig {
    /// Windows the wave may take before the manager declares it dead
    /// and rolls it back.
    pub deadline_windows: u64,
    /// Full restarts attempted after a timeout or nack before the
    /// wave is abandoned.
    pub max_retries: u32,
    /// Deadline multiplier applied per retry (exponential backoff:
    /// attempt `k` gets `deadline_windows * backoff^k`).
    pub backoff: u64,
}

impl Default for WaveConfig {
    fn default() -> Self {
        Self {
            deadline_windows: 16,
            max_retries: 2,
            backoff: 2,
        }
    }
}

/// The per-POI payload of a ③ `SEND_RECONF` message.
pub(crate) struct StagedReconf {
    pub(crate) routers: Vec<(EdgeId, Arc<dyn KeyRouter>)>,
    pub(crate) send: Vec<(Key, PoiId)>,
    pub(crate) receive: Vec<Key>,
}

/// Control-plane messages exchanged during a wave.
pub(crate) enum ControlMsg {
    Reconf(StagedReconf),
    Propagate,
}

/// Manager-side progress tracking of the running wave, including the
/// failure-recovery context: the plan (for retries), the pre-wave
/// router snapshot (for rollback) and the deadline clock.
pub(crate) struct ReconfigExec {
    pub(crate) acks_pending: usize,
    pub(crate) applies_pending: usize,
    pub(crate) plan: ReconfigPlan,
    pub(crate) wave: WaveConfig,
    pub(crate) attempt: u32,
    pub(crate) deadline: u64,
    /// Stable identifier of this wave across retries (trace
    /// attribution); assigned from `Simulation::wave_seq`.
    pub(crate) wave_id: u64,
    /// Window the wave (attempt 0) started in.
    pub(crate) started_at: u64,
    /// Set when a participant died or rejected mid-wave; triggers a
    /// rollback at the next progress check.
    pub(crate) nacked: bool,
    /// Every POI's fields routers as they were before the wave, for
    /// rollback.
    pub(crate) pre_wave_routers: Vec<Vec<(EdgeId, Arc<dyn KeyRouter>)>>,
}

impl Simulation {
    /// Starts the online reconfiguration protocol for `plan` with the
    /// default [`WaveConfig`].
    ///
    /// Control messages take one window per hop, mirroring the paper's
    /// progressive wave; the data stream keeps flowing throughout.
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigInProgress`] if a previous wave has not
    /// finished applying (pending state migrations do not block a new
    /// wave, matching the paper's continuous operation), or if the
    /// manager has been killed by fault injection — a dead manager
    /// cannot orchestrate a wave.
    pub fn start_reconfiguration(&mut self, plan: ReconfigPlan) -> Result<(), ReconfigInProgress> {
        self.start_reconfiguration_with(plan, WaveConfig::default())
    }

    /// Like [`start_reconfiguration`](Self::start_reconfiguration)
    /// with explicit deadline/retry behaviour.
    ///
    /// # Errors
    ///
    /// Same as [`start_reconfiguration`](Self::start_reconfiguration).
    pub fn start_reconfiguration_with(
        &mut self,
        plan: ReconfigPlan,
        wave: WaveConfig,
    ) -> Result<(), ReconfigInProgress> {
        if self.reconfig.is_some() || self.manager_down {
            return Err(ReconfigInProgress);
        }
        for &(from, _, to) in &plan.migrations {
            assert_eq!(
                self.pois[from.index()].po,
                self.pois[to.index()].po,
                "state migrates between instances of one operator"
            );
        }
        let pre_wave_routers = self.snapshot_routers();
        let deadline = self.window_index + wave.deadline_windows.max(2);
        let wave_id = self.wave_seq;
        self.wave_seq += 1;
        self.last_wave = Some(wave_id);
        if self.tracer.is_some() {
            // ①/② — the metrics exchange that precedes every wave: the
            // manager reads each POI's observers before computing the
            // plan. Byte-accurate NIC charging happens separately via
            // `charge_statistics_upload`.
            for poi in 0..self.pois.len() {
                self.trace(Some(wave_id), TraceEventKind::GetMetrics { poi });
                self.trace(Some(wave_id), TraceEventKind::SendMetrics { poi, bytes: 0 });
            }
            self.trace(
                Some(wave_id),
                TraceEventKind::WaveStarted {
                    routers: plan.routers.len(),
                    migrations: plan.migrations.len(),
                    attempt: 0,
                },
            );
        }
        self.enqueue_wave(&plan);
        self.reconfig = Some(ReconfigExec {
            acks_pending: self.pois.len(),
            applies_pending: self.pois.len(),
            plan,
            wave,
            attempt: 0,
            deadline,
            wave_id,
            started_at: self.window_index,
            nacked: false,
            pre_wave_routers,
        });
        Ok(())
    }

    /// Enqueues the ③ `SEND_RECONF` messages of `plan` for delivery at
    /// the next window.
    fn enqueue_wave(&mut self, plan: &ReconfigPlan) {
        let n = self.pois.len();
        let mut routers: Vec<Vec<(EdgeId, Arc<dyn KeyRouter>)>> = vec![Vec::new(); n];
        for (poi, edge, router) in &plan.routers {
            routers[poi.index()].push((*edge, Arc::clone(router)));
        }
        let mut send: Vec<Vec<(Key, PoiId)>> = vec![Vec::new(); n];
        let mut receive: Vec<Vec<Key>> = vec![Vec::new(); n];
        for &(from, key, to) in &plan.migrations {
            send[from.index()].push((key, to));
            receive[to.index()].push(key);
        }
        let due = self.window_index; // delivered at the next step (1 hop)
        for idx in (0..n).rev() {
            let staged = StagedReconf {
                routers: std::mem::take(&mut routers[idx]),
                send: std::mem::take(&mut send[idx]),
                receive: std::mem::take(&mut receive[idx]),
            };
            self.control_queue.push((due, idx, ControlMsg::Reconf(staged)));
        }
    }

    /// Every POI's current fields routers (rollback snapshot).
    fn snapshot_routers(&self) -> Vec<Vec<(EdgeId, Arc<dyn KeyRouter>)>> {
        self.pois
            .iter()
            .map(|p| {
                p.out
                    .iter()
                    .filter_map(|o| match &o.kind {
                        OutKind::Fields { router, .. } => Some((o.edge, Arc::clone(router))),
                        _ => None,
                    })
                    .collect()
            })
            .collect()
    }

    /// `true` while the protocol wave (③–⑤) is still running.
    #[must_use]
    pub fn reconfig_active(&self) -> bool {
        self.reconfig.is_some()
    }

    /// Number of keys still awaiting their migrated state (⑥ in
    /// flight).
    #[must_use]
    pub fn pending_migrations(&self) -> usize {
        self.pois.iter().map(|p| p.pending.len()).sum()
    }

    /// Processes every control message due at the current window.
    pub(crate) fn process_due_control(&mut self, wm: &mut WindowMetrics) {
        let now = self.window_index;
        if self.control_queue.is_empty() {
            return;
        }
        // Stable processing order: (due, poi), preserving insertion
        // order for equal keys.
        let mut due: Vec<(u64, usize, ControlMsg)> = Vec::new();
        let mut remaining = Vec::with_capacity(self.control_queue.len());
        for msg in self.control_queue.drain(..) {
            if msg.0 <= now {
                due.push(msg);
            } else {
                remaining.push(msg);
            }
        }
        self.control_queue = remaining;
        due.sort_by_key(|&(when, poi, _)| (when, poi));
        for (_, poi, msg) in due {
            let class = match &msg {
                ControlMsg::Reconf(_) => ControlClass::SendReconf,
                ControlMsg::Propagate => ControlClass::Propagate,
            };
            // Fault injection: the injector may drop or delay any
            // control message on the wire.
            let fate = match &mut self.fault {
                Some(injector) => injector.on_control(class),
                None => ControlFate::Deliver,
            };
            match fate {
                ControlFate::Deliver => {}
                ControlFate::Drop => {
                    wm.dropped_control += 1;
                    self.trace(self.active_wave(), TraceEventKind::ControlDropped { class });
                    continue;
                }
                ControlFate::Delay(windows) => {
                    wm.delayed_control += 1;
                    self.trace(
                        self.active_wave(),
                        TraceEventKind::ControlDelayed { class, windows },
                    );
                    self.control_queue.push((now + windows, poi, msg));
                    continue;
                }
            }
            match msg {
                ControlMsg::Reconf(staged) => {
                    self.trace(self.active_wave(), TraceEventKind::SendReconf { poi });
                    self.handle_reconf(poi, staged, now);
                }
                ControlMsg::Propagate => {
                    self.trace(self.active_wave(), TraceEventKind::Propagate { poi });
                    self.handle_propagate(poi, now, wm);
                }
            }
        }
    }

    /// ③/④: stage the new configuration, start buffering, ack.
    /// Tolerates stale messages: a `Reconf` arriving after the wave
    /// was rolled back is ignored.
    fn handle_reconf(&mut self, idx: usize, staged: StagedReconf, now: u64) {
        if self.reconfig.is_none() {
            return; // stale message from an aborted wave
        }
        {
            let poi = &mut self.pois[idx];
            // Stragglers from the previous reconfiguration are assumed
            // drained by the time the next wave starts.
            poi.departed.clear();
            for &key in &staged.receive {
                poi.pending.entry(key).or_default();
            }
            let pred: usize = self.topo.in_edges[poi.po.index()]
                .iter()
                .map(|&e| self.topo.pos[self.topo.edges[e.index()].from.index()].parallelism)
                .sum();
            // Root operators receive the manager's single propagate.
            poi.awaiting_propagates = pred.max(1);
            poi.staged = Some(staged);
        }
        let manager_down = self.manager_down;
        let exec = self.reconfig.as_mut().expect("checked above");
        exec.acks_pending = exec.acks_pending.saturating_sub(1);
        let (wave_id, acks_pending) = (exec.wave_id, exec.acks_pending);
        self.trace(
            Some(wave_id),
            TraceEventKind::AckReconf {
                poi: idx,
                acks_pending,
            },
        );
        let exec = self.reconfig.as_mut().expect("checked above");
        if exec.acks_pending == 0 && !manager_down {
            // ⑤: all acks received; propagate to the root operators.
            // A dead manager cannot release the wave — the deadline
            // will roll it back instead.
            let roots: Vec<usize> = (0..self.topo.pos.len())
                .filter(|&po| self.topo.in_edges[po].is_empty())
                .flat_map(|po| {
                    let base = self.poi_base[po];
                    (0..self.topo.pos[po].parallelism).map(move |i| base + i)
                })
                .collect();
            for poi in roots {
                self.control_queue.push((now + 1, poi, ControlMsg::Propagate));
            }
        }
    }

    /// ⑤/⑥: count propagates; on the last one, apply the staged
    /// configuration, migrate state, forward the wave. Duplicate or
    /// stale propagates (possible after crashes, delays and wave
    /// restarts) are ignored instead of corrupting the count.
    fn handle_propagate(&mut self, idx: usize, now: u64, wm: &mut WindowMetrics) {
        {
            let poi = &mut self.pois[idx];
            if poi.awaiting_propagates == 0 {
                return; // duplicate or stale propagate
            }
            poi.awaiting_propagates -= 1;
            if poi.awaiting_propagates > 0 {
                return;
            }
        }
        let Some(staged) = self.pois[idx].staged.take() else {
            return; // staged config lost (e.g. the instance crashed)
        };
        self.trace(self.active_wave(), TraceEventKind::WaveApplied { poi: idx });

        // Swap in the new routing tables.
        for (edge, router) in staged.routers {
            self.set_poi_router(PoiId(idx), edge, router);
        }

        // ⑥: ship the state of reassigned keys to their new owners.
        for (key, dest) in staged.send {
            let state = self.pois[idx].state.remove(&key);
            self.pois[idx].departed.insert(key, dest);
            self.send_migration(idx, dest.index(), key, state, wm);
        }

        // Forward the wave to every instance of every successor.
        let successors: Vec<usize> = self.topo.out_edges[self.pois[idx].po.index()]
            .iter()
            .flat_map(|&e| {
                let to = self.topo.edges[e.index()].to;
                let base = self.poi_base[to.index()];
                (0..self.topo.pos[to.index()].parallelism).map(move |i| base + i)
            })
            .collect();
        for poi in successors {
            self.control_queue.push((now + 1, poi, ControlMsg::Propagate));
        }

        let Some(exec) = self.reconfig.as_mut() else {
            return; // wave already rolled back; apply was harmless
        };
        exec.applies_pending = exec.applies_pending.saturating_sub(1);
        if exec.applies_pending == 0 {
            let (wave_id, started_at) = (exec.wave_id, exec.started_at);
            self.reconfig = None;
            let duration_windows = now.saturating_sub(started_at);
            self.trace(
                Some(wave_id),
                TraceEventKind::WaveCompleted { duration_windows },
            );
            if let Some(m) = &self.obs_metrics {
                m.wave_duration.observe(duration_windows);
            }
        }
    }

    /// Transfers one key's state to `to_poi`, in memory when
    /// co-located, over the NIC otherwise.
    fn send_migration(
        &mut self,
        from_idx: usize,
        to_idx: usize,
        key: Key,
        state: Option<StateValue>,
        wm: &mut WindowMetrics,
    ) {
        self.send_migration_attempt(from_idx, to_idx, key, state, 0, wm);
    }

    /// One transmission attempt of a ⑥ `MIGRATE`. The injector may
    /// drop it (queued for retransmission) or delay it; after
    /// [`MAX_MIGRATE_RETRANSMITS`] drops the state is recovered out of
    /// band and [`ReconfigError::MigrationLost`] is surfaced.
    pub(crate) fn send_migration_attempt(
        &mut self,
        from_idx: usize,
        to_idx: usize,
        key: Key,
        state: Option<StateValue>,
        attempts: u32,
        wm: &mut WindowMetrics,
    ) {
        let fate = match &mut self.fault {
            Some(injector) => injector.on_control(ControlClass::Migrate),
            None => ControlFate::Deliver,
        };
        {
            match fate {
                ControlFate::Deliver => {}
                ControlFate::Drop => {
                    wm.dropped_control += 1;
                    self.trace(
                        self.wave_hint(),
                        TraceEventKind::ControlDropped {
                            class: ControlClass::Migrate,
                        },
                    );
                    if attempts + 1 > MAX_MIGRATE_RETRANSMITS {
                        // Retransmissions exhausted: recover the state
                        // from the engine's replicated copy and tell
                        // the operator what happened.
                        wm.reconfig_errors.push(ReconfigError::MigrationLost);
                        wm.migrated_states += 1;
                        self.trace(
                            self.wave_hint(),
                            TraceEventKind::MigrationLost {
                                to: to_idx,
                                key: key.value(),
                            },
                        );
                        self.apply_migration(to_idx, key, state);
                        return;
                    }
                    self.lost_migrations.push(LostMigration {
                        redeliver_at: self.window_index + MIGRATE_RETRY_WINDOWS,
                        from: from_idx,
                        to: to_idx,
                        key,
                        state,
                        attempts: attempts + 1,
                    });
                    return;
                }
                ControlFate::Delay(windows) => {
                    wm.delayed_control += 1;
                    self.trace(
                        self.wave_hint(),
                        TraceEventKind::ControlDelayed {
                            class: ControlClass::Migrate,
                            windows,
                        },
                    );
                    self.lost_migrations.push(LostMigration {
                        redeliver_at: self.window_index + windows,
                        from: from_idx,
                        to: to_idx,
                        key,
                        state,
                        attempts,
                    });
                    return;
                }
            }
        }
        let from_server = self.pois[from_idx].server;
        let to_server = self.pois[to_idx].server;
        let state_bytes = state.as_ref().map_or(0, StateValue::size_bytes) + 8;
        self.trace(
            self.wave_hint(),
            TraceEventKind::MigrateSent {
                from: from_idx,
                to: to_idx,
                key: key.value(),
                bytes: state_bytes,
            },
        );
        if from_server == to_server {
            wm.migrated_states += 1;
            self.apply_migration(to_idx, key, state);
            return;
        }
        let bytes = self.cluster.message_bytes(state_bytes);
        self.servers[from_server.0].backlog.push_back(NetMsg {
            from_server: from_server.0,
            to_poi: to_idx,
            bytes,
            payload: NetPayload::Migrate { key, state },
        });
    }

    /// Retransmits migrations whose previous attempt was dropped or
    /// delayed and whose retry timer expired.
    pub(crate) fn process_lost_migrations(&mut self, wm: &mut WindowMetrics) {
        if self.lost_migrations.is_empty() {
            return;
        }
        let now = self.window_index;
        let mut due = Vec::new();
        let mut waiting = Vec::with_capacity(self.lost_migrations.len());
        for lm in self.lost_migrations.drain(..) {
            if lm.redeliver_at <= now {
                due.push(lm);
            } else {
                waiting.push(lm);
            }
        }
        self.lost_migrations = waiting;
        // Stable order for determinism.
        due.sort_by_key(|lm| (lm.to, lm.key));
        for lm in due {
            self.send_migration_attempt(lm.from, lm.to, lm.key, lm.state, lm.attempts, wm);
        }
    }

    /// Watches the running wave for nacks and deadline misses; rolls
    /// it back and retries (with exponential backoff) or abandons it.
    /// Called once per window by [`Simulation::step`].
    ///
    /// [`Simulation::step`]: crate::Simulation::step
    pub(crate) fn check_wave_progress(&mut self, wm: &mut WindowMetrics) {
        let Some(exec) = &self.reconfig else { return };
        let now = self.window_index;
        let nacked = exec.nacked;
        if !nacked && now < exec.deadline {
            return;
        }
        let exec = self.reconfig.take().expect("checked above");
        self.rollback_wave(&exec);
        self.trace(
            Some(exec.wave_id),
            TraceEventKind::WaveRolledBack {
                nacked,
                attempt: exec.attempt,
            },
        );
        wm.reconfig_errors.push(if nacked {
            ReconfigError::Nack
        } else {
            ReconfigError::Timeout {
                attempt: exec.attempt,
            }
        });
        if self.manager_down {
            // No manager left to retry the wave: give up and fall back
            // to hash routing so data keeps flowing correctly.
            wm.reconfig_errors.push(ReconfigError::Aborted);
            self.trace(Some(exec.wave_id), TraceEventKind::WaveAborted);
            self.degrade_to_hash(wm);
            return;
        }
        if exec.attempt < exec.wave.max_retries {
            let attempt = exec.attempt + 1;
            let horizon = exec
                .wave
                .deadline_windows
                .saturating_mul(exec.wave.backoff.max(1).saturating_pow(attempt));
            self.trace(Some(exec.wave_id), TraceEventKind::WaveRetried { attempt });
            self.enqueue_wave(&exec.plan);
            self.reconfig = Some(ReconfigExec {
                acks_pending: self.pois.len(),
                applies_pending: self.pois.len(),
                plan: exec.plan,
                wave: exec.wave,
                attempt,
                deadline: now + horizon.max(2),
                wave_id: exec.wave_id,
                started_at: exec.started_at,
                nacked: false,
                pre_wave_routers: exec.pre_wave_routers,
            });
        } else {
            wm.reconfig_errors.push(ReconfigError::Aborted);
            self.trace(Some(exec.wave_id), TraceEventKind::WaveAborted);
        }
    }

    /// Reverts everything the wave touched: routing tables go back to
    /// the pre-wave snapshot, migrated state returns to its old
    /// owners, buffered tuples are released back to the input queues,
    /// and all wave control messages are purged.
    fn rollback_wave(&mut self, exec: &ReconfigExec) {
        // 1. Restore the pre-wave routing tables everywhere.
        for (idx, routers) in exec.pre_wave_routers.iter().enumerate() {
            for (edge, router) in routers {
                self.set_poi_router(PoiId(idx), *edge, Arc::clone(router));
            }
        }
        // 2. Purge in-flight wave control messages (the queue only
        // ever carries wave messages).
        self.control_queue.clear();
        // 3. Pull back migrations still on the wire: network backlogs
        // and the retransmission queue.
        let mut in_transit: Vec<(usize, Key, Option<StateValue>)> = Vec::new();
        for server in &mut self.servers {
            let mut kept = std::collections::VecDeque::new();
            while let Some(msg) = server.backlog.pop_front() {
                match msg.payload {
                    NetPayload::Migrate { key, state } => in_transit.push((msg.to_poi, key, state)),
                    _ => kept.push_back(msg),
                }
            }
            server.backlog = kept;
        }
        for lm in std::mem::take(&mut self.lost_migrations) {
            in_transit.push((lm.to, lm.key, lm.state));
        }
        // 4. Return state to the pre-wave owners. Migrations of *this*
        // wave revert `to → from`; anything else still in transit
        // (e.g. a straggler of an earlier wave) is delivered directly
        // so no state is ever dropped.
        for (to_poi, key, state) in in_transit {
            match exec
                .plan
                .migrations
                .iter()
                .find(|&&(_, k, to)| k == key && to.index() == to_poi)
            {
                Some(&(from, _, _)) => {
                    if let Some(state) = state {
                        self.pois[from.index()].state.insert(key, state);
                    }
                }
                None => self.apply_migration(to_poi, key, state),
            }
        }
        for &(from, key, to) in &exec.plan.migrations {
            if let Some(state) = self.pois[to.index()].state.remove(&key) {
                self.pois[from.index()].state.insert(key, state);
            }
        }
        // 5. Clear the per-POI wave runtime and release buffered
        // tuples back to the front of the input queues (sorted by key
        // for run-to-run determinism). The released tuples sit at the
        // *intended new* owner while the state just went back to the
        // old one, so a reversed straggler-forwarding entry sends them
        // after it — the same §3.4 mechanism the forward path uses.
        for (idx, poi) in self.pois.iter_mut().enumerate() {
            poi.staged = None;
            poi.awaiting_propagates = 0;
            poi.departed.clear();
            let mut buffered: Vec<_> = std::mem::take(&mut poi.pending).into_iter().collect();
            buffered.sort_by_key(|&(key, _)| key);
            for (key, buf) in buffered.into_iter().rev() {
                if let Some(&(from, _, _)) = exec
                    .plan
                    .migrations
                    .iter()
                    .find(|&&(_, k, to)| k == key && to.index() == idx)
                {
                    poi.departed.insert(key, from);
                }
                for t in buf.into_iter().rev() {
                    poi.input.push_front(t);
                }
            }
        }
    }

    /// Whole-table fallback: installs plain hash routing on every
    /// fields edge and relocates all keyed state to match — zero state
    /// loss, locality optimizations abandoned. This is the graceful-
    /// degradation path when the manager becomes unreachable: POIs can
    /// always compute the hash assignment locally, with no routing
    /// tables to distribute.
    pub(crate) fn degrade_to_hash(&mut self, wm: &mut WindowMetrics) {
        if self.degraded {
            return;
        }
        self.degraded = true;
        self.trace(self.wave_hint(), TraceEventKind::DegradedToHash);
        let hash: Arc<dyn KeyRouter> = Arc::new(HashRouter);
        let fields_edges: Vec<EdgeId> = (0..self.topo.edges.len())
            .map(EdgeId)
            .filter(|e| matches!(self.topo.edges[e.index()].grouping, Grouping::Fields { .. }))
            .collect();
        for &edge in &fields_edges {
            self.set_edge_router(edge, Arc::clone(&hash));
        }
        // Relocate keyed state to the hash owners (direct moves: the
        // engine recovers state placement from its store, §3.4).
        let mut moves: Vec<(usize, usize, Key)> = Vec::new();
        for &edge in &fields_edges {
            let dest_po = self.topo.edges[edge.index()].to;
            if self.topo.state_field(dest_po).is_none() {
                continue;
            }
            let parallelism = self.topo.pos[dest_po.index()].parallelism;
            let base = self.poi_base[dest_po.index()];
            for i in 0..parallelism {
                let mut keys: Vec<Key> = self.pois[base + i].state.keys().copied().collect();
                keys.sort_unstable();
                for key in keys {
                    let owner = HashRouter.route(key, parallelism) as usize;
                    if owner != i {
                        moves.push((base + i, base + owner, key));
                    }
                }
            }
        }
        for (from, to, key) in moves {
            if let Some(state) = self.pois[from].state.remove(&key) {
                self.pois[to].state.insert(key, state);
                wm.migrated_states += 1;
            }
            // Release any tuples buffered for the key at either end.
            for idx in [from, to] {
                if let Some(buf) = self.pois[idx].pending.remove(&key) {
                    for t in buf.into_iter().rev() {
                        self.pois[idx].input.push_front(t);
                    }
                }
            }
            self.pois[from].departed.remove(&key);
            self.pois[to].departed.remove(&key);
        }
    }

    /// Installs migrated state at its new owner and releases any
    /// buffered tuples for the key (front of queue, preserving their
    /// arrival order).
    pub(crate) fn apply_migration(&mut self, to_idx: usize, key: Key, state: Option<StateValue>) {
        self.trace(
            self.wave_hint(),
            TraceEventKind::MigrateApplied {
                poi: to_idx,
                key: key.value(),
            },
        );
        let poi = &mut self.pois[to_idx];
        if let Some(state) = state {
            poi.state.insert(key, state);
        }
        if let Some(buffered) = poi.pending.remove(&key) {
            for t in buffered.into_iter().rev() {
                poi.input.push_front(t);
            }
        }
    }

    /// Immediately migrates key state between two instances of one
    /// operator *without* the protocol (test/diagnostic helper;
    /// production reconfigurations go through
    /// [`start_reconfiguration`](Self::start_reconfiguration)).
    ///
    /// # Panics
    ///
    /// Panics if the instances belong to different operators.
    pub fn force_migrate(&mut self, from: PoiId, key: Key, to: PoiId) {
        assert_eq!(
            self.pois[from.index()].po,
            self.pois[to.index()].po,
            "state migrates between instances of one operator"
        );
        let state = self.pois[from.index()].state.remove(&key);
        self.apply_migration(to.index(), key, state);
    }

    /// Routing-table lookup helper: which instance of the edge's
    /// destination would `key` go to right now, according to sender
    /// `poi`'s router?
    ///
    /// # Panics
    ///
    /// Panics if `poi` has no fields-grouped out edge `edge`.
    #[must_use]
    pub fn current_route(&self, poi: PoiId, edge: EdgeId, key: Key) -> u32 {
        let out = self.pois[poi.index()]
            .out
            .iter()
            .find(|o| o.edge == edge)
            .expect("poi has no such out edge");
        match &out.kind {
            crate::sim::OutKind::Fields { router, .. } => {
                let parallelism = self.topo.pos[out.dest_po.index()].parallelism;
                router.route(key, parallelism)
            }
            _ => panic!("edge is not fields-grouped"),
        }
    }

    /// Builds the `(old owner, key, new owner)` migration list implied
    /// by changing the routing of `edge` so that each listed key maps
    /// to the given destination instance, taking the *current* routing
    /// as the old assignment.
    ///
    /// This helper lets policy crates compute migrations without
    /// duplicating the old-route lookup; `keys` pairs each key with its
    /// new destination instance index.
    #[must_use]
    pub fn migrations_for(
        &self,
        edge: EdgeId,
        keys: &HashMap<Key, u32>,
    ) -> Vec<(PoiId, Key, PoiId)> {
        let dest_po: PoId = self.topo.edges[edge.index()].to;
        let from_po = self.topo.edges[edge.index()].from;
        let sender = self.poi_ids(from_po)[0];
        let dest_pois = self.poi_ids(dest_po);
        let mut migrations = Vec::new();
        for (&key, &new_instance) in keys {
            let old_instance = self.current_route(sender, edge, key);
            if old_instance != new_instance {
                migrations.push((
                    dest_pois[old_instance as usize],
                    key,
                    dest_pois[new_instance as usize],
                ));
            }
        }
        migrations.sort_by_key(|&(_, k, _)| k);
        migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::operator::CountOperator;
    use crate::router::{HashRouter, ModuloRouter, ShiftedRouter};
    use crate::sim::{Placement, SimConfig};
    use crate::topology::{Grouping, SourceRate, Topology};
    use crate::tuple::Tuple;

    /// n sources emitting (c % keys, c % keys) so both hops share keys.
    fn chain(n: usize, keys: u64) -> Topology {
        let mut b = Topology::builder();
        let s = b.source("S", n, SourceRate::PerSecond(5_000.0), move |i| {
            let mut c = i as u64;
            Box::new(move || {
                c += 1;
                Some(Tuple::new([Key::new(c % keys), Key::new(c % keys)], 0))
            })
        });
        let a = b.stateful("A", n, CountOperator::factory());
        let bb = b.stateful("B", n, CountOperator::factory());
        b.connect(s, a, Grouping::fields(0));
        b.connect(a, bb, Grouping::fields(1));
        b.build().unwrap()
    }

    fn sim(n: usize, keys: u64) -> Simulation {
        let topo = chain(n, keys);
        let cluster = ClusterSpec::lan_10g(n);
        let placement = Placement::aligned(&topo, n);
        Simulation::new(topo, cluster, placement, SimConfig::default())
    }

    fn total_counts(sim: &Simulation, po_name: &str) -> HashMap<Key, u64> {
        let po = sim.topology().po_by_name(po_name).unwrap();
        let mut counts = HashMap::new();
        for poi in sim.poi_ids(po) {
            for (&k, v) in sim.poi_state(poi) {
                *counts.entry(k).or_insert(0) += v.as_count().unwrap();
            }
        }
        counts
    }

    #[test]
    fn empty_plan_completes() {
        let mut s = sim(2, 8);
        s.run(3);
        s.start_reconfiguration(ReconfigPlan::empty()).unwrap();
        assert!(s.reconfig_active());
        s.run(10);
        assert!(!s.reconfig_active());
        assert_eq!(s.pending_migrations(), 0);
    }

    #[test]
    fn overlapping_waves_rejected() {
        let mut s = sim(2, 8);
        s.start_reconfiguration(ReconfigPlan::empty()).unwrap();
        assert_eq!(
            s.start_reconfiguration(ReconfigPlan::empty()),
            Err(ReconfigInProgress)
        );
    }

    #[test]
    fn router_swap_takes_effect_in_wave_order() {
        let mut s = sim(2, 2);
        s.run(5);
        let edge_ab = EdgeId(1);
        let a = s.topology().po_by_name("A").unwrap();
        let a_pois = s.poi_ids(a);
        // Swap hop A→B from hash to modulo on every A instance.
        let plan = ReconfigPlan {
            routers: a_pois
                .iter()
                .map(|&p| (p, edge_ab, Arc::new(ModuloRouter) as Arc<dyn KeyRouter>))
                .collect(),
            migrations: Vec::new(),
        };
        s.start_reconfiguration(plan).unwrap();
        s.run(10);
        assert!(!s.reconfig_active());
        for &p in &a_pois {
            assert_eq!(s.current_route(p, edge_ab, Key::new(1)), 1);
            assert_eq!(s.current_route(p, edge_ab, Key::new(0)), 0);
        }
    }

    #[test]
    fn state_is_conserved_across_migration() {
        let keys = 6u64;
        let mut s = sim(3, keys);
        s.run(10);
        let before = total_counts(&s, "B");
        let emitted_before = s.metrics().total_emitted();
        assert!(emitted_before > 0);

        // Move every key of hop A→B to the modulo assignment, with the
        // matching migrations, through the full protocol.
        let edge_ab = EdgeId(1);
        let new_owner: HashMap<Key, u32> = (0..keys)
            .map(|k| (Key::new(k), (k % 3) as u32))
            .collect();
        let migrations = s.migrations_for(edge_ab, &new_owner);
        assert!(!migrations.is_empty(), "hash and modulo should disagree");
        let a_pois = s.poi_ids(s.topology().po_by_name("A").unwrap());
        let plan = ReconfigPlan {
            routers: a_pois
                .iter()
                .map(|&p| (p, edge_ab, Arc::new(ModuloRouter) as Arc<dyn KeyRouter>))
                .collect(),
            migrations,
        };
        s.start_reconfiguration(plan).unwrap();
        s.run(30);
        assert!(!s.reconfig_active());
        assert_eq!(s.pending_migrations(), 0);

        // No tuple was lost or double counted: each key's total count
        // across B instances equals the tuples processed for it, and
        // keys' counts never decreased.
        let after = total_counts(&s, "B");
        for (k, n_before) in &before {
            assert!(after[k] >= *n_before, "count of {k} shrank");
        }
        let total_after: u64 = after.values().sum();
        let b_po = s.topology().po_by_name("B").unwrap();
        let b_pois = s.poi_ids(b_po);
        let processed: u64 = s
            .metrics()
            .windows()
            .iter()
            .map(|w| {
                b_pois
                    .iter()
                    .map(|p| w.poi_processed[p.index()])
                    .sum::<u64>()
            })
            .sum();
        let forwarded: u64 = s.metrics().windows().iter().map(|w| w.late_forwarded).sum();
        assert_eq!(
            total_after,
            processed - forwarded,
            "state must equal processed tuples (minus forwarded stragglers)"
        );
    }

    #[test]
    fn each_key_owned_by_one_instance_after_reconfig() {
        let keys = 8u64;
        let mut s = sim(2, keys);
        s.run(8);
        let edge_ab = EdgeId(1);
        let new_owner: HashMap<Key, u32> = (0..keys)
            .map(|k| (Key::new(k), (k % 2) as u32))
            .collect();
        let migrations = s.migrations_for(edge_ab, &new_owner);
        let a_pois = s.poi_ids(s.topology().po_by_name("A").unwrap());
        let plan = ReconfigPlan {
            routers: a_pois
                .iter()
                .map(|&p| (p, edge_ab, Arc::new(ModuloRouter) as Arc<dyn KeyRouter>))
                .collect(),
            migrations,
        };
        s.start_reconfiguration(plan).unwrap();
        s.run(30);
        let b_pois = s.poi_ids(s.topology().po_by_name("B").unwrap());
        let mut owner: HashMap<Key, usize> = HashMap::new();
        for &poi in &b_pois {
            for &k in s.poi_state(poi).keys() {
                assert!(
                    owner.insert(k, poi.index()).is_none(),
                    "key {k} held by two instances"
                );
            }
        }
        // And ownership matches the new table.
        for (&k, &poi_idx) in &owner {
            let expected = b_pois[new_owner[&k] as usize].index();
            assert_eq!(poi_idx, expected, "key {k} at wrong owner");
        }
    }

    #[test]
    fn locality_improves_after_reconfig() {
        // Start with adversarial routing, reconfigure to aligned
        // modulo: the A→B hop becomes fully local.
        let n = 3;
        let keys = n as u64;
        let mut b = Topology::builder();
        let src = b.source("S", n, SourceRate::PerSecond(20_000.0), move |i| {
            let mut c = i as u64;
            Box::new(move || {
                c += 1;
                let k = Key::new(c % keys);
                Some(Tuple::new([k, k], 0))
            })
        });
        let a = b.stateful("A", n, CountOperator::factory());
        let bb = b.stateful("B", n, CountOperator::factory());
        b.connect(src, a, Grouping::fields_with(0, Arc::new(ModuloRouter)));
        b.connect(a, bb, Grouping::fields_with(1, Arc::new(ShiftedRouter::new(1))));
        let topo = b.build().unwrap();
        let cluster = ClusterSpec::lan_10g(n);
        let placement = Placement::aligned(&topo, n);
        let mut s = Simulation::new(topo, cluster, placement, SimConfig::default());

        s.run(10);
        let edge_ab = EdgeId(1);
        let locality_before = s.metrics().edge_locality(edge_ab, 0);
        assert!(locality_before < 0.01, "shifted routing must be remote");

        let new_owner: HashMap<Key, u32> =
            (0..keys).map(|k| (Key::new(k), k as u32)).collect();
        let migrations = s.migrations_for(edge_ab, &new_owner);
        let a_pois = s.poi_ids(s.topology().po_by_name("A").unwrap());
        let plan = ReconfigPlan {
            routers: a_pois
                .iter()
                .map(|&p| (p, edge_ab, Arc::new(ModuloRouter) as Arc<dyn KeyRouter>))
                .collect(),
            migrations,
        };
        s.start_reconfiguration(plan).unwrap();
        s.run(20);
        let windows = s.metrics().windows();
        let tail = &windows[windows.len() - 5..];
        let (mut local, mut remote) = (0, 0);
        for w in tail {
            local += w.edges[edge_ab.index()].local;
            remote += w.edges[edge_ab.index()].remote;
        }
        assert!(local > 0);
        assert_eq!(remote, 0, "post-reconfig hop must be fully local");
    }

    #[test]
    fn force_migrate_moves_state() {
        let mut s = sim(2, 4);
        s.run(5);
        let b_pois = s.poi_ids(s.topology().po_by_name("B").unwrap());
        let key = *s
            .poi_state(b_pois[0])
            .keys()
            .next()
            .expect("instance 0 holds some key");
        let count = s.poi_state(b_pois[0])[&key].as_count().unwrap();
        s.force_migrate(b_pois[0], key, b_pois[1]);
        assert!(!s.poi_state(b_pois[0]).contains_key(&key));
        assert_eq!(s.poi_state(b_pois[1])[&key].as_count(), Some(count));
    }

    #[test]
    fn throughput_not_disrupted_by_reconfig() {
        // Fig. 13's claim: deploying a configuration and migrating is
        // fast and does not hurt throughput. With a no-op plan the
        // throughput before/after must be statistically identical.
        let mut s = sim(2, 16);
        s.run(20);
        let before = s.metrics().avg_throughput(10);
        let a_pois = s.poi_ids(s.topology().po_by_name("A").unwrap());
        let plan = ReconfigPlan {
            routers: a_pois
                .iter()
                .map(|&p| (p, EdgeId(1), Arc::new(HashRouter) as Arc<dyn KeyRouter>))
                .collect(),
            migrations: Vec::new(),
        };
        s.start_reconfiguration(plan).unwrap();
        s.run(20);
        let after = s.metrics().avg_throughput(25);
        assert!(
            (after - before).abs() / before < 0.05,
            "reconfig disrupted throughput: {before} -> {after}"
        );
    }
}
