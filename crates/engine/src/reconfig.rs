//! The online reconfiguration mechanism (paper §3.4, Algorithm 1).
//!
//! This module implements the *mechanism* side of the protocol — the
//! wave of control messages, routing-table swaps, state migration and
//! tuple buffering executed by the operator instances. The *policy*
//! side (collecting statistics, partitioning the key graph and
//! computing the [`ReconfigPlan`]) lives in `streamloc-core`'s
//! `Manager`, mirroring the paper's separation between POIs and the
//! manager process.
//!
//! Message flow, following Algorithm 1 (steps ① GET_METRICS and
//! ② SEND_METRICS are performed by the manager reading the installed
//! [`PairObserver`](crate::PairObserver)s):
//!
//! * ③ `SEND_RECONF` — every POI receives its routing-table update,
//!   send list and receive list; it immediately starts buffering
//!   tuples for receive-list keys.
//! * ④ `ACK_RECONF` — modeled by the executor counting staged POIs.
//! * ⑤ `PROPAGATE` — once all POIs acked, the manager propagates to
//!   the source POIs; each POI that has received a propagate from
//!   *every* instance of *every* predecessor operator applies its new
//!   routing table, ships reassigned key state (⑥ `MIGRATE`) to the
//!   new owners, and forwards the propagate wave downstream.
//!
//! Data streams are never suspended. A tuple reaching the new owner of
//! a key before that key's state arrives is buffered (Algorithm 1's
//! buffering rule); a tuple reaching the *old* owner after its state
//! departed — possible because in-flight tuples are not flushed — is
//! forwarded to the new owner, preserving exactly-once state updates.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::key::Key;
use crate::metrics::WindowMetrics;
use crate::operator::StateValue;
use crate::router::KeyRouter;
use crate::sim::{NetMsg, NetPayload, Simulation};
use crate::topology::{EdgeId, PoId, PoiId};

/// A complete reconfiguration computed by the manager: new routers for
/// the fields-grouped edges and the key-state migrations they imply.
#[derive(Clone)]
pub struct ReconfigPlan {
    /// `(sender instance, out edge, new router)` updates.
    pub routers: Vec<(PoiId, EdgeId, Arc<dyn KeyRouter>)>,
    /// `(old owner, key, new owner)` state transfers. Old and new
    /// owner must be instances of the same operator.
    pub migrations: Vec<(PoiId, Key, PoiId)>,
}

impl fmt::Debug for ReconfigPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReconfigPlan")
            .field("router_updates", &self.routers.len())
            .field("migrations", &self.migrations.len())
            .finish()
    }
}

impl ReconfigPlan {
    /// An empty plan (useful as a no-op reconfiguration in tests).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            routers: Vec::new(),
            migrations: Vec::new(),
        }
    }
}

/// Error returned when a reconfiguration overlaps a running one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigInProgress;

impl fmt::Display for ReconfigInProgress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a reconfiguration wave is already in progress")
    }
}

impl std::error::Error for ReconfigInProgress {}

/// The per-POI payload of a ③ `SEND_RECONF` message.
pub(crate) struct StagedReconf {
    pub(crate) routers: Vec<(EdgeId, Arc<dyn KeyRouter>)>,
    pub(crate) send: Vec<(Key, PoiId)>,
    pub(crate) receive: Vec<Key>,
}

/// Control-plane messages exchanged during a wave.
pub(crate) enum ControlMsg {
    Reconf(StagedReconf),
    Propagate,
}

/// Manager-side progress tracking of the running wave.
pub(crate) struct ReconfigExec {
    pub(crate) acks_pending: usize,
    pub(crate) applies_pending: usize,
}

impl Simulation {
    /// Starts the online reconfiguration protocol for `plan`.
    ///
    /// Control messages take one window per hop, mirroring the paper's
    /// progressive wave; the data stream keeps flowing throughout.
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigInProgress`] if a previous wave has not
    /// finished applying (pending state migrations do not block a new
    /// wave, matching the paper's continuous operation).
    pub fn start_reconfiguration(&mut self, plan: ReconfigPlan) -> Result<(), ReconfigInProgress> {
        if self.reconfig.is_some() {
            return Err(ReconfigInProgress);
        }
        let n = self.pois.len();
        let mut routers: Vec<Vec<(EdgeId, Arc<dyn KeyRouter>)>> = vec![Vec::new(); n];
        for (poi, edge, router) in plan.routers {
            routers[poi.index()].push((edge, router));
        }
        let mut send: Vec<Vec<(Key, PoiId)>> = vec![Vec::new(); n];
        let mut receive: Vec<Vec<Key>> = vec![Vec::new(); n];
        for (from, key, to) in plan.migrations {
            assert_eq!(
                self.pois[from.index()].po,
                self.pois[to.index()].po,
                "state migrates between instances of one operator"
            );
            send[from.index()].push((key, to));
            receive[to.index()].push(key);
        }
        let due = self.window_index; // delivered at the next step (1 hop)
        for idx in (0..n).rev() {
            let staged = StagedReconf {
                routers: std::mem::take(&mut routers[idx]),
                send: std::mem::take(&mut send[idx]),
                receive: std::mem::take(&mut receive[idx]),
            };
            self.control_queue.push((due, idx, ControlMsg::Reconf(staged)));
        }
        self.reconfig = Some(ReconfigExec {
            acks_pending: n,
            applies_pending: n,
        });
        Ok(())
    }

    /// `true` while the protocol wave (③–⑤) is still running.
    #[must_use]
    pub fn reconfig_active(&self) -> bool {
        self.reconfig.is_some()
    }

    /// Number of keys still awaiting their migrated state (⑥ in
    /// flight).
    #[must_use]
    pub fn pending_migrations(&self) -> usize {
        self.pois.iter().map(|p| p.pending.len()).sum()
    }

    /// Processes every control message due at the current window.
    pub(crate) fn process_due_control(&mut self, wm: &mut WindowMetrics) {
        let now = self.window_index;
        if self.control_queue.is_empty() {
            return;
        }
        // Stable processing order: (due, poi), preserving insertion
        // order for equal keys.
        let mut due: Vec<(u64, usize, ControlMsg)> = Vec::new();
        let mut remaining = Vec::with_capacity(self.control_queue.len());
        for msg in self.control_queue.drain(..) {
            if msg.0 <= now {
                due.push(msg);
            } else {
                remaining.push(msg);
            }
        }
        self.control_queue = remaining;
        due.sort_by_key(|&(when, poi, _)| (when, poi));
        for (_, poi, msg) in due {
            match msg {
                ControlMsg::Reconf(staged) => self.handle_reconf(poi, staged, now),
                ControlMsg::Propagate => self.handle_propagate(poi, now, wm),
            }
        }
    }

    /// ③/④: stage the new configuration, start buffering, ack.
    fn handle_reconf(&mut self, idx: usize, staged: StagedReconf, now: u64) {
        {
            let poi = &mut self.pois[idx];
            // Stragglers from the previous reconfiguration are assumed
            // drained by the time the next wave starts.
            poi.departed.clear();
            for &key in &staged.receive {
                poi.pending.entry(key).or_default();
            }
            let pred: usize = self.topo.in_edges[poi.po.index()]
                .iter()
                .map(|&e| self.topo.pos[self.topo.edges[e.index()].from.index()].parallelism)
                .sum();
            // Root operators receive the manager's single propagate.
            poi.awaiting_propagates = pred.max(1);
            poi.staged = Some(staged);
        }
        let exec = self
            .reconfig
            .as_mut()
            .expect("reconf message implies an active wave");
        exec.acks_pending -= 1;
        if exec.acks_pending == 0 {
            // ⑤: all acks received; propagate to the root operators.
            let roots: Vec<usize> = (0..self.topo.pos.len())
                .filter(|&po| self.topo.in_edges[po].is_empty())
                .flat_map(|po| {
                    let base = self.poi_base[po];
                    (0..self.topo.pos[po].parallelism).map(move |i| base + i)
                })
                .collect();
            for poi in roots {
                self.control_queue.push((now + 1, poi, ControlMsg::Propagate));
            }
        }
    }

    /// ⑤/⑥: count propagates; on the last one, apply the staged
    /// configuration, migrate state, forward the wave.
    fn handle_propagate(&mut self, idx: usize, now: u64, wm: &mut WindowMetrics) {
        {
            let poi = &mut self.pois[idx];
            assert!(
                poi.awaiting_propagates > 0,
                "unexpected propagate at instance {idx}"
            );
            poi.awaiting_propagates -= 1;
            if poi.awaiting_propagates > 0 {
                return;
            }
        }
        let staged = self.pois[idx]
            .staged
            .take()
            .expect("propagate wave reached an unstaged instance");

        // Swap in the new routing tables.
        for (edge, router) in staged.routers {
            self.set_poi_router(PoiId(idx), edge, router);
        }

        // ⑥: ship the state of reassigned keys to their new owners.
        for (key, dest) in staged.send {
            let state = self.pois[idx].state.remove(&key);
            self.pois[idx].departed.insert(key, dest);
            self.send_migration(idx, dest.index(), key, state, wm);
        }

        // Forward the wave to every instance of every successor.
        let successors: Vec<usize> = self.topo.out_edges[self.pois[idx].po.index()]
            .iter()
            .flat_map(|&e| {
                let to = self.topo.edges[e.index()].to;
                let base = self.poi_base[to.index()];
                (0..self.topo.pos[to.index()].parallelism).map(move |i| base + i)
            })
            .collect();
        for poi in successors {
            self.control_queue.push((now + 1, poi, ControlMsg::Propagate));
        }

        let exec = self
            .reconfig
            .as_mut()
            .expect("apply implies an active wave");
        exec.applies_pending -= 1;
        if exec.applies_pending == 0 {
            self.reconfig = None;
        }
    }

    /// Transfers one key's state to `to_poi`, in memory when
    /// co-located, over the NIC otherwise.
    fn send_migration(
        &mut self,
        from_idx: usize,
        to_idx: usize,
        key: Key,
        state: Option<StateValue>,
        wm: &mut WindowMetrics,
    ) {
        let from_server = self.pois[from_idx].server;
        let to_server = self.pois[to_idx].server;
        if from_server == to_server {
            wm.migrated_states += 1;
            self.apply_migration(to_idx, key, state);
            return;
        }
        let state_bytes = state.as_ref().map_or(0, StateValue::size_bytes) + 8;
        let bytes = self.cluster.message_bytes(state_bytes);
        self.servers[from_server.0].backlog.push_back(NetMsg {
            from_server: from_server.0,
            to_poi: to_idx,
            bytes,
            payload: NetPayload::Migrate { key, state },
        });
    }

    /// Installs migrated state at its new owner and releases any
    /// buffered tuples for the key (front of queue, preserving their
    /// arrival order).
    pub(crate) fn apply_migration(&mut self, to_idx: usize, key: Key, state: Option<StateValue>) {
        let poi = &mut self.pois[to_idx];
        if let Some(state) = state {
            poi.state.insert(key, state);
        }
        if let Some(buffered) = poi.pending.remove(&key) {
            for t in buffered.into_iter().rev() {
                poi.input.push_front(t);
            }
        }
    }

    /// Immediately migrates key state between two instances of one
    /// operator *without* the protocol (test/diagnostic helper;
    /// production reconfigurations go through
    /// [`start_reconfiguration`](Self::start_reconfiguration)).
    ///
    /// # Panics
    ///
    /// Panics if the instances belong to different operators.
    pub fn force_migrate(&mut self, from: PoiId, key: Key, to: PoiId) {
        assert_eq!(
            self.pois[from.index()].po,
            self.pois[to.index()].po,
            "state migrates between instances of one operator"
        );
        let state = self.pois[from.index()].state.remove(&key);
        self.apply_migration(to.index(), key, state);
    }

    /// Routing-table lookup helper: which instance of the edge's
    /// destination would `key` go to right now, according to sender
    /// `poi`'s router?
    ///
    /// # Panics
    ///
    /// Panics if `poi` has no fields-grouped out edge `edge`.
    #[must_use]
    pub fn current_route(&self, poi: PoiId, edge: EdgeId, key: Key) -> u32 {
        let out = self.pois[poi.index()]
            .out
            .iter()
            .find(|o| o.edge == edge)
            .expect("poi has no such out edge");
        match &out.kind {
            crate::sim::OutKind::Fields { router, .. } => {
                let parallelism = self.topo.pos[out.dest_po.index()].parallelism;
                router.route(key, parallelism)
            }
            _ => panic!("edge is not fields-grouped"),
        }
    }

    /// Builds the `(old owner, key, new owner)` migration list implied
    /// by changing the routing of `edge` so that each listed key maps
    /// to the given destination instance, taking the *current* routing
    /// as the old assignment.
    ///
    /// This helper lets policy crates compute migrations without
    /// duplicating the old-route lookup; `keys` pairs each key with its
    /// new destination instance index.
    #[must_use]
    pub fn migrations_for(
        &self,
        edge: EdgeId,
        keys: &HashMap<Key, u32>,
    ) -> Vec<(PoiId, Key, PoiId)> {
        let dest_po: PoId = self.topo.edges[edge.index()].to;
        let from_po = self.topo.edges[edge.index()].from;
        let sender = self.poi_ids(from_po)[0];
        let dest_pois = self.poi_ids(dest_po);
        let mut migrations = Vec::new();
        for (&key, &new_instance) in keys {
            let old_instance = self.current_route(sender, edge, key);
            if old_instance != new_instance {
                migrations.push((
                    dest_pois[old_instance as usize],
                    key,
                    dest_pois[new_instance as usize],
                ));
            }
        }
        migrations.sort_by_key(|&(_, k, _)| k);
        migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::operator::CountOperator;
    use crate::router::{HashRouter, ModuloRouter, ShiftedRouter};
    use crate::sim::{Placement, SimConfig};
    use crate::topology::{Grouping, SourceRate, Topology};
    use crate::tuple::Tuple;

    /// n sources emitting (c % keys, c % keys) so both hops share keys.
    fn chain(n: usize, keys: u64) -> Topology {
        let mut b = Topology::builder();
        let s = b.source("S", n, SourceRate::PerSecond(5_000.0), move |i| {
            let mut c = i as u64;
            Box::new(move || {
                c += 1;
                Some(Tuple::new([Key::new(c % keys), Key::new(c % keys)], 0))
            })
        });
        let a = b.stateful("A", n, CountOperator::factory());
        let bb = b.stateful("B", n, CountOperator::factory());
        b.connect(s, a, Grouping::fields(0));
        b.connect(a, bb, Grouping::fields(1));
        b.build().unwrap()
    }

    fn sim(n: usize, keys: u64) -> Simulation {
        let topo = chain(n, keys);
        let cluster = ClusterSpec::lan_10g(n);
        let placement = Placement::aligned(&topo, n);
        Simulation::new(topo, cluster, placement, SimConfig::default())
    }

    fn total_counts(sim: &Simulation, po_name: &str) -> HashMap<Key, u64> {
        let po = sim.topology().po_by_name(po_name).unwrap();
        let mut counts = HashMap::new();
        for poi in sim.poi_ids(po) {
            for (&k, v) in sim.poi_state(poi) {
                *counts.entry(k).or_insert(0) += v.as_count().unwrap();
            }
        }
        counts
    }

    #[test]
    fn empty_plan_completes() {
        let mut s = sim(2, 8);
        s.run(3);
        s.start_reconfiguration(ReconfigPlan::empty()).unwrap();
        assert!(s.reconfig_active());
        s.run(10);
        assert!(!s.reconfig_active());
        assert_eq!(s.pending_migrations(), 0);
    }

    #[test]
    fn overlapping_waves_rejected() {
        let mut s = sim(2, 8);
        s.start_reconfiguration(ReconfigPlan::empty()).unwrap();
        assert_eq!(
            s.start_reconfiguration(ReconfigPlan::empty()),
            Err(ReconfigInProgress)
        );
    }

    #[test]
    fn router_swap_takes_effect_in_wave_order() {
        let mut s = sim(2, 2);
        s.run(5);
        let edge_ab = EdgeId(1);
        let a = s.topology().po_by_name("A").unwrap();
        let a_pois = s.poi_ids(a);
        // Swap hop A→B from hash to modulo on every A instance.
        let plan = ReconfigPlan {
            routers: a_pois
                .iter()
                .map(|&p| (p, edge_ab, Arc::new(ModuloRouter) as Arc<dyn KeyRouter>))
                .collect(),
            migrations: Vec::new(),
        };
        s.start_reconfiguration(plan).unwrap();
        s.run(10);
        assert!(!s.reconfig_active());
        for &p in &a_pois {
            assert_eq!(s.current_route(p, edge_ab, Key::new(1)), 1);
            assert_eq!(s.current_route(p, edge_ab, Key::new(0)), 0);
        }
    }

    #[test]
    fn state_is_conserved_across_migration() {
        let keys = 6u64;
        let mut s = sim(3, keys);
        s.run(10);
        let before = total_counts(&s, "B");
        let emitted_before = s.metrics().total_emitted();
        assert!(emitted_before > 0);

        // Move every key of hop A→B to the modulo assignment, with the
        // matching migrations, through the full protocol.
        let edge_ab = EdgeId(1);
        let new_owner: HashMap<Key, u32> = (0..keys)
            .map(|k| (Key::new(k), (k % 3) as u32))
            .collect();
        let migrations = s.migrations_for(edge_ab, &new_owner);
        assert!(!migrations.is_empty(), "hash and modulo should disagree");
        let a_pois = s.poi_ids(s.topology().po_by_name("A").unwrap());
        let plan = ReconfigPlan {
            routers: a_pois
                .iter()
                .map(|&p| (p, edge_ab, Arc::new(ModuloRouter) as Arc<dyn KeyRouter>))
                .collect(),
            migrations,
        };
        s.start_reconfiguration(plan).unwrap();
        s.run(30);
        assert!(!s.reconfig_active());
        assert_eq!(s.pending_migrations(), 0);

        // No tuple was lost or double counted: each key's total count
        // across B instances equals the tuples processed for it, and
        // keys' counts never decreased.
        let after = total_counts(&s, "B");
        for (k, n_before) in &before {
            assert!(after[k] >= *n_before, "count of {k} shrank");
        }
        let total_after: u64 = after.values().sum();
        let b_po = s.topology().po_by_name("B").unwrap();
        let b_pois = s.poi_ids(b_po);
        let processed: u64 = s
            .metrics()
            .windows()
            .iter()
            .map(|w| {
                b_pois
                    .iter()
                    .map(|p| w.poi_processed[p.index()])
                    .sum::<u64>()
            })
            .sum();
        let forwarded: u64 = s.metrics().windows().iter().map(|w| w.late_forwarded).sum();
        assert_eq!(
            total_after,
            processed - forwarded,
            "state must equal processed tuples (minus forwarded stragglers)"
        );
    }

    #[test]
    fn each_key_owned_by_one_instance_after_reconfig() {
        let keys = 8u64;
        let mut s = sim(2, keys);
        s.run(8);
        let edge_ab = EdgeId(1);
        let new_owner: HashMap<Key, u32> = (0..keys)
            .map(|k| (Key::new(k), (k % 2) as u32))
            .collect();
        let migrations = s.migrations_for(edge_ab, &new_owner);
        let a_pois = s.poi_ids(s.topology().po_by_name("A").unwrap());
        let plan = ReconfigPlan {
            routers: a_pois
                .iter()
                .map(|&p| (p, edge_ab, Arc::new(ModuloRouter) as Arc<dyn KeyRouter>))
                .collect(),
            migrations,
        };
        s.start_reconfiguration(plan).unwrap();
        s.run(30);
        let b_pois = s.poi_ids(s.topology().po_by_name("B").unwrap());
        let mut owner: HashMap<Key, usize> = HashMap::new();
        for &poi in &b_pois {
            for &k in s.poi_state(poi).keys() {
                assert!(
                    owner.insert(k, poi.index()).is_none(),
                    "key {k} held by two instances"
                );
            }
        }
        // And ownership matches the new table.
        for (&k, &poi_idx) in &owner {
            let expected = b_pois[new_owner[&k] as usize].index();
            assert_eq!(poi_idx, expected, "key {k} at wrong owner");
        }
    }

    #[test]
    fn locality_improves_after_reconfig() {
        // Start with adversarial routing, reconfigure to aligned
        // modulo: the A→B hop becomes fully local.
        let n = 3;
        let keys = n as u64;
        let mut b = Topology::builder();
        let src = b.source("S", n, SourceRate::PerSecond(20_000.0), move |i| {
            let mut c = i as u64;
            Box::new(move || {
                c += 1;
                let k = Key::new(c % keys);
                Some(Tuple::new([k, k], 0))
            })
        });
        let a = b.stateful("A", n, CountOperator::factory());
        let bb = b.stateful("B", n, CountOperator::factory());
        b.connect(src, a, Grouping::fields_with(0, Arc::new(ModuloRouter)));
        b.connect(a, bb, Grouping::fields_with(1, Arc::new(ShiftedRouter::new(1))));
        let topo = b.build().unwrap();
        let cluster = ClusterSpec::lan_10g(n);
        let placement = Placement::aligned(&topo, n);
        let mut s = Simulation::new(topo, cluster, placement, SimConfig::default());

        s.run(10);
        let edge_ab = EdgeId(1);
        let locality_before = s.metrics().edge_locality(edge_ab, 0);
        assert!(locality_before < 0.01, "shifted routing must be remote");

        let new_owner: HashMap<Key, u32> =
            (0..keys).map(|k| (Key::new(k), k as u32)).collect();
        let migrations = s.migrations_for(edge_ab, &new_owner);
        let a_pois = s.poi_ids(s.topology().po_by_name("A").unwrap());
        let plan = ReconfigPlan {
            routers: a_pois
                .iter()
                .map(|&p| (p, edge_ab, Arc::new(ModuloRouter) as Arc<dyn KeyRouter>))
                .collect(),
            migrations,
        };
        s.start_reconfiguration(plan).unwrap();
        s.run(20);
        let windows = s.metrics().windows();
        let tail = &windows[windows.len() - 5..];
        let (mut local, mut remote) = (0, 0);
        for w in tail {
            local += w.edges[edge_ab.index()].local;
            remote += w.edges[edge_ab.index()].remote;
        }
        assert!(local > 0);
        assert_eq!(remote, 0, "post-reconfig hop must be fully local");
    }

    #[test]
    fn force_migrate_moves_state() {
        let mut s = sim(2, 4);
        s.run(5);
        let b_pois = s.poi_ids(s.topology().po_by_name("B").unwrap());
        let key = *s
            .poi_state(b_pois[0])
            .keys()
            .next()
            .expect("instance 0 holds some key");
        let count = s.poi_state(b_pois[0])[&key].as_count().unwrap();
        s.force_migrate(b_pois[0], key, b_pois[1]);
        assert!(!s.poi_state(b_pois[0]).contains_key(&key));
        assert_eq!(s.poi_state(b_pois[1])[&key].as_count(), Some(count));
    }

    #[test]
    fn throughput_not_disrupted_by_reconfig() {
        // Fig. 13's claim: deploying a configuration and migrating is
        // fast and does not hurt throughput. With a no-op plan the
        // throughput before/after must be statistically identical.
        let mut s = sim(2, 16);
        s.run(20);
        let before = s.metrics().avg_throughput(10);
        let a_pois = s.poi_ids(s.topology().po_by_name("A").unwrap());
        let plan = ReconfigPlan {
            routers: a_pois
                .iter()
                .map(|&p| (p, EdgeId(1), Arc::new(HashRouter) as Arc<dyn KeyRouter>))
                .collect(),
            migrations: Vec::new(),
        };
        s.start_reconfiguration(plan).unwrap();
        s.run(20);
        let after = s.metrics().avg_throughput(25);
        assert!(
            (after - before).abs() / before < 0.05,
            "reconfig disrupted throughput: {before} -> {after}"
        );
    }
}
