//! Operators: the user code executed by processing operator instances.

use crate::key::Key;
use crate::tuple::Tuple;
use std::fmt;

/// Per-key state held by a stateful operator instance.
///
/// State values are what the reconfiguration protocol migrates between
/// instances when a key is reassigned. Two representations cover the
/// applications in the paper and arbitrary user state:
///
/// * [`Count`](StateValue::Count) — a counter, as used by the
///   evaluation topology ("counts the number of occurrences of its
///   different values", §4.1);
/// * [`Bytes`](StateValue::Bytes) — opaque serialized state of any
///   size, so migration cost models arbitrary applications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateValue {
    /// A 64-bit counter.
    Count(u64),
    /// Opaque serialized state.
    Bytes(Vec<u8>),
}

impl StateValue {
    /// Size of this state on the wire when migrated.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        match self {
            StateValue::Count(_) => 8,
            StateValue::Bytes(b) => b.len() as u64,
        }
    }

    /// The counter value; `None` for byte state.
    #[must_use]
    pub fn as_count(&self) -> Option<u64> {
        match self {
            StateValue::Count(n) => Some(*n),
            StateValue::Bytes(_) => None,
        }
    }

    /// Mutable counter access; `None` for byte state.
    pub fn as_count_mut(&mut self) -> Option<&mut u64> {
        match self {
            StateValue::Count(n) => Some(n),
            StateValue::Bytes(_) => None,
        }
    }
}

/// Execution context handed to [`Operator::process`].
///
/// Provides access to the state of the tuple's routing key (for
/// stateful operators) and collects emitted output tuples.
#[derive(Debug)]
pub struct OpContext<'a> {
    pub(crate) state: Option<&'a mut StateValue>,
    pub(crate) routing_key: Option<Key>,
    pub(crate) emitted: &'a mut Vec<Tuple>,
}

impl<'a> OpContext<'a> {
    /// The state of the key this tuple was routed on.
    ///
    /// # Panics
    ///
    /// Panics when called from a stateless operator (no fields-grouped
    /// input edge).
    pub fn state(&mut self) -> &mut StateValue {
        self.state
            .as_deref_mut()
            .expect("state() called on a stateless operator")
    }

    /// The key the tuple was routed on, if the input edge uses fields
    /// grouping.
    #[must_use]
    pub fn routing_key(&self) -> Option<Key> {
        self.routing_key
    }

    /// Emits `tuple` on the operator's output stream.
    pub fn emit(&mut self, tuple: Tuple) {
        self.emitted.push(tuple);
    }
}

/// User code run by every instance of a processing operator.
///
/// Implementations must be deterministic given the tuple and state —
/// the simulator relies on this for reproducible experiments.
pub trait Operator: Send {
    /// Processes one input tuple, optionally updating the key state
    /// and emitting output tuples via `ctx`.
    fn process(&mut self, tuple: Tuple, ctx: &mut OpContext<'_>);

    /// Initial state for a key never seen by this operator.
    fn init_state(&self) -> StateValue {
        StateValue::Count(0)
    }
}

/// Factory producing one [`Operator`] per deployed instance.
pub type OperatorFactory = Box<dyn Fn(usize) -> Box<dyn Operator> + Send + Sync>;

/// The paper's evaluation operator: counts occurrences of the routing
/// key and forwards the tuple downstream unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountOperator;

impl CountOperator {
    /// Creates the counting operator.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// A factory deploying one [`CountOperator`] per instance.
    #[must_use]
    pub fn factory() -> OperatorFactory {
        Box::new(|_| Box::new(CountOperator))
    }
}

impl Operator for CountOperator {
    fn process(&mut self, tuple: Tuple, ctx: &mut OpContext<'_>) {
        if let Some(n) = ctx.state().as_count_mut() {
            *n += 1;
        }
        ctx.emit(tuple);
    }
}

/// A stateless pass-through operator (e.g. a parser or normalizer
/// whose cost matters but whose output equals its input).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityOperator;

impl IdentityOperator {
    /// Creates the identity operator.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// A factory deploying one [`IdentityOperator`] per instance.
    #[must_use]
    pub fn factory() -> OperatorFactory {
        Box::new(|_| Box::new(IdentityOperator))
    }
}

impl Operator for IdentityOperator {
    fn process(&mut self, tuple: Tuple, ctx: &mut OpContext<'_>) {
        ctx.emit(tuple);
    }
}

/// An operator defined by a closure, for tests and small examples.
pub struct FnOperator<F>(pub F);

impl<F> fmt::Debug for FnOperator<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("FnOperator")
    }
}

impl<F> Operator for FnOperator<F>
where
    F: FnMut(Tuple, &mut OpContext<'_>) + Send,
{
    fn process(&mut self, tuple: Tuple, ctx: &mut OpContext<'_>) {
        (self.0)(tuple, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_once(op: &mut dyn Operator, tuple: Tuple, state: Option<&mut StateValue>) -> Vec<Tuple> {
        let mut emitted = Vec::new();
        let mut ctx = OpContext {
            routing_key: state.is_some().then(|| tuple.key(0)),
            state,
            emitted: &mut emitted,
        };
        op.process(tuple, &mut ctx);
        emitted
    }

    #[test]
    fn count_operator_counts_and_forwards() {
        let mut op = CountOperator::new();
        let mut state = op.init_state();
        let t = Tuple::new([Key::new(7)], 0);
        let out = run_once(&mut op, t, Some(&mut state));
        assert_eq!(out, vec![t]);
        assert_eq!(state.as_count(), Some(1));
        run_once(&mut op, t, Some(&mut state));
        assert_eq!(state.as_count(), Some(2));
    }

    #[test]
    fn identity_forwards_without_state() {
        let mut op = IdentityOperator::new();
        let t = Tuple::new([Key::new(1), Key::new(2)], 64);
        let out = run_once(&mut op, t, None);
        assert_eq!(out, vec![t]);
    }

    #[test]
    fn fn_operator_transforms() {
        let mut op = FnOperator(|t: Tuple, ctx: &mut OpContext<'_>| {
            ctx.emit(t.with_key(0, Key::new(99)));
        });
        let out = run_once(&mut op, Tuple::new([Key::new(1)], 0), None);
        assert_eq!(out[0].key(0), Key::new(99));
    }

    #[test]
    fn state_value_sizes() {
        assert_eq!(StateValue::Count(5).size_bytes(), 8);
        assert_eq!(StateValue::Bytes(vec![0; 100]).size_bytes(), 100);
    }

    #[test]
    #[should_panic(expected = "stateless operator")]
    fn stateless_state_access_panics() {
        let mut op = FnOperator(|t: Tuple, ctx: &mut OpContext<'_>| {
            ctx.state();
            ctx.emit(t);
        });
        run_once(&mut op, Tuple::new([Key::new(1)], 0), None);
    }
}
