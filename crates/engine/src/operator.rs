//! Operators: the user code executed by processing operator instances.

use crate::key::Key;
use crate::tuple::Tuple;
use std::fmt;

/// Per-key state held by a stateful operator instance.
///
/// State values are what the reconfiguration protocol migrates between
/// instances when a key is reassigned. Two representations cover the
/// applications in the paper and arbitrary user state:
///
/// * [`Count`](StateValue::Count) — a counter, as used by the
///   evaluation topology ("counts the number of occurrences of its
///   different values", §4.1);
/// * [`Bytes`](StateValue::Bytes) — opaque serialized state of any
///   size, so migration cost models arbitrary applications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateValue {
    /// A 64-bit counter.
    Count(u64),
    /// Opaque serialized state.
    Bytes(Vec<u8>),
}

impl StateValue {
    /// Size of this state on the wire when migrated.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        match self {
            StateValue::Count(_) => 8,
            StateValue::Bytes(b) => b.len() as u64,
        }
    }

    /// The counter value; `None` for byte state.
    #[must_use]
    pub fn as_count(&self) -> Option<u64> {
        match self {
            StateValue::Count(n) => Some(*n),
            StateValue::Bytes(_) => None,
        }
    }

    /// Mutable counter access; `None` for byte state.
    pub fn as_count_mut(&mut self) -> Option<&mut u64> {
        match self {
            StateValue::Count(n) => Some(n),
            StateValue::Bytes(_) => None,
        }
    }
}

/// Execution context handed to [`Operator::process`].
///
/// Provides access to the state of the tuple's routing key (for
/// stateful operators) and collects emitted output tuples.
#[derive(Debug)]
pub struct OpContext<'a> {
    pub(crate) state: Option<&'a mut StateValue>,
    pub(crate) routing_key: Option<Key>,
    pub(crate) emitted: &'a mut Vec<Tuple>,
}

impl<'a> OpContext<'a> {
    /// The state of the key this tuple was routed on.
    ///
    /// # Panics
    ///
    /// Panics when called from a stateless operator (no fields-grouped
    /// input edge).
    pub fn state(&mut self) -> &mut StateValue {
        self.state
            .as_deref_mut()
            .expect("state() called on a stateless operator")
    }

    /// The key the tuple was routed on, if the input edge uses fields
    /// grouping.
    #[must_use]
    pub fn routing_key(&self) -> Option<Key> {
        self.routing_key
    }

    /// Emits `tuple` on the operator's output stream.
    pub fn emit(&mut self, tuple: Tuple) {
        self.emitted.push(tuple);
    }
}

/// User code run by every instance of a processing operator.
///
/// Implementations must be deterministic given the tuple and state —
/// the simulator relies on this for reproducible experiments.
pub trait Operator: Send {
    /// Processes one input tuple, optionally updating the key state
    /// and emitting output tuples via `ctx`.
    fn process(&mut self, tuple: Tuple, ctx: &mut OpContext<'_>);

    /// Initial state for a key never seen by this operator.
    fn init_state(&self) -> StateValue {
        StateValue::Count(0)
    }

    /// Processes a run of input tuples that all share the same routing
    /// key (`ctx.state()` / `ctx.routing_key()` refer to that key; for
    /// stateless operators the "run" is an arbitrary chunk of the
    /// batch).
    ///
    /// The contract is strict equivalence: the state updates and
    /// emitted tuples must be exactly what per-tuple
    /// [`process`](Operator::process) calls in order would produce.
    /// The default does just that; aggregating operators override it
    /// to apply the whole run in O(1) state writes
    /// ([`CountOperator`]: one add of `tuples.len()`).
    fn on_batch(&mut self, tuples: &[Tuple], ctx: &mut OpContext<'_>) {
        for &tuple in tuples {
            self.process(tuple, ctx);
        }
    }
}

/// Factory producing one [`Operator`] per deployed instance.
pub type OperatorFactory = Box<dyn Fn(usize) -> Box<dyn Operator> + Send + Sync>;

/// The paper's evaluation operator: counts occurrences of the routing
/// key and forwards the tuple downstream unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountOperator;

impl CountOperator {
    /// Creates the counting operator.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// A factory deploying one [`CountOperator`] per instance.
    #[must_use]
    pub fn factory() -> OperatorFactory {
        Box::new(|_| Box::new(CountOperator))
    }
}

impl Operator for CountOperator {
    fn process(&mut self, tuple: Tuple, ctx: &mut OpContext<'_>) {
        if let Some(n) = ctx.state().as_count_mut() {
            *n += 1;
        }
        ctx.emit(tuple);
    }

    /// Counts the whole run with a single state write.
    fn on_batch(&mut self, tuples: &[Tuple], ctx: &mut OpContext<'_>) {
        if let Some(n) = ctx.state().as_count_mut() {
            *n += tuples.len() as u64;
        }
        ctx.emitted.extend_from_slice(tuples);
    }
}

/// A stateless pass-through operator (e.g. a parser or normalizer
/// whose cost matters but whose output equals its input).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityOperator;

impl IdentityOperator {
    /// Creates the identity operator.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// A factory deploying one [`IdentityOperator`] per instance.
    #[must_use]
    pub fn factory() -> OperatorFactory {
        Box::new(|_| Box::new(IdentityOperator))
    }
}

impl Operator for IdentityOperator {
    fn process(&mut self, tuple: Tuple, ctx: &mut OpContext<'_>) {
        ctx.emit(tuple);
    }

    fn on_batch(&mut self, tuples: &[Tuple], ctx: &mut OpContext<'_>) {
        ctx.emitted.extend_from_slice(tuples);
    }
}

/// An operator defined by a closure, for tests and small examples.
pub struct FnOperator<F>(pub F);

impl<F> fmt::Debug for FnOperator<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("FnOperator")
    }
}

impl<F> Operator for FnOperator<F>
where
    F: FnMut(Tuple, &mut OpContext<'_>) + Send,
{
    fn process(&mut self, tuple: Tuple, ctx: &mut OpContext<'_>) {
        (self.0)(tuple, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_once(op: &mut dyn Operator, tuple: Tuple, state: Option<&mut StateValue>) -> Vec<Tuple> {
        let mut emitted = Vec::new();
        let mut ctx = OpContext {
            routing_key: state.is_some().then(|| tuple.key(0)),
            state,
            emitted: &mut emitted,
        };
        op.process(tuple, &mut ctx);
        emitted
    }

    #[test]
    fn count_operator_counts_and_forwards() {
        let mut op = CountOperator::new();
        let mut state = op.init_state();
        let t = Tuple::new([Key::new(7)], 0);
        let out = run_once(&mut op, t, Some(&mut state));
        assert_eq!(out, vec![t]);
        assert_eq!(state.as_count(), Some(1));
        run_once(&mut op, t, Some(&mut state));
        assert_eq!(state.as_count(), Some(2));
    }

    #[test]
    fn identity_forwards_without_state() {
        let mut op = IdentityOperator::new();
        let t = Tuple::new([Key::new(1), Key::new(2)], 64);
        let out = run_once(&mut op, t, None);
        assert_eq!(out, vec![t]);
    }

    #[test]
    fn fn_operator_transforms() {
        let mut op = FnOperator(|t: Tuple, ctx: &mut OpContext<'_>| {
            ctx.emit(t.with_key(0, Key::new(99)));
        });
        let out = run_once(&mut op, Tuple::new([Key::new(1)], 0), None);
        assert_eq!(out[0].key(0), Key::new(99));
    }

    fn run_batch(
        op: &mut dyn Operator,
        tuples: &[Tuple],
        state: Option<&mut StateValue>,
    ) -> Vec<Tuple> {
        let mut emitted = Vec::new();
        let mut ctx = OpContext {
            routing_key: state.is_some().then(|| tuples[0].key(0)),
            state,
            emitted: &mut emitted,
        };
        op.on_batch(tuples, &mut ctx);
        emitted
    }

    #[test]
    fn count_on_batch_matches_per_tuple_process() {
        let tuples = vec![Tuple::new([Key::new(7)], 0); 5];
        let mut batch_op = CountOperator::new();
        let mut batch_state = batch_op.init_state();
        let batched = run_batch(&mut batch_op, &tuples, Some(&mut batch_state));

        let mut tuple_op = CountOperator::new();
        let mut tuple_state = tuple_op.init_state();
        let mut per_tuple = Vec::new();
        for &t in &tuples {
            per_tuple.extend(run_once(&mut tuple_op, t, Some(&mut tuple_state)));
        }
        assert_eq!(batched, per_tuple);
        assert_eq!(batch_state, tuple_state);
        assert_eq!(batch_state.as_count(), Some(5));
    }

    #[test]
    fn default_on_batch_delegates_to_process() {
        let mut op = FnOperator(|t: Tuple, ctx: &mut OpContext<'_>| {
            ctx.emit(t.with_key(0, Key::new(t.key(0).value() + 1)));
        });
        let tuples: Vec<Tuple> = (0..4).map(|v| Tuple::new([Key::new(v)], 0)).collect();
        let out = run_batch(&mut op, &tuples, None);
        let keys: Vec<u64> = out.iter().map(|t| t.key(0).value()).collect();
        assert_eq!(keys, vec![1, 2, 3, 4]);
    }

    #[test]
    fn state_value_sizes() {
        assert_eq!(StateValue::Count(5).size_bytes(), 8);
        assert_eq!(StateValue::Bytes(vec![0; 100]).size_bytes(), 100);
    }

    #[test]
    #[should_panic(expected = "stateless operator")]
    fn stateless_state_access_panics() {
        let mut op = FnOperator(|t: Tuple, ctx: &mut OpContext<'_>| {
            ctx.state();
            ctx.emit(t);
        });
        run_once(&mut op, Tuple::new([Key::new(1)], 0), None);
    }
}
