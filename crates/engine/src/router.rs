//! Key routers: the pluggable policy behind fields grouping.

use crate::key::{splitmix64, Key};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A run of consecutive tuples routed to the same destination
/// instance, as produced by [`KeyRouter::route_batch`].
///
/// The columnar data plane consumes batches as `(dest, len)` runs: one
/// channel append, one edge-counter add and one sketch offer per run
/// instead of per tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DestRun {
    /// Destination instance index, in `0..instances`.
    pub dest: u32,
    /// Number of consecutive tuples routed there.
    pub len: u32,
}

/// Appends `(dest, len)` to `out`, coalescing with the previous run of
/// this call when the destination repeats. `start` is `out.len()` at
/// the beginning of the `route_batch` call, so runs never merge across
/// calls.
#[inline]
pub fn push_dest_run(out: &mut Vec<DestRun>, start: usize, dest: u32, len: u32) {
    if out.len() > start {
        if let Some(last) = out.last_mut() {
            if last.dest == dest {
                last.len += len;
                return;
            }
        }
    }
    out.push(DestRun { dest, len });
}

/// Length of the leading run of equal keys in `keys` (0 when empty).
#[inline]
pub fn key_run_len(keys: &[Key]) -> usize {
    match keys.first() {
        None => 0,
        Some(&first) => 1 + keys[1..].iter().take_while(|&&k| k == first).count(),
    }
}

/// Decides which instance of the downstream operator receives a key.
///
/// This is the extension point the paper's contribution plugs into:
/// the default is [`HashRouter`] (Storm's fields grouping); the
/// locality-aware system swaps in a table-based router generated from
/// the partitioned key graph. Implementations must be pure functions
/// of `(key, instances)` so that routing is deterministic.
pub trait KeyRouter: Send + Sync {
    /// Instance index in `0..instances` for `key`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `instances == 0`.
    fn route(&self, key: Key, instances: usize) -> u32;

    /// Routes a whole batch of keys at once, appending the resulting
    /// destination runs to `out` (runs within one call are coalesced;
    /// `sum(len) == keys.len()` always holds).
    ///
    /// The contract is strict equivalence: expanding the runs must
    /// yield exactly the per-key [`route`](KeyRouter::route) sequence,
    /// including any observable side effects (fallback counters, load
    /// state) in aggregate. The default implementation delegates
    /// per key; stateless routers whose decision is pure in the key
    /// ([`HashRouter`], `RoutingTable`) override it to route each run
    /// of equal keys once, with a small last-key memo for alternating
    /// keys — the batch-amortization lever of skewed streams, where
    /// correlated keys arrive in runs.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `instances == 0`.
    fn route_batch(&self, keys: &[Key], instances: usize, out: &mut Vec<DestRun>) {
        let start = out.len();
        for &key in keys {
            let dest = self.route(key, instances);
            push_dest_run(out, start, dest, 1);
        }
    }

    /// Short name used in experiment logs.
    fn name(&self) -> &'static str {
        "custom"
    }

    /// The reconfiguration epoch this router was generated in, when
    /// the implementation tracks one (`RoutingTable` does: the manager
    /// stamps each rebuilt table with its wave count). Span-tracing
    /// hops are tagged with the active epoch so latency distributions
    /// can be compared before and after each wave. Stateless routers
    /// return `None`.
    fn epoch(&self) -> Option<u64> {
        None
    }
}

impl fmt::Debug for dyn KeyRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyRouter({})", self.name())
    }
}

/// Hash-based fields grouping: `hash(key) % instances`.
///
/// Random-but-deterministic assignment; the baseline in every
/// experiment and the fallback for keys absent from routing tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HashRouter;

impl KeyRouter for HashRouter {
    fn route(&self, key: Key, instances: usize) -> u32 {
        assert!(instances > 0, "routing to an operator with no instances");
        (key.stable_hash() % instances as u64) as u32
    }

    /// Hashes each run of equal keys once. A two-entry memo of the
    /// most recent distinct keys catches alternating traffic (A B A B)
    /// that run detection alone cannot coalesce.
    fn route_batch(&self, keys: &[Key], instances: usize, out: &mut Vec<DestRun>) {
        assert!(instances > 0, "routing to an operator with no instances");
        let start = out.len();
        let mut memo: [Option<(Key, u32)>; 2] = [None, None];
        let mut rest = keys;
        while !rest.is_empty() {
            let key = rest[0];
            let len = key_run_len(rest);
            let dest = match memo {
                [Some((k, d)), _] if k == key => d,
                [_, Some((k, d))] if k == key => {
                    memo.swap(0, 1); // keep the most recent key in front
                    d
                }
                _ => {
                    let d = self.route(key, instances);
                    memo[1] = memo[0];
                    memo[0] = Some((key, d));
                    d
                }
            };
            push_dest_run(out, start, dest, len as u32);
            rest = &rest[len..];
        }
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Modulo routing: key `v` goes to instance `v % instances`.
///
/// For the synthetic workload of §4.2, whose keys are integers in
/// `0..n`, this is exactly the "locality-aware" oracle routing table:
/// tuple `(i, j)` goes to instance `i` of the first operator and
/// instance `j` of the second, so tuples with `i == j` stay on one
/// server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModuloRouter;

impl KeyRouter for ModuloRouter {
    fn route(&self, key: Key, instances: usize) -> u32 {
        assert!(instances > 0, "routing to an operator with no instances");
        (key.value() % instances as u64) as u32
    }

    fn name(&self) -> &'static str {
        "modulo"
    }
}

/// Adversarial routing: key `v` goes to instance `(v + shift) %
/// instances`.
///
/// Paired with [`ModuloRouter`] on the previous hop, a `shift` of 1
/// guarantees that correlated synthetic tuples `(i, i)` always change
/// server between the two stateful operators — the paper's
/// "worst-case" lower bound (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShiftedRouter {
    shift: u64,
}

impl ShiftedRouter {
    /// Creates a router displacing keys by `shift` instances.
    #[must_use]
    pub fn new(shift: u64) -> Self {
        Self { shift }
    }
}

impl Default for ShiftedRouter {
    fn default() -> Self {
        Self::new(1)
    }
}

impl KeyRouter for ShiftedRouter {
    fn route(&self, key: Key, instances: usize) -> u32 {
        assert!(instances > 0, "routing to an operator with no instances");
        ((key.value() + self.shift) % instances as u64) as u32
    }

    fn name(&self) -> &'static str {
        "shifted"
    }
}

/// Balanced random-but-deterministic routing: keys are spread by a
/// seeded permutation of `0..instances`, so a key domain of exactly
/// `n` integer keys (the synthetic workload of §4.2) still loads every
/// instance evenly — as Storm's fields grouping does for integer keys,
/// whose Java hash is the identity — while the assignment remains
/// uncorrelated with any other operator's.
///
/// Keys outside `0..instances` are hashed first, preserving the
/// uniform spread for large key domains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermutationRouter {
    perm: Vec<u32>,
    seed: u64,
}

impl PermutationRouter {
    /// Creates the router for a destination with `instances`
    /// instances, shuffled by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `instances == 0`.
    #[must_use]
    pub fn new(instances: usize, seed: u64) -> Self {
        assert!(instances > 0, "routing to an operator with no instances");
        let mut perm: Vec<u32> = (0..instances as u32).collect();
        // Seeded Fisher-Yates using the splitmix stream.
        let mut state = seed;
        for i in (1..instances).rev() {
            state = crate::key::splitmix64(state);
            let j = (state % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        Self { perm, seed }
    }
}

impl KeyRouter for PermutationRouter {
    fn route(&self, key: Key, instances: usize) -> u32 {
        assert!(instances > 0, "routing to an operator with no instances");
        if instances != self.perm.len() {
            // Built for another parallelism: degrade to seeded hash.
            return ((key.stable_hash() ^ self.seed) % instances as u64) as u32;
        }
        let slot = if key.value() < instances as u64 {
            key.value() as usize
        } else {
            (key.stable_hash() % instances as u64) as usize
        };
        self.perm[slot]
    }

    fn name(&self) -> &'static str {
        "permutation"
    }
}

/// Partial key grouping (Nasir et al., ICDE 2015 — paper §5.2): each
/// key may go to either of two hash-chosen candidate instances, and
/// the sender picks the currently less-loaded one.
///
/// PKG balances skewed streams beautifully, but **splits each key's
/// state across two instances**, so it only suits operators whose
/// per-key state is aggregatable downstream — exactly the limitation
/// the paper contrasts its routing tables against. Provided here as
/// the load-balancing baseline for the balance ablation bench.
#[derive(Debug)]
pub struct PartialKeyRouter {
    loads: Vec<AtomicU64>,
}

impl PartialKeyRouter {
    /// Creates the router for a destination with `instances`
    /// instances.
    ///
    /// # Panics
    ///
    /// Panics if `instances == 0`.
    #[must_use]
    pub fn new(instances: usize) -> Self {
        assert!(instances > 0, "routing to an operator with no instances");
        Self {
            loads: (0..instances).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Tuples sent so far to each instance.
    #[must_use]
    pub fn loads(&self) -> Vec<u64> {
        self.loads.iter().map(|l| l.load(Ordering::Relaxed)).collect()
    }
}

impl KeyRouter for PartialKeyRouter {
    fn route(&self, key: Key, instances: usize) -> u32 {
        assert!(instances > 0, "routing to an operator with no instances");
        let h1 = (key.stable_hash() % instances as u64) as usize;
        if instances != self.loads.len() {
            return h1 as u32; // built for another parallelism
        }
        let h2 = (splitmix64(key.value() ^ 0x7ce9_u64) % instances as u64) as usize;
        let pick = if self.loads[h1].load(Ordering::Relaxed)
            <= self.loads[h2].load(Ordering::Relaxed)
        {
            h1
        } else {
            h2
        };
        self.loads[pick].fetch_add(1, Ordering::Relaxed);
        pick as u32
    }

    fn name(&self) -> &'static str {
        "pkg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_router_is_stable_and_in_range() {
        let r = HashRouter;
        for v in 0..100 {
            let k = Key::new(v);
            let a = r.route(k, 6);
            assert!(a < 6);
            assert_eq!(a, r.route(k, 6), "routing must be deterministic");
        }
    }

    #[test]
    fn hash_router_spreads_uniformly() {
        let r = HashRouter;
        let mut counts = [0u32; 4];
        for v in 0..4000 {
            counts[r.route(Key::new(v), 4) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..=1200).contains(&c), "bucket count {c} skewed");
        }
    }

    #[test]
    fn modulo_router_is_identity_for_small_keys() {
        let r = ModuloRouter;
        for v in 0..6 {
            assert_eq!(r.route(Key::new(v), 6), v as u32);
        }
        assert_eq!(r.route(Key::new(7), 6), 1);
    }

    #[test]
    fn shifted_router_never_matches_modulo() {
        let m = ModuloRouter;
        let s = ShiftedRouter::new(1);
        for v in 0..100 {
            let k = Key::new(v);
            for n in 2..7 {
                assert_ne!(m.route(k, n), s.route(k, n), "shift must displace");
            }
        }
    }

    #[test]
    #[should_panic(expected = "no instances")]
    fn zero_instances_panics() {
        let _ = HashRouter.route(Key::new(1), 0);
    }

    #[test]
    fn permutation_router_is_balanced_bijection() {
        let r = PermutationRouter::new(6, 42);
        let mut seen = [false; 6];
        for v in 0..6 {
            let dest = r.route(Key::new(v), 6) as usize;
            assert!(!seen[dest], "two keys map to instance {dest}");
            seen[dest] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn permutation_routers_with_different_seeds_decorrelate() {
        let a = PermutationRouter::new(6, 1);
        let b = PermutationRouter::new(6, 2);
        let matches = (0..6)
            .filter(|&v| a.route(Key::new(v), 6) == b.route(Key::new(v), 6))
            .count();
        assert!(matches < 6, "different seeds should disagree somewhere");
    }

    #[test]
    fn permutation_router_handles_large_keys() {
        let r = PermutationRouter::new(4, 9);
        for v in 1000..1100 {
            assert!(r.route(Key::new(v), 4) < 4);
        }
    }

    #[test]
    fn permutation_router_degrades_on_parallelism_mismatch() {
        let r = PermutationRouter::new(4, 9);
        for v in 0..100 {
            assert!(r.route(Key::new(v), 7) < 7);
        }
    }

    #[test]
    fn pkg_balances_a_skewed_stream() {
        // One scorching key + a long tail: hash piles the hot key on
        // one instance; PKG splits it across its two candidates.
        let n = 4;
        let pkg = PartialKeyRouter::new(n);
        let hash = HashRouter;
        let mut hash_loads = [0u64; 4];
        for i in 0..10_000u64 {
            let key = if i % 2 == 0 { Key::new(0) } else { Key::new(i) };
            let _ = pkg.route(key, n);
            hash_loads[hash.route(key, n) as usize] += 1;
        }
        let pkg_loads = pkg.loads();
        let imb = |loads: &[u64]| {
            let max = *loads.iter().max().unwrap() as f64;
            let avg = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
            max / avg
        };
        assert!(
            imb(&pkg_loads) < 1.3,
            "pkg should balance: {pkg_loads:?}"
        );
        assert!(
            imb(&hash_loads) > 1.8,
            "hash should be skewed: {hash_loads:?}"
        );
    }

    /// Expands `(dest, len)` runs back into one destination per key.
    fn expand(runs: &[DestRun]) -> Vec<u32> {
        runs.iter()
            .flat_map(|r| std::iter::repeat_n(r.dest, r.len as usize))
            .collect()
    }

    fn per_key(router: &dyn KeyRouter, keys: &[Key], instances: usize) -> Vec<u32> {
        keys.iter().map(|&k| router.route(k, instances)).collect()
    }

    #[test]
    fn route_batch_matches_per_key_route() {
        // Runs, alternation, and a long mixed tail.
        let mut keys: Vec<Key> = Vec::new();
        keys.extend([3, 3, 3, 7, 3, 7, 3, 7, 9, 9].map(Key::new));
        for v in 0..200u64 {
            keys.push(Key::new(splitmix64(v) % 17));
        }
        for instances in 1..6 {
            for router in [&HashRouter as &dyn KeyRouter, &ModuloRouter, &ShiftedRouter::new(2)] {
                let mut runs = Vec::new();
                router.route_batch(&keys, instances, &mut runs);
                assert_eq!(
                    expand(&runs),
                    per_key(router, &keys, instances),
                    "{} route_batch diverged at parallelism {instances}",
                    router.name()
                );
                assert_eq!(
                    runs.iter().map(|r| r.len as usize).sum::<usize>(),
                    keys.len()
                );
                // Runs are maximal: no two adjacent runs share a dest.
                assert!(runs.windows(2).all(|w| w[0].dest != w[1].dest));
            }
        }
    }

    #[test]
    fn route_batch_memo_covers_alternating_keys() {
        // A B A B …: run detection sees only length-1 runs, so any
        // coalescing must come from the memo — and the output must
        // still match the per-key baseline exactly.
        let keys: Vec<Key> = (0..100).map(|i| Key::new(if i % 2 == 0 { 5 } else { 11 })).collect();
        let mut runs = Vec::new();
        HashRouter.route_batch(&keys, 7, &mut runs);
        assert_eq!(expand(&runs), per_key(&HashRouter, &keys, 7));
    }

    #[test]
    fn route_batch_appends_without_cross_call_merge() {
        let mut runs = vec![DestRun { dest: 0, len: 3 }];
        // Key 0 hashes somewhere; even if it lands on dest 0 the new
        // run must not merge into the pre-existing one.
        HashRouter.route_batch(&[Key::new(0), Key::new(0)], 1, &mut runs);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0], DestRun { dest: 0, len: 3 });
        assert_eq!(runs[1], DestRun { dest: 0, len: 2 });
    }

    #[test]
    fn route_batch_empty_is_noop() {
        let mut runs = Vec::new();
        HashRouter.route_batch(&[], 4, &mut runs);
        assert!(runs.is_empty());
    }

    #[test]
    fn key_run_len_detects_leading_runs() {
        let keys = [1, 1, 1, 2, 1].map(Key::new);
        assert_eq!(key_run_len(&keys), 3);
        assert_eq!(key_run_len(&keys[3..]), 1);
        assert_eq!(key_run_len(&[]), 0);
    }

    #[test]
    fn pkg_uses_at_most_two_instances_per_key() {
        let n = 6;
        let pkg = PartialKeyRouter::new(n);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(pkg.route(Key::new(42), n));
        }
        assert!(seen.len() <= 2, "key split over {seen:?}");
    }
}
