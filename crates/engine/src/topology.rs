//! Topology description: operators, parallelism, edges and groupings.

use std::fmt;
use std::sync::Arc;

use crate::operator::OperatorFactory;
use crate::router::{HashRouter, KeyRouter};
use crate::tuple::{Tuple, MAX_FIELDS};

/// Identifier of a processing operator (PO) within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PoId(pub(crate) usize);

impl PoId {
    /// Index of the operator in the topology.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of an edge (stream) within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) usize);

impl EdgeId {
    /// Index of the edge in the topology.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a deployed processing operator instance (POI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PoiId(pub(crate) usize);

impl PoiId {
    /// Global index of the instance across the deployment.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a physical server in the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub usize);

/// How an edge splits a stream between the instances of the recipient
/// operator (paper §2.2).
#[derive(Clone)]
pub enum Grouping {
    /// Round-robin over all instances; stateless recipients only.
    Shuffle,
    /// Prefer an instance on the sender's server, else shuffle;
    /// stateless recipients only.
    LocalOrShuffle,
    /// Key-based routing on tuple field `field` via `router`;
    /// required for stateful recipients.
    Fields {
        /// Index of the tuple field carrying the routing key.
        field: usize,
        /// Initial routing policy (each deployed sender instance gets
        /// its own replaceable copy).
        router: Arc<dyn KeyRouter>,
    },
}

impl Grouping {
    /// Fields grouping on `field` with the default hash router.
    #[must_use]
    pub fn fields(field: usize) -> Self {
        Grouping::Fields {
            field,
            router: Arc::new(HashRouter),
        }
    }

    /// Fields grouping on `field` with an explicit router.
    #[must_use]
    pub fn fields_with(field: usize, router: Arc<dyn KeyRouter>) -> Self {
        Grouping::Fields { field, router }
    }

    /// Returns the routed field index for fields groupings.
    #[must_use]
    pub fn field(&self) -> Option<usize> {
        match self {
            Grouping::Fields { field, .. } => Some(*field),
            _ => None,
        }
    }
}

impl fmt::Debug for Grouping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Grouping::Shuffle => f.write_str("Shuffle"),
            Grouping::LocalOrShuffle => f.write_str("LocalOrShuffle"),
            Grouping::Fields { field, router } => f
                .debug_struct("Fields")
                .field("field", field)
                .field("router", &router.name())
                .finish(),
        }
    }
}

/// A stream connecting two operators.
#[derive(Debug)]
pub struct Edge {
    pub(crate) from: PoId,
    pub(crate) to: PoId,
    pub(crate) grouping: Grouping,
}

impl Edge {
    /// Upstream operator.
    #[must_use]
    pub fn from(&self) -> PoId {
        self.from
    }

    /// Downstream operator.
    #[must_use]
    pub fn to(&self) -> PoId {
        self.to
    }

    /// The edge's grouping policy.
    #[must_use]
    pub fn grouping(&self) -> &Grouping {
        &self.grouping
    }
}

/// Produces the input stream of a source operator instance.
///
/// `None` means the stream is exhausted; the simulator then stops
/// pulling from that instance.
pub trait TupleSource: Send {
    /// Returns the next tuple, or `None` at end of stream.
    fn next_tuple(&mut self) -> Option<Tuple>;
}

impl<F> TupleSource for F
where
    F: FnMut() -> Option<Tuple> + Send,
{
    fn next_tuple(&mut self) -> Option<Tuple> {
        self()
    }
}

/// Factory producing one [`TupleSource`] per source instance (the
/// argument is the instance index).
pub type SourceFactory = Box<dyn Fn(usize) -> Box<dyn TupleSource> + Send + Sync>;

/// Emission policy of a source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceRate {
    /// Emit as fast as downstream accepts (throughput experiments).
    Saturate,
    /// Emit at most this many tuples per second per instance.
    PerSecond(f64),
}

pub(crate) enum PoKind {
    Source {
        factory: SourceFactory,
        rate: SourceRate,
    },
    Operator {
        factory: OperatorFactory,
        stateful: bool,
    },
}

impl fmt::Debug for PoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoKind::Source { rate, .. } => write!(f, "Source({rate:?})"),
            PoKind::Operator { stateful, .. } => {
                write!(f, "Operator {{ stateful: {stateful} }}")
            }
        }
    }
}

/// A processing operator declaration.
#[derive(Debug)]
pub struct PoSpec {
    pub(crate) name: String,
    pub(crate) parallelism: usize,
    pub(crate) kind: PoKind,
    pub(crate) cost_per_tuple: Option<f64>,
}

impl PoSpec {
    /// Operator name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of deployed instances.
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Whether the operator keeps per-key state.
    #[must_use]
    pub fn is_stateful(&self) -> bool {
        matches!(self.kind, PoKind::Operator { stateful: true, .. })
    }

    /// Whether the operator is a source.
    #[must_use]
    pub fn is_source(&self) -> bool {
        matches!(self.kind, PoKind::Source { .. })
    }
}

/// Errors reported by [`TopologyBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildTopologyError {
    /// The operator graph contains a cycle.
    Cycle,
    /// A source operator has an incoming edge.
    SourceHasInput(String),
    /// A fields grouping routes on a field index `>= MAX_FIELDS`.
    FieldOutOfRange(usize),
    /// A stateful operator has no fields-grouped input edge.
    StatefulWithoutFieldsInput(String),
    /// A stateful operator's input edges route on different fields, so
    /// its state key would be ambiguous.
    AmbiguousStateKey(String),
    /// A stateful operator is fed by a non-fields grouping.
    StatefulNonFieldsInput(String),
}

impl fmt::Display for BuildTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Cycle => f.write_str("operator graph contains a cycle"),
            Self::SourceHasInput(name) => {
                write!(f, "source operator {name} has an incoming edge")
            }
            Self::FieldOutOfRange(field) => {
                write!(f, "fields grouping on field {field} >= {MAX_FIELDS}")
            }
            Self::StatefulWithoutFieldsInput(name) => {
                write!(f, "stateful operator {name} has no fields-grouped input")
            }
            Self::AmbiguousStateKey(name) => {
                write!(f, "stateful operator {name} has inputs on different fields")
            }
            Self::StatefulNonFieldsInput(name) => {
                write!(f, "stateful operator {name} has a non-fields input edge")
            }
        }
    }
}

impl std::error::Error for BuildTopologyError {}

/// A validated application DAG.
///
/// # Example
///
/// ```
/// use streamloc_engine::{
///     CountOperator, Grouping, Key, SourceRate, Topology, Tuple,
/// };
///
/// let mut builder = Topology::builder();
/// let source = builder.source("S", 2, SourceRate::Saturate, |_instance| {
///     let mut i = 0u64;
///     Box::new(move || {
///         i += 1;
///         Some(Tuple::new([Key::new(i % 4), Key::new(i % 8)], 0))
///     })
/// });
/// let a = builder.stateful("A", 2, CountOperator::factory());
/// let b = builder.stateful("B", 2, CountOperator::factory());
/// builder.connect(source, a, Grouping::fields(0));
/// builder.connect(a, b, Grouping::fields(1));
/// let topology = builder.build()?;
/// assert_eq!(topology.operator_count(), 3);
/// assert_eq!(topology.total_instances(), 6);
/// # Ok::<(), streamloc_engine::BuildTopologyError>(())
/// ```
#[derive(Debug)]
pub struct Topology {
    pub(crate) pos: Vec<PoSpec>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) in_edges: Vec<Vec<EdgeId>>,
    pub(crate) out_edges: Vec<Vec<EdgeId>>,
    pub(crate) topo_order: Vec<PoId>,
}

impl Topology {
    /// Starts declaring a topology.
    #[must_use]
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Number of processing operators (including sources).
    #[must_use]
    pub fn operator_count(&self) -> usize {
        self.pos.len()
    }

    /// Total deployed instances across all operators.
    #[must_use]
    pub fn total_instances(&self) -> usize {
        self.pos.iter().map(|po| po.parallelism).sum()
    }

    /// The declaration of operator `po`.
    ///
    /// # Panics
    ///
    /// Panics if `po` belongs to another topology.
    #[must_use]
    pub fn po(&self, po: PoId) -> &PoSpec {
        &self.pos[po.0]
    }

    /// Looks an operator up by name.
    #[must_use]
    pub fn po_by_name(&self, name: &str) -> Option<PoId> {
        self.pos.iter().position(|po| po.name == name).map(PoId)
    }

    /// All edges.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` belongs to another topology.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// The first edge from `from` to `to`, if any.
    #[must_use]
    pub fn edge_between(&self, from: PoId, to: PoId) -> Option<EdgeId> {
        self.edges
            .iter()
            .position(|e| e.from == from && e.to == to)
            .map(EdgeId)
    }

    /// Incoming edges of `po`.
    #[must_use]
    pub fn in_edges(&self, po: PoId) -> &[EdgeId] {
        &self.in_edges[po.0]
    }

    /// Outgoing edges of `po`.
    #[must_use]
    pub fn out_edges(&self, po: PoId) -> &[EdgeId] {
        &self.out_edges[po.0]
    }

    /// Operators in topological order (sources first).
    #[must_use]
    pub fn topo_order(&self) -> &[PoId] {
        &self.topo_order
    }

    /// Operators with no outgoing edge (whose processed tuples count
    /// as application throughput).
    pub fn sinks(&self) -> impl Iterator<Item = PoId> + '_ {
        (0..self.pos.len())
            .map(PoId)
            .filter(|&po| self.out_edges[po.0].is_empty())
    }

    /// The field a stateful operator's state is keyed on (the field of
    /// its fields-grouped input edges); `None` for sources and
    /// stateless operators without fields input.
    #[must_use]
    pub fn state_field(&self, po: PoId) -> Option<usize> {
        self.in_edges[po.0]
            .iter()
            .find_map(|&e| self.edges[e.0].grouping.field())
    }
}

/// Incremental builder for [`Topology`].
#[derive(Default)]
pub struct TopologyBuilder {
    pos: Vec<PoSpec>,
    edges: Vec<Edge>,
}

impl fmt::Debug for TopologyBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TopologyBuilder")
            .field("operators", &self.pos.len())
            .field("edges", &self.edges.len())
            .finish()
    }
}

impl TopologyBuilder {
    /// Declares a source operator with `parallelism` instances; `make`
    /// builds the tuple source of each instance.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism == 0`.
    pub fn source<F>(
        &mut self,
        name: &str,
        parallelism: usize,
        rate: SourceRate,
        make: F,
    ) -> PoId
    where
        F: Fn(usize) -> Box<dyn TupleSource> + Send + Sync + 'static,
    {
        assert!(parallelism > 0, "parallelism must be positive");
        self.pos.push(PoSpec {
            name: name.to_owned(),
            parallelism,
            kind: PoKind::Source {
                factory: Box::new(make),
                rate,
            },
            cost_per_tuple: None,
        });
        PoId(self.pos.len() - 1)
    }

    /// Declares a stateful operator.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism == 0`.
    pub fn stateful(&mut self, name: &str, parallelism: usize, factory: OperatorFactory) -> PoId {
        self.add_operator(name, parallelism, factory, true)
    }

    /// Declares a stateless operator.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism == 0`.
    pub fn stateless(&mut self, name: &str, parallelism: usize, factory: OperatorFactory) -> PoId {
        self.add_operator(name, parallelism, factory, false)
    }

    fn add_operator(
        &mut self,
        name: &str,
        parallelism: usize,
        factory: OperatorFactory,
        stateful: bool,
    ) -> PoId {
        assert!(parallelism > 0, "parallelism must be positive");
        self.pos.push(PoSpec {
            name: name.to_owned(),
            parallelism,
            kind: PoKind::Operator { factory, stateful },
            cost_per_tuple: None,
        });
        PoId(self.pos.len() - 1)
    }

    /// Overrides the per-tuple CPU cost (seconds) of `po`; by default
    /// the cluster-wide cost applies.
    ///
    /// # Panics
    ///
    /// Panics if `po` was not declared by this builder.
    pub fn set_cost_per_tuple(&mut self, po: PoId, seconds: f64) -> &mut Self {
        self.pos[po.0].cost_per_tuple = Some(seconds);
        self
    }

    /// Connects `from` to `to` with `grouping`.
    ///
    /// # Panics
    ///
    /// Panics if either operator was not declared by this builder.
    pub fn connect(&mut self, from: PoId, to: PoId, grouping: Grouping) -> EdgeId {
        assert!(from.0 < self.pos.len(), "unknown upstream operator");
        assert!(to.0 < self.pos.len(), "unknown downstream operator");
        self.edges.push(Edge {
            from,
            to,
            grouping,
        });
        EdgeId(self.edges.len() - 1)
    }

    /// Validates and finalizes the topology.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildTopologyError`] if the graph is cyclic, a
    /// source has inputs, a fields grouping routes on an out-of-range
    /// field, or a stateful operator's state key would be undefined or
    /// ambiguous.
    pub fn build(self) -> Result<Topology, BuildTopologyError> {
        let n = self.pos.len();
        let mut in_edges = vec![Vec::new(); n];
        let mut out_edges = vec![Vec::new(); n];
        for (i, edge) in self.edges.iter().enumerate() {
            if let Grouping::Fields { field, .. } = &edge.grouping {
                if *field >= MAX_FIELDS {
                    return Err(BuildTopologyError::FieldOutOfRange(*field));
                }
            }
            in_edges[edge.to.0].push(EdgeId(i));
            out_edges[edge.from.0].push(EdgeId(i));
        }

        for (i, po) in self.pos.iter().enumerate() {
            match &po.kind {
                PoKind::Source { .. } => {
                    if !in_edges[i].is_empty() {
                        return Err(BuildTopologyError::SourceHasInput(po.name.clone()));
                    }
                }
                PoKind::Operator { stateful: true, .. } => {
                    let mut fields: Vec<usize> = Vec::new();
                    for &e in &in_edges[i] {
                        match &self.edges[e.0].grouping {
                            Grouping::Fields { field, .. } => fields.push(*field),
                            _ => {
                                return Err(BuildTopologyError::StatefulNonFieldsInput(
                                    po.name.clone(),
                                ))
                            }
                        }
                    }
                    if fields.is_empty() {
                        return Err(BuildTopologyError::StatefulWithoutFieldsInput(
                            po.name.clone(),
                        ));
                    }
                    if fields.windows(2).any(|w| w[0] != w[1]) {
                        return Err(BuildTopologyError::AmbiguousStateKey(po.name.clone()));
                    }
                }
                PoKind::Operator { .. } => {}
            }
        }

        // Kahn's algorithm for a topological order.
        let mut indegree: Vec<usize> = in_edges.iter().map(Vec::len).collect();
        let mut queue: Vec<PoId> = (0..n).filter(|&i| indegree[i] == 0).map(PoId).collect();
        let mut topo_order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let po = queue[head];
            head += 1;
            topo_order.push(po);
            for &e in &out_edges[po.0] {
                let to = self.edges[e.0].to.0;
                indegree[to] -= 1;
                if indegree[to] == 0 {
                    queue.push(PoId(to));
                }
            }
        }
        if topo_order.len() != n {
            return Err(BuildTopologyError::Cycle);
        }

        Ok(Topology {
            pos: self.pos,
            edges: self.edges,
            in_edges,
            out_edges,
            topo_order,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::CountOperator;
    use crate::operator::IdentityOperator;
    use crate::Key;

    fn dummy_source(builder: &mut TopologyBuilder, parallelism: usize) -> PoId {
        builder.source("S", parallelism, SourceRate::Saturate, |_| {
            Box::new(|| Some(Tuple::new([Key::new(0), Key::new(0)], 0)))
        })
    }

    #[test]
    fn builds_paper_chain() {
        let mut b = Topology::builder();
        let s = dummy_source(&mut b, 3);
        let a = b.stateful("A", 3, CountOperator::factory());
        let c = b.stateful("B", 3, CountOperator::factory());
        b.connect(s, a, Grouping::fields(0));
        b.connect(a, c, Grouping::fields(1));
        let t = b.build().unwrap();
        assert_eq!(t.operator_count(), 3);
        assert_eq!(t.total_instances(), 9);
        assert_eq!(t.topo_order(), &[PoId(0), PoId(1), PoId(2)]);
        assert_eq!(t.sinks().collect::<Vec<_>>(), vec![PoId(2)]);
        assert_eq!(t.state_field(PoId(1)), Some(0));
        assert_eq!(t.state_field(PoId(2)), Some(1));
        assert_eq!(t.po_by_name("A"), Some(PoId(1)));
        assert!(t.po(PoId(1)).is_stateful());
        assert!(t.po(PoId(0)).is_source());
    }

    #[test]
    fn rejects_cycle() {
        let mut b = Topology::builder();
        let a = b.stateless("A", 1, IdentityOperator::factory());
        let c = b.stateless("B", 1, IdentityOperator::factory());
        b.connect(a, c, Grouping::Shuffle);
        b.connect(c, a, Grouping::Shuffle);
        assert_eq!(b.build().unwrap_err(), BuildTopologyError::Cycle);
    }

    #[test]
    fn rejects_source_with_input() {
        let mut b = Topology::builder();
        let s = dummy_source(&mut b, 1);
        let a = b.stateless("A", 1, IdentityOperator::factory());
        b.connect(s, a, Grouping::Shuffle);
        b.connect(a, s, Grouping::Shuffle);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildTopologyError::SourceHasInput(_)
        ));
    }

    #[test]
    fn rejects_stateful_without_fields() {
        let mut b = Topology::builder();
        let s = dummy_source(&mut b, 1);
        let a = b.stateful("A", 1, CountOperator::factory());
        b.connect(s, a, Grouping::Shuffle);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildTopologyError::StatefulNonFieldsInput(_)
        ));
    }

    #[test]
    fn rejects_ambiguous_state_key() {
        let mut b = Topology::builder();
        let s1 = dummy_source(&mut b, 1);
        let mut b2 = b;
        let s2 = b2.source("S2", 1, SourceRate::Saturate, |_| {
            Box::new(|| None::<Tuple>)
        });
        let a = b2.stateful("A", 1, CountOperator::factory());
        b2.connect(s1, a, Grouping::fields(0));
        b2.connect(s2, a, Grouping::fields(1));
        assert!(matches!(
            b2.build().unwrap_err(),
            BuildTopologyError::AmbiguousStateKey(_)
        ));
    }

    #[test]
    fn rejects_out_of_range_field() {
        let mut b = Topology::builder();
        let s = dummy_source(&mut b, 1);
        let a = b.stateful("A", 1, CountOperator::factory());
        b.connect(s, a, Grouping::fields(MAX_FIELDS));
        assert_eq!(
            b.build().unwrap_err(),
            BuildTopologyError::FieldOutOfRange(MAX_FIELDS)
        );
    }

    #[test]
    fn diamond_dag_topo_order() {
        let mut b = Topology::builder();
        let s = dummy_source(&mut b, 1);
        let a = b.stateless("A", 1, IdentityOperator::factory());
        let c = b.stateless("C", 1, IdentityOperator::factory());
        let d = b.stateless("D", 1, IdentityOperator::factory());
        b.connect(s, a, Grouping::Shuffle);
        b.connect(s, c, Grouping::Shuffle);
        b.connect(a, d, Grouping::Shuffle);
        b.connect(c, d, Grouping::Shuffle);
        let t = b.build().unwrap();
        let order = t.topo_order();
        let pos = |po: PoId| order.iter().position(|&x| x == po).unwrap();
        assert!(pos(s) < pos(a));
        assert!(pos(a) < pos(d));
        assert!(pos(c) < pos(d));
        assert_eq!(t.sinks().collect::<Vec<_>>(), vec![d]);
    }
}
