//! Sampled end-to-end span tracing for the data plane.
//!
//! The paper's headline claim — locality-aware routing cuts
//! end-to-end tuple latency (Fig. 9–11) — needs per-tuple timing to
//! verify, but stamping every tuple would dominate the hot path. The
//! compromise is a deterministic per-key sampler: a splitmix64 mix of
//! `key ^ seed` against a `u64::MAX / n` threshold selects roughly one
//! key in `n`, and because the decision is a pure function of the key,
//! a columnar run of equal keys costs exactly one branch
//! ([`SpanSampler::stamp_batch`]) and the sampled set is identical
//! whether tuples are processed one at a time or in batches.
//!
//! Sampled tuples carry two stamps (see
//! [`Tuple::set_span_origin`](crate::Tuple::set_span_origin) /
//! [`set_span_hop`](crate::Tuple::set_span_hop)): the origin time,
//! written once at the source, and a per-hop send time with the
//! local/remote bit. Each receiving hop turns them into three
//! log2-bucketed histograms in the [`MetricsRegistry`] — queue wait,
//! processing time, and (at sinks) end-to-end latency — keyed by
//! operator, locality and the routing epoch active at record time, so
//! latency distributions can be compared before and after each
//! reconfiguration wave. The simulator feeds the same histograms from
//! window arithmetic, so simulated and live latency reports share one
//! schema ([`SpanMetricName`]).

use std::collections::HashMap;
use std::sync::Arc;

use crate::key::{splitmix64, Key};
use crate::tuple::{tuple_run_len, Tuple};

use super::registry::{log2_bounds, Histogram, MetricsRegistry};

/// Largest histogram bound exponent for span timings: 2^36 ns ≈ 68.7 s
/// covers any latency this engine can produce before the run is
/// declared stuck for other reasons.
const SPAN_MAX_EXP: u32 = 36;

/// Deterministic per-key span sampler.
///
/// A key is sampled iff `splitmix64(key ^ seed) <= u64::MAX / n`, so
/// the decision is stable across runs, processes and batch shapes —
/// the property the columnar ≡ per-tuple equivalence tests pin.
///
/// # Example
///
/// ```
/// use streamloc_engine::{Key, SpanSampler};
///
/// let s = SpanSampler::new(0xC0FFEE, 64); // ~1/64 of keys
/// let sampled = (0..10_000).filter(|&v| s.sampled(Key::new(v))).count();
/// assert!((80..240).contains(&sampled), "{sampled} of 10000");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SpanSampler {
    seed: u64,
    threshold: u64,
    denominator: u64,
}

impl SpanSampler {
    /// Creates a sampler selecting roughly one key in `denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is 0.
    #[must_use]
    pub fn new(seed: u64, denominator: u64) -> Self {
        assert!(denominator > 0, "sampling denominator must be positive");
        Self {
            seed,
            threshold: u64::MAX / denominator,
            denominator,
        }
    }

    /// The configured `1/n` sampling denominator.
    #[must_use]
    pub fn denominator(&self) -> u64 {
        self.denominator
    }

    /// Whether `key` belongs to the sampled set. Pure and
    /// deterministic: one multiply-shift mix and one compare.
    #[inline]
    #[must_use]
    pub fn sampled(&self, key: Key) -> bool {
        splitmix64(key.value() ^ self.seed) <= self.threshold
    }

    /// Stamps the origin time onto every sampled tuple of a columnar
    /// batch. Batches arrive grouped into runs of equal keys, so the
    /// sampling decision costs one branch per run, not per tuple.
    ///
    /// Tuples with no field `field` are never sampled.
    pub fn stamp_batch(&self, tuples: &mut [Tuple], field: usize, now_ns: u64) {
        let mut rest = tuples;
        while !rest.is_empty() {
            if rest[0].field_count() <= field {
                return;
            }
            let len = tuple_run_len(rest, field);
            if self.sampled(rest[0].key(field)) {
                for t in &mut rest[..len] {
                    t.set_span_origin(now_ns);
                }
            }
            rest = &mut rest[len..];
        }
    }
}

/// Which timing a span histogram measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Time between the sender's hop stamp and the receiver's dequeue
    /// (channel + output-buffer residency).
    Queue,
    /// Operator processing time at the receiving hop.
    Proc,
    /// Source origin to sink completion (recorded at sinks only).
    EndToEnd,
}

/// Structured form of a span histogram's registry name.
///
/// The name is the schema: both the live runtime and the simulator
/// emit it, and `latency-report` parses it back. Formats:
///
/// * `span_queue_ns_po{p}_{local|remote}_e{epoch}`
/// * `span_proc_ns_po{p}_{local|remote}_e{epoch}`
/// * `span_e2e_ns_po{p}_e{epoch}`
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanMetricName {
    /// Which timing the histogram holds.
    pub phase: SpanPhase,
    /// Receiving operator (`PoId` index).
    pub po: usize,
    /// Whether the hop crossed workers; `None` for end-to-end, which
    /// aggregates over whole paths.
    pub remote: Option<bool>,
    /// Routing epoch active when the observation was recorded.
    pub epoch: u64,
}

impl SpanMetricName {
    /// Renders the canonical registry name.
    #[must_use]
    pub fn render(&self) -> String {
        match self.phase {
            SpanPhase::EndToEnd => format!("span_e2e_ns_po{}_e{}", self.po, self.epoch),
            phase => format!(
                "span_{}_ns_po{}_{}_e{}",
                if phase == SpanPhase::Queue { "queue" } else { "proc" },
                self.po,
                if self.remote == Some(true) { "remote" } else { "local" },
                self.epoch,
            ),
        }
    }

    /// Parses a registry name produced by [`render`](Self::render);
    /// `None` for non-span metrics.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        let rest = name.strip_prefix("span_")?;
        let (phase, rest) = if let Some(r) = rest.strip_prefix("queue_ns_") {
            (SpanPhase::Queue, r)
        } else if let Some(r) = rest.strip_prefix("proc_ns_") {
            (SpanPhase::Proc, r)
        } else if let Some(r) = rest.strip_prefix("e2e_ns_") {
            (SpanPhase::EndToEnd, r)
        } else {
            return None;
        };
        let rest = rest.strip_prefix("po")?;
        let (po_str, rest) = rest.split_once('_')?;
        let po = po_str.parse().ok()?;
        let (remote, rest) = match phase {
            SpanPhase::EndToEnd => (None, rest),
            _ => {
                let (loc, r) = rest.split_once('_')?;
                match loc {
                    "local" => (Some(false), r),
                    "remote" => (Some(true), r),
                    _ => return None,
                }
            }
        };
        let epoch = rest.strip_prefix('e')?.parse().ok()?;
        Some(Self {
            phase,
            po,
            remote,
            epoch,
        })
    }
}

/// Per-(queue, proc) histogram pair for one hop class.
#[derive(Debug, Clone)]
struct HopHists {
    queue: Histogram,
    proc: Histogram,
}

/// Sink for span observations: lazily registers one histogram per
/// `(operator, epoch, locality)` class and caches the handles, so the
/// hot path after the first observation of a class is two relaxed
/// atomic adds.
///
/// Each live worker owns its own recorder; registration in the shared
/// [`MetricsRegistry`] is idempotent, so recorders on different
/// threads share the underlying buckets. Without a registry the
/// histograms are detached (counted but never exported), which keeps
/// the call sites branch-free.
#[derive(Debug, Default)]
pub struct SpanRecorder {
    registry: Option<Arc<MetricsRegistry>>,
    hops: HashMap<(usize, u64, bool), HopHists>,
    ends: HashMap<(usize, u64), Histogram>,
}

impl SpanRecorder {
    /// Creates a recorder exporting through `registry` (or detached
    /// when `None`).
    #[must_use]
    pub fn new(registry: Option<Arc<MetricsRegistry>>) -> Self {
        Self {
            registry,
            hops: HashMap::new(),
            ends: HashMap::new(),
        }
    }

    fn histogram(registry: Option<&Arc<MetricsRegistry>>, name: &SpanMetricName) -> Histogram {
        let bounds = log2_bounds(SPAN_MAX_EXP);
        match registry {
            Some(reg) => reg.histogram(
                &name.render(),
                "span timing in nanoseconds (log2 buckets)",
                &bounds,
            ),
            None => Histogram::with_bounds(&bounds),
        }
    }

    /// Records one sampled tuple's hop: `queue_ns` waiting to be
    /// dequeued and `proc_ns` being processed at operator `po`, under
    /// routing epoch `epoch`, over a local or `remote` hop.
    pub fn record_hop(&mut self, po: usize, epoch: u64, remote: bool, queue_ns: u64, proc_ns: u64) {
        let registry = self.registry.as_ref();
        let hists = self.hops.entry((po, epoch, remote)).or_insert_with(|| {
            let base = SpanMetricName {
                phase: SpanPhase::Queue,
                po,
                remote: Some(remote),
                epoch,
            };
            HopHists {
                queue: Self::histogram(registry, &base),
                proc: Self::histogram(
                    registry,
                    &SpanMetricName {
                        phase: SpanPhase::Proc,
                        ..base
                    },
                ),
            }
        });
        hists.queue.observe(queue_ns);
        hists.proc.observe(proc_ns);
    }

    /// Records one sampled tuple completing its path at sink `po`:
    /// `total_ns` from source origin stamp to sink completion.
    pub fn record_end(&mut self, po: usize, epoch: u64, total_ns: u64) {
        let registry = self.registry.as_ref();
        self.ends
            .entry((po, epoch))
            .or_insert_with(|| {
                Self::histogram(
                    registry,
                    &SpanMetricName {
                        phase: SpanPhase::EndToEnd,
                        po,
                        remote: None,
                        epoch,
                    },
                )
            })
            .observe(total_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_roughly_one_in_n() {
        let s = SpanSampler::new(7, 64);
        let first: Vec<bool> = (0..50_000).map(|v| s.sampled(Key::new(v))).collect();
        let second: Vec<bool> = (0..50_000).map(|v| s.sampled(Key::new(v))).collect();
        assert_eq!(first, second);
        let hits = first.iter().filter(|&&b| b).count();
        // Expectation 781; allow generous slack, determinism pins it anyway.
        assert!((500..1200).contains(&hits), "{hits} of 50000 sampled");
        assert_eq!(s.denominator(), 64);
    }

    #[test]
    fn different_seeds_sample_different_sets() {
        let a = SpanSampler::new(1, 16);
        let b = SpanSampler::new(2, 16);
        let set = |s: &SpanSampler| -> Vec<u64> {
            (0..10_000).filter(|&v| s.sampled(Key::new(v))).collect()
        };
        assert_ne!(set(&a), set(&b));
    }

    #[test]
    fn stamp_batch_marks_whole_runs() {
        let s = SpanSampler::new(3, 4);
        // Find one sampled and one unsampled key.
        let hit = (0..1000).find(|&v| s.sampled(Key::new(v))).unwrap();
        let miss = (0..1000).find(|&v| !s.sampled(Key::new(v))).unwrap();
        let t = |v: u64| Tuple::new([Key::new(v)], 0);
        let mut batch = vec![t(hit), t(hit), t(miss), t(miss), t(hit)];
        s.stamp_batch(&mut batch, 0, 99);
        let stamped: Vec<bool> = batch.iter().map(Tuple::is_span_sampled).collect();
        assert_eq!(stamped, vec![true, true, false, false, true]);
        assert_eq!(batch[0].span_origin_ns(), 99);
        // Keyless tuples never sample.
        let mut keyless = vec![Tuple::new([], 0)];
        s.stamp_batch(&mut keyless, 0, 99);
        assert!(!keyless[0].is_span_sampled());
    }

    #[test]
    fn metric_name_round_trips() {
        let names = [
            SpanMetricName {
                phase: SpanPhase::Queue,
                po: 2,
                remote: Some(false),
                epoch: 0,
            },
            SpanMetricName {
                phase: SpanPhase::Proc,
                po: 11,
                remote: Some(true),
                epoch: 3,
            },
            SpanMetricName {
                phase: SpanPhase::EndToEnd,
                po: 5,
                remote: None,
                epoch: 17,
            },
        ];
        for n in names {
            assert_eq!(SpanMetricName::parse(&n.render()), Some(n), "{}", n.render());
        }
        assert_eq!(
            SpanMetricName {
                phase: SpanPhase::Queue,
                po: 2,
                remote: Some(false),
                epoch: 0
            }
            .render(),
            "span_queue_ns_po2_local_e0"
        );
        assert_eq!(SpanMetricName::parse("live_tuples_total"), None);
        assert_eq!(SpanMetricName::parse("span_queue_ns_poX_local_e0"), None);
    }

    #[test]
    fn recorder_registers_and_shares_histograms() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut a = SpanRecorder::new(Some(Arc::clone(&reg)));
        let mut b = SpanRecorder::new(Some(Arc::clone(&reg)));
        a.record_hop(1, 0, false, 10, 5);
        b.record_hop(1, 0, false, 20, 7);
        a.record_hop(1, 0, true, 100, 5);
        a.record_end(2, 0, 1000);
        let hists = reg.histograms();
        let get = |name: &str| {
            hists
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.clone())
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        // Two recorders on the same registry share one histogram.
        assert_eq!(get("span_queue_ns_po1_local_e0").total, 2);
        assert_eq!(get("span_queue_ns_po1_local_e0").sum, 30);
        assert_eq!(get("span_proc_ns_po1_local_e0").total, 2);
        assert_eq!(get("span_queue_ns_po1_remote_e0").total, 1);
        assert_eq!(get("span_e2e_ns_po2_e0").sum, 1000);
        // Detached recorder works without a registry.
        let mut d = SpanRecorder::new(None);
        d.record_hop(0, 0, false, 1, 1);
        d.record_end(0, 0, 1);
    }
}
