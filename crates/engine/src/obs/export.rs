//! Exporters: JSONL trace dumps (with a round-tripping parser), CSV
//! time series from a [`MetricsLog`], and the Prometheus text format
//! (see [`MetricsRegistry::render_prometheus`]).
//!
//! No serde is available in this build environment, so the JSON
//! encoding is hand-rolled: one flat object per line, string values
//! only for `kind`/`class`, and `u64` fields printed as full-precision
//! decimal integers (key hashes exceed 2^53, so they must never pass
//! through `f64`).
//!
//! [`MetricsRegistry::render_prometheus`]: super::MetricsRegistry::render_prometheus

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Write};

use crate::fault::ControlClass;
use crate::metrics::MetricsLog;

use super::trace::{TraceEvent, TraceEventKind};

/// Column header of the per-window CSV time series produced by
/// [`csv_rows`], ready for `CsvWriter::create` in the bench crate.
pub const CSV_HEADER: &[&str] = &[
    "window",
    "time_s",
    "emitted",
    "sink",
    "throughput",
    "local",
    "remote",
    "cross_rack",
    "network_bytes",
    "migrated_states",
    "migrated_bytes",
    "buffered",
    "late_forwarded",
    "max_queue_depth",
    "backlog",
    "dropped_control",
    "delayed_control",
    "crashes",
    "reconfig_errors",
];

/// Flattens a [`MetricsLog`] into one CSV row per window, matching
/// [`CSV_HEADER`].
#[must_use]
pub fn csv_rows(log: &MetricsLog) -> Vec<Vec<String>> {
    let dt = log.window_len();
    log.windows()
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let local: u64 = w.edges.iter().map(|e| e.local).sum();
            let remote: u64 = w.edges.iter().map(|e| e.remote).sum();
            let cross_rack: u64 = w.edges.iter().map(|e| e.cross_rack).sum();
            let bytes: u64 = w.edges.iter().map(|e| e.bytes).sum();
            vec![
                i.to_string(),
                format!("{:.3}", w.time),
                w.emitted.to_string(),
                w.sink_tuples.to_string(),
                format!("{:.1}", w.sink_tuples as f64 / dt),
                local.to_string(),
                remote.to_string(),
                cross_rack.to_string(),
                bytes.to_string(),
                w.migrated_states.to_string(),
                w.migrated_bytes.to_string(),
                w.buffered.to_string(),
                w.late_forwarded.to_string(),
                w.max_queue_depth.to_string(),
                w.backlog_messages.to_string(),
                w.dropped_control.to_string(),
                w.delayed_control.to_string(),
                w.crashes.to_string(),
                w.reconfig_errors.len().to_string(),
            ]
        })
        .collect()
}

fn class_name(class: ControlClass) -> &'static str {
    match class {
        ControlClass::SendReconf => "send_reconf",
        ControlClass::Propagate => "propagate",
        ControlClass::Migrate => "migrate",
    }
}

fn class_from_name(name: &str) -> Option<ControlClass> {
    Some(match name {
        "send_reconf" => ControlClass::SendReconf,
        "propagate" => ControlClass::Propagate,
        "migrate" => ControlClass::Migrate,
        _ => return None,
    })
}

/// Encodes one event as a single-line flat JSON object.
#[must_use]
pub fn event_to_json(e: &TraceEvent) -> String {
    use TraceEventKind as K;
    let mut s = format!(
        "{{\"seq\":{},\"window\":{},\"time\":{:?},\"wave\":",
        e.seq, e.window, e.time
    );
    match e.wave {
        Some(w) => s.push_str(&w.to_string()),
        None => s.push_str("null"),
    }
    let mut field = |name: &str, value: String| {
        s.push_str(",\"");
        s.push_str(name);
        s.push_str("\":");
        s.push_str(&value);
    };
    let kind = |k: &str| format!("\"{k}\"");
    field("kind", kind(e.kind.name()));
    match e.kind {
        K::GetMetrics { poi } => {
            field("poi", poi.to_string());
        }
        K::SendMetrics { poi, bytes } => {
            field("poi", poi.to_string());
            field("bytes", bytes.to_string());
        }
        K::WaveStarted {
            routers,
            migrations,
            attempt,
        } => {
            field("routers", routers.to_string());
            field("migrations", migrations.to_string());
            field("attempt", attempt.to_string());
        }
        K::SendReconf { poi } => {
            field("poi", poi.to_string());
        }
        K::AckReconf { poi, acks_pending } => {
            field("poi", poi.to_string());
            field("acks_pending", acks_pending.to_string());
        }
        K::Propagate { poi } => {
            field("poi", poi.to_string());
        }
        K::WaveApplied { poi } => {
            field("poi", poi.to_string());
        }
        K::RouterSwapped { poi, edge } => {
            field("poi", poi.to_string());
            field("edge", edge.to_string());
        }
        K::MigrateSent {
            from,
            to,
            key,
            bytes,
        } => {
            field("from", from.to_string());
            field("to", to.to_string());
            field("key", key.to_string());
            field("bytes", bytes.to_string());
        }
        K::MigrateApplied { poi, key } => {
            field("poi", poi.to_string());
            field("key", key.to_string());
        }
        K::BufferStall { poi, key } => {
            field("poi", poi.to_string());
            field("key", key.to_string());
        }
        K::ControlDropped { class } => {
            field("class", kind(class_name(class)));
        }
        K::ControlDelayed { class, windows } => {
            field("class", kind(class_name(class)));
            field("windows", windows.to_string());
        }
        K::MigrationLost { to, key } => {
            field("to", to.to_string());
            field("key", key.to_string());
        }
        K::PoiCrashed { poi } => {
            field("poi", poi.to_string());
        }
        K::ManagerKilled => {}
        K::WaveRolledBack { nacked, attempt } => {
            field("nacked", nacked.to_string());
            field("attempt", attempt.to_string());
        }
        K::WaveRetried { attempt } => {
            field("attempt", attempt.to_string());
        }
        K::WaveAborted => {}
        K::WaveCompleted { duration_windows } => {
            field("duration_windows", duration_windows.to_string());
        }
        K::DegradedToHash => {}
        K::SpanBegin { poi, key } => {
            field("poi", poi.to_string());
            field("key", key.to_string());
        }
        K::SpanHop {
            poi,
            key,
            queue_ns,
            proc_ns,
            remote,
        } => {
            field("poi", poi.to_string());
            field("key", key.to_string());
            field("queue_ns", queue_ns.to_string());
            field("proc_ns", proc_ns.to_string());
            field("remote", remote.to_string());
        }
        K::SpanEnd { poi, key, total_ns } => {
            field("poi", poi.to_string());
            field("key", key.to_string());
            field("total_ns", total_ns.to_string());
        }
    }
    s.push('}');
    s
}

/// Renders all events as JSONL (one JSON object per line).
#[must_use]
pub fn to_jsonl<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_to_json(e));
        out.push('\n');
    }
    out
}

/// Streams all events as JSONL into `w`.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_jsonl<'a, W: Write>(
    events: impl IntoIterator<Item = &'a TraceEvent>,
    mut w: W,
) -> io::Result<()> {
    for e in events {
        writeln!(w, "{}", event_to_json(e))?;
    }
    Ok(())
}

/// Why a JSONL trace failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// One parsed JSON scalar, kept as raw text so `u64` fields never lose
/// precision through `f64`.
enum Scalar {
    Str(String),
    Raw(String),
}

/// Minimal parser for the flat single-line objects produced by
/// [`event_to_json`]: string, number, `null`, `true`/`false` values
/// only — no nesting, no escapes beyond `\"` and `\\`.
fn parse_flat_object(line: &str) -> Result<HashMap<String, Scalar>, String> {
    let line = line.trim();
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let mut fields = HashMap::new();
    let mut chars = inner.char_indices().peekable();
    while let Some(&(start, c)) = chars.peek() {
        if c == ',' || c.is_whitespace() {
            chars.next();
            continue;
        }
        if c != '"' {
            return Err(format!("expected key quote at byte {start}"));
        }
        chars.next();
        let key_start = start + 1;
        let mut key_end = None;
        for (i, c) in chars.by_ref() {
            if c == '"' {
                key_end = Some(i);
                break;
            }
        }
        let key_end = key_end.ok_or("unterminated key")?;
        let key = inner[key_start..key_end].to_owned();
        match chars.next() {
            Some((_, ':')) => {}
            _ => return Err(format!("missing ':' after key {key}")),
        }
        let value = match chars.peek() {
            Some(&(vs, '"')) => {
                chars.next();
                let mut out = String::new();
                let mut end = None;
                let mut escaped = false;
                for (i, c) in chars.by_ref() {
                    if escaped {
                        out.push(c);
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '"' {
                        end = Some(i);
                        break;
                    } else {
                        out.push(c);
                    }
                }
                end.ok_or_else(|| format!("unterminated string at byte {vs}"))?;
                Scalar::Str(out)
            }
            Some(&(vs, _)) => {
                let mut end = inner.len();
                while let Some(&(i, c)) = chars.peek() {
                    if c == ',' {
                        end = i;
                        break;
                    }
                    chars.next();
                }
                let raw = inner[vs..end].trim();
                if raw.is_empty() {
                    return Err(format!("empty value for key {key}"));
                }
                // Basic sanity: numbers, null, true, false only.
                if !matches!(raw, "null" | "true" | "false")
                    && !raw
                        .bytes()
                        .all(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
                {
                    return Err(format!("malformed value {raw:?} for key {key}"));
                }
                Scalar::Raw(raw.to_owned())
            }
            None => return Err(format!("missing value for key {key}")),
        };
        fields.insert(key, value);
    }
    Ok(fields)
}

struct FieldReader<'a> {
    fields: &'a HashMap<String, Scalar>,
}

impl FieldReader<'_> {
    fn u64(&self, key: &str) -> Result<u64, String> {
        match self.fields.get(key) {
            Some(Scalar::Raw(raw)) => raw.parse().map_err(|_| format!("bad u64 {key}={raw}")),
            _ => Err(format!("missing numeric field {key}")),
        }
    }

    fn usize(&self, key: &str) -> Result<usize, String> {
        self.u64(key).map(|v| v as usize)
    }

    fn u32(&self, key: &str) -> Result<u32, String> {
        match self.fields.get(key) {
            Some(Scalar::Raw(raw)) => raw.parse().map_err(|_| format!("bad u32 {key}={raw}")),
            _ => Err(format!("missing numeric field {key}")),
        }
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        match self.fields.get(key) {
            Some(Scalar::Raw(raw)) => raw.parse().map_err(|_| format!("bad f64 {key}={raw}")),
            _ => Err(format!("missing numeric field {key}")),
        }
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.fields.get(key) {
            Some(Scalar::Raw(raw)) if raw == "true" => Ok(true),
            Some(Scalar::Raw(raw)) if raw == "false" => Ok(false),
            _ => Err(format!("missing bool field {key}")),
        }
    }

    fn str(&self, key: &str) -> Result<&str, String> {
        match self.fields.get(key) {
            Some(Scalar::Str(s)) => Ok(s),
            _ => Err(format!("missing string field {key}")),
        }
    }

    fn class(&self, key: &str) -> Result<ControlClass, String> {
        let name = self.str(key)?;
        class_from_name(name).ok_or_else(|| format!("unknown control class {name:?}"))
    }

    fn wave(&self) -> Result<Option<u64>, String> {
        match self.fields.get("wave") {
            Some(Scalar::Raw(raw)) if raw == "null" => Ok(None),
            Some(Scalar::Raw(raw)) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("bad wave id {raw}")),
            _ => Err("missing wave field".to_owned()),
        }
    }
}

fn parse_event(line: &str) -> Result<TraceEvent, String> {
    use TraceEventKind as K;
    let fields = parse_flat_object(line)?;
    let r = FieldReader { fields: &fields };
    let kind = match r.str("kind")? {
        "get_metrics" => K::GetMetrics { poi: r.usize("poi")? },
        "send_metrics" => K::SendMetrics {
            poi: r.usize("poi")?,
            bytes: r.u64("bytes")?,
        },
        "wave_started" => K::WaveStarted {
            routers: r.usize("routers")?,
            migrations: r.usize("migrations")?,
            attempt: r.u32("attempt")?,
        },
        "send_reconf" => K::SendReconf { poi: r.usize("poi")? },
        "ack_reconf" => K::AckReconf {
            poi: r.usize("poi")?,
            acks_pending: r.usize("acks_pending")?,
        },
        "propagate" => K::Propagate { poi: r.usize("poi")? },
        "wave_applied" => K::WaveApplied { poi: r.usize("poi")? },
        "router_swapped" => K::RouterSwapped {
            poi: r.usize("poi")?,
            edge: r.usize("edge")?,
        },
        "migrate_sent" => K::MigrateSent {
            from: r.usize("from")?,
            to: r.usize("to")?,
            key: r.u64("key")?,
            bytes: r.u64("bytes")?,
        },
        "migrate_applied" => K::MigrateApplied {
            poi: r.usize("poi")?,
            key: r.u64("key")?,
        },
        "buffer_stall" => K::BufferStall {
            poi: r.usize("poi")?,
            key: r.u64("key")?,
        },
        "control_dropped" => K::ControlDropped {
            class: r.class("class")?,
        },
        "control_delayed" => K::ControlDelayed {
            class: r.class("class")?,
            windows: r.u64("windows")?,
        },
        "migration_lost" => K::MigrationLost {
            to: r.usize("to")?,
            key: r.u64("key")?,
        },
        "poi_crashed" => K::PoiCrashed { poi: r.usize("poi")? },
        "manager_killed" => K::ManagerKilled,
        "wave_rolled_back" => K::WaveRolledBack {
            nacked: r.bool("nacked")?,
            attempt: r.u32("attempt")?,
        },
        "wave_retried" => K::WaveRetried {
            attempt: r.u32("attempt")?,
        },
        "wave_aborted" => K::WaveAborted,
        "wave_completed" => K::WaveCompleted {
            duration_windows: r.u64("duration_windows")?,
        },
        "degraded_to_hash" => K::DegradedToHash,
        "span_begin" => K::SpanBegin {
            poi: r.usize("poi")?,
            key: r.u64("key")?,
        },
        "span_hop" => K::SpanHop {
            poi: r.usize("poi")?,
            key: r.u64("key")?,
            queue_ns: r.u64("queue_ns")?,
            proc_ns: r.u64("proc_ns")?,
            remote: r.bool("remote")?,
        },
        "span_end" => K::SpanEnd {
            poi: r.usize("poi")?,
            key: r.u64("key")?,
            total_ns: r.u64("total_ns")?,
        },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(TraceEvent {
        seq: r.u64("seq")?,
        time: r.f64("time")?,
        window: r.u64("window")?,
        wave: r.wave()?,
        kind,
    })
}

/// Parses a JSONL trace dump back into events. Empty lines are
/// skipped.
///
/// # Errors
///
/// Returns a [`TraceParseError`] naming the first malformed line.
pub fn parse_jsonl(input: &str) -> Result<Vec<TraceEvent>, TraceParseError> {
    let mut events = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_event(line).map_err(|message| TraceParseError {
            line: i + 1,
            message,
        })?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        use TraceEventKind as K;
        let kinds = vec![
            K::GetMetrics { poi: 3 },
            K::SendMetrics { poi: 3, bytes: 640 },
            K::WaveStarted {
                routers: 3,
                migrations: 8,
                attempt: 0,
            },
            K::SendReconf { poi: 0 },
            K::AckReconf {
                poi: 0,
                acks_pending: 8,
            },
            K::Propagate { poi: 1 },
            K::WaveApplied { poi: 1 },
            K::RouterSwapped { poi: 1, edge: 1 },
            K::MigrateSent {
                from: 4,
                to: 5,
                key: u64::MAX - 1, // > 2^53: must not pass through f64
                bytes: 72,
            },
            K::MigrateApplied {
                poi: 5,
                key: u64::MAX - 1,
            },
            K::BufferStall { poi: 5, key: 7 },
            K::ControlDropped {
                class: ControlClass::Migrate,
            },
            K::ControlDelayed {
                class: ControlClass::Propagate,
                windows: 2,
            },
            K::MigrationLost { to: 5, key: 9 },
            K::PoiCrashed { poi: 4 },
            K::ManagerKilled,
            K::WaveRolledBack {
                nacked: true,
                attempt: 1,
            },
            K::WaveRetried { attempt: 2 },
            K::WaveAborted,
            K::WaveCompleted {
                duration_windows: 6,
            },
            K::DegradedToHash,
            K::SpanBegin {
                poi: 0,
                key: u64::MAX - 3, // > 2^53: must not pass through f64
            },
            K::SpanHop {
                poi: 2,
                key: u64::MAX - 3,
                queue_ns: 1_234_567_890_123, // > 2^32
                proc_ns: 450,
                remote: true,
            },
            K::SpanEnd {
                poi: 3,
                key: u64::MAX - 3,
                total_ns: 9_876_543_210_987,
            },
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| TraceEvent {
                seq: i as u64,
                time: i as f64 * 0.1,
                window: i as u64,
                wave: if i % 3 == 0 { None } else { Some(i as u64 / 3) },
                kind,
            })
            .collect()
    }

    #[test]
    fn jsonl_round_trips_every_kind() {
        let events = sample_events();
        let dump = to_jsonl(&events);
        let parsed = parse_jsonl(&dump).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = parse_jsonl("{\"seq\":0}\n\nnot json\n").unwrap_err();
        assert_eq!(err.line, 1); // first object is incomplete
        let err = parse_jsonl("garbage").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn csv_rows_match_header_width() {
        let log = MetricsLog::new(0.1);
        assert!(csv_rows(&log).is_empty());
        assert_eq!(CSV_HEADER.len(), 19);
    }
}
