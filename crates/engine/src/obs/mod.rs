//! Observability layer: event tracing, a metrics registry and
//! exporters.
//!
//! The paper's entire argument is measured — locality, load imbalance,
//! migration cost and reconfiguration downtime (Figures 6–10) — so the
//! engine exposes its control plane as first-class data:
//!
//! * [`EventTracer`] — a lock-free bounded ring buffer of typed
//!   [`TraceEvent`]s covering every wave-protocol step (① `GetMetrics`
//!   → ② `SendMetrics` → ③ `SendReconf` → ④ `AckReconf` →
//!   ⑤ `Propagate` → ⑥ `Migrate`), buffering stalls, fault
//!   injections, rollbacks and routing-table swaps, each stamped with
//!   sim time, wave id and POI id;
//! * [`MetricsRegistry`] — named [`Counter`]s/[`Gauge`]s/fixed-bucket
//!   [`Histogram`]s fed by the simulator (per-window aggregates) and
//!   the live runtime (atomic increments on the hot path);
//! * exporters ([`export`]) — JSONL trace dumps with a round-tripping
//!   parser, CSV time series from a
//!   [`MetricsLog`](crate::MetricsLog), and Prometheus text format;
//! * span tracing ([`SpanSampler`], [`SpanRecorder`]) — deterministic
//!   per-key sampling of data-plane tuples with per-hop queue-wait /
//!   processing / end-to-end latency histograms, split local vs.
//!   remote and tagged with the routing epoch (see
//!   [`SpanMetricName`] for the shared sim/live schema).
//!
//! Overhead budget: the simulator records only control-plane events
//! (waves, migrations, faults, first-stall per key) — never one event
//! per tuple — and feeds counters once per window, so enabling tracing
//! changes simulated throughput by well under 5%. Live-runtime hot
//! paths touch only relaxed atomics.

mod registry;
mod span;
mod trace;

pub mod export;

pub use registry::{log2_bounds, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use span::{SpanMetricName, SpanPhase, SpanRecorder, SpanSampler};
pub use trace::{EventTracer, TraceEvent, TraceEventKind};
