//! Typed trace events and the bounded ring buffer that records them.

use crate::fault::ControlClass;

/// What happened — one variant per observable step of the engine's
/// control plane. Numbered variants follow Algorithm 1 of the paper
/// (① `GET_METRICS` … ⑥ `MIGRATE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// ① The manager polled `poi`'s statistics observer.
    GetMetrics {
        /// Instance polled.
        poi: usize,
    },
    /// ② `poi` uploaded its key statistics to the manager.
    SendMetrics {
        /// Instance reporting.
        poi: usize,
        /// Upload size charged to the NIC (0 when modeled out of band).
        bytes: u64,
    },
    /// A reconfiguration wave was accepted by the manager.
    WaveStarted {
        /// Router updates carried by the plan.
        routers: usize,
        /// Key migrations carried by the plan.
        migrations: usize,
        /// 0-based attempt (> 0 only for retries).
        attempt: u32,
    },
    /// ③ `SEND_RECONF` delivered to `poi`.
    SendReconf {
        /// Receiving instance.
        poi: usize,
    },
    /// ④ `poi` acknowledged its staged configuration.
    AckReconf {
        /// Acknowledging instance.
        poi: usize,
        /// Acks the manager is still waiting for.
        acks_pending: usize,
    },
    /// ⑤ `PROPAGATE` delivered to `poi`.
    Propagate {
        /// Receiving instance.
        poi: usize,
    },
    /// `poi` applied its staged configuration (last propagate seen).
    WaveApplied {
        /// Applying instance.
        poi: usize,
    },
    /// A routing table was swapped on a sender's out edge.
    RouterSwapped {
        /// Sending instance.
        poi: usize,
        /// The fields-grouped edge whose router changed.
        edge: usize,
    },
    /// ⑥ One key's state left its old owner.
    MigrateSent {
        /// Old owner instance.
        from: usize,
        /// New owner instance.
        to: usize,
        /// The migrated key.
        key: u64,
        /// State size shipped (pre-framing).
        bytes: u64,
    },
    /// Migrated state was installed at its new owner.
    MigrateApplied {
        /// New owner instance.
        poi: usize,
        /// The migrated key.
        key: u64,
    },
    /// A tuple arrived for a key whose state is still in flight; the
    /// new owner started (or grew) a buffer. Recorded only when the
    /// buffer transitions empty → non-empty, so the ring is not
    /// flooded by per-tuple events.
    BufferStall {
        /// Buffering instance.
        poi: usize,
        /// Key awaiting state.
        key: u64,
    },
    /// Fault injection dropped a control message on the wire.
    ControlDropped {
        /// Message class that was dropped.
        class: ControlClass,
    },
    /// Fault injection delayed a control message.
    ControlDelayed {
        /// Message class that was delayed.
        class: ControlClass,
        /// Delay, in windows.
        windows: u64,
    },
    /// A ⑥ `MIGRATE` exhausted its retransmissions; the state was
    /// recovered out of band from the engine's replicated copy.
    MigrationLost {
        /// Intended new owner.
        to: usize,
        /// The key whose transfer was lost.
        key: u64,
    },
    /// Fault injection crashed an instance.
    PoiCrashed {
        /// The crashed instance.
        poi: usize,
    },
    /// Fault injection killed the manager process.
    ManagerKilled,
    /// The wave was rolled back (routing tables and key ownership
    /// reverted to their pre-wave values).
    WaveRolledBack {
        /// `true` when a participant nacked; `false` on deadline miss.
        nacked: bool,
        /// The attempt that failed (0-based).
        attempt: u32,
    },
    /// The wave restarted after a rollback.
    WaveRetried {
        /// The new attempt number (0-based).
        attempt: u32,
    },
    /// The wave was abandoned for good.
    WaveAborted,
    /// Every POI applied; the wave is complete.
    WaveCompleted {
        /// Windows from wave start to completion.
        duration_windows: u64,
    },
    /// The engine fell back to whole-table hash routing (graceful
    /// degradation after manager death).
    DegradedToHash,
    /// A span-sampled tuple entered the data plane at a source.
    SpanBegin {
        /// Emitting source instance.
        poi: usize,
        /// The sampled routing key.
        key: u64,
    },
    /// A span-sampled tuple was processed at one hop.
    SpanHop {
        /// Receiving instance.
        poi: usize,
        /// The sampled routing key.
        key: u64,
        /// Time spent waiting to be dequeued, in nanoseconds.
        queue_ns: u64,
        /// Processing time at this hop, in nanoseconds.
        proc_ns: u64,
        /// Whether the hop crossed workers (remote) or stayed local.
        remote: bool,
    },
    /// A span-sampled tuple completed its path at a sink.
    SpanEnd {
        /// Sink instance.
        poi: usize,
        /// The sampled routing key.
        key: u64,
        /// End-to-end latency from the source origin stamp, in
        /// nanoseconds.
        total_ns: u64,
    },
}

impl TraceEventKind {
    /// Snake-case name of this kind, matching the `kind` field of the
    /// JSONL export (see [`export`](crate::obs::export)).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::GetMetrics { .. } => "get_metrics",
            Self::SendMetrics { .. } => "send_metrics",
            Self::WaveStarted { .. } => "wave_started",
            Self::SendReconf { .. } => "send_reconf",
            Self::AckReconf { .. } => "ack_reconf",
            Self::Propagate { .. } => "propagate",
            Self::WaveApplied { .. } => "wave_applied",
            Self::RouterSwapped { .. } => "router_swapped",
            Self::MigrateSent { .. } => "migrate_sent",
            Self::MigrateApplied { .. } => "migrate_applied",
            Self::BufferStall { .. } => "buffer_stall",
            Self::ControlDropped { .. } => "control_dropped",
            Self::ControlDelayed { .. } => "control_delayed",
            Self::MigrationLost { .. } => "migration_lost",
            Self::PoiCrashed { .. } => "poi_crashed",
            Self::ManagerKilled => "manager_killed",
            Self::WaveRolledBack { .. } => "wave_rolled_back",
            Self::WaveRetried { .. } => "wave_retried",
            Self::WaveAborted => "wave_aborted",
            Self::WaveCompleted { .. } => "wave_completed",
            Self::DegradedToHash => "degraded_to_hash",
            Self::SpanBegin { .. } => "span_begin",
            Self::SpanHop { .. } => "span_hop",
            Self::SpanEnd { .. } => "span_end",
        }
    }
}

/// One recorded event: a [`TraceEventKind`] stamped with sequence
/// number, sim time, window and (when attributable) wave id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Monotonic sequence number (also counts events evicted from the
    /// ring: `seq` gaps at the front reveal truncation).
    pub seq: u64,
    /// Simulated time in seconds (window start).
    pub time: f64,
    /// Window index the event occurred in.
    pub window: u64,
    /// The reconfiguration wave this event belongs to, if any.
    pub wave: Option<u64>,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Bounded ring buffer of [`TraceEvent`]s.
///
/// The simulator is single-threaded, so recording is plain memory
/// writes — no locks, no atomics. When full, the oldest event is
/// evicted and counted in [`dropped`](Self::dropped).
#[derive(Debug)]
pub struct EventTracer {
    capacity: usize,
    events: std::collections::VecDeque<TraceEvent>,
    next_seq: u64,
    dropped: u64,
}

impl EventTracer {
    /// Creates a tracer holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be positive");
        Self {
            capacity,
            events: std::collections::VecDeque::with_capacity(capacity.min(4096)),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Records one event.
    pub fn record(&mut self, window: u64, time: f64, wave: Option<u64>, kind: TraceEventKind) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            seq: self.next_seq,
            time,
            window,
            wave,
            kind,
        });
        self.next_seq += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drains and returns all retained events, oldest first.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut t = EventTracer::new(3);
        for i in 0..5 {
            t.record(i, i as f64 * 0.1, None, TraceEventKind::ManagerKilled);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let seqs: Vec<u64> = t.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn take_drains() {
        let mut t = EventTracer::new(8);
        t.record(0, 0.0, Some(1), TraceEventKind::WaveAborted);
        let evs = t.take();
        assert_eq!(evs.len(), 1);
        assert!(t.is_empty());
        assert_eq!(evs[0].wave, Some(1));
    }
}
