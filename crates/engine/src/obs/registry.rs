//! Named counters, gauges and fixed-bucket histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`s
//! around relaxed atomics: cloning a handle shares the underlying
//! value, so hot paths increment without locks. The
//! [`MetricsRegistry`] itself is only locked at registration and
//! render time.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Power-of-two histogram bucket upper bounds: `[1, 2, 4, ..., 2^max_exp]`.
///
/// The shared bucket schema for every latency-shaped histogram in the
/// engine (window latency, wave duration, span queue/processing time):
/// log2 buckets give constant relative error (~2×) across nine orders
/// of magnitude with `max_exp + 1` buckets, and a fixed formula means
/// sim and live histograms are always mergeable.
///
/// # Panics
///
/// Panics if `max_exp >= 64` (the bound would overflow `u64`).
#[must_use]
pub fn log2_bounds(max_exp: u32) -> Vec<u64> {
    assert!(max_exp < 64, "2^{max_exp} overflows u64");
    (0..=max_exp).map(|e| 1u64 << e).collect()
}

/// A monotonically increasing counter. Clones share the value.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a counter not attached to any registry (always valid to
    /// increment; simply never exported).
    #[must_use]
    pub fn detached() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value. Clones share the value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Creates a gauge not attached to any registry.
    #[must_use]
    pub fn detached() -> Self {
        Self::default()
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if it is larger (monotonic high-water
    /// mark; racy reads are fine for telemetry).
    #[inline]
    pub fn max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the buckets, strictly increasing. An implicit
    /// `+Inf` bucket follows the last bound.
    bounds: Vec<u64>,
    /// One count per bound, plus the overflow bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    total: AtomicU64,
}

/// A fixed-bucket histogram of `u64` observations. Clones share the
/// buckets.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Creates a histogram with the given strictly increasing bucket
    /// upper bounds (an overflow bucket is added automatically).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    #[must_use]
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self
            .0
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.0.bounds.len());
        self.0.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.total.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.0.bounds.clone(),
            counts: self
                .0
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.0.sum.load(Ordering::Relaxed),
            total: self.0.total.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (the overflow bucket is implicit).
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: u64,
    /// Number of observations.
    pub total: u64,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Clone)]
struct Entry {
    name: String,
    help: String,
    metric: Metric,
}

/// A registry of named metrics, renderable as Prometheus text format
/// or a flat `(name, value)` snapshot.
///
/// Registration is idempotent: asking for an existing name returns a
/// handle to the same underlying value (panicking only if the kind
/// differs), so the sim and live runtime can share one registry.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) a counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut entries = self.entries.lock();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match &e.metric {
                Metric::Counter(c) => return c.clone(),
                _ => panic!("metric {name} already registered with a different kind"),
            }
        }
        let c = Counter::detached();
        entries.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            metric: Metric::Counter(c.clone()),
        });
        c
    }

    /// Registers (or retrieves) a gauge.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut entries = self.entries.lock();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match &e.metric {
                Metric::Gauge(g) => return g.clone(),
                _ => panic!("metric {name} already registered with a different kind"),
            }
        }
        let g = Gauge::detached();
        entries.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            metric: Metric::Gauge(g.clone()),
        });
        g
    }

    /// Registers (or retrieves) a fixed-bucket histogram.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind, or
    /// if `bounds` is invalid (see [`Histogram::with_bounds`]).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        let mut entries = self.entries.lock();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match &e.metric {
                Metric::Histogram(h) => return h.clone(),
                _ => panic!("metric {name} already registered with a different kind"),
            }
        }
        let h = Histogram::with_bounds(bounds);
        entries.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            metric: Metric::Histogram(h.clone()),
        });
        h
    }

    /// Flat `(name, value)` snapshot of counters and gauges
    /// (histograms are summarized as `<name>_sum` and `<name>_count`).
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let entries = self.entries.lock();
        let mut out = Vec::with_capacity(entries.len());
        for e in entries.iter() {
            match &e.metric {
                Metric::Counter(c) => out.push((e.name.clone(), c.get())),
                Metric::Gauge(g) => out.push((e.name.clone(), g.get())),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    out.push((format!("{}_sum", e.name), s.sum));
                    out.push((format!("{}_count", e.name), s.total));
                }
            }
        }
        out
    }

    /// Snapshots every registered histogram as `(name, snapshot)`
    /// pairs, in registration order. Counters and gauges are skipped;
    /// use [`snapshot`](Self::snapshot) for those.
    #[must_use]
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        let entries = self.entries.lock();
        entries
            .iter()
            .filter_map(|e| match &e.metric {
                Metric::Histogram(h) => Some((e.name.clone(), h.snapshot())),
                _ => None,
            })
            .collect()
    }

    /// Renders every metric in the Prometheus text exposition format.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock();
        let mut out = String::new();
        for e in entries.iter() {
            let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {} counter", e.name);
                    let _ = writeln!(out, "{} {}", e.name, c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {} gauge", e.name);
                    let _ = writeln!(out, "{} {}", e.name, g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {} histogram", e.name);
                    let s = h.snapshot();
                    let mut cumulative = 0u64;
                    for (i, &bound) in s.bounds.iter().enumerate() {
                        cumulative += s.counts[i];
                        let _ = writeln!(
                            out,
                            "{}_bucket{{le=\"{}\"}} {}",
                            e.name, bound, cumulative
                        );
                    }
                    cumulative += s.counts[s.bounds.len()];
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", e.name, cumulative);
                    let _ = writeln!(out, "{}_sum {}", e.name, s.sum);
                    let _ = writeln!(out, "{}_count {}", e.name, s.total);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_value() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("tuples_routed", "tuples routed");
        let b = reg.counter("tuples_routed", "tuples routed");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.snapshot(), vec![("tuples_routed".to_owned(), 4)]);
    }

    #[test]
    fn histogram_buckets_and_render() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", "latency", &[1, 4, 16]);
        for v in [0, 1, 2, 5, 100] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.total, 5);
        assert_eq!(s.sum, 108);
        let text = reg.render_prometheus();
        assert!(text.contains("lat_bucket{le=\"4\"} 3"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("lat_count 5"));
    }

    #[test]
    fn gauge_max_is_high_water_mark() {
        let g = Gauge::detached();
        g.max(5);
        g.max(3);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn log2_bounds_pinned_edges() {
        // Pinned constants: these edges are a wire format (sim and live
        // histograms must stay mergeable across versions).
        assert_eq!(log2_bounds(0), vec![1]);
        assert_eq!(log2_bounds(3), vec![1, 2, 4, 8]);
        assert_eq!(log2_bounds(6), vec![1, 2, 4, 8, 16, 32, 64]);
        let ns = log2_bounds(36);
        assert_eq!(ns.len(), 37);
        assert_eq!(ns[0], 1);
        assert_eq!(ns[10], 1024);
        assert_eq!(ns[30], 1 << 30);
        assert_eq!(*ns.last().unwrap(), 68_719_476_736); // 2^36 ns ≈ 68.7 s
        assert!(ns.windows(2).all(|w| w[1] == 2 * w[0]));
    }

    #[test]
    fn histograms_accessor_lists_only_histograms() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("c", "");
        let h = reg.histogram("h", "", &log2_bounds(2));
        h.observe(3);
        let hists = reg.histograms();
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].0, "h");
        assert_eq!(hists[0].1.bounds, vec![1, 2, 4]);
        assert_eq!(hists[0].1.total, 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x", "");
        let _ = reg.gauge("x", "");
    }
}
