//! Checkpoint/restore integration tests: the engine-side fault
//! tolerance the paper's §3.4 relies on.

use streamloc_engine::{
    CheckpointError, ClusterSpec, CountOperator, Grouping, Key, ModuloRouter, Placement,
    SimConfig, Simulation, SourceRate, Topology, Tuple,
};
use std::collections::HashMap;
use std::sync::Arc;

fn chain(n: usize, keys: u64) -> Topology {
    let mut b = Topology::builder();
    let s = b.source("S", n, SourceRate::PerSecond(10_000.0), move |i| {
        let mut c = i as u64;
        Box::new(move || {
            c = c.wrapping_add(0x9e37_79b9);
            let k = c % keys;
            Some(Tuple::new([Key::new(k), Key::new(k)], 64))
        })
    });
    let a = b.stateful("A", n, CountOperator::factory());
    let bb = b.stateful("B", n, CountOperator::factory());
    b.connect(s, a, Grouping::fields(0));
    b.connect(a, bb, Grouping::fields(1));
    b.build().unwrap()
}

fn sim(n: usize, keys: u64) -> Simulation {
    let topo = chain(n, keys);
    let placement = Placement::aligned(&topo, n);
    Simulation::new(
        topo,
        ClusterSpec::lan_10g(n),
        placement,
        SimConfig::default(),
    )
}

fn state_of(sim: &Simulation, name: &str) -> Vec<HashMap<Key, u64>> {
    let po = sim.topology().po_by_name(name).unwrap();
    sim.poi_ids(po)
        .iter()
        .map(|&p| {
            sim.poi_state(p)
                .iter()
                .map(|(&k, v)| (k, v.as_count().unwrap()))
                .collect()
        })
        .collect()
}

#[test]
fn restore_rolls_state_back() {
    let mut s = sim(2, 8);
    s.run(10);
    let checkpoint = s.checkpoint().unwrap();
    let at_checkpoint = state_of(&s, "B");

    s.run(10);
    assert_ne!(state_of(&s, "B"), at_checkpoint, "state should advance");

    s.restore(&checkpoint).unwrap();
    assert_eq!(state_of(&s, "B"), at_checkpoint, "state rolled back");
    assert_eq!(checkpoint.window_index(), 10);
    assert!(checkpoint.total_keys() > 0);

    // The deployment keeps running after a restore.
    s.run(10);
    let after: u64 = state_of(&s, "B")
        .iter()
        .flat_map(|m| m.values())
        .sum();
    let at: u64 = at_checkpoint.iter().flat_map(|m| m.values()).sum();
    assert!(after > at, "processing should continue after restore");
}

#[test]
fn restore_reinstalls_routers() {
    let mut s = sim(3, 6);
    s.run(5);
    let a = s.topology().po_by_name("A").unwrap();
    let b = s.topology().po_by_name("B").unwrap();
    let edge = s.topology().edge_between(a, b).unwrap();

    // Checkpoint with modulo routing installed.
    s.set_edge_router(edge, Arc::new(ModuloRouter));
    let checkpoint = s.checkpoint().unwrap();
    let a_pois = s.poi_ids(a);
    assert_eq!(s.current_route(a_pois[0], edge, Key::new(4)), 1);

    // Clobber the router, then restore.
    s.set_edge_router(edge, Arc::new(streamloc_engine::ShiftedRouter::new(1)));
    assert_eq!(s.current_route(a_pois[0], edge, Key::new(4)), 2);
    s.restore(&checkpoint).unwrap();
    assert_eq!(
        s.current_route(a_pois[0], edge, Key::new(4)),
        1,
        "restored router must be the checkpointed one"
    );
}

#[test]
fn checkpoint_refused_during_wave() {
    let mut s = sim(2, 8);
    s.run(5);
    s.start_reconfiguration(streamloc_engine::ReconfigPlan::empty())
        .unwrap();
    assert_eq!(
        s.checkpoint().unwrap_err(),
        CheckpointError::ReconfigurationInFlight
    );
    s.run(10); // wave completes
    assert!(s.checkpoint().is_ok());
}

#[test]
fn restore_rejects_other_topology() {
    let mut small = sim(2, 8);
    small.run(5);
    let checkpoint = small.checkpoint().unwrap();
    let mut big = sim(3, 8);
    big.run(5);
    assert_eq!(
        big.restore(&checkpoint).unwrap_err(),
        CheckpointError::ShapeMismatch
    );
}

#[test]
fn inflight_tuples_are_dropped_not_leaked() {
    let mut s = sim(2, 8);
    s.run(10);
    let checkpoint = s.checkpoint().unwrap();
    s.run(3);
    s.restore(&checkpoint).unwrap();
    assert_eq!(s.in_flight(), 0, "restore drops everything volatile");
    // Conservation from here on: run to a drained-ish steady state and
    // confirm the accounting stays coherent (no negative in-flight).
    s.run(20);
    assert!(s.in_flight() >= 0);
}
