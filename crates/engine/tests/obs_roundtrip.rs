//! Exporter round-trip and tracing-overhead guarantees: events taken
//! from an instrumented simulation survive JSONL serialization intact,
//! and enabling observability does not change simulation results.

use std::sync::Arc;

use streamloc_engine::obs::export::{parse_jsonl, to_jsonl};
use streamloc_engine::{
    ClusterSpec, ControlClass, CountOperator, FaultEvent, FaultPlan, Grouping, HashRouter, Key,
    KeyRouter, MetricsRegistry, ModuloRouter, Placement, ReconfigPlan, SimConfig, Simulation,
    SourceRate, SpanMetricName, SpanPhase, SpanSampler, Topology, TraceEventKind, Tuple,
};

const KEYS: u64 = 12;
const PARALLELISM: usize = 3;
const TOTAL: u64 = 9_000;

/// Finite S → A → B chain (mirrors the `fault_recovery` example).
fn finite_sim() -> Simulation {
    finite_sim_with(TOTAL)
}

/// Same chain with a configurable tuple budget, for tests that need
/// the stream to outlive a reconfiguration wave.
fn finite_sim_with(total: u64) -> Simulation {
    let mut b = Topology::builder();
    let s = b.source("S", PARALLELISM, SourceRate::PerSecond(20_000.0), move |i| {
        let mut c = i as u64;
        let mut left = total / PARALLELISM as u64;
        Box::new(move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            c = c.wrapping_add(0x9e37_79b9);
            let k = c % KEYS;
            Some(Tuple::new([Key::new(k), Key::new(k)], 64))
        })
    });
    let a = b.stateful("A", PARALLELISM, CountOperator::factory());
    let bb = b.stateful("B", PARALLELISM, CountOperator::factory());
    b.connect(s, a, Grouping::fields(0));
    b.connect(a, bb, Grouping::fields(1));
    let topo = b.build().unwrap();
    let placement = Placement::aligned(&topo, PARALLELISM);
    Simulation::new(
        topo,
        ClusterSpec::lan_10g(PARALLELISM),
        placement,
        SimConfig::default(),
    )
}

/// Hash → modulo rekeying of A's input edge.
fn modulo_plan(sim: &Simulation) -> ReconfigPlan {
    let topo = sim.topology();
    let dest = topo.po_by_name("A").unwrap();
    let edge = topo.in_edges(dest)[0];
    let src = topo.edge(edge).from();
    let dest_pois = sim.poi_ids(dest);
    let routers = sim
        .poi_ids(src)
        .into_iter()
        .map(|p| (p, edge, Arc::new(ModuloRouter) as Arc<dyn KeyRouter>))
        .collect();
    let migrations = (0..KEYS)
        .filter_map(|k| {
            let key = Key::new(k);
            let old = HashRouter.route(key, PARALLELISM) as usize;
            let new = (k % PARALLELISM as u64) as usize;
            (old != new).then(|| (dest_pois[old], key, dest_pois[new]))
        })
        .collect();
    ReconfigPlan { routers, migrations }
}

/// Runs one wave under fault injection with tracing on and returns the
/// drained simulation.
fn traced_faulty_run() -> Simulation {
    let mut sim = finite_sim();
    sim.enable_tracing(4096);
    let a_poi = sim.poi_ids(sim.topology().po_by_name("A").unwrap())[1];
    sim.install_fault_plan(
        FaultPlan::new()
            .with(FaultEvent::CrashPoi {
                poi: a_poi.index(),
                window: 5,
            })
            .with(FaultEvent::DropControl {
                class: ControlClass::Migrate,
                occurrence: 0,
            }),
    );
    sim.run(4);
    sim.start_reconfiguration(modulo_plan(&sim)).unwrap();
    sim.run_until_drained(800);
    sim
}

#[test]
fn jsonl_round_trip_preserves_events() {
    let mut sim = traced_faulty_run();
    let events = sim.take_trace_events();
    assert!(!events.is_empty(), "an instrumented wave must trace events");

    let jsonl = to_jsonl(&events);
    let parsed = parse_jsonl(&jsonl).expect("exported trace must parse back");
    assert_eq!(parsed, events, "JSONL round-trip must preserve every event");

    // Every protocol step and both injected faults are present.
    let has = |pred: &dyn Fn(&TraceEventKind) -> bool| events.iter().any(|e| pred(&e.kind));
    assert!(has(&|k| matches!(k, TraceEventKind::GetMetrics { .. })));
    assert!(has(&|k| matches!(k, TraceEventKind::SendMetrics { .. })));
    assert!(has(&|k| matches!(k, TraceEventKind::WaveStarted { .. })));
    assert!(has(&|k| matches!(k, TraceEventKind::SendReconf { .. })));
    assert!(has(&|k| matches!(k, TraceEventKind::AckReconf { .. })));
    assert!(has(&|k| matches!(k, TraceEventKind::Propagate { .. })));
    assert!(has(&|k| matches!(k, TraceEventKind::MigrateSent { .. })));
    assert!(has(&|k| matches!(
        k,
        TraceEventKind::ControlDropped {
            class: ControlClass::Migrate
        }
    )));
    assert!(has(&|k| matches!(k, TraceEventKind::PoiCrashed { .. })));

    // Wave-scoped events all carry the id of the single wave started.
    let wave_ids: Vec<u64> = events.iter().filter_map(|e| e.wave).collect();
    assert!(!wave_ids.is_empty());
    assert!(wave_ids.iter().all(|&w| w == wave_ids[0]));
}

#[test]
fn tracing_and_metrics_do_not_change_results() {
    let run = |instrument: bool| {
        let mut sim = finite_sim();
        let registry = Arc::new(MetricsRegistry::new());
        if instrument {
            sim.enable_tracing(8192);
            sim.attach_metrics(&registry);
        }
        sim.run(4);
        sim.start_reconfiguration(modulo_plan(&sim)).unwrap();
        sim.run_until_drained(800);
        (
            sim.metrics().total_sink(),
            sim.metrics().avg_throughput(2),
            sim.window_index(),
        )
    };
    let (sink_plain, tput_plain, windows_plain) = run(false);
    let (sink_traced, tput_traced, windows_traced) = run(true);

    assert_eq!(sink_plain, sink_traced);
    assert_eq!(windows_plain, windows_traced);
    let rel = (tput_plain - tput_traced).abs() / tput_plain.max(1.0);
    assert!(
        rel < 0.05,
        "tracing changed avg_throughput by {:.2}% ({tput_plain} vs {tput_traced})",
        rel * 100.0
    );
}

#[test]
fn span_events_trace_and_round_trip_with_epoch_split() {
    // 60k tuples at 20k/s per source over 0.1 s windows (~10 windows
    // of data): the stream comfortably outlives the wave started at
    // window 2, so observations land both before and after the epoch
    // bump.
    let mut sim = finite_sim_with(60_000);
    sim.enable_tracing(65_536);
    let registry = Arc::new(MetricsRegistry::new());
    sim.attach_metrics(&registry);
    sim.enable_span_tracing(SpanSampler::new(0xC0FFEE, 2), Some(Arc::clone(&registry)));
    sim.run(2);
    sim.start_reconfiguration(modulo_plan(&sim)).unwrap();
    sim.run_until_drained(800);

    // All three span lifecycle stages appear in the trace and the
    // whole trace (spans included) survives JSONL serialization.
    let events = sim.take_trace_events();
    let count = |pred: &dyn Fn(&TraceEventKind) -> bool| {
        events.iter().filter(|e| pred(&e.kind)).count()
    };
    let begins = count(&|k| matches!(k, TraceEventKind::SpanBegin { .. }));
    let hops = count(&|k| matches!(k, TraceEventKind::SpanHop { .. }));
    let ends = count(&|k| matches!(k, TraceEventKind::SpanEnd { .. }));
    assert!(begins > 0, "sampled sources must trace span_begin");
    assert!(hops > 0, "sampled hops must trace span_hop");
    assert!(ends > 0, "sampled sinks must trace span_end");
    assert!(
        hops >= ends,
        "every completed span has at least its sink hop ({hops} hops, {ends} ends)"
    );
    let parsed = parse_jsonl(&to_jsonl(&events)).expect("span trace must parse back");
    assert_eq!(parsed, events);

    // Histogram names follow the shared schema and round-trip through
    // the structured parser; the mid-run wave splits them by epoch.
    let span_names: Vec<SpanMetricName> = registry
        .histograms()
        .iter()
        .filter(|(_, snap)| snap.total > 0)
        .filter_map(|(name, _)| {
            let parsed = SpanMetricName::parse(name)?;
            assert_eq!(parsed.render(), *name, "span name must round-trip");
            Some(parsed)
        })
        .collect();
    assert!(!span_names.is_empty(), "span histograms must be populated");
    for phase in [SpanPhase::Queue, SpanPhase::Proc, SpanPhase::EndToEnd] {
        assert!(
            span_names.iter().any(|n| n.phase == phase),
            "phase {phase:?} missing from span histograms"
        );
    }
    let mut epochs: Vec<u64> = span_names.iter().map(|n| n.epoch).collect();
    epochs.sort_unstable();
    epochs.dedup();
    assert!(
        epochs.len() >= 2,
        "observations before and after the wave must land in distinct epochs, got {epochs:?}"
    );
    // End-to-end latency is only recorded at the sink operator (B).
    let sink = sim.topology().po_by_name("B").unwrap();
    for n in &span_names {
        if n.phase == SpanPhase::EndToEnd {
            assert_eq!(n.po, sink.index(), "e2e histograms belong to the sink");
        }
    }
}

#[test]
fn registry_counts_agree_with_window_metrics() {
    let mut sim = finite_sim();
    let registry = Arc::new(MetricsRegistry::new());
    sim.enable_tracing(4096);
    sim.attach_metrics(&registry);
    sim.run(4);
    sim.start_reconfiguration(modulo_plan(&sim)).unwrap();
    sim.run_until_drained(800);

    let windows = sim.metrics().windows();
    let migrated: u64 = windows.iter().map(|w| w.migrated_states).sum();
    let snapshot = registry.snapshot();
    let get = |name: &str| {
        snapshot
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("metric {name} not registered"))
            .1
    };
    assert_eq!(get("sim_migrated_states_total"), migrated);
    assert_eq!(get("sim_sink_tuples_total"), sim.metrics().total_sink());

    let text = registry.render_prometheus();
    assert!(text.contains("# TYPE sim_migrated_states_total counter"));
    assert!(text.contains("sim_window_latency_windows_bucket{le=\"+Inf\"}"));
}
