//! Exporter round-trip and tracing-overhead guarantees: events taken
//! from an instrumented simulation survive JSONL serialization intact,
//! and enabling observability does not change simulation results.

use std::sync::Arc;

use streamloc_engine::obs::export::{parse_jsonl, to_jsonl};
use streamloc_engine::{
    ClusterSpec, ControlClass, CountOperator, FaultEvent, FaultPlan, Grouping, HashRouter, Key,
    KeyRouter, MetricsRegistry, ModuloRouter, Placement, ReconfigPlan, SimConfig, Simulation,
    SourceRate, Topology, TraceEventKind, Tuple,
};

const KEYS: u64 = 12;
const PARALLELISM: usize = 3;
const TOTAL: u64 = 9_000;

/// Finite S → A → B chain (mirrors the `fault_recovery` example).
fn finite_sim() -> Simulation {
    let mut b = Topology::builder();
    let s = b.source("S", PARALLELISM, SourceRate::PerSecond(20_000.0), |i| {
        let mut c = i as u64;
        let mut left = TOTAL / PARALLELISM as u64;
        Box::new(move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            c = c.wrapping_add(0x9e37_79b9);
            let k = c % KEYS;
            Some(Tuple::new([Key::new(k), Key::new(k)], 64))
        })
    });
    let a = b.stateful("A", PARALLELISM, CountOperator::factory());
    let bb = b.stateful("B", PARALLELISM, CountOperator::factory());
    b.connect(s, a, Grouping::fields(0));
    b.connect(a, bb, Grouping::fields(1));
    let topo = b.build().unwrap();
    let placement = Placement::aligned(&topo, PARALLELISM);
    Simulation::new(
        topo,
        ClusterSpec::lan_10g(PARALLELISM),
        placement,
        SimConfig::default(),
    )
}

/// Hash → modulo rekeying of A's input edge.
fn modulo_plan(sim: &Simulation) -> ReconfigPlan {
    let topo = sim.topology();
    let dest = topo.po_by_name("A").unwrap();
    let edge = topo.in_edges(dest)[0];
    let src = topo.edge(edge).from();
    let dest_pois = sim.poi_ids(dest);
    let routers = sim
        .poi_ids(src)
        .into_iter()
        .map(|p| (p, edge, Arc::new(ModuloRouter) as Arc<dyn KeyRouter>))
        .collect();
    let migrations = (0..KEYS)
        .filter_map(|k| {
            let key = Key::new(k);
            let old = HashRouter.route(key, PARALLELISM) as usize;
            let new = (k % PARALLELISM as u64) as usize;
            (old != new).then(|| (dest_pois[old], key, dest_pois[new]))
        })
        .collect();
    ReconfigPlan { routers, migrations }
}

/// Runs one wave under fault injection with tracing on and returns the
/// drained simulation.
fn traced_faulty_run() -> Simulation {
    let mut sim = finite_sim();
    sim.enable_tracing(4096);
    let a_poi = sim.poi_ids(sim.topology().po_by_name("A").unwrap())[1];
    sim.install_fault_plan(
        FaultPlan::new()
            .with(FaultEvent::CrashPoi {
                poi: a_poi.index(),
                window: 5,
            })
            .with(FaultEvent::DropControl {
                class: ControlClass::Migrate,
                occurrence: 0,
            }),
    );
    sim.run(4);
    sim.start_reconfiguration(modulo_plan(&sim)).unwrap();
    sim.run_until_drained(800);
    sim
}

#[test]
fn jsonl_round_trip_preserves_events() {
    let mut sim = traced_faulty_run();
    let events = sim.take_trace_events();
    assert!(!events.is_empty(), "an instrumented wave must trace events");

    let jsonl = to_jsonl(&events);
    let parsed = parse_jsonl(&jsonl).expect("exported trace must parse back");
    assert_eq!(parsed, events, "JSONL round-trip must preserve every event");

    // Every protocol step and both injected faults are present.
    let has = |pred: &dyn Fn(&TraceEventKind) -> bool| events.iter().any(|e| pred(&e.kind));
    assert!(has(&|k| matches!(k, TraceEventKind::GetMetrics { .. })));
    assert!(has(&|k| matches!(k, TraceEventKind::SendMetrics { .. })));
    assert!(has(&|k| matches!(k, TraceEventKind::WaveStarted { .. })));
    assert!(has(&|k| matches!(k, TraceEventKind::SendReconf { .. })));
    assert!(has(&|k| matches!(k, TraceEventKind::AckReconf { .. })));
    assert!(has(&|k| matches!(k, TraceEventKind::Propagate { .. })));
    assert!(has(&|k| matches!(k, TraceEventKind::MigrateSent { .. })));
    assert!(has(&|k| matches!(
        k,
        TraceEventKind::ControlDropped {
            class: ControlClass::Migrate
        }
    )));
    assert!(has(&|k| matches!(k, TraceEventKind::PoiCrashed { .. })));

    // Wave-scoped events all carry the id of the single wave started.
    let wave_ids: Vec<u64> = events.iter().filter_map(|e| e.wave).collect();
    assert!(!wave_ids.is_empty());
    assert!(wave_ids.iter().all(|&w| w == wave_ids[0]));
}

#[test]
fn tracing_and_metrics_do_not_change_results() {
    let run = |instrument: bool| {
        let mut sim = finite_sim();
        let registry = Arc::new(MetricsRegistry::new());
        if instrument {
            sim.enable_tracing(8192);
            sim.attach_metrics(&registry);
        }
        sim.run(4);
        sim.start_reconfiguration(modulo_plan(&sim)).unwrap();
        sim.run_until_drained(800);
        (
            sim.metrics().total_sink(),
            sim.metrics().avg_throughput(2),
            sim.window_index(),
        )
    };
    let (sink_plain, tput_plain, windows_plain) = run(false);
    let (sink_traced, tput_traced, windows_traced) = run(true);

    assert_eq!(sink_plain, sink_traced);
    assert_eq!(windows_plain, windows_traced);
    let rel = (tput_plain - tput_traced).abs() / tput_plain.max(1.0);
    assert!(
        rel < 0.05,
        "tracing changed avg_throughput by {:.2}% ({tput_plain} vs {tput_traced})",
        rel * 100.0
    );
}

#[test]
fn registry_counts_agree_with_window_metrics() {
    let mut sim = finite_sim();
    let registry = Arc::new(MetricsRegistry::new());
    sim.enable_tracing(4096);
    sim.attach_metrics(&registry);
    sim.run(4);
    sim.start_reconfiguration(modulo_plan(&sim)).unwrap();
    sim.run_until_drained(800);

    let windows = sim.metrics().windows();
    let migrated: u64 = windows.iter().map(|w| w.migrated_states).sum();
    let snapshot = registry.snapshot();
    let get = |name: &str| {
        snapshot
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("metric {name} not registered"))
            .1
    };
    assert_eq!(get("sim_migrated_states_total"), migrated);
    assert_eq!(get("sim_sink_tuples_total"), sim.metrics().total_sink());

    let text = registry.render_prometheus();
    assert!(text.contains("# TYPE sim_migrated_states_total counter"));
    assert!(text.contains("sim_window_latency_windows_bucket{le=\"+Inf\"}"));
}
