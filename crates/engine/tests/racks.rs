//! Rack-model integration tests: uplink budgets throttle cross-rack
//! traffic and the metrics attribute it correctly.

use streamloc_engine::{
    ClusterSpec, CountOperator, Grouping, Key, ModuloRouter, Placement, ShiftedRouter, SimConfig,
    Simulation, SourceRate, Topology, Tuple,
};
use std::sync::Arc;

/// Chain where every A→B hop moves the tuple `shift` servers over.
fn shifted_sim(cluster: ClusterSpec, shift: u64) -> (Simulation, streamloc_engine::EdgeId) {
    let n = cluster.servers;
    let mut b = Topology::builder();
    let s = b.source("S", n, SourceRate::Saturate, move |i| {
        let key = Key::new(i as u64);
        Box::new(move || Some(Tuple::new([key, key], 4096)))
    });
    let a = b.stateful("A", n, CountOperator::factory());
    let bb = b.stateful("B", n, CountOperator::factory());
    b.connect(s, a, Grouping::fields_with(0, Arc::new(ModuloRouter)));
    let edge = b.connect(a, bb, Grouping::fields_with(1, Arc::new(ShiftedRouter::new(shift))));
    let topo = b.build().unwrap();
    let placement = Placement::aligned(&topo, n);
    (
        Simulation::new(topo, cluster, placement, SimConfig::default()),
        edge,
    )
}

#[test]
fn intra_rack_traffic_ignores_uplink() {
    // Shift 1 within racks of 2: server 0→1, 1→2, 2→3, 3→0. Two of
    // four flows cross racks. With shift 2, all four cross.
    let cluster = ClusterSpec::lan_10g(4).with_racks(2, 1e9);
    let (mut sim, edge) = shifted_sim(cluster, 2);
    sim.run(20);
    let w = &sim.metrics().windows()[10];
    assert_eq!(
        w.edges[edge.index()].cross_rack,
        w.edges[edge.index()].remote,
        "shift 2 on 2×2 racks must cross racks on every remote hop"
    );
}

#[test]
fn rack_locality_metric_distinguishes_shifts() {
    let cluster = ClusterSpec::lan_10g(4).with_racks(2, 10e9);
    // Shift 1: hops 0→1 (rack 0 internal), 1→2 (cross), 2→3 (rack 1
    // internal), 3→0 (cross): half the remote traffic crosses racks.
    let (mut sim, edge) = shifted_sim(cluster, 1);
    sim.run(20);
    let rack_loc = sim.metrics().edge_rack_locality(edge, 5);
    assert!(
        (rack_loc - 0.5).abs() < 0.05,
        "expected ~50% rack locality, got {rack_loc}"
    );
    // Server locality is zero (every tuple shifts off-server).
    assert!(sim.metrics().edge_locality(edge, 5) < 0.01);
}

#[test]
fn constrained_uplink_throttles_cross_rack_flows() {
    // All A→B traffic crosses racks (shift 2 on 2×2). A tight uplink
    // must cost throughput compared to a flat network with identical
    // NICs.
    let flat = ClusterSpec::lan_10g(4);
    let racked = ClusterSpec::lan_10g(4).with_racks(2, 0.5e9);
    let (mut flat_sim, _) = shifted_sim(flat, 2);
    let (mut racked_sim, _) = shifted_sim(racked, 2);
    flat_sim.run(30);
    racked_sim.run(30);
    let flat_tput = flat_sim.metrics().avg_throughput(10);
    let racked_tput = racked_sim.metrics().avg_throughput(10);
    assert!(
        racked_tput < flat_tput * 0.6,
        "uplink bottleneck should bite: flat {flat_tput}, racked {racked_tput}"
    );
}

#[test]
fn generous_uplink_changes_nothing() {
    let flat = ClusterSpec::lan_10g(4);
    let racked = ClusterSpec::lan_10g(4).with_racks(2, 100e9);
    let (mut flat_sim, _) = shifted_sim(flat, 2);
    let (mut racked_sim, _) = shifted_sim(racked, 2);
    flat_sim.run(20);
    racked_sim.run(20);
    assert_eq!(
        flat_sim.metrics().throughput_series(),
        racked_sim.metrics().throughput_series(),
        "an over-provisioned uplink must be invisible"
    );
}

#[test]
fn latency_reported_for_sinks() {
    let cluster = ClusterSpec::lan_10g(4);
    let (mut sim, _) = shifted_sim(cluster, 1);
    sim.run(20);
    let avg = sim.metrics().avg_latency(5);
    let max = sim.metrics().max_latency(5);
    assert!(avg > 0.0, "pipeline latency must be visible");
    assert!(max >= avg);
    // The chain is 3 hops deep; steady-state latency stays within a
    // few windows unless queues explode.
    assert!(avg < 60.0 * 0.1, "latency {avg}s unreasonable");
}
