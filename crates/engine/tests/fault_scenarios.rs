//! Seeded fault-scenario acceptance and regression tests, gated behind
//! the `fault-injection` feature (heavier runs; CI executes them with
//! `cargo test --features fault-injection`).
//!
//! The two acceptance scenarios of the robustness milestone:
//!
//! * a POI crash during the ⑤ `PROPAGATE` phase combined with a
//!   dropped ⑥ `MIGRATE` runs to completion twice with identical tuple
//!   counts and final key→state maps (determinism under faults);
//! * a manager death mid-wave degrades the deployment to pure hash
//!   routing with zero lost state, after the wave retried and aborted
//!   within its deadline.
//!
//! `recorded_fault_seeds_*` pins the seeds that exercised recovery
//! bugs while this protocol was built — they must keep draining and
//! stay deterministic forever.
#![cfg(feature = "fault-injection")]

use std::collections::HashMap;
use std::sync::Arc;
use streamloc_engine::{
    ClusterSpec, ControlClass, CountOperator, EdgeId, FaultEvent, FaultPlan, Grouping, HashRouter,
    Key, KeyRouter, LiveConfig, LiveReconfig, LiveRuntime, ModuloRouter, Placement, PoId,
    ReconfigError, ReconfigPlan, SimConfig, Simulation, SourceRate, Topology, Tuple, WaveConfig,
};

const KEYS: u64 = 12;
const PARALLELISM: usize = 3;
const TOTAL: u64 = 18_000;

fn finite_sim() -> Simulation {
    let mut b = Topology::builder();
    let s = b.source("S", PARALLELISM, SourceRate::PerSecond(20_000.0), |i| {
        let mut c = i as u64;
        let mut left = TOTAL / PARALLELISM as u64;
        Box::new(move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            c = c.wrapping_add(0x9e37_79b9);
            let k = c % KEYS;
            Some(Tuple::new([Key::new(k), Key::new(k)], 64))
        })
    });
    let a = b.stateful("A", PARALLELISM, CountOperator::factory());
    let bb = b.stateful("B", PARALLELISM, CountOperator::factory());
    b.connect(s, a, Grouping::fields(0));
    b.connect(a, bb, Grouping::fields(1));
    let topo = b.build().unwrap();
    let placement = Placement::aligned(&topo, PARALLELISM);
    Simulation::new(
        topo,
        ClusterSpec::lan_10g(PARALLELISM),
        placement,
        SimConfig::default(),
    )
}

fn modulo_plan(sim: &Simulation, name: &str) -> ReconfigPlan {
    let topo = sim.topology();
    let dest = topo.po_by_name(name).unwrap();
    let edge = topo.in_edges(dest)[0];
    let src = topo.edge(edge).from();
    let dest_pois = sim.poi_ids(dest);
    let routers = sim
        .poi_ids(src)
        .into_iter()
        .map(|p| (p, edge, Arc::new(ModuloRouter) as Arc<dyn KeyRouter>))
        .collect();
    let hash = HashRouter;
    let migrations = (0..KEYS)
        .filter_map(|k| {
            let key = Key::new(k);
            let old = hash.route(key, PARALLELISM) as usize;
            let new = (k % PARALLELISM as u64) as usize;
            (old != new).then(|| (dest_pois[old], key, dest_pois[new]))
        })
        .collect();
    ReconfigPlan { routers, migrations }
}

/// Canonical run outcome: `(sink tuples, per-instance sorted key→count
/// maps, reconfig errors in order)` — equal outcomes mean the runs
/// were behaviourally identical.
type Outcome = (u64, Vec<Vec<(Key, u64)>>, Vec<ReconfigError>);

fn outcome_of(sim: &Simulation) -> Outcome {
    let mut states = Vec::new();
    for name in ["S", "A", "B"] {
        let po = sim.topology().po_by_name(name).unwrap();
        for poi in sim.poi_ids(po) {
            let mut m: Vec<(Key, u64)> = sim
                .poi_state(poi)
                .iter()
                .map(|(&k, v)| (k, v.as_count().unwrap()))
                .collect();
            m.sort_unstable();
            states.push(m);
        }
    }
    let errors = sim
        .metrics()
        .windows()
        .iter()
        .flat_map(|w| w.reconfig_errors.iter().copied())
        .collect();
    (sim.metrics().total_sink(), states, errors)
}

/// Acceptance scenario 1 driver: crash an A instance while the wave is
/// propagating, and drop the first ⑥ `MIGRATE` on top of it.
fn crash_during_propagate_run() -> Outcome {
    let mut sim = finite_sim();
    sim.set_auto_checkpoint(Some(2));
    // Crash A#1 one window after the wave starts — while ⑤ is in
    // flight — and lose the first state transfer entirely.
    let a_poi = sim.poi_ids(sim.topology().po_by_name("A").unwrap())[1];
    sim.install_fault_plan(
        FaultPlan::new()
            .with(FaultEvent::CrashPoi {
                poi: a_poi.index(),
                window: 5,
            })
            .with(FaultEvent::DropControl {
                class: ControlClass::Migrate,
                occurrence: 0,
            }),
    );
    sim.run(4);
    sim.start_reconfiguration(modulo_plan(&sim, "A")).unwrap();
    let spent = sim.run_until_drained(800);
    assert!(spent < 800, "faulted pipeline failed to drain");
    outcome_of(&sim)
}

#[test]
fn crash_during_propagate_with_dropped_migrate_is_deterministic() {
    let first = crash_during_propagate_run();
    let second = crash_during_propagate_run();
    assert!(first.0 > 0, "the pipeline should still make progress");
    assert_eq!(
        first, second,
        "same fault plan must reproduce identical tuple counts, states and errors"
    );
}

#[test]
fn manager_death_degrades_to_hash_with_zero_lost_state() {
    let mut sim = finite_sim();
    // The manager dies in the first step after the wave starts, while
    // acks are still outstanding — before ⑤ is released. (Once ⑤ is
    // out, the wave is self-propagating and survives a manager death.)
    sim.install_fault_plan(FaultPlan::new().with(FaultEvent::KillManager { window: 4 }));
    sim.run(4);
    let wave = WaveConfig {
        deadline_windows: 6,
        max_retries: 2,
        backoff: 2,
    };
    let wave_start = sim.window_index();
    sim.start_reconfiguration_with(modulo_plan(&sim, "A"), wave)
        .unwrap();
    let spent = sim.run_until_drained(800);
    assert!(spent < 800, "pipeline failed to drain after manager death");

    assert!(sim.manager_down());
    assert!(sim.degraded_to_hash(), "must fall back to pure hash routing");
    // The wave aborted within its (deadline × retries) budget.
    let abort_window = sim
        .metrics()
        .windows()
        .iter()
        .position(|w| w.reconfig_errors.contains(&ReconfigError::Aborted))
        .expect("the orphaned wave must abort") as u64;
    let budget = 6 * (1 + 2 + 4) + 2; // deadline × Σ backoff^k, + slack
    assert!(
        abort_window <= wave_start + budget,
        "abort at window {abort_window}, wave started at {wave_start}"
    );
    // Degraded, not broken: a new wave is refused...
    assert!(sim.start_reconfiguration(ReconfigPlan::empty()).is_err());
    // ...and zero state was lost: full conservation, unique ownership.
    let a_po = sim.topology().po_by_name("A").unwrap();
    let mut owner: HashMap<Key, usize> = HashMap::new();
    let mut total = 0u64;
    for poi in sim.poi_ids(a_po) {
        for (&k, v) in sim.poi_state(poi) {
            assert!(owner.insert(k, poi.index()).is_none(), "split key {k}");
            total += v.as_count().unwrap();
        }
    }
    assert_eq!(total, TOTAL, "manager death must not lose state");
    // Whole-table fallback: every key sits at its hash owner.
    let hash = HashRouter;
    let a_pois = sim.poi_ids(a_po);
    for (&k, &owner_poi) in &owner {
        let expect = a_pois[hash.route(k, PARALLELISM) as usize].index();
        assert_eq!(owner_poi, expect, "key {k} not at its hash owner");
    }
}

/// Seeds recorded while building the recovery protocol: each one
/// previously exposed a hang, a conservation bug or a nondeterministic
/// ordering. They must drain and reproduce exactly, forever.
const REGRESSION_SEEDS: [u64; 6] = [3, 7, 42, 0x2a5f, 0xC0FFEE, 0xDEAD_BEEF];

fn seeded_run(seed: u64) -> Outcome {
    let mut sim = finite_sim();
    sim.set_auto_checkpoint(Some(3));
    let n_pois = PARALLELISM * 3;
    sim.install_fault_plan(FaultPlan::random(seed, n_pois, 25));
    sim.run(4);
    // A seed may have killed the manager already; a refused wave is a
    // legitimate outcome to reproduce.
    let _ = sim.start_reconfiguration(modulo_plan(&sim, "A"));
    let spent = sim.run_until_drained(800);
    assert!(spent < 800, "seed {seed}: pipeline failed to drain");
    outcome_of(&sim)
}

#[test]
fn recorded_fault_seeds_drain_and_reproduce() {
    for seed in REGRESSION_SEEDS {
        let first = seeded_run(seed);
        let second = seeded_run(seed);
        assert_eq!(first, second, "seed {seed} is nondeterministic");
    }
}

// ---- live-runtime fault scenarios ---------------------------------

/// Rate-limited finite chain for the live runtime, mirroring the sim
/// topology. Returns the builder handles the tests need: `(topology,
/// source po, A po, S→A edge)`.
fn live_chain(total: u64, rate: f64) -> (Topology, PoId, PoId, EdgeId) {
    let mut b = Topology::builder();
    let s = b.source("S", PARALLELISM, SourceRate::PerSecond(rate), move |i| {
        let mut c = i as u64;
        let mut left = total / PARALLELISM as u64;
        Box::new(move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            c = c.wrapping_add(0x9e37_79b9);
            let k = c % KEYS;
            Some(Tuple::new([Key::new(k), Key::new(k)], 0))
        })
    });
    let a = b.stateful("A", PARALLELISM, CountOperator::factory());
    let bb = b.stateful("B", PARALLELISM, CountOperator::factory());
    let hop = b.connect(s, a, Grouping::fields(0));
    b.connect(a, bb, Grouping::fields(1));
    (b.build().unwrap(), s, a, hop)
}

fn live_modulo_plan(source: PoId, a: PoId, hop: EdgeId) -> LiveReconfig {
    let hash = HashRouter;
    let migrations = (0..KEYS)
        .filter_map(|k| {
            let key = Key::new(k);
            let old = hash.route(key, PARALLELISM) as usize;
            let new = (k % PARALLELISM as u64) as usize;
            (old != new).then_some((a, key, old, new))
        })
        .collect();
    LiveReconfig {
        routers: vec![(source, hop, Arc::new(ModuloRouter))],
        migrations,
    }
}

/// A dropped live ⑥ `MIGRATE` loses the key's state (at-most-once) but
/// must never wedge the pipeline: the new owner adopts the orphaned
/// key when it drains, and `join()` returns.
#[test]
fn live_wave_with_dropped_migrate_still_drains() {
    let total = 60_000u64;
    let (topo, s, a, hop) = live_chain(total, 50_000.0);
    let placement = Placement::aligned(&topo, PARALLELISM);
    let rt = LiveRuntime::start(topo, placement, PARALLELISM, LiveConfig::default());
    rt.install_fault_plan(FaultPlan::new().with(FaultEvent::DropControl {
        class: ControlClass::Migrate,
        occurrence: 0,
    }));
    std::thread::sleep(std::time::Duration::from_millis(20));
    rt.reconfigure_with_deadline(live_modulo_plan(s, a, hop), WaveConfig::default())
        .expect("wave completes; only a migration was lost");
    let reports = rt.join();
    // No tuple was silently discarded: every emitted tuple was
    // processed somewhere at A (original owner, buffer release or
    // orphan adoption).
    let a_processed: u64 = reports
        .iter()
        .filter(|r| r.po == a)
        .map(|r| r.processed)
        .sum();
    assert_eq!(a_processed, total);
}

/// Lost ③ `SEND_RECONF`: the wave driver misses its first deadline,
/// then the retry restages and force-applies — the wave still
/// completes and conserves every tuple.
#[test]
fn live_wave_retries_after_lost_send_reconf() {
    // Slow enough that the stream comfortably outlives a missed
    // deadline plus the retry (~0.65 s of wave worst case vs ~2 s of
    // stream per source).
    let total = 60_000u64;
    let (topo, s, a, hop) = live_chain(total, 10_000.0);
    let placement = Placement::aligned(&topo, PARALLELISM);
    let rt = LiveRuntime::start(topo, placement, PARALLELISM, LiveConfig::default());
    rt.install_fault_plan(FaultPlan::new().with(FaultEvent::DropControl {
        class: ControlClass::SendReconf,
        occurrence: 1,
    }));
    std::thread::sleep(std::time::Duration::from_millis(20));
    let wave = WaveConfig {
        deadline_windows: 3,
        max_retries: 2,
        backoff: 1,
    };
    rt.reconfigure_with_deadline(live_modulo_plan(s, a, hop), wave)
        .expect("retry must recover the lost stage message");
    let reports = rt.join();
    let a_processed: u64 = reports
        .iter()
        .filter(|r| r.po == a)
        .map(|r| r.processed)
        .sum();
    assert_eq!(a_processed, total);
}

/// An injected ③ `SEND_RECONF` delay must be honored to its configured
/// duration (here 2 windows = 200 ms), not a fixed 50 ms: the staged
/// acks cannot all arrive before the delayed message is delivered, so
/// the whole wave takes at least that long — and still completes.
#[test]
fn live_control_delay_honors_configured_duration() {
    let total = 120_000u64;
    let (topo, s, a, hop) = live_chain(total, 40_000.0);
    let placement = Placement::aligned(&topo, PARALLELISM);
    let rt = LiveRuntime::start(topo, placement, PARALLELISM, LiveConfig::default());
    rt.install_fault_plan(FaultPlan::new().with(FaultEvent::DelayControl {
        class: ControlClass::SendReconf,
        occurrence: 0,
        windows: 2,
    }));
    std::thread::sleep(std::time::Duration::from_millis(20));
    let started = std::time::Instant::now();
    rt.reconfigure_with_deadline(live_modulo_plan(s, a, hop), WaveConfig::default())
        .expect("a delayed stage message still completes the wave");
    let elapsed = started.elapsed();
    assert!(
        elapsed >= std::time::Duration::from_millis(200),
        "2-window delay must hold the wave ≥ 200 ms, took {elapsed:?}"
    );
    let reports = rt.join();
    let a_processed: u64 = reports
        .iter()
        .filter(|r| r.po == a)
        .map(|r| r.processed)
        .sum();
    assert_eq!(a_processed, total);
}

/// Regression for the ⑤ release path: when a delayed root `Propagate`
/// hits a root that exited mid-wave, the failed send must mark the
/// root as exited so the wave finishes with a `Nack` on its *first*
/// attempt instead of burning the deadline and its retries.
#[test]
fn live_delayed_propagate_to_dead_root_nacks_fast() {
    // A tiny stream: the sources exhaust (and exit) long before the
    // 3-window delayed Propagate comes due.
    let (topo, s, a, hop) = live_chain(3_000, 1_000_000.0);
    let placement = Placement::aligned(&topo, PARALLELISM);
    let rt = LiveRuntime::start(topo, placement, PARALLELISM, LiveConfig::default());
    let mut plan = FaultPlan::new();
    for occurrence in 0..PARALLELISM as u64 {
        plan = plan.with(FaultEvent::DelayControl {
            class: ControlClass::Propagate,
            occurrence,
            windows: 3,
        });
    }
    rt.install_fault_plan(plan);
    // Let the pipeline drain completely: every instance exits.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let wave = WaveConfig {
        deadline_windows: 20,
        max_retries: 2,
        backoff: 2,
    };
    let started = std::time::Instant::now();
    let result = rt.reconfigure_with_deadline(live_modulo_plan(s, a, hop), wave);
    let elapsed = started.elapsed();
    assert!(
        matches!(result, Err(ReconfigError::Nack)),
        "exited participants must surface as Nack, got {result:?}"
    );
    // First-attempt budget is 2 s; with exits tracked on the failed
    // delayed sends the wave must conclude well within it rather than
    // retrying (which would take over 6 s).
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "wave stalled {elapsed:?} instead of tracking the dead roots"
    );
    let _ = rt.join();
}

/// Data-plane loss: two seeded `DropBatch` events vaporize a
/// `Msg::Batch` each, mid-flight. The pipeline must keep draining
/// (at-most-once — no retransmit, no wedge) and the drop counters must
/// close the books exactly: every routed tuple was either processed at
/// A or B or sits in `live_batch_dropped_tuples_total`.
#[test]
fn live_batch_drop_drains_and_accounts_for_every_tuple() {
    use streamloc_engine::MetricsRegistry;

    let total = 60_000u64;
    let (topo, _s, a, _hop) = live_chain(total, 50_000.0);
    let placement = Placement::aligned(&topo, PARALLELISM);
    let registry = Arc::new(MetricsRegistry::new());
    let config = LiveConfig {
        batch_size: 64,
        metrics: Some(Arc::clone(&registry)),
        ..LiveConfig::default()
    };
    let rt = LiveRuntime::start(topo, placement, PARALLELISM, config);
    // Arm the plan immediately: occurrences count batches sent after
    // arming, so the 1st and 6th in-flight batches are lost.
    rt.install_fault_plan(
        FaultPlan::new()
            .with(FaultEvent::DropBatch { occurrence: 0 })
            .with(FaultEvent::DropBatch { occurrence: 5 }),
    );
    let reports = rt.join();

    let snapshot: HashMap<String, u64> = registry.snapshot().into_iter().collect();
    let get = |name: &str| snapshot.get(name).copied().unwrap_or(0);

    let drops = get("live_batch_drops_total");
    let dropped_tuples = get("live_batch_dropped_tuples_total");
    assert_eq!(drops, 2, "both seeded occurrences must fire exactly once");
    assert!(
        (2..=2 * 64).contains(&dropped_tuples),
        "2 dropped batches of <= 64 tuples, got {dropped_tuples}"
    );

    let processed_a: u64 = reports
        .iter()
        .filter(|r| r.po == a)
        .map(|r| r.processed)
        .sum();
    let processed_b: u64 = reports
        .iter()
        .filter(|r| r.po.index() == 2)
        .map(|r| r.processed)
        .sum();
    assert!(
        processed_a < total || processed_b < total,
        "dropped batches must actually lose tuples"
    );
    // Conservation: sends are counted before the fault gate, so routed
    // tuples = processed (at A and B) + dropped, with nothing counted
    // twice and nothing leaking.
    assert_eq!(
        get("live_tuples_routed_total"),
        processed_a + processed_b + dropped_tuples,
        "drop accounting must close the books"
    );
}

/// Crash-respawn in the live runtime: after `checkpoint_now`, a
/// crashed instance comes back with the checkpointed counts and keeps
/// counting forward from there.
#[test]
fn live_crash_respawns_from_checkpoint() {
    let mut b = Topology::builder();
    let s = b.source("S", 1, SourceRate::PerSecond(5_000.0), |_| {
        Box::new(|| Some(Tuple::new([Key::new(1)], 0)))
    });
    let a = b.stateful("A", 1, CountOperator::factory());
    b.connect(s, a, Grouping::fields(0));
    let topo = b.build().unwrap();
    let placement = Placement::aligned(&topo, 1);
    let mut rt = LiveRuntime::start(topo, placement, 1, LiveConfig::default());
    std::thread::sleep(std::time::Duration::from_millis(60));

    let cp = rt.checkpoint_now();
    assert!(cp.total_keys() > 0, "checkpoint captured live state");
    let at_cp = rt
        .last_checkpoint()
        .unwrap()
        .total_keys();
    assert_eq!(at_cp, cp.total_keys());
    let cp_count = rt
        .probe_state(a, 0)
        .unwrap()
        .values()
        .filter_map(|v| v.as_count())
        .sum::<u64>();

    rt.crash_instance(a, 0);
    let after_crash = rt
        .probe_state(a, 0)
        .expect("respawned instance answers probes")
        .values()
        .filter_map(|v| v.as_count())
        .sum::<u64>();
    // Counts are monotone from the restored snapshot: everything since
    // the checkpoint is lost (at-most-once), nothing before it is.
    assert!(
        after_crash >= 1 && after_crash <= cp_count + 10_000,
        "restored count {after_crash} not anchored at checkpoint ({cp_count})"
    );

    rt.stop();
    let reports = rt.join();
    assert!(reports.iter().any(|r| r.po == a));
}
