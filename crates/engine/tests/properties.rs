//! Property-based tests for the simulator: conservation, routing
//! determinism and grouping semantics over randomized topologies.

use proptest::prelude::*;
use std::collections::HashMap;
use streamloc_engine::{
    ClusterSpec, CountOperator, Grouping, IdentityOperator, Key, Placement, SimConfig, Simulation,
    SourceRate, Topology, Tuple,
};

/// A randomized linear topology: source → zero or more stateless
/// stages (shuffle or local-or-shuffle) → stateful A → stateful B.
#[derive(Debug, Clone)]
struct ChainShape {
    parallelism: usize,
    servers: usize,
    stateless_stages: Vec<bool>, // true = local-or-shuffle, false = shuffle
    keys: u64,
    payload: u32,
    total: u64,
}

fn chain_shape() -> impl Strategy<Value = ChainShape> {
    (
        1usize..5,
        1usize..5,
        prop::collection::vec(any::<bool>(), 0..3),
        1u64..40,
        prop::sample::select(vec![0u32, 100, 2048]),
        5_000u64..20_000,
    )
        .prop_map(
            |(parallelism, servers, stateless_stages, keys, payload, total)| ChainShape {
                parallelism,
                servers: servers.min(parallelism),
                stateless_stages,
                keys,
                payload,
                total,
            },
        )
}

fn build(shape: &ChainShape, seed: u64) -> Simulation {
    let mut builder = Topology::builder();
    let keys = shape.keys;
    let total = shape.total;
    let parallelism = shape.parallelism;
    let payload = shape.payload;
    let source = builder.source("S", parallelism, SourceRate::Saturate, move |i| {
        let mut c = seed ^ ((i as u64) << 40);
        let mut left = total / parallelism as u64;
        Box::new(move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            c = c.wrapping_add(0x9e37_79b9_7f4a_7c15);
            Some(Tuple::new(
                [Key::new((c >> 5) % keys), Key::new((c >> 23) % keys)],
                payload,
            ))
        })
    });
    let mut prev = source;
    for (idx, &local) in shape.stateless_stages.iter().enumerate() {
        let stage = builder.stateless(
            &format!("T{idx}"),
            parallelism,
            IdentityOperator::factory(),
        );
        let grouping = if local {
            Grouping::LocalOrShuffle
        } else {
            Grouping::Shuffle
        };
        builder.connect(prev, stage, grouping);
        prev = stage;
    }
    let a = builder.stateful("A", parallelism, CountOperator::factory());
    let b = builder.stateful("B", parallelism, CountOperator::factory());
    builder.connect(prev, a, Grouping::fields(0));
    builder.connect(a, b, Grouping::fields(1));
    let topology = builder.build().expect("valid random chain");
    let placement = Placement::aligned(&topology, shape.servers);
    Simulation::new(
        topology,
        ClusterSpec::lan_10g(shape.servers),
        placement,
        SimConfig {
            max_in_flight: 10_000,
            ..SimConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_tuple_reaches_the_sink(shape in chain_shape(), seed in any::<u64>()) {
        let mut sim = build(&shape, seed);
        let windows = sim.run_until_drained(50_000);
        prop_assert!(windows < 50_000, "failed to drain");
        let expected = (shape.total / shape.parallelism as u64) * shape.parallelism as u64;
        prop_assert_eq!(sim.metrics().total_emitted(), expected);
        prop_assert_eq!(sim.metrics().total_sink(), expected);
    }

    #[test]
    fn fields_grouping_gives_unique_key_ownership(
        shape in chain_shape(), seed in any::<u64>(),
    ) {
        let mut sim = build(&shape, seed);
        sim.run_until_drained(50_000);
        for name in ["A", "B"] {
            let po = sim.topology().po_by_name(name).unwrap();
            let mut owner: HashMap<Key, usize> = HashMap::new();
            for poi in sim.poi_ids(po) {
                for &k in sim.poi_state(poi).keys() {
                    prop_assert!(
                        owner.insert(k, poi.index()).is_none(),
                        "{} key {} at two instances", name, k
                    );
                }
            }
        }
    }

    #[test]
    fn counts_equal_stream_composition(shape in chain_shape(), seed in any::<u64>()) {
        let mut sim = build(&shape, seed);
        sim.run_until_drained(50_000);
        let a = sim.topology().po_by_name("A").unwrap();
        let total_counted: u64 = sim
            .poi_ids(a)
            .iter()
            .flat_map(|&p| sim.poi_state(p).values())
            .map(|v| v.as_count().unwrap())
            .sum();
        prop_assert_eq!(total_counted, sim.metrics().total_emitted());
    }

    #[test]
    fn local_or_shuffle_never_crosses_when_dest_is_everywhere(
        parallelism in 1usize..5, seed in any::<u64>(),
    ) {
        // Destination has one instance per server: local-or-shuffle
        // must route 100% locally.
        let mut builder = Topology::builder();
        let source = builder.source("S", parallelism, SourceRate::PerSecond(5_000.0), move |i| {
            let mut c = seed ^ i as u64;
            Box::new(move || {
                c += 1;
                Some(Tuple::new([Key::new(c % 8)], 64))
            })
        });
        let t = builder.stateless("T", parallelism, IdentityOperator::factory());
        let edge = builder.connect(source, t, Grouping::LocalOrShuffle);
        let topology = builder.build().unwrap();
        let placement = Placement::aligned(&topology, parallelism);
        let mut sim = Simulation::new(
            topology,
            ClusterSpec::lan_10g(parallelism),
            placement,
            SimConfig::default(),
        );
        sim.run(10);
        prop_assert!(sim.metrics().total_emitted() > 0);
        prop_assert_eq!(sim.metrics().edge_locality(edge, 0), 1.0);
    }

    #[test]
    fn simulation_is_deterministic(shape in chain_shape(), seed in any::<u64>()) {
        let mut a = build(&shape, seed);
        let mut b = build(&shape, seed);
        a.run(12);
        b.run(12);
        let series_a = a.metrics().throughput_series();
        let series_b = b.metrics().throughput_series();
        prop_assert_eq!(series_a, series_b);
        prop_assert_eq!(a.in_flight(), b.in_flight());
    }
}

mod route_batch_props {
    use proptest::prelude::*;
    use streamloc_engine::{DestRun, HashRouter, Key, KeyRouter, ModuloRouter, ShiftedRouter};

    /// Expands destination runs back to one destination per key.
    fn expand(runs: &[DestRun]) -> Vec<u32> {
        runs.iter()
            .flat_map(|r| std::iter::repeat_n(r.dest, r.len as usize))
            .collect()
    }

    /// Key sequences built from short runs over a small domain, so
    /// both long runs and rapid alternation appear.
    fn run_heavy_keys() -> impl Strategy<Value = Vec<Key>> {
        prop::collection::vec((0u64..40, 1usize..6), 0..80).prop_map(|segments| {
            segments
                .into_iter()
                .flat_map(|(k, n)| std::iter::repeat_n(Key::new(k), n))
                .collect()
        })
    }

    proptest! {
        /// The columnar contract: expanding `route_batch`'s runs must
        /// reproduce the per-key `route` sequence exactly.
        #[test]
        fn hash_route_batch_equals_per_key_route(
            keys in run_heavy_keys(),
            instances in 1usize..12,
        ) {
            let mut runs = Vec::new();
            HashRouter.route_batch(&keys, instances, &mut runs);
            let per_key: Vec<u32> =
                keys.iter().map(|&k| HashRouter.route(k, instances)).collect();
            prop_assert_eq!(expand(&runs), per_key);
            prop_assert!(runs.iter().all(|r| r.len > 0), "empty run emitted");
        }

        /// Strict A/B alternation is the memo's worst case — it must
        /// still route identically (and exercise both memo slots).
        #[test]
        fn alternating_keys_route_identically(
            a in 0u64..1_000,
            b in 0u64..1_000,
            n in 0usize..64,
            instances in 1usize..8,
        ) {
            let keys: Vec<Key> = (0..n)
                .map(|i| Key::new(if i % 2 == 0 { a } else { b }))
                .collect();
            let mut runs = Vec::new();
            HashRouter.route_batch(&keys, instances, &mut runs);
            let per_key: Vec<u32> =
                keys.iter().map(|&k| HashRouter.route(k, instances)).collect();
            prop_assert_eq!(expand(&runs), per_key);
        }

        /// Routers relying on the trait's default `route_batch` (no
        /// override) satisfy the same contract.
        #[test]
        fn default_route_batch_equals_per_key_route(
            keys in run_heavy_keys(),
            instances in 1usize..12,
            shift in 0u64..8,
        ) {
            let routers: [&dyn KeyRouter; 2] = [&ModuloRouter, &ShiftedRouter::new(shift)];
            for router in routers {
                let mut runs = Vec::new();
                router.route_batch(&keys, instances, &mut runs);
                let per_key: Vec<u32> =
                    keys.iter().map(|&k| router.route(k, instances)).collect();
                prop_assert_eq!(expand(&runs), per_key);
            }
        }
    }
}

mod span_props {
    use proptest::prelude::*;
    use streamloc_engine::obs::export::{parse_jsonl, to_jsonl};
    use streamloc_engine::{Key, SpanSampler, TraceEvent, TraceEventKind, Tuple};

    /// Key sequences built from short runs over a small domain, so the
    /// columnar stamping path sees both long runs and alternation.
    fn run_heavy_keys() -> impl Strategy<Value = Vec<u64>> {
        prop::collection::vec((0u64..48, 1usize..6), 0..60).prop_map(|segments| {
            segments
                .into_iter()
                .flat_map(|(k, n)| std::iter::repeat_n(k, n))
                .collect()
        })
    }

    proptest! {
        /// The sampler is a pure function of (seed, denominator, key):
        /// two instances built alike select the identical sampled set.
        #[test]
        fn sampler_is_deterministic(
            seed in any::<u64>(),
            denom in 1u64..512,
            keys in prop::collection::vec(any::<u64>(), 0..200),
        ) {
            let a = SpanSampler::new(seed, denom);
            let b = SpanSampler::new(seed, denom);
            let picked_a: Vec<u64> =
                keys.iter().copied().filter(|&k| a.sampled(Key::new(k))).collect();
            let picked_b: Vec<u64> =
                keys.iter().copied().filter(|&k| b.sampled(Key::new(k))).collect();
            prop_assert_eq!(picked_a, picked_b);
        }

        /// Columnar equivalence: `stamp_batch` (one decision per key
        /// run) marks exactly the tuples the per-tuple `sampled` check
        /// would, with the origin stamp on every marked tuple.
        #[test]
        fn stamp_batch_equals_per_tuple_sampling(
            seed in any::<u64>(),
            denom in 1u64..64,
            keys in run_heavy_keys(),
            now in 1u64..u64::MAX,
        ) {
            let sampler = SpanSampler::new(seed, denom);
            let mut tuples: Vec<Tuple> = keys
                .iter()
                .map(|&k| Tuple::new([Key::new(k), Key::new(k ^ 1)], 8))
                .collect();
            sampler.stamp_batch(&mut tuples, 0, now);
            for (t, &k) in tuples.iter().zip(&keys) {
                let want = sampler.sampled(Key::new(k));
                prop_assert_eq!(
                    t.span_origin_ns() != 0,
                    want,
                    "key {} stamped={} sampled={}", k, t.span_origin_ns() != 0, want
                );
                if want {
                    prop_assert_eq!(t.span_origin_ns(), now);
                }
            }
        }

        /// A 1/1 sampler selects every key.
        #[test]
        fn denominator_one_samples_everything(seed in any::<u64>(), k in any::<u64>()) {
            prop_assert!(SpanSampler::new(seed, 1).sampled(Key::new(k)));
        }

        /// All three span event kinds survive the JSONL round trip with
        /// arbitrary field values.
        #[test]
        fn span_events_round_trip_jsonl(
            poi in 0usize..64,
            key in any::<u64>(),
            queue_ns in any::<u64>(),
            proc_ns in any::<u64>(),
            total_ns in any::<u64>(),
            remote in any::<bool>(),
            wave_raw in (any::<bool>(), 0u64..100),
        ) {
            let wave = wave_raw.0.then_some(wave_raw.1);
            let kinds = [
                TraceEventKind::SpanBegin { poi, key },
                TraceEventKind::SpanHop { poi, key, queue_ns, proc_ns, remote },
                TraceEventKind::SpanEnd { poi, key, total_ns },
            ];
            let events: Vec<TraceEvent> = kinds
                .into_iter()
                .enumerate()
                .map(|(i, kind)| TraceEvent {
                    seq: i as u64,
                    time: i as f64 * 0.25,
                    window: i as u64,
                    wave,
                    kind,
                })
                .collect();
            let parsed = parse_jsonl(&to_jsonl(&events)).expect("span events must parse");
            prop_assert_eq!(parsed, events);
        }
    }
}

mod fanout_props {
    use proptest::prelude::*;
    use streamloc_engine::{
        ClusterSpec, CountOperator, Grouping, Key, Placement, SimConfig, Simulation,
        SourceRate, Topology, Tuple,
    };

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// A fan-out DAG: one stateful stage feeding two stateful
        /// sinks. Every input tuple must be counted once by EACH sink.
        #[test]
        fn fanout_delivers_to_every_branch(
            parallelism in 1usize..4,
            keys in 1u64..24,
            seed in any::<u64>(),
        ) {
            let total = 12_000u64;
            let mut b = Topology::builder();
            let s = b.source("S", parallelism, SourceRate::Saturate, move |i| {
                let mut c = seed ^ ((i as u64) << 40);
                let mut left = total / parallelism as u64;
                Box::new(move || {
                    if left == 0 {
                        return None;
                    }
                    left -= 1;
                    c = c.wrapping_add(0x9e37_79b9);
                    Some(Tuple::new(
                        [
                            Key::new(c % keys),
                            Key::new((c >> 13) % keys),
                            Key::new((c >> 29) % keys),
                        ],
                        64,
                    ))
                })
            });
            let a = b.stateful("A", parallelism, CountOperator::factory());
            let left_sink = b.stateful("L", parallelism, CountOperator::factory());
            let right_sink = b.stateful("R", parallelism, CountOperator::factory());
            b.connect(s, a, Grouping::fields(0));
            b.connect(a, left_sink, Grouping::fields(1));
            b.connect(a, right_sink, Grouping::fields(2));
            let topo = b.build().unwrap();
            let placement = Placement::aligned(&topo, parallelism);
            let mut sim = Simulation::new(
                topo,
                ClusterSpec::lan_10g(parallelism),
                placement,
                SimConfig {
                    max_in_flight: 8_000,
                    ..SimConfig::default()
                },
            );
            let windows = sim.run_until_drained(50_000);
            prop_assert!(windows < 50_000, "fan-out failed to drain");
            let expected = (total / parallelism as u64) * parallelism as u64;
            for name in ["A", "L", "R"] {
                let po = sim.topology().po_by_name(name).unwrap();
                let counted: u64 = sim
                    .poi_ids(po)
                    .iter()
                    .flat_map(|&p| sim.poi_state(p).values())
                    .map(|v| v.as_count().unwrap())
                    .sum();
                prop_assert_eq!(counted, expected, "{} missed tuples", name);
            }
        }
    }
}
