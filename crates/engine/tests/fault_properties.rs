//! Property tests for the failure-recovery protocol: exactly-once
//! state updates when ⑥ `MIGRATE` messages are delayed and reordered,
//! and full routing-table rollback when a wave aborts.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use streamloc_engine::{
    ClusterSpec, ControlClass, CountOperator, FaultEvent, FaultPlan, Grouping, HashRouter, Key,
    KeyRouter, ModuloRouter, Placement, ReconfigError, ReconfigPlan, SimConfig, Simulation,
    SourceRate, Topology, Tuple, WaveConfig,
};

const KEYS: u64 = 12;
const PARALLELISM: usize = 3;
const TOTAL: u64 = 18_000;

/// Finite chain S → A → B on (k, k) tuples: every emitted tuple must
/// be counted exactly once at A and exactly once at B.
fn finite_sim() -> Simulation {
    let mut b = Topology::builder();
    let s = b.source("S", PARALLELISM, SourceRate::PerSecond(20_000.0), |i| {
        let mut c = i as u64;
        let mut left = TOTAL / PARALLELISM as u64;
        Box::new(move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            c = c.wrapping_add(0x9e37_79b9);
            let k = c % KEYS;
            Some(Tuple::new([Key::new(k), Key::new(k)], 64))
        })
    });
    let a = b.stateful("A", PARALLELISM, CountOperator::factory());
    let bb = b.stateful("B", PARALLELISM, CountOperator::factory());
    b.connect(s, a, Grouping::fields(0));
    b.connect(a, bb, Grouping::fields(1));
    let topo = b.build().unwrap();
    let placement = Placement::aligned(&topo, PARALLELISM);
    Simulation::new(
        topo,
        ClusterSpec::lan_10g(PARALLELISM),
        placement,
        SimConfig::default(),
    )
}

/// Re-keys operator `name` from hash to modulo routing, with the
/// migrations that move every reassigned key to its new owner.
fn modulo_plan(sim: &Simulation, name: &str) -> ReconfigPlan {
    let topo = sim.topology();
    let dest = topo.po_by_name(name).unwrap();
    let edge = topo.in_edges(dest)[0];
    let src = topo.edge(edge).from();
    let dest_pois = sim.poi_ids(dest);
    let routers = sim
        .poi_ids(src)
        .into_iter()
        .map(|p| (p, edge, Arc::new(ModuloRouter) as Arc<dyn KeyRouter>))
        .collect();
    let hash = HashRouter;
    let migrations = (0..KEYS)
        .filter_map(|k| {
            let key = Key::new(k);
            let old = hash.route(key, PARALLELISM) as usize;
            let new = (k % PARALLELISM as u64) as usize;
            (old != new).then(|| (dest_pois[old], key, dest_pois[new]))
        })
        .collect();
    ReconfigPlan { routers, migrations }
}

fn per_key_counts(sim: &Simulation, name: &str) -> HashMap<Key, u64> {
    let po = sim.topology().po_by_name(name).unwrap();
    let mut out = HashMap::new();
    for poi in sim.poi_ids(po) {
        for (&k, v) in sim.poi_state(poi) {
            *out.entry(k).or_insert(0) += v.as_count().unwrap();
        }
    }
    out
}

/// One instance owns each key — never two (split state) or zero.
fn assert_unique_ownership(sim: &Simulation, name: &str) {
    let po = sim.topology().po_by_name(name).unwrap();
    let mut owner: HashMap<Key, usize> = HashMap::new();
    for poi in sim.poi_ids(po) {
        for &k in sim.poi_state(poi).keys() {
            assert!(
                owner.insert(k, poi.index()).is_none(),
                "key {k} of {name} owned by two instances"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exactly-once state updates: whatever subset of ⑥ `MIGRATE`
    /// messages gets delayed (and thereby reordered against the wave
    /// and against each other), every emitted tuple is counted exactly
    /// once — no loss at the old owner, no double count at the new.
    #[test]
    fn exactly_once_under_delayed_reordered_migrates(
        delays in prop::collection::vec((0u64..10, 1u64..6), 1..4),
        warmup in 2usize..6,
    ) {
        let mut sim = finite_sim();
        let mut plan = FaultPlan::new();
        for &(occurrence, windows) in &delays {
            plan = plan.with(FaultEvent::DelayControl {
                class: ControlClass::Migrate,
                occurrence,
                windows,
            });
        }
        sim.install_fault_plan(plan);
        sim.run(warmup);
        sim.start_reconfiguration(modulo_plan(&sim, "A")).unwrap();
        let spent = sim.run_until_drained(600);
        prop_assert!(spent < 600, "pipeline failed to drain");

        let a = per_key_counts(&sim, "A");
        let b = per_key_counts(&sim, "B");
        prop_assert_eq!(a.values().sum::<u64>(), TOTAL);
        prop_assert_eq!(b.values().sum::<u64>(), TOTAL);
        prop_assert_eq!(a, b);
        assert_unique_ownership(&sim, "A");
        // Delays are not losses: the protocol must never have needed
        // the out-of-band migration recovery.
        let lost = sim
            .metrics()
            .windows()
            .iter()
            .flat_map(|w| &w.reconfig_errors)
            .any(|e| *e == ReconfigError::MigrationLost);
        prop_assert!(!lost, "a delayed migration was treated as lost");
    }

    /// An aborted wave is invisible: after rollback the routing tables
    /// are identical to the pre-wave checkpoint's — whether the wave
    /// died in the stage phase (lost ③) or mid-propagation (lost ⑤,
    /// with some instances already switched and migrations in flight).
    #[test]
    fn aborted_wave_restores_pre_wave_routing(
        drop_propagate in any::<bool>(),
        occurrence in 0u64..3,
        warmup in 2usize..6,
    ) {
        let mut sim = finite_sim();
        sim.run(warmup);
        let before = sim.checkpoint().unwrap();

        let class = if drop_propagate {
            ControlClass::Propagate
        } else {
            ControlClass::SendReconf
        };
        sim.install_fault_plan(
            FaultPlan::new().with(FaultEvent::DropControl { class, occurrence }),
        );
        let wave = WaveConfig {
            deadline_windows: 4,
            max_retries: 0,
            backoff: 1,
        };
        sim.start_reconfiguration_with(modulo_plan(&sim, "A"), wave)
            .unwrap();
        let spent = sim.run_until_drained(600);
        prop_assert!(spent < 600, "pipeline failed to drain");

        let aborted = sim
            .metrics()
            .windows()
            .iter()
            .flat_map(|w| &w.reconfig_errors)
            .any(|e| matches!(e, ReconfigError::Aborted | ReconfigError::Timeout { .. }));
        prop_assert!(aborted, "the sabotaged wave should have failed");

        let after = sim.checkpoint().unwrap();
        prop_assert_eq!(
            before.router_fingerprint(KEYS, PARALLELISM),
            after.router_fingerprint(KEYS, PARALLELISM),
            "rollback must revert every routing table"
        );
        // And the rollback lost nothing: full conservation end to end.
        let a = per_key_counts(&sim, "A");
        prop_assert_eq!(a.values().sum::<u64>(), TOTAL);
        prop_assert_eq!(per_key_counts(&sim, "B").values().sum::<u64>(), TOTAL);
        assert_unique_ownership(&sim, "A");
    }
}
