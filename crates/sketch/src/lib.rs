//! Bounded-memory frequency sketches for online stream statistics.
//!
//! The locality-aware routing protocol of Caneill et al. (Middleware 2016)
//! instruments every stateful operator instance with a counter of the
//! *pairs of keys* observed in consecutive fields groupings. Because the
//! key domain is unbounded, the paper relies on the **SpaceSaving**
//! algorithm (Metwally, Agrawal, El Abbadi — ICDT 2005) to maintain an
//! approximate list of the most frequent items in O(capacity) memory.
//!
//! This crate provides:
//!
//! * [`SpaceSaving`] — the stream-summary implementation with O(1)
//!   amortized updates, per-item error bounds, descending iteration and
//!   lossless merging of sketches collected from different operator
//!   instances;
//! * [`ExactCounter`] — an exact hash-map counter, used by the paper's
//!   *offline* analysis mode (which counts pairs exactly over a sample)
//!   and as a test oracle for the sketch.
//!
//! # Example
//!
//! ```
//! use streamloc_sketch::SpaceSaving;
//!
//! let mut sketch = SpaceSaving::new(100);
//! for word in ["a", "b", "a", "c", "a", "b"] {
//!     sketch.offer(word);
//! }
//! let top: Vec<_> = sketch.iter().map(|e| (e.key, e.count)).collect();
//! assert_eq!(top[0], (&"a", 3));
//! assert_eq!(sketch.total(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod count_min;
mod exact;
mod space_saving;
mod stable_hash;

pub use count_min::CountMin;
pub use exact::ExactCounter;
pub use space_saving::{Entry, Estimate, Iter, SpaceSaving};
pub use stable_hash::{splitmix64, StableHasher};
