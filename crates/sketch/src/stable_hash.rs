//! Deterministic hashing shared by every crate in the workspace.
//!
//! `std`'s `DefaultHasher` is explicitly unstable: its algorithm may
//! change between Rust releases, and `RandomState` seeds it per
//! process. Sketch row hashes, hash-based fields grouping and the
//! simulator's seeded choices must instead be identical across runs,
//! platforms and compiler versions, so everything funnels through the
//! two primitives here: [`splitmix64`] for single `u64` values and
//! [`StableHasher`] for arbitrary `Hash` types.

use std::hash::Hasher;

/// SplitMix64 finalizer: the deterministic integer mix used everywhere
/// hashing is needed in the workspace, so results are identical across
/// runs and platforms (unlike `std`'s randomized `DefaultHasher`).
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A byte-stream [`Hasher`] built on [`splitmix64`] with a fixed
/// initial state: stable across runs, platforms and Rust releases.
///
/// Integers are absorbed in little-endian order explicitly (the
/// default `Hasher` integer methods use native endianness, which would
/// make results differ between platforms).
///
/// # Example
///
/// ```
/// use std::hash::{Hash, Hasher};
/// use streamloc_sketch::StableHasher;
///
/// let mut h = StableHasher::new();
/// "hello".hash(&mut h);
/// let a = h.finish();
/// let mut h = StableHasher::new();
/// "hello".hash(&mut h);
/// assert_eq!(a, h.finish());
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
    /// Total bytes absorbed, folded into the final mix so streams that
    /// differ only by trailing zero-padding hash differently.
    len: u64,
}

impl StableHasher {
    /// Fixed initial state (an arbitrary odd constant).
    const SEED: u64 = 0x51ab_7040_f782_25c1;

    /// Creates a hasher with the fixed seed.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: Self::SEED,
            len: 0,
        }
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        splitmix64(self.state ^ self.len)
    }

    fn write(&mut self, bytes: &[u8]) {
        self.len = self.len.wrapping_add(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.state = splitmix64(self.state ^ word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.state = splitmix64(self.state ^ u64::from_le_bytes(word));
        }
    }

    // Fixed little-endian encodings: the default integer methods write
    // native-endian bytes, which is not cross-platform stable.
    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }
    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }
    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }
    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }
    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }
    fn write_usize(&mut self, i: usize) {
        // usize width differs per platform; widen to 64 bits.
        self.write(&(i as u64).to_le_bytes());
    }
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }
    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }
    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }
    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }
    fn write_isize(&mut self, i: isize) {
        self.write_usize(i as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash<T: Hash + ?Sized>(v: &T) -> u64 {
        let mut h = StableHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash("streamloc"), hash("streamloc"));
        assert_eq!(hash(&42u64), hash(&42u64));
        assert_eq!(hash(&(1u32, 2u64)), hash(&(1u32, 2u64)));
    }

    #[test]
    fn distinguishes_inputs() {
        assert_ne!(hash("a"), hash("b"));
        assert_ne!(hash(&0u64), hash(&1u64));
        // Length folding: zero bytes vs nothing.
        assert_ne!(hash(&[0u8; 4][..]), hash(&[0u8; 8][..]));
    }

    #[test]
    fn splitmix64_reference_values() {
        // Reference outputs of the canonical SplitMix64 finalizer.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(1), 0x910a_2dec_8902_5cc1);
        assert_eq!(splitmix64(0xdead_beef), 0x4adf_b90f_68c9_eb9b);
    }
}
