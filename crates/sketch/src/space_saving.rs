//! The SpaceSaving stream-summary structure.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// Identifier of an entry slot in the slab.
type EntryId = usize;
/// Identifier of a bucket slot in the slab.
type BucketId = usize;

const NIL: usize = usize::MAX;

/// Deterministic 64-bit hash shared by the sketches, built on the
/// fixed-seed [`StableHasher`](crate::StableHasher) — stable across
/// runs, platforms and Rust releases (unlike `DefaultHasher`, whose
/// algorithm is explicitly unspecified).
pub(crate) fn hash_of<K: Hash + ?Sized>(key: &K) -> u64 {
    use std::hash::Hasher;
    let mut hasher = crate::StableHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

/// A frequency estimate returned by [`SpaceSaving::get`].
///
/// The true count `f` of the item is bounded by
/// `count - error <= f <= count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Estimate {
    /// Upper bound on the item's true count.
    pub count: u64,
    /// Maximum overestimation: the count the item inherited when it
    /// (re-)entered the summary by evicting the minimum.
    pub error: u64,
}

impl Estimate {
    /// Lower bound on the item's true count (`count - error`).
    ///
    /// Estimates produced by [`SpaceSaving`] always satisfy
    /// `error <= count`; a hand-built or corrupted estimate may not,
    /// so the subtraction saturates at zero instead of overflowing in
    /// release builds.
    #[must_use]
    pub fn guaranteed(&self) -> u64 {
        debug_assert!(
            self.error <= self.count,
            "Estimate invariant violated: error {} > count {}",
            self.error,
            self.count
        );
        self.count.saturating_sub(self.error)
    }
}

/// A monitored item yielded by [`SpaceSaving::iter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry<'a, K> {
    /// The monitored key.
    pub key: &'a K,
    /// Upper bound on the key's true count.
    pub count: u64,
    /// Maximum overestimation of `count`.
    pub error: u64,
}

#[derive(Debug, Clone)]
struct EntrySlot<K> {
    key: K,
    error: u64,
    bucket: BucketId,
    prev: EntryId,
    next: EntryId,
}

#[derive(Debug, Clone, Copy)]
struct BucketSlot {
    count: u64,
    head: EntryId,
    len: usize,
    prev: BucketId,
    next: BucketId,
}

/// SpaceSaving top-k summary (Metwally et al., ICDT 2005).
///
/// Maintains at most `capacity` monitored items. Items are kept in a
/// *stream summary*: a doubly-linked list of buckets ordered by count,
/// each holding the items sharing that count. Incrementing an item by 1
/// moves it at most one bucket forward, so updates are O(1) amortized.
///
/// # Guarantees
///
/// With `N = total()` observations and capacity `m`:
///
/// * every reported count overestimates the true count by at most
///   `min_count() <= N / m`;
/// * any item whose true count exceeds `N / m` is present in the summary.
///
/// # Example
///
/// ```
/// use streamloc_sketch::SpaceSaving;
///
/// let mut ss = SpaceSaving::new(2);
/// ss.offer(1u32);
/// ss.offer(1);
/// ss.offer(2);
/// ss.offer(3); // evicts the minimum (key 2), inheriting its count
/// assert_eq!(ss.get(&1).unwrap().count, 2);
/// let est = ss.get(&3).unwrap();
/// assert_eq!(est.count, 2);
/// assert_eq!(est.error, 1);
/// ```
#[derive(Clone)]
pub struct SpaceSaving<K> {
    capacity: usize,
    index: HashMap<K, EntryId>,
    entries: Vec<EntrySlot<K>>,
    buckets: Vec<BucketSlot>,
    free_buckets: Vec<BucketId>,
    min_bucket: BucketId,
    max_bucket: BucketId,
    total: u64,
}

impl<K: fmt::Debug> fmt::Debug for SpaceSaving<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpaceSaving")
            .field("capacity", &self.capacity)
            .field("len", &self.index.len())
            .field("total", &self.total)
            .finish_non_exhaustive()
    }
}

impl<K: Eq + Hash + Clone> SpaceSaving<K> {
    /// Creates a summary monitoring at most `capacity` distinct items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SpaceSaving capacity must be positive");
        Self {
            capacity,
            index: HashMap::with_capacity(capacity.min(1 << 20)),
            entries: Vec::with_capacity(capacity.min(1 << 20)),
            buckets: Vec::new(),
            free_buckets: Vec::new(),
            min_bucket: NIL,
            max_bucket: NIL,
            total: 0,
        }
    }

    /// Number of distinct items currently monitored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` when no item is monitored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Maximum number of monitored items.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total weight offered since creation or the last [`clear`].
    ///
    /// [`clear`]: SpaceSaving::clear
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest count in the summary (0 when empty). This bounds the
    /// overestimation error of any newly inserted item.
    #[must_use]
    pub fn min_count(&self) -> u64 {
        if self.min_bucket == NIL {
            0
        } else {
            self.buckets[self.min_bucket].count
        }
    }

    /// Observes one occurrence of `key`.
    ///
    /// If the summary is full and `key` is not monitored, the item with
    /// the minimum count is evicted and `key` inherits its count as
    /// error, per the SpaceSaving replacement rule.
    pub fn offer(&mut self, key: K) {
        self.offer_weighted(key, 1);
    }

    /// Observes `weight` occurrences of `key` at once.
    ///
    /// Weighted updates follow the weighted SpaceSaving variant: an
    /// evicting insertion inherits `min_count()` as its error. Updates
    /// with large weights may walk several buckets and are O(distinct
    /// counts) in the worst case; `weight == 1` is O(1) amortized.
    pub fn offer_weighted(&mut self, key: K, weight: u64) {
        if weight == 0 {
            return;
        }
        self.total += weight;
        if let Some(&e) = self.index.get(&key) {
            self.increase(e, weight);
        } else if self.index.len() < self.capacity {
            let e = self.entries.len();
            self.entries.push(EntrySlot {
                key: key.clone(),
                error: 0,
                bucket: NIL,
                prev: NIL,
                next: NIL,
            });
            self.index.insert(key, e);
            self.place(e, weight, NIL, self.min_bucket);
        } else {
            // Evict one item from the minimum bucket.
            let min = self.min_bucket;
            let victim = self.buckets[min].head;
            let inherited = self.buckets[min].count;
            let old_key = std::mem::replace(&mut self.entries[victim].key, key.clone());
            self.index.remove(&old_key);
            self.index.insert(key, victim);
            self.entries[victim].error = inherited;
            self.increase(victim, weight);
        }
    }

    /// Returns the estimate for `key`, if monitored.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<Estimate> {
        self.index.get(key).map(|&e| {
            let entry = &self.entries[e];
            Estimate {
                count: self.buckets[entry.bucket].count,
                error: entry.error,
            }
        })
    }

    /// Returns `true` if `key` is currently monitored.
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Iterates over monitored items in descending count order.
    ///
    /// Ties are returned in arbitrary (but deterministic) order.
    #[must_use]
    pub fn iter(&self) -> Iter<'_, K> {
        let entry = if self.max_bucket == NIL {
            NIL
        } else {
            self.buckets[self.max_bucket].head
        };
        Iter {
            sketch: self,
            bucket: self.max_bucket,
            entry,
        }
    }

    /// Returns the `k` most frequent items, descending by count.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<(K, Estimate)> {
        self.iter()
            .take(k)
            .map(|e| {
                (
                    e.key.clone(),
                    Estimate {
                        count: e.count,
                        error: e.error,
                    },
                )
            })
            .collect()
    }

    /// Removes every monitored item and resets [`total`].
    ///
    /// The routing manager calls this after each reconfiguration so that
    /// statistics only reflect data observed since the last routing
    /// update (paper §3.2).
    ///
    /// [`total`]: SpaceSaving::total
    pub fn clear(&mut self) {
        self.index.clear();
        self.entries.clear();
        self.buckets.clear();
        self.free_buckets.clear();
        self.min_bucket = NIL;
        self.max_bucket = NIL;
        self.total = 0;
    }

    /// Builds a summary of capacity `capacity` from explicit
    /// `(key, count, error)` triples, keeping the `capacity` largest
    /// counts (ties broken by key order, so the result is fully
    /// deterministic). Duplicate keys are not allowed.
    ///
    /// This is the primitive used by [`merged`](SpaceSaving::merged).
    #[must_use]
    pub fn from_counts<I>(capacity: usize, items: I) -> Self
    where
        I: IntoIterator<Item = (K, u64, u64)>,
        K: Ord,
    {
        let mut items: Vec<(K, u64, u64)> = items.into_iter().collect();
        items.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        items.truncate(capacity);
        // Insert in ascending order so each placement is O(1).
        items.reverse();
        let mut out = Self::new(capacity);
        let mut prev_bucket = NIL;
        let mut prev_count = 0u64;
        for (key, count, error) in items {
            if count == 0 {
                continue;
            }
            let e = out.entries.len();
            out.entries.push(EntrySlot {
                key: key.clone(),
                error,
                bucket: NIL,
                prev: NIL,
                next: NIL,
            });
            let dup = out.index.insert(key, e);
            assert!(dup.is_none(), "from_counts: duplicate key");
            if count == prev_count {
                out.attach(e, prev_bucket);
            } else {
                debug_assert!(count > prev_count);
                let b = out.new_bucket(count, prev_bucket, NIL);
                out.attach(e, b);
                prev_bucket = b;
                prev_count = count;
            }
            out.total += count - error;
        }
        out
    }

    /// Merges two summaries into a new one of capacity `capacity`,
    /// following the mergeable-summaries construction (Agarwal et al.):
    /// counts of common keys add up; a key present in only one summary
    /// is assumed to have up to `min_count()` occurrences in the other,
    /// which is added to both its count and its error.
    ///
    /// The routing manager uses this to combine the pair statistics
    /// reported by every instance of an operator.
    #[must_use]
    pub fn merged(a: &Self, b: &Self, capacity: usize) -> Self
    where
        K: Ord,
    {
        let a_min = if a.len() == a.capacity { a.min_count() } else { 0 };
        let b_min = if b.len() == b.capacity { b.min_count() } else { 0 };
        let mut combined: HashMap<K, (u64, u64)> = HashMap::with_capacity(a.len() + b.len());
        for e in a.iter() {
            combined.insert(e.key.clone(), (e.count, e.error));
        }
        for e in b.iter() {
            combined
                .entry(e.key.clone())
                .and_modify(|(c, err)| {
                    *c += e.count;
                    *err += e.error;
                })
                .or_insert((e.count + a_min, e.error + a_min));
        }
        for entry in a.iter() {
            // Keys of `a` missing from `b` get the b_min correction.
            if b.get(entry.key).is_none() {
                let slot = combined.get_mut(entry.key).expect("inserted above");
                slot.0 += b_min;
                slot.1 += b_min;
            }
        }
        let mut out = Self::from_counts(
            capacity,
            combined.into_iter().map(|(k, (c, e))| (k, c, e)),
        );
        out.total = a.total + b.total;
        out
    }

    /// Moves entry `e` forward by `add` counts.
    fn increase(&mut self, e: EntryId, add: u64) {
        let old_bucket = self.entries[e].bucket;
        let target = self.buckets[old_bucket].count + add;
        self.detach(e);
        let (scan_prev, scan_from) = if self.buckets[old_bucket].len == 0 {
            let prev = self.buckets[old_bucket].prev;
            let next = self.buckets[old_bucket].next;
            self.unlink_bucket(old_bucket);
            (prev, next)
        } else {
            (old_bucket, self.buckets[old_bucket].next)
        };
        self.place(e, target, scan_prev, scan_from);
    }

    /// Inserts entry `e` (already detached) into the bucket holding
    /// `count`, scanning forward from `from` (with `prev` the bucket
    /// just before `from`, or `NIL`). Creates the bucket if missing.
    fn place(&mut self, e: EntryId, count: u64, mut prev: BucketId, mut from: BucketId) {
        while from != NIL && self.buckets[from].count < count {
            prev = from;
            from = self.buckets[from].next;
        }
        let bucket = if from != NIL && self.buckets[from].count == count {
            from
        } else {
            self.new_bucket(count, prev, from)
        };
        self.attach(e, bucket);
    }

    /// Allocates a bucket with `count` between `prev` and `next`.
    fn new_bucket(&mut self, count: u64, prev: BucketId, next: BucketId) -> BucketId {
        let slot = BucketSlot {
            count,
            head: NIL,
            len: 0,
            prev,
            next,
        };
        let b = if let Some(free) = self.free_buckets.pop() {
            self.buckets[free] = slot;
            free
        } else {
            self.buckets.push(slot);
            self.buckets.len() - 1
        };
        if prev != NIL {
            self.buckets[prev].next = b;
        } else {
            self.min_bucket = b;
        }
        if next != NIL {
            self.buckets[next].prev = b;
        } else {
            self.max_bucket = b;
        }
        b
    }

    /// Removes an empty bucket from the ordered list.
    fn unlink_bucket(&mut self, b: BucketId) {
        debug_assert_eq!(self.buckets[b].len, 0);
        let (prev, next) = (self.buckets[b].prev, self.buckets[b].next);
        if prev != NIL {
            self.buckets[prev].next = next;
        } else {
            self.min_bucket = next;
        }
        if next != NIL {
            self.buckets[next].prev = prev;
        } else {
            self.max_bucket = prev;
        }
        self.free_buckets.push(b);
    }

    /// Detaches entry `e` from its bucket's entry list (bucket link
    /// fields on the entry are left stale; `attach` rewrites them).
    fn detach(&mut self, e: EntryId) {
        let (bucket, prev, next) = {
            let slot = &self.entries[e];
            (slot.bucket, slot.prev, slot.next)
        };
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.buckets[bucket].head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        }
        self.buckets[bucket].len -= 1;
    }

    /// Pushes entry `e` at the front of `bucket`'s entry list.
    fn attach(&mut self, e: EntryId, bucket: BucketId) {
        let head = self.buckets[bucket].head;
        self.entries[e].bucket = bucket;
        self.entries[e].prev = NIL;
        self.entries[e].next = head;
        if head != NIL {
            self.entries[head].prev = e;
        }
        self.buckets[bucket].head = e;
        self.buckets[bucket].len += 1;
    }

    /// Validates every structural invariant. Used by tests; O(len).
    ///
    /// # Panics
    ///
    /// Panics (with a description) on any violated invariant.
    pub fn check_invariants(&self) {
        assert!(self.index.len() <= self.capacity, "len exceeds capacity");
        let mut seen_entries = 0usize;
        let mut b = self.min_bucket;
        let mut prev_bucket = NIL;
        let mut prev_count = 0u64;
        while b != NIL {
            let bucket = &self.buckets[b];
            assert!(bucket.len > 0, "empty bucket in list");
            assert!(
                prev_bucket == NIL || bucket.count > prev_count,
                "bucket counts not strictly ascending"
            );
            assert_eq!(bucket.prev, prev_bucket, "bucket prev link broken");
            let mut e = bucket.head;
            let mut prev_entry = NIL;
            let mut n = 0usize;
            while e != NIL {
                let entry = &self.entries[e];
                assert_eq!(entry.bucket, b, "entry bucket backref broken");
                assert_eq!(entry.prev, prev_entry, "entry prev link broken");
                assert!(entry.error <= bucket.count, "error exceeds count");
                assert_eq!(
                    self.index.get(&entry.key),
                    Some(&e),
                    "index does not point at entry"
                );
                prev_entry = e;
                e = entry.next;
                n += 1;
            }
            assert_eq!(n, bucket.len, "bucket len mismatch");
            seen_entries += n;
            prev_count = bucket.count;
            prev_bucket = b;
            b = bucket.next;
        }
        assert_eq!(prev_bucket, self.max_bucket, "max_bucket mismatch");
        assert_eq!(seen_entries, self.index.len(), "orphan entries");
    }
}

/// Descending-count iterator over a [`SpaceSaving`] summary.
#[derive(Debug)]
pub struct Iter<'a, K> {
    sketch: &'a SpaceSaving<K>,
    bucket: BucketId,
    entry: EntryId,
}

impl<'a, K: Eq + Hash + Clone> Iterator for Iter<'a, K> {
    type Item = Entry<'a, K>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.bucket == NIL {
            return None;
        }
        while self.entry == NIL {
            self.bucket = self.sketch.buckets[self.bucket].prev;
            if self.bucket == NIL {
                return None;
            }
            self.entry = self.sketch.buckets[self.bucket].head;
        }
        let slot = &self.sketch.entries[self.entry];
        let item = Entry {
            key: &slot.key,
            count: self.sketch.buckets[self.bucket].count,
            error: slot.error,
        };
        self.entry = slot.next;
        Some(item)
    }
}

impl<'a, K: Eq + Hash + Clone> IntoIterator for &'a SpaceSaving<K> {
    type Item = Entry<'a, K>;
    type IntoIter = Iter<'a, K>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<K: Eq + Hash + Clone> Extend<K> for SpaceSaving<K> {
    fn extend<I: IntoIterator<Item = K>>(&mut self, iter: I) {
        for key in iter {
            self.offer(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_key_counts_exactly() {
        let mut ss = SpaceSaving::new(4);
        for _ in 0..10 {
            ss.offer("x");
        }
        let est = ss.get(&"x").unwrap();
        assert_eq!(est.count, 10);
        assert_eq!(est.error, 0);
        assert_eq!(ss.total(), 10);
        ss.check_invariants();
    }

    #[test]
    fn below_capacity_is_exact() {
        let mut ss = SpaceSaving::new(8);
        let stream = [1, 2, 3, 1, 2, 1, 4, 4, 4, 4];
        for k in stream {
            ss.offer(k);
        }
        assert_eq!(ss.get(&1).unwrap().count, 3);
        assert_eq!(ss.get(&2).unwrap().count, 2);
        assert_eq!(ss.get(&3).unwrap().count, 1);
        assert_eq!(ss.get(&4).unwrap().count, 4);
        for k in [1, 2, 3, 4] {
            assert_eq!(ss.get(&k).unwrap().error, 0);
        }
        ss.check_invariants();
    }

    #[test]
    fn eviction_inherits_min_count() {
        let mut ss = SpaceSaving::new(2);
        ss.offer("a");
        ss.offer("a");
        ss.offer("b");
        ss.offer("c"); // evicts b (count 1)
        assert!(!ss.contains(&"b"));
        let est = ss.get(&"c").unwrap();
        assert_eq!(est.count, 2);
        assert_eq!(est.error, 1);
        assert_eq!(est.guaranteed(), 1);
        ss.check_invariants();
    }

    #[test]
    fn iter_is_descending() {
        let mut ss = SpaceSaving::new(16);
        for (k, n) in [("a", 5), ("b", 3), ("c", 7), ("d", 1)] {
            for _ in 0..n {
                ss.offer(k);
            }
        }
        let counts: Vec<u64> = ss.iter().map(|e| e.count).collect();
        assert_eq!(counts, vec![7, 5, 3, 1]);
        assert_eq!(ss.iter().next().unwrap().key, &"c");
    }

    #[test]
    fn top_k_truncates() {
        let mut ss = SpaceSaving::new(16);
        for (k, n) in [("a", 5), ("b", 3), ("c", 7)] {
            for _ in 0..n {
                ss.offer(k);
            }
        }
        let top = ss.top_k(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, "c");
        assert_eq!(top[1].0, "a");
    }

    #[test]
    fn weighted_updates() {
        let mut ss = SpaceSaving::new(4);
        ss.offer_weighted("a", 100);
        ss.offer_weighted("b", 50);
        ss.offer_weighted("a", 7);
        assert_eq!(ss.get(&"a").unwrap().count, 107);
        assert_eq!(ss.get(&"b").unwrap().count, 50);
        assert_eq!(ss.total(), 157);
        ss.check_invariants();
    }

    #[test]
    fn weighted_eviction_error_is_min_count() {
        let mut ss = SpaceSaving::new(2);
        ss.offer_weighted("a", 10);
        ss.offer_weighted("b", 4);
        ss.offer_weighted("c", 3); // evicts b: inherits 4, count 7
        let est = ss.get(&"c").unwrap();
        assert_eq!(est.count, 7);
        assert_eq!(est.error, 4);
        ss.check_invariants();
    }

    #[test]
    fn zero_weight_is_noop() {
        let mut ss = SpaceSaving::new(2);
        ss.offer_weighted("a", 0);
        assert!(ss.is_empty());
        assert_eq!(ss.total(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut ss = SpaceSaving::new(4);
        for k in 0..10 {
            ss.offer(k % 3);
        }
        ss.clear();
        assert!(ss.is_empty());
        assert_eq!(ss.total(), 0);
        assert_eq!(ss.min_count(), 0);
        ss.offer(42);
        assert_eq!(ss.get(&42).unwrap().count, 1);
        ss.check_invariants();
    }

    #[test]
    fn from_counts_keeps_largest() {
        let ss = SpaceSaving::from_counts(2, vec![("a", 5, 0), ("b", 9, 1), ("c", 2, 0)]);
        assert_eq!(ss.len(), 2);
        assert!(ss.contains(&"b"));
        assert!(ss.contains(&"a"));
        assert!(!ss.contains(&"c"));
        assert_eq!(ss.get(&"b").unwrap().error, 1);
        ss.check_invariants();
    }

    #[test]
    fn from_counts_skips_zero_counts() {
        let ss = SpaceSaving::from_counts(4, vec![("a", 0, 0), ("b", 2, 0)]);
        assert_eq!(ss.len(), 1);
        assert!(ss.contains(&"b"));
    }

    #[test]
    fn merge_adds_common_keys() {
        let mut a = SpaceSaving::new(8);
        let mut b = SpaceSaving::new(8);
        for _ in 0..5 {
            a.offer("x");
        }
        for _ in 0..3 {
            b.offer("x");
        }
        b.offer("y");
        let m = SpaceSaving::merged(&a, &b, 8);
        assert_eq!(m.get(&"x").unwrap().count, 8);
        assert_eq!(m.get(&"y").unwrap().count, 1);
        assert_eq!(m.total(), 9);
        m.check_invariants();
    }

    #[test]
    fn merge_full_sketches_adds_min_correction() {
        let mut a = SpaceSaving::new(2);
        let mut b = SpaceSaving::new(2);
        a.offer_weighted("a", 10);
        a.offer_weighted("b", 6);
        b.offer_weighted("c", 4);
        b.offer_weighted("d", 2);
        let m = SpaceSaving::merged(&a, &b, 4);
        // "a" absent from b (min 2): count 10+2=12, error 0+2=2.
        let est = m.get(&"a").unwrap();
        assert_eq!(est.count, 12);
        assert_eq!(est.error, 2);
        // "c" absent from a (min 6): count 4+6=10, error 6.
        let est = m.get(&"c").unwrap();
        assert_eq!(est.count, 10);
        assert_eq!(est.error, 6);
        m.check_invariants();
    }

    #[test]
    fn merge_upper_bound_still_holds() {
        // The merged count must remain an upper bound of the true count.
        let mut a = SpaceSaving::new(4);
        let mut b = SpaceSaving::new(4);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        let stream_a = [1, 1, 2, 3, 4, 5, 1, 2];
        let stream_b = [6, 1, 6, 2, 7, 8, 6, 6];
        for k in stream_a {
            a.offer(k);
            *truth.entry(k).or_default() += 1;
        }
        for k in stream_b {
            b.offer(k);
            *truth.entry(k).or_default() += 1;
        }
        let m = SpaceSaving::merged(&a, &b, 4);
        for e in m.iter() {
            let t = truth[e.key];
            assert!(e.count >= t, "count {} < true {}", e.count, t);
            assert!(e.count - e.error <= t, "guaranteed above true count");
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SpaceSaving::<u32>::new(0);
    }

    #[test]
    fn extend_offers_all() {
        let mut ss = SpaceSaving::new(8);
        ss.extend([1, 1, 2]);
        assert_eq!(ss.get(&1).unwrap().count, 2);
        assert_eq!(ss.total(), 3);
    }

    /// `hash_of` must be identical across runs, platforms and Rust
    /// releases; these constants were produced by the fixed-seed
    /// `StableHasher` and any change to them is a determinism break.
    #[test]
    fn hash_of_matches_pinned_constants() {
        assert_eq!(hash_of("streamloc"), 0x6cbc_1369_27d1_dd0a);
        assert_eq!(hash_of(&42u64), 0xd029_9019_e1e8_5cf6);
        assert_eq!(hash_of(&7u32), 0x31a6_e27d_24e4_ef88);
        assert_eq!(hash_of(&(3u64, 9u64)), 0x47f8_a32e_c03e_bac9);
        assert_eq!(hash_of(&[1u8, 2, 3][..]), 0xca46_8831_3575_0781);
    }

    #[test]
    fn guaranteed_is_count_minus_error() {
        let e = Estimate { count: 10, error: 3 };
        assert_eq!(e.guaranteed(), 7);
        let exact = Estimate { count: 5, error: 0 };
        assert_eq!(exact.guaranteed(), 5);
    }

    /// A corrupted estimate (`error > count`) must not overflow in
    /// release builds; the subtraction saturates at zero.
    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "Estimate invariant violated"))]
    fn guaranteed_saturates_on_corrupt_estimate() {
        let corrupt = Estimate { count: 2, error: 5 };
        assert_eq!(corrupt.guaranteed(), 0);
    }

    #[test]
    fn bucket_reuse_after_churn() {
        let mut ss = SpaceSaving::new(3);
        for i in 0..1000u32 {
            ss.offer(i % 7);
            if i % 97 == 0 {
                ss.check_invariants();
            }
        }
        ss.check_invariants();
        assert_eq!(ss.len(), 3);
        assert_eq!(ss.total(), 1000);
    }
}
