//! Exact frequency counting, for offline analysis and as a test oracle.

use std::collections::HashMap;
use std::hash::Hash;

/// An exact frequency counter over an unbounded key domain.
///
/// The paper's *offline* analysis mode computes exact pair frequencies
/// over a data sample (§3.2, "Offline analysis"); this type backs that
/// mode. It is also the oracle against which [`SpaceSaving`] error
/// bounds are property-tested.
///
/// [`SpaceSaving`]: crate::SpaceSaving
///
/// # Example
///
/// ```
/// use streamloc_sketch::ExactCounter;
///
/// let mut counter = ExactCounter::new();
/// counter.offer("a");
/// counter.offer_weighted("b", 3);
/// assert_eq!(counter.count(&"b"), 3);
/// assert_eq!(counter.top_k(1)[0].0, "b");
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExactCounter<K> {
    counts: HashMap<K, u64>,
    total: u64,
}

impl<K: Eq + Hash + Clone> ExactCounter<K> {
    /// Creates an empty counter.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: HashMap::new(),
            total: 0,
        }
    }

    /// Observes one occurrence of `key`.
    pub fn offer(&mut self, key: K) {
        self.offer_weighted(key, 1);
    }

    /// Observes `weight` occurrences of `key`.
    pub fn offer_weighted(&mut self, key: K, weight: u64) {
        if weight == 0 {
            return;
        }
        *self.counts.entry(key).or_default() += weight;
        self.total += weight;
    }

    /// Exact count of `key` (0 if never seen).
    #[must_use]
    pub fn count(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Number of distinct keys observed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` when nothing has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total weight observed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `k` most frequent keys, descending by count. Ties are broken
    /// deterministically only if `K: Ord`-independent callers sort again;
    /// this method leaves tie order unspecified.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<(K, u64)> {
        let mut all: Vec<(K, u64)> = self
            .counts
            .iter()
            .map(|(key, &n)| (key.clone(), n))
            .collect();
        all.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        all.truncate(k);
        all
    }

    /// Iterates over `(key, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, &n)| (k, n))
    }

    /// Removes all observations.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.total = 0;
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &Self) {
        for (key, &n) in &other.counts {
            *self.counts.entry(key.clone()).or_default() += n;
        }
        self.total += other.total;
    }
}

impl<K: Eq + Hash + Clone> Extend<K> for ExactCounter<K> {
    fn extend<I: IntoIterator<Item = K>>(&mut self, iter: I) {
        for key in iter {
            self.offer(key);
        }
    }
}

impl<K: Eq + Hash + Clone> FromIterator<K> for ExactCounter<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut counter = Self::new();
        counter.extend(iter);
        counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_total() {
        let mut c = ExactCounter::new();
        c.offer(1);
        c.offer(1);
        c.offer(2);
        assert_eq!(c.count(&1), 2);
        assert_eq!(c.count(&2), 1);
        assert_eq!(c.count(&3), 0);
        assert_eq!(c.total(), 3);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn top_k_descending() {
        let c: ExactCounter<_> = ["a", "b", "a", "c", "a", "b"].into_iter().collect();
        let top = c.top_k(2);
        assert_eq!(top[0], ("a", 3));
        assert_eq!(top[1], ("b", 2));
    }

    #[test]
    fn merge_sums_counts() {
        let a: ExactCounter<_> = [1, 1, 2].into_iter().collect();
        let b: ExactCounter<_> = [2, 3].into_iter().collect();
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(&1), 2);
        assert_eq!(m.count(&2), 2);
        assert_eq!(m.count(&3), 1);
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn clear_resets() {
        let mut c: ExactCounter<_> = [1, 2].into_iter().collect();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.total(), 0);
    }
}
