//! Count-Min sketch (Cormode & Muthukrishnan 2005) — the alternative
//! bounded-memory counter to SpaceSaving.

use std::hash::Hash;

use crate::space_saving::hash_of;

/// A Count-Min sketch: a `depth × width` grid of counters; each item
/// increments one counter per row, and a point query returns the
/// minimum over its row counters — an overestimate whose error is
/// bounded by `total / width` per row with high probability.
///
/// Why the paper (and this reproduction's manager) prefer SpaceSaving:
/// Count-Min answers *point queries* but cannot *enumerate* the
/// frequent pairs, which is exactly what routing-table generation
/// needs. Count-Min is provided for the statistics-backend ablation
/// and for applications that track externally-known candidate keys.
///
/// # Example
///
/// ```
/// use streamloc_sketch::CountMin;
///
/// let mut cm = CountMin::new(4, 256);
/// for _ in 0..10 {
///     cm.offer(&"hot");
/// }
/// cm.offer(&"cold");
/// assert!(cm.estimate(&"hot") >= 10);
/// assert!(cm.estimate(&"never") <= cm.total() / 256 * 4 + 1);
/// ```
#[derive(Debug, Clone)]
pub struct CountMin {
    depth: usize,
    width: usize,
    rows: Vec<u64>,
    total: u64,
}

impl CountMin {
    /// Creates a sketch with `depth` rows of `width` counters
    /// (`depth * width * 8` bytes of memory).
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `width` is zero.
    #[must_use]
    pub fn new(depth: usize, width: usize) -> Self {
        assert!(depth > 0, "depth must be positive");
        assert!(width > 0, "width must be positive");
        Self {
            depth,
            width,
            rows: vec![0; depth * width],
            total: 0,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Counters per row.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Memory footprint of the counter grid, in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * 8
    }

    /// Total weight offered.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observes one occurrence of `key`.
    pub fn offer<K: Hash + ?Sized>(&mut self, key: &K) {
        self.offer_weighted(key, 1);
    }

    /// Observes `weight` occurrences of `key`, with the *conservative
    /// update* optimization: only counters at the current minimum are
    /// raised, tightening the overestimate at no accuracy cost.
    pub fn offer_weighted<K: Hash + ?Sized>(&mut self, key: &K, weight: u64) {
        if weight == 0 {
            return;
        }
        self.total += weight;
        let base = hash_of(key);
        let target = self.estimate_from(base) + weight;
        for row in 0..self.depth {
            let idx = self.cell(base, row);
            if self.rows[idx] < target {
                self.rows[idx] = target;
            }
        }
    }

    /// Observes a sequence of keys, coalescing each run of consecutive
    /// equal keys into one conservative-update write — the columnar
    /// data plane's bulk entry point.
    ///
    /// Equivalent to offering every key individually: `n` unit offers
    /// at estimate `e` leave every colliding cell at
    /// `max(cell, e + n)`, exactly what one weighted offer of `n`
    /// writes.
    pub fn offer_runs<K: Hash + Eq>(&mut self, keys: &[K]) {
        let mut rest = keys;
        while let Some(first) = rest.first() {
            let len = 1 + rest[1..].iter().take_while(|k| *k == first).count();
            self.offer_weighted(first, len as u64);
            rest = &rest[len..];
        }
    }

    /// Upper-bound estimate of `key`'s count.
    #[must_use]
    pub fn estimate<K: Hash + ?Sized>(&self, key: &K) -> u64 {
        self.estimate_from(hash_of(key))
    }

    /// Removes all observations.
    pub fn clear(&mut self) {
        self.rows.fill(0);
        self.total = 0;
    }

    /// Merges another sketch of identical dimensions into this one.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.depth, other.depth, "depth mismatch");
        assert_eq!(self.width, other.width, "width mismatch");
        for (a, &b) in self.rows.iter_mut().zip(&other.rows) {
            *a += b;
        }
        self.total += other.total;
    }

    fn estimate_from(&self, base: u64) -> u64 {
        (0..self.depth)
            .map(|row| self.rows[self.cell(base, row)])
            .min()
            .expect("depth > 0")
    }

    fn cell(&self, base: u64, row: usize) -> usize {
        // Row-salted double hashing over the shared base hash.
        let h = base
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(row as u32 * 7)
            .wrapping_add(row as u64);
        row * self.width + (h % self.width as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut cm = CountMin::new(4, 64);
        let mut truth = std::collections::HashMap::new();
        for i in 0..5000u64 {
            let key = i % 97;
            cm.offer(&key);
            *truth.entry(key).or_insert(0u64) += 1;
        }
        for (key, &count) in &truth {
            assert!(cm.estimate(key) >= count, "underestimated {key}");
        }
    }

    #[test]
    fn error_is_bounded() {
        let mut cm = CountMin::new(4, 512);
        for i in 0..20_000u64 {
            cm.offer(&(i % 1000));
        }
        // Each key's true count is 20; the overestimate should stay
        // within a few times total/width = ~40.
        let mut worst = 0u64;
        for key in 0..1000u64 {
            worst = worst.max(cm.estimate(&key) - 20);
        }
        assert!(worst <= 200, "worst error {worst} too large");
    }

    #[test]
    fn exact_when_sparse() {
        let mut cm = CountMin::new(4, 4096);
        for i in 0..10u64 {
            cm.offer_weighted(&i, i + 1);
        }
        for i in 0..10u64 {
            assert_eq!(cm.estimate(&i), i + 1);
        }
        assert_eq!(cm.total(), 55);
    }

    #[test]
    fn offer_runs_matches_per_key_offers() {
        // A narrow sketch forces cell collisions, so the equivalence
        // must hold through conservative-update interactions too.
        let mut runs = CountMin::new(3, 8);
        let mut per = CountMin::new(3, 8);
        let mut keys: Vec<u64> = Vec::new();
        keys.extend([5, 5, 5, 9, 5, 9, 5, 9, 2, 2, 2, 2]);
        for i in 0..500u64 {
            keys.push(i.wrapping_mul(0x9e37) % 13);
        }
        runs.offer_runs(&keys);
        for k in &keys {
            per.offer(k);
        }
        assert_eq!(runs.total(), per.total());
        assert_eq!(runs.rows, per.rows, "cell grids diverged");
    }

    #[test]
    fn merge_adds() {
        let mut a = CountMin::new(3, 128);
        let mut b = CountMin::new(3, 128);
        a.offer_weighted(&"x", 5);
        b.offer_weighted(&"x", 7);
        a.merge(&b);
        assert!(a.estimate(&"x") >= 12);
        assert_eq!(a.total(), 12);
    }

    #[test]
    fn clear_resets() {
        let mut cm = CountMin::new(2, 32);
        cm.offer(&1);
        cm.clear();
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.estimate(&1), 0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn merge_rejects_mismatch() {
        let mut a = CountMin::new(2, 32);
        let b = CountMin::new(2, 64);
        a.merge(&b);
    }

    #[test]
    fn zero_weight_noop() {
        let mut cm = CountMin::new(2, 32);
        cm.offer_weighted(&9, 0);
        assert_eq!(cm.total(), 0);
    }
}
