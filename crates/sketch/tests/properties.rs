//! Property-based tests checking the SpaceSaving guarantees against an
//! exact oracle (Metwally et al. 2005, Theorems 2-4).

use proptest::prelude::*;
use streamloc_sketch::{ExactCounter, SpaceSaving};

/// A random stream over a small key domain so collisions are frequent.
fn stream() -> impl Strategy<Value = Vec<u16>> {
    prop::collection::vec(0u16..64, 0..2000)
}

/// A random weighted stream.
fn weighted_stream() -> impl Strategy<Value = Vec<(u16, u64)>> {
    prop::collection::vec((0u16..32, 1u64..50), 0..500)
}

/// A weighted stream whose weights span nine orders of magnitude, so
/// a single offer must leapfrog many distinct count buckets — the
/// documented O(distinct counts) walk in `offer_weighted`.
fn heavy_weighted_stream() -> impl Strategy<Value = Vec<(u16, u64)>> {
    let weight = (0u8..3, 1u64..1_000).prop_map(|(mag, base)| match mag {
        0 => base,
        1 => base * 1_000,
        _ => base * 1_000_000_000,
    });
    prop::collection::vec((0u16..32, weight), 0..300)
}

proptest! {
    #[test]
    fn count_bounds_hold(stream in stream(), capacity in 1usize..32) {
        let mut sketch = SpaceSaving::new(capacity);
        let mut oracle = ExactCounter::new();
        for &k in &stream {
            sketch.offer(k);
            oracle.offer(k);
        }
        sketch.check_invariants();
        prop_assert_eq!(sketch.total(), oracle.total());
        for entry in sketch.iter() {
            let truth = oracle.count(entry.key);
            prop_assert!(entry.count >= truth,
                "count {} underestimates true {}", entry.count, truth);
            prop_assert!(entry.count - entry.error <= truth,
                "guaranteed {} exceeds true {}", entry.count - entry.error, truth);
        }
    }

    #[test]
    fn min_count_bounded_by_total_over_capacity(
        stream in stream(), capacity in 1usize..32,
    ) {
        let mut sketch = SpaceSaving::new(capacity);
        for &k in &stream {
            sketch.offer(k);
        }
        if sketch.len() == capacity {
            prop_assert!(sketch.min_count() <= sketch.total() / capacity as u64,
                "min {} > N/m = {}", sketch.min_count(),
                sketch.total() / capacity as u64);
        }
    }

    #[test]
    fn heavy_hitters_are_monitored(stream in stream(), capacity in 1usize..32) {
        let mut sketch = SpaceSaving::new(capacity);
        let mut oracle = ExactCounter::new();
        for &k in &stream {
            sketch.offer(k);
            oracle.offer(k);
        }
        let threshold = oracle.total() / capacity as u64;
        for (key, count) in oracle.iter() {
            if count > threshold {
                prop_assert!(sketch.contains(key),
                    "heavy hitter {key:?} (count {count}) missing");
            }
        }
    }

    #[test]
    fn iter_is_sorted_descending(stream in stream(), capacity in 1usize..32) {
        let mut sketch = SpaceSaving::new(capacity);
        for &k in &stream {
            sketch.offer(k);
        }
        let counts: Vec<u64> = sketch.iter().map(|e| e.count).collect();
        prop_assert!(counts.windows(2).all(|w| w[0] >= w[1]));
        prop_assert!(sketch.len() <= capacity);
        prop_assert_eq!(counts.len(), sketch.len());
    }

    #[test]
    fn weighted_bounds_hold(stream in weighted_stream(), capacity in 1usize..16) {
        let mut sketch = SpaceSaving::new(capacity);
        let mut oracle = ExactCounter::new();
        for &(k, w) in &stream {
            sketch.offer_weighted(k, w);
            oracle.offer_weighted(k, w);
        }
        sketch.check_invariants();
        prop_assert_eq!(sketch.total(), oracle.total());
        for entry in sketch.iter() {
            let truth = oracle.count(entry.key);
            prop_assert!(entry.count >= truth);
            prop_assert!(entry.count - entry.error <= truth);
        }
    }

    #[test]
    fn heavy_weighted_bounds_hold(
        stream in heavy_weighted_stream(), capacity in 1usize..16,
    ) {
        let mut sketch = SpaceSaving::new(capacity);
        let mut oracle = ExactCounter::new();
        for &(k, w) in &stream {
            sketch.offer_weighted(k, w);
            oracle.offer_weighted(k, w);
        }
        sketch.check_invariants();
        prop_assert_eq!(sketch.total(), oracle.total());
        let counts: Vec<u64> = sketch.iter().map(|e| e.count).collect();
        prop_assert!(counts.windows(2).all(|w| w[0] >= w[1]),
            "iter must stay sorted after bucket walks");
        for entry in sketch.iter() {
            let truth = oracle.count(entry.key);
            prop_assert!(entry.count >= truth,
                "count {} underestimates true {}", entry.count, truth);
            prop_assert!(entry.count - entry.error <= truth,
                "guaranteed {} exceeds true {}", entry.count - entry.error, truth);
        }
        if sketch.len() == capacity {
            prop_assert!(sketch.min_count() <= sketch.total() / capacity as u64);
        }
    }

    #[test]
    fn heavy_weighted_is_exact_without_eviction(
        stream in heavy_weighted_stream(),
    ) {
        // Capacity covers the whole 0..32 domain: no evictions, so
        // every estimate must be exact with zero error regardless of
        // how far each weighted offer jumps.
        let mut sketch = SpaceSaving::new(32);
        let mut oracle = ExactCounter::new();
        for &(k, w) in &stream {
            sketch.offer_weighted(k, w);
            oracle.offer_weighted(k, w);
        }
        sketch.check_invariants();
        for entry in sketch.iter() {
            prop_assert_eq!(entry.error, 0);
            prop_assert_eq!(entry.count, oracle.count(entry.key));
        }
    }

    #[test]
    fn merged_bounds_hold(
        stream_a in stream(), stream_b in stream(), capacity in 1usize..16,
    ) {
        let mut a = SpaceSaving::new(capacity);
        let mut b = SpaceSaving::new(capacity);
        let mut oracle = ExactCounter::new();
        for &k in &stream_a {
            a.offer(k);
            oracle.offer(k);
        }
        for &k in &stream_b {
            b.offer(k);
            oracle.offer(k);
        }
        let merged = SpaceSaving::merged(&a, &b, capacity * 2);
        merged.check_invariants();
        prop_assert_eq!(merged.total(), oracle.total());
        for entry in merged.iter() {
            let truth = oracle.count(entry.key);
            prop_assert!(entry.count >= truth,
                "merged count {} < true {}", entry.count, truth);
            prop_assert!(entry.count - entry.error <= truth,
                "merged guaranteed above truth");
        }
    }

    #[test]
    fn clear_then_reuse_is_fresh(stream in stream(), capacity in 1usize..16) {
        let mut sketch = SpaceSaving::new(capacity);
        for &k in &stream {
            sketch.offer(k);
        }
        sketch.clear();
        let mut oracle = ExactCounter::new();
        for &k in &stream {
            sketch.offer(k);
            oracle.offer(k);
        }
        sketch.check_invariants();
        prop_assert_eq!(sketch.total(), oracle.total());
    }
}

mod bulk_offer_props {
    use proptest::prelude::*;
    use streamloc_sketch::{CountMin, SpaceSaving};

    /// A stream with deliberate runs of consecutive equal keys — the
    /// shape the columnar data plane coalesces.
    fn run_stream() -> impl Strategy<Value = Vec<u16>> {
        prop::collection::vec((0u16..24, 1usize..6), 0..200).prop_map(|segments| {
            segments
                .into_iter()
                .flat_map(|(k, n)| std::iter::repeat_n(k, n))
                .collect()
        })
    }

    /// Coalesces each leading run of equal keys into one
    /// `(key, run length)` pair.
    fn coalesce(stream: &[u16]) -> Vec<(u16, u64)> {
        let mut runs = Vec::new();
        let mut rest = stream;
        while let Some(&first) = rest.first() {
            let len = 1 + rest[1..].iter().take_while(|&&k| k == first).count();
            runs.push((first, len as u64));
            rest = &rest[len..];
        }
        runs
    }

    proptest! {
        /// One weighted offer per run must leave the SpaceSaving
        /// summary in exactly the state per-tuple offers produce:
        /// within a run the key is monitored after its first unit
        /// offer, so the remaining units are pure increments — which
        /// is precisely what the weighted offer adds.
        #[test]
        fn coalesced_offers_match_per_tuple_offers(
            stream in run_stream(),
            capacity in 1usize..16,
        ) {
            let mut bulk = SpaceSaving::new(capacity);
            let mut per = SpaceSaving::new(capacity);
            for (key, weight) in coalesce(&stream) {
                bulk.offer_weighted(key, weight);
            }
            for &key in &stream {
                per.offer(key);
            }
            bulk.check_invariants();
            prop_assert_eq!(bulk.total(), per.total());
            prop_assert_eq!(bulk.len(), per.len());
            for entry in bulk.iter() {
                let other = per.get(entry.key);
                prop_assert_eq!(
                    other.map(|e| (e.count, e.error)),
                    Some((entry.count, entry.error)),
                    "summaries diverged at key {:?}", entry.key
                );
            }
        }

        /// `CountMin::offer_runs` must match per-key unit offers on
        /// every estimate, not just on totals.
        #[test]
        fn count_min_offer_runs_matches_per_key(stream in run_stream()) {
            let mut bulk = CountMin::new(3, 16);
            let mut per = CountMin::new(3, 16);
            bulk.offer_runs(&stream);
            for k in &stream {
                per.offer(k);
            }
            prop_assert_eq!(bulk.total(), per.total());
            for key in 0u16..24 {
                prop_assert_eq!(bulk.estimate(&key), per.estimate(&key));
            }
        }
    }
}

mod count_min_props {
    use proptest::prelude::*;
    use streamloc_sketch::{CountMin, ExactCounter};

    proptest! {
        #[test]
        fn count_min_never_underestimates(
            stream in prop::collection::vec((0u16..128, 1u64..20), 0..800),
            depth in 1usize..6,
            width in 8usize..256,
        ) {
            let mut cm = CountMin::new(depth, width);
            let mut oracle = ExactCounter::new();
            for &(k, w) in &stream {
                cm.offer_weighted(&k, w);
                oracle.offer_weighted(k, w);
            }
            prop_assert_eq!(cm.total(), oracle.total());
            for (key, count) in oracle.iter() {
                prop_assert!(cm.estimate(key) >= count,
                    "cm {} < true {}", cm.estimate(key), count);
            }
        }

        #[test]
        fn count_min_merge_upper_bounds(
            a_stream in prop::collection::vec(0u16..64, 0..500),
            b_stream in prop::collection::vec(0u16..64, 0..500),
        ) {
            let mut a = CountMin::new(4, 64);
            let mut b = CountMin::new(4, 64);
            let mut oracle = ExactCounter::new();
            for &k in &a_stream {
                a.offer(&k);
                oracle.offer(k);
            }
            for &k in &b_stream {
                b.offer(&k);
                oracle.offer(k);
            }
            a.merge(&b);
            prop_assert_eq!(a.total(), oracle.total());
            for (key, count) in oracle.iter() {
                prop_assert!(a.estimate(key) >= count);
            }
        }
    }
}
