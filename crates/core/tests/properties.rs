//! Property-based tests for the routing table: the hash-fallback
//! contract of paper §3.3 under arbitrary (and arbitrarily stale)
//! assignments.

use proptest::prelude::*;
use streamloc_core::RoutingTable;
use streamloc_engine::{HashRouter, Key, KeyRouter};

/// Arbitrary assignment sets mixing in-range and out-of-range targets.
fn assignments() -> impl Strategy<Value = Vec<(u64, u32)>> {
    prop::collection::vec((0u64..500, 0u32..32), 0..64)
}

proptest! {
    /// Every out-of-range entry routes exactly as `HashRouter` would —
    /// the table must never invent an instance index.
    #[test]
    fn out_of_range_entries_agree_with_hash_router(
        entries in assignments(),
        instances in 1usize..16,
    ) {
        let table =
            RoutingTable::from_assignments(entries.iter().map(|&(k, i)| (Key::new(k), i)));
        for (key, i) in table.iter().collect::<Vec<_>>() {
            if (i as usize) >= instances {
                prop_assert_eq!(
                    table.route(key, instances),
                    HashRouter.route(key, instances),
                    "stale entry ({:?} -> {}) must fall back to hash at parallelism {}",
                    key, i, instances
                );
            }
        }
    }

    /// Purging stale entries never changes a routing decision: the
    /// purged keys were already hash-routed at lookup time.
    #[test]
    fn purge_preserves_routing_decisions(
        entries in assignments(),
        instances in 1usize..16,
        probes in prop::collection::vec(0u64..1_000, 0..64),
    ) {
        let before =
            RoutingTable::from_assignments(entries.iter().map(|&(k, i)| (Key::new(k), i)));
        let mut after = before.clone();
        let dropped = after.purge_out_of_range(instances);
        prop_assert!(after.iter().all(|(_, i)| (i as usize) < instances));
        prop_assert_eq!(dropped, before.len() - after.len());
        for k in entries.iter().map(|&(k, _)| k).chain(probes) {
            let key = Key::new(k);
            prop_assert_eq!(before.route(key, instances), after.route(key, instances));
        }
    }

    /// Unknown keys always match the hash route, at every parallelism.
    #[test]
    fn missing_keys_always_hash(key in 0u64..10_000, instances in 1usize..16) {
        let table = RoutingTable::new();
        let key = Key::new(key);
        prop_assert_eq!(table.route(key, instances), HashRouter.route(key, instances));
    }
}
