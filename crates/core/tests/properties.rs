//! Property-based tests for the routing table: the hash-fallback
//! contract of paper §3.3 under arbitrary (and arbitrarily stale)
//! assignments.

use proptest::prelude::*;
use streamloc_core::RoutingTable;
use streamloc_engine::{HashRouter, Key, KeyRouter};

/// Arbitrary assignment sets mixing in-range and out-of-range targets.
fn assignments() -> impl Strategy<Value = Vec<(u64, u32)>> {
    prop::collection::vec((0u64..500, 0u32..32), 0..64)
}

proptest! {
    /// Every out-of-range entry routes exactly as `HashRouter` would —
    /// the table must never invent an instance index.
    #[test]
    fn out_of_range_entries_agree_with_hash_router(
        entries in assignments(),
        instances in 1usize..16,
    ) {
        let table =
            RoutingTable::from_assignments(entries.iter().map(|&(k, i)| (Key::new(k), i)));
        for (key, i) in table.iter().collect::<Vec<_>>() {
            if (i as usize) >= instances {
                prop_assert_eq!(
                    table.route(key, instances),
                    HashRouter.route(key, instances),
                    "stale entry ({:?} -> {}) must fall back to hash at parallelism {}",
                    key, i, instances
                );
            }
        }
    }

    /// Purging stale entries never changes a routing decision: the
    /// purged keys were already hash-routed at lookup time.
    #[test]
    fn purge_preserves_routing_decisions(
        entries in assignments(),
        instances in 1usize..16,
        probes in prop::collection::vec(0u64..1_000, 0..64),
    ) {
        let before =
            RoutingTable::from_assignments(entries.iter().map(|&(k, i)| (Key::new(k), i)));
        let mut after = before.clone();
        let dropped = after.purge_out_of_range(instances);
        prop_assert!(after.iter().all(|(_, i)| (i as usize) < instances));
        prop_assert_eq!(dropped, before.len() - after.len());
        for k in entries.iter().map(|&(k, _)| k).chain(probes) {
            let key = Key::new(k);
            prop_assert_eq!(before.route(key, instances), after.route(key, instances));
        }
    }

    /// Unknown keys always match the hash route, at every parallelism.
    #[test]
    fn missing_keys_always_hash(key in 0u64..10_000, instances in 1usize..16) {
        let table = RoutingTable::new();
        let key = Key::new(key);
        prop_assert_eq!(table.route(key, instances), HashRouter.route(key, instances));
    }

    /// The columnar path over arbitrary tables and key sequences:
    /// expanded runs must match per-key `route` decisions — including
    /// keys that take the stale-entry or missing-key fallback — and
    /// the fallback counters must land on identical totals.
    #[test]
    fn route_batch_matches_per_key_route_with_fallbacks(
        entries in assignments(),
        sequence in prop::collection::vec((0u64..600, 1usize..5), 0..60),
        instances in 1usize..16,
    ) {
        use streamloc_engine::DestRun;

        let build = || {
            RoutingTable::from_assignments(entries.iter().map(|&(k, i)| (Key::new(k), i)))
        };
        // Runs over a domain wider than the assignments, so hits,
        // stale entries and misses all appear in one sequence.
        let keys: Vec<Key> = sequence
            .iter()
            .flat_map(|&(k, n)| std::iter::repeat_n(Key::new(k), n))
            .collect();

        let batched = build();
        let mut runs: Vec<DestRun> = Vec::new();
        batched.route_batch(&keys, instances, &mut runs);
        let expanded: Vec<u32> = runs
            .iter()
            .flat_map(|r| std::iter::repeat_n(r.dest, r.len as usize))
            .collect();

        let per_key = build();
        let routed: Vec<u32> = keys.iter().map(|&k| per_key.route(k, instances)).collect();

        prop_assert_eq!(expanded, routed);
        prop_assert_eq!(batched.hash_fallbacks(), per_key.hash_fallbacks());
        prop_assert_eq!(
            batched.stale_entry_fallbacks(),
            per_key.stale_entry_fallbacks()
        );
    }
}
