//! Tests for the reconfiguration impact estimator and the
//! conditional-reconfiguration policy (§6 future work).

use std::collections::HashMap;

use streamloc_engine::{
    ClusterSpec, CountOperator, Grouping, Key, Placement, SimConfig, Simulation, SourceRate,
    Topology, Tuple,
};

use crate::{Manager, ManagerConfig, ReconfigPolicy};

const SERVERS: usize = 3;
const KEYS: u64 = 18;

fn correlated_sim() -> Simulation {
    let mut b = Topology::builder();
    let s = b.source("S", SERVERS, SourceRate::PerSecond(20_000.0), move |i| {
        let mut c = i as u64;
        Box::new(move || {
            c = c.wrapping_add(0x9e37_79b9);
            let k = c % KEYS;
            Some(Tuple::new([Key::new(k), Key::new(k + KEYS)], 64))
        })
    });
    let a = b.stateful("A", SERVERS, CountOperator::factory());
    let bb = b.stateful("B", SERVERS, CountOperator::factory());
    b.connect(s, a, Grouping::fields(0));
    b.connect(a, bb, Grouping::fields(1));
    let topo = b.build().unwrap();
    let placement = Placement::aligned(&topo, SERVERS);
    Simulation::new(
        topo,
        ClusterSpec::lan_10g(SERVERS),
        placement,
        SimConfig::default(),
    )
}

#[test]
fn estimate_reports_large_gain_under_hash_routing() {
    let mut sim = correlated_sim();
    let mut mgr = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(15);
    let est = mgr.estimate(&sim);
    // Hash routing keeps ~1/3 locality; the candidate is near 1.0.
    assert!(est.current_locality < 0.6, "{est:?}");
    assert!(est.expected_locality > 0.95, "{est:?}");
    assert!(est.locality_gain() > 0.35, "{est:?}");
    // Estimating is non-destructive.
    assert!(mgr.pairs_observed() > 0);
    assert!(!sim.reconfig_active());
}

#[test]
fn estimate_shows_no_gain_after_deploying() {
    let mut sim = correlated_sim();
    let mut mgr = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(15);
    mgr.reconfigure(&mut sim).unwrap();
    sim.run(30);
    let est = mgr.estimate(&sim);
    assert!(
        est.locality_gain() < 0.05,
        "after deployment the gain should vanish: {est:?}"
    );
    assert!(est.current_locality > 0.9, "{est:?}");
}

#[test]
fn conditional_reconfigure_skips_small_gains() {
    let mut sim = correlated_sim();
    let mut mgr = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(15);
    mgr.reconfigure(&mut sim).unwrap();
    sim.run(30);
    // Same stable workload: no gain left, so the guard must decline
    // and keep the statistics.
    let before = mgr.pairs_observed();
    assert!(before > 0);
    let outcome = mgr
        .reconfigure_if_beneficial(&mut sim, ReconfigPolicy::default())
        .unwrap();
    assert!(outcome.is_none(), "no-gain reconfiguration not skipped");
    assert_eq!(mgr.pairs_observed(), before, "stats must be preserved");
    assert!(!sim.reconfig_active());
}

#[test]
fn conditional_reconfigure_fires_on_real_gains() {
    let mut sim = correlated_sim();
    let mut mgr = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(15);
    let outcome = mgr
        .reconfigure_if_beneficial(&mut sim, ReconfigPolicy::default())
        .unwrap();
    let summary = outcome.expect("large gain must trigger deployment");
    assert!(summary.locality_gain() > 0.3);
    assert!(sim.reconfig_active());
    assert_eq!(mgr.pairs_observed(), 0, "stats reset on deployment");
}

#[test]
fn current_locality_tracks_partial_tables() {
    // Install the ideal table for only *some* keys: the estimator's
    // current-locality must land strictly between hash and perfect.
    let mut sim = correlated_sim();
    let mut mgr = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(15);
    let full_gain = mgr.estimate(&sim).locality_gain();

    // Deploy, then disturb half the keys by hand via force_migrate-
    // style table edits: simplest is re-deploying tables for a
    // *different* seed and comparing estimates monotonically.
    mgr.reconfigure(&mut sim).unwrap();
    sim.run(30);
    let residual_gain = mgr.estimate(&sim).locality_gain();
    assert!(
        residual_gain < full_gain / 4.0,
        "gain should collapse once tables deployed: {residual_gain} vs {full_gain}"
    );
}

#[test]
fn estimator_handles_empty_statistics() {
    let mut sim = correlated_sim();
    let mut mgr = Manager::attach(&mut sim, ManagerConfig::default());
    // No data yet: nothing to estimate, nothing to gain.
    let est = mgr.estimate(&sim);
    assert_eq!(est.pairs_observed, 0);
    assert_eq!(est.current_locality, 0.0);
    let outcome = mgr
        .reconfigure_if_beneficial(&mut sim, ReconfigPolicy::default())
        .unwrap();
    assert!(outcome.is_none() || est.locality_gain() >= 0.05);
}

#[test]
fn summary_maps_are_consistent() {
    let mut sim = correlated_sim();
    let mut mgr = Manager::attach(&mut sim, ManagerConfig::default());
    sim.run(15);
    let est = mgr.estimate(&sim);
    let mut owners: HashMap<Key, u32> = HashMap::new();
    let a = sim.topology().po_by_name("A").unwrap();
    let b = sim.topology().po_by_name("B").unwrap();
    let deployed = mgr.reconfigure(&mut sim).unwrap();
    // The applied summary equals the estimate (same stats, same seed).
    assert_eq!(est.expected_locality, deployed.expected_locality);
    assert_eq!(est.migrations, deployed.migrations);
    for (k, i) in mgr.table_for(a).unwrap().iter() {
        owners.insert(k, i);
    }
    assert!(!owners.is_empty());
    assert_eq!(
        deployed.table_entries,
        mgr.table_for(a).unwrap().len() + mgr.table_for(b).unwrap().len()
    );
}
