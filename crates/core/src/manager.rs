//! The manager: statistics collection, key-graph partitioning,
//! routing-table generation and reconfiguration orchestration
//! (paper §3.3–3.4).

use std::collections::HashMap;
use std::sync::Arc;

use streamloc_engine::{
    Counter, EdgeId, Grouping, Key, KeyRouter, MetricsRegistry, PoId, PoiId, ReconfigInProgress,
    ReconfigPlan, Simulation,
};
use streamloc_partition::{
    Graph, GreedyPartitioner, HashPartitioner, HierarchicalPartitioner, MultilevelPartitioner,
    Partitioner, VertexId,
};
use streamloc_sketch::SpaceSaving;

use crate::routing_table::RoutingTable;
use crate::store::SavedConfiguration;
use crate::tracker::PairTracker;

/// Which graph partitioner the manager runs (the multilevel one plays
/// the paper's Metis role; the others exist for the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionerKind {
    /// Multilevel coarsening + refinement (Metis-equivalent, default).
    #[default]
    Multilevel,
    /// One-pass greedy placement.
    Greedy,
    /// Hash assignment (degenerates to plain fields grouping).
    Hash,
}

impl PartitionerKind {
    fn run(self, graph: &Graph, k: usize, alpha: f64, seed: u64) -> streamloc_partition::Partition {
        match self {
            PartitionerKind::Multilevel => {
                MultilevelPartitioner::default().partition(graph, k, alpha, seed)
            }
            PartitionerKind::Greedy => GreedyPartitioner.partition(graph, k, alpha, seed),
            PartitionerKind::Hash => HashPartitioner.partition(graph, k, alpha, seed),
        }
    }
}

/// Manager tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ManagerConfig {
    /// SpaceSaving capacity of each instance's pair tracker (the
    /// paper's "1 MB of memory per POI" corresponds to ~10^4–10^5
    /// monitored pairs).
    pub sketch_capacity: usize,
    /// Use at most this many of the heaviest pair edges per hop when
    /// building the key graph (Fig. 12's x-axis).
    pub max_edges: usize,
    /// Imbalance bound α (paper uses Metis' default 1.03).
    pub alpha: f64,
    /// Partitioner selection.
    pub partitioner: PartitionerKind,
    /// When `true` and the cluster declares more than one rack (with a
    /// server count divisible by the rack count), partition the key
    /// graph hierarchically: across racks first, then across each
    /// rack's servers — keys that cannot share a server still share a
    /// rack, sparing the uplinks (paper §6 future work). Falls back to
    /// the flat partitioner otherwise.
    pub rack_aware: bool,
    /// Warm-start the multilevel partitioner from the previous
    /// window's key assignment when at least half of the current
    /// graph's keys have history: steady-state repartitioning then
    /// only moves the keys whose correlations actually changed,
    /// instead of re-deriving the whole assignment from scratch. Only
    /// applies to [`PartitionerKind::Multilevel`] without rack
    /// awareness; the first window (no history) always runs cold.
    pub warm_start: bool,
    /// Seed for the partitioner's internal randomness.
    pub seed: u64,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        Self {
            sketch_capacity: 100_000,
            max_edges: 1_000_000,
            alpha: 1.03,
            partitioner: PartitionerKind::Multilevel,
            rack_aware: false,
            warm_start: true,
            seed: 0x5eed,
        }
    }
}

/// One instrumented hop: a stateful operator X whose output reaches a
/// stateful operator Y through a fields grouping — either directly, or
/// through a chain of stateless local-or-shuffle stages (the paper's
/// Fig. 3 deployment: `B → (l-o-s) → C → (fields) → D`), which
/// preserve the sender's server so co-locating X's and Y's keys still
/// keeps the whole path in memory.
#[derive(Debug)]
struct Hop {
    /// The instrumented upstream operator (X in §3.2).
    tracked_po: PoId,
    /// The downstream stateful operator (Y).
    dest_po: PoId,
    /// The fields edge into Y (sender = X itself or the last stateless
    /// stage).
    dest_edge: EdgeId,
    /// X's first fields in-edge (the grouping its input keys route
    /// on), when X has one.
    in_edge: Option<EdgeId>,
    trackers: Vec<Arc<PairTracker>>,
}

/// Thresholds for [`Manager::reconfigure_if_beneficial`].
///
/// Locality gain is a fraction in `[0, 1]`; imbalance gain is a
/// reduction of the max/avg load ratio. The imbalance default is
/// deliberately coarser: the candidate's imbalance is measured on the
/// very sample it was optimized for, so small apparent reductions are
/// sampling noise, while a burst-induced skew shows up as a gain of
/// 0.5 or more.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigPolicy {
    /// Deploy when predicted locality improves by at least this much.
    pub min_locality_gain: f64,
    /// Deploy when predicted imbalance drops by at least this much.
    pub min_imbalance_gain: f64,
}

impl Default for ReconfigPolicy {
    fn default() -> Self {
        Self {
            min_locality_gain: 0.05,
            min_imbalance_gain: 0.30,
        }
    }
}

/// Statistics returned by a successful reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigSummary {
    /// Locality the partitioner achieved on the statistics graph (the
    /// "Metis reports 75%" figure of §4.3 — an upper bound on future
    /// locality).
    pub expected_locality: f64,
    /// Imbalance (max/avg part weight) on the statistics graph.
    pub expected_imbalance: f64,
    /// Key states scheduled for migration.
    pub migrations: usize,
    /// Explicit entries across all generated routing tables.
    pub table_entries: usize,
    /// Pair observations merged from all trackers this period.
    pub pairs_observed: u64,
    /// Distinct pair edges actually used to build the graph.
    pub edges_used: usize,
    /// Locality the *currently deployed* tables achieve on the same
    /// statistics — the baseline the candidate is compared against.
    pub current_locality: f64,
    /// Load imbalance (max/avg per-server weight of the downstream
    /// keys) the currently deployed tables produce on the same
    /// statistics.
    pub current_imbalance: f64,
}

impl ReconfigSummary {
    /// Predicted locality improvement of deploying the candidate
    /// tables (`expected_locality - current_locality`).
    #[must_use]
    pub fn locality_gain(&self) -> f64 {
        self.expected_locality - self.current_locality
    }

    /// Predicted imbalance reduction (`current_imbalance -
    /// expected_imbalance`); positive when the candidate rebalances a
    /// skewed deployment (e.g. after a burst shifted the hot keys).
    #[must_use]
    pub fn imbalance_gain(&self) -> f64 {
        self.current_imbalance - self.expected_imbalance
    }
}

/// The routing manager of §3.3: periodically turns the pair statistics
/// collected by the instrumented operators into balanced, locality-
/// maximizing routing tables and deploys them through the online
/// reconfiguration protocol.
///
/// # Example
///
/// See [`Manager::attach`] and the crate-level documentation; the
/// `online_rebalance` example runs the full loop.
#[derive(Debug)]
pub struct Manager {
    config: ManagerConfig,
    hops: Vec<Hop>,
    /// Stateful operators that receive routing tables, with their
    /// fields in-edges.
    routed: Vec<(PoId, Vec<EdgeId>)>,
    /// Last generated table per routed operator (by position in
    /// `routed`).
    tables: Vec<RoutingTable>,
    /// Shared `(hash, stale)` fallback counter handles attached to
    /// every table this manager deploys; `None` until
    /// [`Manager::attach_metrics`] is called.
    fallback_counters: Option<(Counter, Counter)>,
    /// Per-key server assignment of the last computed partition — the
    /// warm-start hint for the next window (empty before the first
    /// round).
    prev_assignment: HashMap<(PoId, Key), u32>,
    /// Optimization rounds run so far; each rebuilt table is stamped
    /// with the round it was generated in (its routing epoch, see
    /// [`RoutingTable::set_epoch`]).
    rounds: u64,
}

impl Manager {
    /// Scans the deployed topology for consecutive stateful operators
    /// joined by fields grouping, installs a [`PairTracker`] on every
    /// instance of each upstream operator, and returns the manager.
    ///
    /// Returns a manager with no hops (a no-op) if the topology has no
    /// consecutive stateful pair — there is nothing to optimize then.
    pub fn attach(sim: &mut Simulation, config: ManagerConfig) -> Self {
        let mut hops = Vec::new();
        let mut routed_set: Vec<PoId> = Vec::new();
        let topo = sim.topology();

        /// `(tracked X, dest Y, observe edge, observe field, dest edge)`.
        type HopSpec = (PoId, PoId, EdgeId, usize, EdgeId);

        /// Follows a chain of stateless local-or-shuffle stages from
        /// `po` until fields edges into stateful operators are found
        /// (the paper's Fig. 3: `B → l-o-s → C → fields → D`).
        fn walk_stateless(
            topo: &streamloc_engine::Topology,
            po: PoId,
            origin: PoId,
            observe_edge: EdgeId,
            out: &mut Vec<HopSpec>,
        ) {
            for &e in topo.out_edges(po) {
                let edge = topo.edge(e);
                let to = edge.to();
                match edge.grouping() {
                    Grouping::Fields { field, .. } if topo.po(to).is_stateful() => {
                        out.push((origin, to, observe_edge, *field, e));
                    }
                    Grouping::LocalOrShuffle if !topo.po(to).is_stateful() => {
                        walk_stateless(topo, to, origin, observe_edge, out);
                    }
                    _ => {}
                }
            }
        }

        let mut hop_specs: Vec<HopSpec> = Vec::new();
        for &from in topo.topo_order() {
            if !topo.po(from).is_stateful() || topo.state_field(from).is_none() {
                continue;
            }
            for &e in topo.out_edges(from) {
                let edge = topo.edge(e);
                let to = edge.to();
                match edge.grouping() {
                    Grouping::Fields { field, .. } if topo.po(to).is_stateful() => {
                        hop_specs.push((from, to, e, *field, e));
                    }
                    Grouping::LocalOrShuffle if !topo.po(to).is_stateful() => {
                        walk_stateless(topo, to, from, e, &mut hop_specs);
                    }
                    _ => {}
                }
            }
        }
        for &(from, to, ..) in &hop_specs {
            for po in [from, to] {
                if !routed_set.contains(&po) {
                    routed_set.push(po);
                }
            }
        }
        for (from, to, observe_edge, observe_field, dest_edge) in hop_specs {
            let in_edge = sim
                .topology()
                .in_edges(from)
                .iter()
                .copied()
                .find(|&e| {
                    matches!(sim.topology().edge(e).grouping(), Grouping::Fields { .. })
                });
            let trackers: Vec<Arc<PairTracker>> = sim
                .poi_ids(from)
                .into_iter()
                .map(|poi| {
                    let tracker = PairTracker::new(config.sketch_capacity);
                    sim.add_pair_observer(
                        poi,
                        observe_edge,
                        observe_field,
                        Box::new(tracker.handle()),
                    );
                    tracker
                })
                .collect();
            hops.push(Hop {
                tracked_po: from,
                dest_po: to,
                dest_edge,
                in_edge,
                trackers,
            });
        }
        let routed = routed_set
            .into_iter()
            .map(|po| {
                let in_edges = sim
                    .topology()
                    .in_edges(po)
                    .iter()
                    .copied()
                    .filter(|&e| {
                        matches!(
                            sim.topology().edge(e).grouping(),
                            Grouping::Fields { .. }
                        )
                    })
                    .collect();
                (po, in_edges)
            })
            .collect::<Vec<_>>();
        let tables = vec![RoutingTable::new(); routed.len()];
        Self {
            config,
            hops,
            routed,
            tables,
            fallback_counters: None,
            prev_assignment: HashMap::new(),
            rounds: 0,
        }
    }

    /// Registers the routing fallback counters in `registry` and wires
    /// them into every table this manager has deployed or will deploy:
    /// `routing_hash_fallback_total` counts lookups of keys with no
    /// explicit entry, `routing_stale_entry_fallback_total` counts
    /// lookups whose entry pointed past the current parallelism.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        let hash = registry.counter(
            "routing_hash_fallback_total",
            "table lookups that hash-routed because the key had no entry",
        );
        let stale = registry.counter(
            "routing_stale_entry_fallback_total",
            "table lookups that hash-routed because the entry was out of range",
        );
        for table in &mut self.tables {
            table.attach_fallback_counters(hash.clone(), stale.clone());
        }
        self.fallback_counters = Some((hash, stale));
    }

    /// Number of instrumented hops.
    #[must_use]
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// The last routing table generated for `po`, if `po` is routed by
    /// this manager.
    #[must_use]
    pub fn table_for(&self, po: PoId) -> Option<&RoutingTable> {
        self.routed
            .iter()
            .position(|&(p, _)| p == po)
            .map(|i| &self.tables[i])
    }

    /// Pair observations accumulated since the last reconfiguration.
    #[must_use]
    pub fn pairs_observed(&self) -> u64 {
        self.hops
            .iter()
            .flat_map(|h| &h.trackers)
            .map(|t| t.total())
            .sum()
    }

    /// Runs one full optimization round: merge statistics (①–②),
    /// partition the key graph, generate routing tables, and deploy
    /// them with state migration through the online protocol (③–⑥).
    /// Statistics are reset afterwards so the next round sees fresh
    /// data.
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigInProgress`] (leaving statistics intact) if
    /// the previous wave has not finished, or if the manager process
    /// is down ([`Simulation::manager_down`]) — a degraded deployment
    /// keeps routing by hash and cannot be reconfigured until
    /// [`Simulation::revive_manager`] is called.
    pub fn reconfigure(
        &mut self,
        sim: &mut Simulation,
    ) -> Result<ReconfigSummary, ReconfigInProgress> {
        if sim.manager_down() {
            return Err(ReconfigInProgress);
        }
        let (summary, plan) = self.compute(sim);
        sim.start_reconfiguration(plan)?;
        self.charge_metrics_upload(sim);
        for hop in &self.hops {
            for tracker in &hop.trackers {
                tracker.reset();
            }
        }
        Ok(summary)
    }

    /// Estimates the impact of reconfiguring *now*, without applying
    /// anything or resetting statistics: the candidate tables'
    /// expected locality vs the locality the current tables achieve on
    /// the same fresh statistics — the estimator sketched as future
    /// work in the paper's §6 ("predict the impact of a
    /// reconfiguration to provide more fine-grained information to the
    /// manager").
    #[must_use]
    pub fn estimate(&mut self, sim: &Simulation) -> ReconfigSummary {
        self.compute(sim).0
    }

    /// Reconfigures only when the predicted *locality* gain reaches
    /// `min_gain`, or the predicted *imbalance* reduction does (a
    /// burst may leave locality intact while piling correlated hot
    /// keys on one server — the paper's Fig. 11b spikes). Otherwise
    /// the deployment and the accumulated statistics are left
    /// untouched, so a later period can act on more evidence: the
    /// guard against paying migration costs for ephemeral
    /// correlations (§6).
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigInProgress`] if a wave is still running or
    /// the manager process is down (see [`Manager::reconfigure`]).
    pub fn reconfigure_if_beneficial(
        &mut self,
        sim: &mut Simulation,
        policy: ReconfigPolicy,
    ) -> Result<Option<ReconfigSummary>, ReconfigInProgress> {
        if sim.manager_down() {
            return Err(ReconfigInProgress);
        }
        let (summary, plan) = self.compute(sim);
        if summary.locality_gain() < policy.min_locality_gain
            && summary.imbalance_gain() < policy.min_imbalance_gain
        {
            return Ok(None);
        }
        sim.start_reconfiguration(plan)?;
        self.charge_metrics_upload(sim);
        for hop in &self.hops {
            for tracker in &hop.trackers {
                tracker.reset();
            }
        }
        Ok(Some(summary))
    }

    /// Debits the ①/② statistics upload from each instrumented
    /// instance's NIC: ~24 bytes per monitored pair (two keys and a
    /// count) plus framing. Goes through
    /// [`Simulation::charge_statistics_upload`] so the exchange lands
    /// in the event trace and the statistics-bytes counter.
    fn charge_metrics_upload(&self, sim: &mut Simulation) {
        for hop in &self.hops {
            for (poi, tracker) in sim.poi_ids(hop.tracked_po).into_iter().zip(&hop.trackers) {
                let bytes = tracker.snapshot().len() as u64 * 24 + 256;
                sim.charge_statistics_upload(poi, bytes);
            }
        }
    }

    /// Snapshots the currently deployed routing tables for stable
    /// storage (paper §3.4: the manager persists every configuration
    /// before reconfiguring). Pair with a
    /// [`ConfigStore`](crate::ConfigStore).
    #[must_use]
    pub fn snapshot_configuration(&self, sim: &Simulation) -> SavedConfiguration {
        let mut config = SavedConfiguration::new();
        for (slot, (po, _)) in self.routed.iter().enumerate() {
            config.insert(sim.topology().po(*po).name(), self.tables[slot].clone());
        }
        config
    }

    /// Re-installs a previously saved configuration after a manager
    /// restart: tables are deployed immediately on every sender (no
    /// wave, no migration — after a crash, state recovery is the
    /// engine's concern, §3.4). Tables for operators absent from this
    /// topology are ignored.
    pub fn restore_configuration(
        &mut self,
        sim: &mut Simulation,
        config: &SavedConfiguration,
    ) {
        for (slot, (po, in_edges)) in self.routed.iter().enumerate() {
            let name = sim.topology().po(*po).name().to_owned();
            let Some(table) = config.table(&name) else {
                continue;
            };
            let mut table = table.clone();
            // The saved configuration may predate a parallelism change;
            // entries pointing past the current instance count would
            // silently hash-route forever, so drop them at install time.
            table.purge_out_of_range(sim.poi_ids(*po).len());
            if let Some((hash, stale)) = &self.fallback_counters {
                table.attach_fallback_counters(hash.clone(), stale.clone());
            }
            self.tables[slot] = table.clone();
            let shared: Arc<dyn KeyRouter> = Arc::new(table);
            for &edge in in_edges {
                let sender = sim.topology().edge(edge).from();
                for poi in sim.poi_ids(sender) {
                    sim.set_poi_router(poi, edge, Arc::clone(&shared));
                }
            }
        }
    }

    /// Computes and *immediately* installs routing tables on every
    /// sender, bypassing the protocol and migrating no state. Only
    /// safe before any data has flowed (the paper's offline mode:
    /// "optimized routing tables can be loaded at the start of the
    /// application", §3.4).
    pub fn apply_offline(&mut self, sim: &mut Simulation) -> ReconfigSummary {
        let (summary, plan) = self.compute(sim);
        for (poi, edge, router) in plan.routers {
            sim.set_poi_router(poi, edge, router);
        }
        for hop in &self.hops {
            for tracker in &hop.trackers {
                tracker.reset();
            }
        }
        summary
    }

    /// Builds the key graph, partitions it and assembles the plan.
    fn compute(&mut self, sim: &Simulation) -> (ReconfigSummary, ReconfigPlan) {
        let servers = sim.cluster().servers;
        let mut builder = Graph::builder();
        let mut vmap: HashMap<(PoId, Key), VertexId> = HashMap::new();
        let mut pairs_observed = 0u64;
        let mut edges_used = 0usize;
        let mut current_local = 0u64;
        let mut current_weight = 0u64;
        let mut current_server_load = vec![0u64; servers];

        // ①–② in parallel: each hop's tracker snapshots and
        // SpaceSaving merges are independent (trackers are internally
        // locked), and the merge is the per-hop O(capacity) heavy step
        // — so rebuild latency scales with the slowest hop, not the
        // hop count. Scoped threads: no new dependencies, nothing
        // outlives this call.
        let capacity = self.config.sketch_capacity;
        type Merged = (Option<SpaceSaving<(Key, Key)>>, u64);
        let merged_per_hop: Vec<Merged> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .hops
                .iter()
                .map(|hop| {
                    scope.spawn(move || {
                        let mut pairs = 0u64;
                        let mut merged: Option<SpaceSaving<(Key, Key)>> = None;
                        for tracker in &hop.trackers {
                            let snap = tracker.snapshot();
                            pairs += snap.total();
                            merged = Some(match merged {
                                None => snap,
                                Some(m) => SpaceSaving::merged(&m, &snap, capacity),
                            });
                        }
                        (merged, pairs)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("hop merge thread panicked"))
                .collect()
        });

        for (hop, (merged, pairs)) in self.hops.iter().zip(merged_per_hop) {
            pairs_observed += pairs;
            let Some(merged) = merged else { continue };
            // Where the *current* tables send each hop (for the
            // impact estimate): the sender instances of both edges.
            let cur_route = |edge: EdgeId, key: Key| -> Option<u32> {
                let sender = sim.topology().edge(edge).from();
                let poi = sim.poi_ids(sender)[0];
                Some(sim.current_route(poi, edge, key))
            };
            let x_pois = sim.poi_ids(hop.tracked_po);
            let y_pois = sim.poi_ids(hop.dest_po);
            for entry in merged.iter().take(self.config.max_edges) {
                let &(ka, kb) = entry.key;
                let count = entry.count;
                if count == 0 {
                    continue;
                }
                if let Some(in_edge) = hop.in_edge {
                    let sa = cur_route(in_edge, ka)
                        .map(|i| sim.poi_server(x_pois[i as usize]));
                    let sb = cur_route(hop.dest_edge, kb)
                        .map(|i| sim.poi_server(y_pois[i as usize]));
                    current_weight += count;
                    if sa == sb {
                        current_local += count;
                    }
                    if let Some(server) = sb {
                        current_server_load[server.0] += count;
                    }
                }
                let va = *vmap
                    .entry((hop.tracked_po, ka))
                    .or_insert_with(|| builder.add_vertex(0));
                let vb = *vmap
                    .entry((hop.dest_po, kb))
                    .or_insert_with(|| builder.add_vertex(0));
                builder.add_vertex_weight(va, count);
                builder.add_vertex_weight(vb, count);
                builder.add_edge(va, vb, count);
                edges_used += 1;
            }
        }

        let graph = builder.build();
        // Warm-start hint: the part each vertex's key landed on last
        // window (`u32::MAX` = no history). Only worthwhile once most
        // keys carry history; a mostly-cold graph partitions better
        // from scratch.
        let mut hint = vec![u32::MAX; graph.vertex_count()];
        let mut hinted = 0usize;
        for (pk, &vertex) in &vmap {
            if let Some(&part) = self.prev_assignment.get(pk) {
                hint[vertex as usize] = part;
                hinted += 1;
            }
        }
        let racks = sim.cluster().rack_count;
        let rack_aware = self.config.rack_aware && racks > 1 && servers.is_multiple_of(racks);
        let warm = self.config.warm_start
            && !rack_aware
            && self.config.partitioner == PartitionerKind::Multilevel
            && graph.vertex_count() > 0
            && 2 * hinted >= graph.vertex_count();
        let partition = if rack_aware {
            HierarchicalPartitioner::new(racks, servers / racks).partition(
                &graph,
                servers,
                self.config.alpha,
                self.config.seed,
            )
        } else if warm {
            MultilevelPartitioner::default().partition_with_hint(
                &graph,
                servers,
                self.config.alpha,
                self.config.seed,
                &hint,
            )
        } else {
            self.config
                .partitioner
                .run(&graph, servers, self.config.alpha, self.config.seed)
        };
        self.prev_assignment = vmap
            .iter()
            .map(|(&pk, &vertex)| (pk, partition.part(vertex)))
            .collect();
        let expected_locality = partition.locality(&graph);
        let expected_imbalance = partition.imbalance(&graph);

        // Turn parts (servers) into per-operator instance assignments.
        let mut assignments: Vec<HashMap<Key, u32>> =
            vec![HashMap::new(); self.routed.len()];
        for (&(po, key), &vertex) in &vmap {
            let Some(slot) = self.routed.iter().position(|&(p, _)| p == po) else {
                continue;
            };
            let part = partition.part(vertex);
            let instance = instance_on_server(sim, po, part as usize);
            assignments[slot].insert(key, instance);
        }

        // Assemble tables, router updates and migrations.
        self.rounds += 1;
        let mut routers: Vec<(PoiId, EdgeId, Arc<dyn KeyRouter>)> = Vec::new();
        let mut migrations = Vec::new();
        let mut table_entries = 0usize;
        for (slot, (_po, in_edges)) in self.routed.iter().enumerate() {
            let mut table = RoutingTable::from_assignments(
                assignments[slot].iter().map(|(&k, &i)| (k, i)),
            );
            table.set_epoch(self.rounds);
            if let Some((hash, stale)) = &self.fallback_counters {
                table.attach_fallback_counters(hash.clone(), stale.clone());
            }
            table_entries += table.len();
            if let Some(&first_edge) = in_edges.first() {
                migrations.extend(sim.migrations_for(first_edge, &assignments[slot]));
            }
            let shared: Arc<dyn KeyRouter> = Arc::new(table.clone());
            for &edge in in_edges {
                let sender = sim.topology().edge(edge).from();
                for poi in sim.poi_ids(sender) {
                    routers.push((poi, edge, Arc::clone(&shared)));
                }
            }
            self.tables[slot] = table;
        }

        let summary = ReconfigSummary {
            expected_locality,
            expected_imbalance,
            migrations: migrations.len(),
            table_entries,
            pairs_observed,
            edges_used,
            current_locality: if current_weight == 0 {
                0.0
            } else {
                current_local as f64 / current_weight as f64
            },
            current_imbalance: {
                let total: u64 = current_server_load.iter().sum();
                if total == 0 {
                    1.0
                } else {
                    let avg = total as f64 / servers as f64;
                    *current_server_load.iter().max().expect("servers > 0") as f64 / avg
                }
            },
        };
        (
            summary,
            ReconfigPlan {
                routers,
                migrations,
            },
        )
    }
}

/// The instance of `po` hosted on server `server`, falling back to
/// `server % parallelism` when the placement puts no instance there.
fn instance_on_server(sim: &Simulation, po: PoId, server: usize) -> u32 {
    let pois = sim.poi_ids(po);
    pois.iter()
        .position(|&poi| sim.poi_server(poi).0 == server)
        .unwrap_or(server % pois.len()) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamloc_engine::{
        ClusterSpec, CountOperator, Placement, SimConfig, SourceRate, Topology, Tuple,
    };

    /// The paper's chain with a perfectly correlated synthetic source:
    /// tuple (i, i + n) — key i routes A, key i+n routes B, and the
    /// pair is deterministic, so ideal tables achieve 100% locality.
    fn correlated_sim(n: usize) -> Simulation {
        let keys = n as u64 * 4;
        let mut b = Topology::builder();
        let s = b.source("S", n, SourceRate::PerSecond(20_000.0), move |i| {
            let mut c = i as u64;
            Box::new(move || {
                c = c.wrapping_add(0x9e37_79b9);
                let ka = c % keys;
                Some(Tuple::new([Key::new(ka), Key::new(ka + keys)], 64))
            })
        });
        let a = b.stateful("A", n, CountOperator::factory());
        let bb = b.stateful("B", n, CountOperator::factory());
        b.connect(s, a, Grouping::fields(0));
        b.connect(a, bb, Grouping::fields(1));
        let topo = b.build().unwrap();
        let cluster = ClusterSpec::lan_10g(n);
        let placement = Placement::aligned(&topo, n);
        Simulation::new(topo, cluster, placement, SimConfig::default())
    }

    #[test]
    fn attach_finds_the_hop() {
        let mut sim = correlated_sim(2);
        let mgr = Manager::attach(&mut sim, ManagerConfig::default());
        assert_eq!(mgr.hop_count(), 1);
        assert_eq!(mgr.pairs_observed(), 0);
    }

    #[test]
    fn no_hop_without_consecutive_stateful() {
        let mut b = Topology::builder();
        let s = b.source("S", 1, SourceRate::Saturate, |_| {
            Box::new(|| Some(Tuple::new([Key::new(0)], 0)))
        });
        let a = b.stateful("A", 1, CountOperator::factory());
        b.connect(s, a, Grouping::fields(0));
        let topo = b.build().unwrap();
        let placement = Placement::aligned(&topo, 1);
        let mut sim = Simulation::new(
            topo,
            ClusterSpec::lan_10g(1),
            placement,
            SimConfig::default(),
        );
        let mgr = Manager::attach(&mut sim, ManagerConfig::default());
        assert_eq!(mgr.hop_count(), 0);
    }

    #[test]
    fn reconfigure_raises_locality_to_one() {
        let n = 3;
        let mut sim = correlated_sim(n);
        let mut mgr = Manager::attach(&mut sim, ManagerConfig::default());

        sim.run(20);
        assert!(mgr.pairs_observed() > 0);
        let a_po = sim.topology().po_by_name("A").unwrap();
        let b_po = sim.topology().po_by_name("B").unwrap();
        let edge_ab = sim.topology().edge_between(a_po, b_po).unwrap();
        let before = sim.metrics().edge_locality(edge_ab, 0);
        assert!(before < 0.6, "hash locality {before} should be ~1/n");

        let summary = mgr.reconfigure(&mut sim).unwrap();
        assert!(summary.expected_locality > 0.99, "{summary:?}");
        assert!(summary.table_entries > 0);
        assert_eq!(mgr.pairs_observed(), 0, "stats reset after reconfig");

        sim.run(40);
        assert!(!sim.reconfig_active());
        assert_eq!(sim.pending_migrations(), 0);
        let windows = sim.metrics().windows();
        let tail = &windows[windows.len() - 10..];
        let (mut local, mut remote) = (0u64, 0u64);
        for w in tail {
            local += w.edges[edge_ab.index()].local;
            remote += w.edges[edge_ab.index()].remote;
        }
        let after = local as f64 / (local + remote).max(1) as f64;
        assert!(
            after > 0.95,
            "post-reconfig locality {after} should be near 1"
        );
    }

    #[test]
    fn load_stays_balanced() {
        let n = 3;
        let mut sim = correlated_sim(n);
        let mut mgr = Manager::attach(&mut sim, ManagerConfig::default());
        sim.run(20);
        let summary = mgr.reconfigure(&mut sim).unwrap();
        assert!(
            summary.expected_imbalance < 1.25,
            "imbalance {} too high",
            summary.expected_imbalance
        );
        sim.run(40);
        let b_po = sim.topology().po_by_name("B").unwrap();
        let pois = sim.poi_ids(b_po);
        let imbalance = sim.metrics().load_imbalance(&pois, 40);
        assert!(imbalance < 1.3, "runtime imbalance {imbalance} too high");
    }

    #[test]
    fn tables_cover_both_operators() {
        let mut sim = correlated_sim(2);
        let mut mgr = Manager::attach(&mut sim, ManagerConfig::default());
        sim.run(10);
        mgr.reconfigure(&mut sim).unwrap();
        let a = sim.topology().po_by_name("A").unwrap();
        let b = sim.topology().po_by_name("B").unwrap();
        assert!(mgr.table_for(a).is_some_and(|t| !t.is_empty()));
        assert!(mgr.table_for(b).is_some_and(|t| !t.is_empty()));
        assert!(mgr.table_for(sim.topology().po_by_name("S").unwrap()).is_none());
    }

    #[test]
    fn correlated_keys_colocate() {
        let mut sim = correlated_sim(2);
        let keys = 2u64 * 4;
        let mut mgr = Manager::attach(&mut sim, ManagerConfig::default());
        sim.run(15);
        mgr.reconfigure(&mut sim).unwrap();
        let a = sim.topology().po_by_name("A").unwrap();
        let b = sim.topology().po_by_name("B").unwrap();
        let ta = mgr.table_for(a).unwrap();
        let tb = mgr.table_for(b).unwrap();
        // Pair (k, k + keys) must be assigned to the same server
        // (= instance, with aligned placement).
        let mut checked = 0;
        for k in 0..keys {
            if let (Some(ia), Some(ib)) = (ta.get(Key::new(k)), tb.get(Key::new(k + keys))) {
                assert_eq!(ia, ib, "correlated pair ({k}) split across servers");
                checked += 1;
            }
        }
        assert!(checked > 0, "no pair covered by the tables");
    }

    #[test]
    fn reconfigure_while_wave_active_fails_and_keeps_stats() {
        let mut sim = correlated_sim(2);
        let mut mgr = Manager::attach(&mut sim, ManagerConfig::default());
        sim.run(10);
        mgr.reconfigure(&mut sim).unwrap();
        // Wave still propagating (no step since): second call fails.
        let before = mgr.pairs_observed();
        assert!(mgr.reconfigure(&mut sim).is_err());
        assert_eq!(mgr.pairs_observed(), before);
    }

    #[test]
    fn warm_start_keeps_steady_state_assignment_stable() {
        // Round 1 runs cold (no history). Round 2 sees statistically
        // identical fresh data; the warm-started partition must keep
        // the same near-perfect locality and — since nothing changed —
        // schedule (almost) no migrations.
        let n = 3;
        let mut sim = correlated_sim(n);
        let mut mgr = Manager::attach(&mut sim, ManagerConfig::default());
        sim.run(20);
        let first = mgr.reconfigure(&mut sim).unwrap();
        assert!(first.expected_locality > 0.99, "{first:?}");
        sim.run(20);
        let second = mgr.reconfigure(&mut sim).unwrap();
        assert!(second.expected_locality > 0.99, "{second:?}");
        assert!(
            second.migrations * 10 <= first.migrations.max(1),
            "steady state moved {} keys (first round moved {})",
            second.migrations,
            first.migrations
        );
    }

    #[test]
    fn warm_start_matches_cold_quality() {
        let n = 3;
        let mut warm_sim = correlated_sim(n);
        let mut cold_sim = correlated_sim(n);
        let mut warm_mgr = Manager::attach(&mut warm_sim, ManagerConfig::default());
        let mut cold_mgr = Manager::attach(
            &mut cold_sim,
            ManagerConfig {
                warm_start: false,
                ..ManagerConfig::default()
            },
        );
        for (sim, mgr) in [(&mut warm_sim, &mut warm_mgr), (&mut cold_sim, &mut cold_mgr)] {
            sim.run(20);
            mgr.reconfigure(sim).unwrap();
            sim.run(20);
        }
        let warm = warm_mgr.reconfigure(&mut warm_sim).unwrap();
        let cold = cold_mgr.reconfigure(&mut cold_sim).unwrap();
        assert!(
            warm.expected_locality >= cold.expected_locality - 0.02,
            "warm {} vs cold {}",
            warm.expected_locality,
            cold.expected_locality
        );
        assert!(warm.expected_imbalance < 1.25, "{warm:?}");
    }

    #[test]
    fn apply_offline_installs_tables_without_migration() {
        let mut sim = correlated_sim(2);
        let mut mgr = Manager::attach(&mut sim, ManagerConfig::default());
        sim.run(10);
        let summary = mgr.apply_offline(&mut sim);
        assert!(summary.expected_locality > 0.99);
        assert!(!sim.reconfig_active(), "offline mode bypasses the wave");
        sim.run(20);
        assert_eq!(sim.pending_migrations(), 0);
    }
}
