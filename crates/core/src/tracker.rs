//! SpaceSaving-backed pair instrumentation for stateful instances.

use std::sync::Arc;

use parking_lot::Mutex;
use streamloc_engine::{Key, PairObserver};
use streamloc_sketch::SpaceSaving;

/// The per-instance statistics collector of paper §3.2: counts the
/// `(input key, output key)` pairs flowing through a stateful
/// instance, in bounded memory, using the SpaceSaving sketch.
///
/// A tracker is shared between the engine (which feeds observations
/// through the [`PairObserver`] hook) and the manager (which snapshots
/// and resets it at every reconfiguration) — hence the internal lock.
///
/// # Example
///
/// ```
/// use streamloc_core::PairTracker;
/// use streamloc_engine::{Key, PairObserver};
///
/// let tracker = PairTracker::new(100);
/// tracker.handle().observe(Key::new(1), Key::new(2));
/// tracker.handle().observe(Key::new(1), Key::new(2));
/// let top = tracker.snapshot().top_k(1);
/// assert_eq!(top[0].0, (Key::new(1), Key::new(2)));
/// assert_eq!(top[0].1.count, 2);
/// ```
#[derive(Debug)]
pub struct PairTracker {
    sketch: Mutex<SpaceSaving<(Key, Key)>>,
}

impl PairTracker {
    /// Creates a tracker monitoring at most `capacity` distinct pairs.
    ///
    /// With 1 MB per instance the paper monitors on the order of 10^4
    /// to 10^5 pairs; `capacity` plays that role here.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            sketch: Mutex::new(SpaceSaving::new(capacity)),
        })
    }

    /// An observer handle to install on the engine side
    /// ([`streamloc_engine::Simulation::add_pair_observer`]).
    #[must_use]
    pub fn handle(self: &Arc<Self>) -> TrackerHandle {
        TrackerHandle(Arc::clone(self))
    }

    /// A copy of the current pair statistics (the ② `SEND_METRICS`
    /// payload).
    #[must_use]
    pub fn snapshot(&self) -> SpaceSaving<(Key, Key)> {
        self.sketch.lock().clone()
    }

    /// Total pairs observed since the last reset.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.sketch.lock().total()
    }

    /// Discards all statistics, so the next period only reflects fresh
    /// data (paper §3.2: "Whenever the routing of keys is updated, the
    /// statistics are reinitialized").
    pub fn reset(&self) {
        self.sketch.lock().clear();
    }
}

/// The engine-facing side of a [`PairTracker`].
#[derive(Debug, Clone)]
pub struct TrackerHandle(Arc<PairTracker>);

impl PairObserver for TrackerHandle {
    fn observe(&mut self, input: Key, output: Key) {
        self.0.sketch.lock().offer((input, output));
    }

    /// One lock acquisition and one weighted offer per run.
    fn observe_run(&mut self, input: Key, output: Key, count: u64) {
        if count > 0 {
            self.0.sketch.lock().offer_weighted((input, output), count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observes_and_snapshots() {
        let tracker = PairTracker::new(16);
        let mut handle = tracker.handle();
        for _ in 0..5 {
            handle.observe(Key::new(1), Key::new(10));
        }
        handle.observe(Key::new(2), Key::new(20));
        assert_eq!(tracker.total(), 6);
        let snap = tracker.snapshot();
        assert_eq!(snap.get(&(Key::new(1), Key::new(10))).unwrap().count, 5);
        assert_eq!(snap.get(&(Key::new(2), Key::new(20))).unwrap().count, 1);
    }

    #[test]
    fn reset_clears() {
        let tracker = PairTracker::new(16);
        tracker.handle().observe(Key::new(1), Key::new(2));
        tracker.reset();
        assert_eq!(tracker.total(), 0);
        assert!(tracker.snapshot().is_empty());
    }

    #[test]
    fn capacity_bounds_memory() {
        let tracker = PairTracker::new(4);
        let mut handle = tracker.handle();
        for i in 0..100 {
            handle.observe(Key::new(i % 10), Key::new(i % 7));
        }
        assert!(tracker.snapshot().len() <= 4);
        assert_eq!(tracker.total(), 100);
    }

    #[test]
    fn observe_run_matches_repeated_observe() {
        let run_tracker = PairTracker::new(8);
        let per_tracker = PairTracker::new(8);
        let mut run_handle = run_tracker.handle();
        let mut per_handle = per_tracker.handle();
        for (i, o, n) in [(1, 10, 5), (2, 20, 1), (1, 10, 3), (3, 30, 0)] {
            run_handle.observe_run(Key::new(i), Key::new(o), n);
            for _ in 0..n {
                per_handle.observe(Key::new(i), Key::new(o));
            }
        }
        assert_eq!(run_tracker.total(), per_tracker.total());
        let (a, b) = (run_tracker.snapshot(), per_tracker.snapshot());
        assert_eq!(a.get(&(Key::new(1), Key::new(10))).unwrap().count, 8);
        for entry in a.iter() {
            assert_eq!(b.get(entry.key).map(|e| e.count), Some(entry.count));
        }
    }

    #[test]
    fn handles_share_one_sketch() {
        let tracker = PairTracker::new(8);
        let mut h1 = tracker.handle();
        let mut h2 = tracker.handle();
        h1.observe(Key::new(1), Key::new(1));
        h2.observe(Key::new(1), Key::new(1));
        assert_eq!(tracker.total(), 2);
    }
}
