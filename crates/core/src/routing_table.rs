//! Explicit key → instance routing tables with hash fallback.

use std::collections::HashMap;

use streamloc_engine::{
    key_run_len, push_dest_run, Counter, DestRun, HashRouter, Key, KeyRouter,
};

/// How one key resolved against the table; cached in the `route_batch`
/// memo so repeated keys also skip the counter classification, and
/// replayed into the fallback counters in bulk (once per call) so the
/// totals stay numerically identical to per-tuple routing.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Resolution {
    /// Explicit in-range entry: no fallback counter.
    Hit,
    /// Entry points past the current parallelism: stale fallback.
    Stale,
    /// No entry: hash fallback.
    Missing,
}

/// A routing table for fields grouping: explicitly assigns the
/// monitored keys to operator instances and falls back to hash routing
/// for every other key (paper §3.3: "When a key is not present in the
/// routing table, it falls back to the standard hash-based routing
/// policy").
///
/// # Example
///
/// ```
/// use streamloc_core::RoutingTable;
/// use streamloc_engine::{HashRouter, Key, KeyRouter};
///
/// let table = RoutingTable::from_assignments([(Key::new(7), 2)]);
/// assert_eq!(table.route(Key::new(7), 4), 2);
/// // Unknown keys take the hash route.
/// let k = Key::new(100);
/// assert_eq!(table.route(k, 4), HashRouter.route(k, 4));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    table: HashMap<Key, u32>,
    /// Incremented when a key takes the hash route because it has no
    /// explicit entry. Detached (free-floating) unless wired to a
    /// registry via [`RoutingTable::attach_fallback_counters`].
    hash_fallback: Counter,
    /// Incremented when a key takes the hash route because its explicit
    /// entry points past the current parallelism (stale entry).
    stale_entry_fallback: Counter,
    /// Reconfiguration epoch this table was generated in (the
    /// manager's wave count at build time). Surfaced through
    /// [`KeyRouter::epoch`] so span-tracing hops can tag latency
    /// observations with the routing generation they ran under.
    epoch: u64,
}

// Equality is over the routing decisions only; the observability
// counters are incidental state.
impl PartialEq for RoutingTable {
    fn eq(&self, other: &Self) -> bool {
        self.table == other.table
    }
}

impl RoutingTable {
    /// Creates an empty table (pure hash routing).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a table from explicit `(key, instance)` assignments.
    #[must_use]
    pub fn from_assignments<I>(assignments: I) -> Self
    where
        I: IntoIterator<Item = (Key, u32)>,
    {
        Self {
            table: assignments.into_iter().collect(),
            ..Self::default()
        }
    }

    /// Adds or replaces one assignment.
    pub fn insert(&mut self, key: Key, instance: u32) {
        self.table.insert(key, instance);
    }

    /// Explicit assignment of `key`, if present.
    #[must_use]
    pub fn get(&self, key: Key) -> Option<u32> {
        self.table.get(&key).copied()
    }

    /// Number of explicitly routed keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when every key falls back to hashing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Iterates over the explicit `(key, instance)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (Key, u32)> + '_ {
        self.table.iter().map(|(&k, &i)| (k, i))
    }

    /// Removes every entry that points at an instance `>= instances`
    /// and returns how many were dropped.
    ///
    /// Call this when installing a table for a destination whose
    /// parallelism is known: stale entries would silently degrade to
    /// hash routing on every lookup (see [`KeyRouter::route`]), so it
    /// is cheaper — and observable via the return value — to purge
    /// them once at install time.
    pub fn purge_out_of_range(&mut self, instances: usize) -> usize {
        let before = self.table.len();
        self.table.retain(|_, &mut i| (i as usize) < instances);
        before - self.table.len()
    }

    /// Stamps the reconfiguration epoch this table belongs to.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The reconfiguration epoch stamped by [`set_epoch`]
    /// (0 for tables never stamped).
    ///
    /// [`set_epoch`]: Self::set_epoch
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Wires the fallback counters to externally owned handles
    /// (typically registered in a
    /// [`MetricsRegistry`](streamloc_engine::MetricsRegistry)). Until
    /// called, the counters are detached but still count.
    pub fn attach_fallback_counters(&mut self, hash: Counter, stale: Counter) {
        self.hash_fallback = hash;
        self.stale_entry_fallback = stale;
    }

    /// Number of lookups that fell back to hashing because the key had
    /// no explicit entry.
    #[must_use]
    pub fn hash_fallbacks(&self) -> u64 {
        self.hash_fallback.get()
    }

    /// Number of lookups that fell back to hashing because the entry
    /// pointed past the current parallelism.
    #[must_use]
    pub fn stale_entry_fallbacks(&self) -> u64 {
        self.stale_entry_fallback.get()
    }
}

impl KeyRouter for RoutingTable {
    fn route(&self, key: Key, instances: usize) -> u32 {
        match self.table.get(&key) {
            Some(&i) if (i as usize) < instances => i,
            // A stale table entry pointing past the current parallelism
            // degrades to hashing rather than panicking.
            Some(_) => {
                self.stale_entry_fallback.inc();
                HashRouter.route(key, instances)
            }
            None => {
                self.hash_fallback.inc();
                HashRouter.route(key, instances)
            }
        }
    }

    /// Looks up each run of equal keys once. A two-entry memo of the
    /// most recent distinct keys (carrying the fallback class so the
    /// counters stay exact) catches alternating traffic; the fallback
    /// counters get one bulk add per call instead of one RMW per tuple.
    fn route_batch(&self, keys: &[Key], instances: usize, out: &mut Vec<DestRun>) {
        let start = out.len();
        let mut memo: [Option<(Key, u32, Resolution)>; 2] = [None, None];
        let (mut stale, mut missing) = (0u64, 0u64);
        let mut rest = keys;
        while !rest.is_empty() {
            let key = rest[0];
            let len = key_run_len(rest) as u64;
            let (dest, res) = match memo {
                [Some((k, d, r)), _] if k == key => (d, r),
                [_, Some((k, d, r))] if k == key => {
                    memo.swap(0, 1); // keep the most recent key in front
                    (d, r)
                }
                _ => {
                    let (d, r) = match self.table.get(&key) {
                        Some(&i) if (i as usize) < instances => (i, Resolution::Hit),
                        Some(_) => (HashRouter.route(key, instances), Resolution::Stale),
                        None => (HashRouter.route(key, instances), Resolution::Missing),
                    };
                    memo[1] = memo[0];
                    memo[0] = Some((key, d, r));
                    (d, r)
                }
            };
            match res {
                Resolution::Hit => {}
                Resolution::Stale => stale += len,
                Resolution::Missing => missing += len,
            }
            push_dest_run(out, start, dest, len as u32);
            rest = &rest[len as usize..];
        }
        if stale > 0 {
            self.stale_entry_fallback.add(stale);
        }
        if missing > 0 {
            self.hash_fallback.add(missing);
        }
    }

    fn name(&self) -> &'static str {
        "table"
    }

    fn epoch(&self) -> Option<u64> {
        Some(self.epoch)
    }
}

impl FromIterator<(Key, u32)> for RoutingTable {
    fn from_iter<I: IntoIterator<Item = (Key, u32)>>(iter: I) -> Self {
        Self::from_assignments(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_entries_override_hash() {
        let mut t = RoutingTable::new();
        assert!(t.is_empty());
        t.insert(Key::new(1), 3);
        t.insert(Key::new(2), 0);
        assert_eq!(t.route(Key::new(1), 4), 3);
        assert_eq!(t.route(Key::new(2), 4), 0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(Key::new(1)), Some(3));
        assert_eq!(t.get(Key::new(9)), None);
    }

    #[test]
    fn fallback_matches_hash_router() {
        let t = RoutingTable::new();
        for v in 0..50 {
            let k = Key::new(v);
            for n in 1..8 {
                assert_eq!(t.route(k, n), HashRouter.route(k, n));
            }
        }
    }

    #[test]
    fn out_of_range_entry_degrades_to_hash() {
        let t = RoutingTable::from_assignments([(Key::new(5), 10)]);
        assert_eq!(t.route(Key::new(5), 4), HashRouter.route(Key::new(5), 4));
        // But valid again if parallelism grows.
        assert_eq!(t.route(Key::new(5), 11), 10);
    }

    #[test]
    fn purge_drops_only_out_of_range_entries() {
        let mut t = RoutingTable::from_assignments([
            (Key::new(1), 0),
            (Key::new(2), 3),
            (Key::new(3), 4),
            (Key::new(4), 9),
        ]);
        assert_eq!(t.purge_out_of_range(4), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(Key::new(1)), Some(0));
        assert_eq!(t.get(Key::new(2)), Some(3));
        assert_eq!(t.get(Key::new(3)), None);
        assert_eq!(t.get(Key::new(4)), None);
        // Idempotent.
        assert_eq!(t.purge_out_of_range(4), 0);
    }

    #[test]
    fn fallback_counters_distinguish_missing_from_stale() {
        let t = RoutingTable::from_assignments([(Key::new(1), 0), (Key::new(2), 8)]);
        t.route(Key::new(1), 4); // explicit hit: no fallback
        t.route(Key::new(9), 4); // missing: hash fallback
        t.route(Key::new(2), 4); // stale: stale fallback
        t.route(Key::new(2), 4);
        assert_eq!(t.hash_fallbacks(), 1);
        assert_eq!(t.stale_entry_fallbacks(), 2);
    }

    #[test]
    fn route_batch_matches_per_key_route_and_counters() {
        use streamloc_engine::DestRun;
        // 1 → explicit hit, 2 → stale entry, everything else missing.
        let batch_t = RoutingTable::from_assignments([(Key::new(1), 0), (Key::new(2), 8)]);
        let tuple_t = batch_t.clone();
        // Runs, alternation across all three classes, and a mixed tail.
        let mut keys: Vec<Key> = Vec::new();
        keys.extend([1, 1, 1, 2, 2, 9, 1, 9, 1, 9, 2, 9, 2].map(Key::new));
        for v in 0..100u64 {
            keys.push(Key::new(streamloc_engine::splitmix64(v) % 5));
        }
        let mut runs: Vec<DestRun> = Vec::new();
        batch_t.route_batch(&keys, 4, &mut runs);
        let expanded: Vec<u32> = runs
            .iter()
            .flat_map(|r| std::iter::repeat_n(r.dest, r.len as usize))
            .collect();
        let per_key: Vec<u32> = keys.iter().map(|&k| tuple_t.route(k, 4)).collect();
        assert_eq!(expanded, per_key);
        // The fallback counters must be numerically identical too.
        assert_eq!(batch_t.hash_fallbacks(), tuple_t.hash_fallbacks());
        assert_eq!(
            batch_t.stale_entry_fallbacks(),
            tuple_t.stale_entry_fallbacks()
        );
        assert!(batch_t.hash_fallbacks() > 0);
        assert!(batch_t.stale_entry_fallbacks() > 0);
    }

    #[test]
    fn epoch_stamp_rides_outside_equality() {
        let mut a = RoutingTable::from_assignments([(Key::new(1), 0)]);
        let b = a.clone();
        assert_eq!(KeyRouter::epoch(&a), Some(0));
        a.set_epoch(3);
        assert_eq!(a.epoch(), 3);
        assert_eq!(KeyRouter::epoch(&a), Some(3));
        // Equality stays over routing decisions only.
        assert_eq!(a, b);
    }

    #[test]
    fn collects_from_iterator() {
        let t: RoutingTable = (0..10u64).map(|v| (Key::new(v), (v % 3) as u32)).collect();
        assert_eq!(t.len(), 10);
        assert_eq!(t.route(Key::new(4), 3), 1);
    }
}
