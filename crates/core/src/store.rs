//! Stable storage for routing configurations.
//!
//! Paper §3.4: "To handle fault tolerance, the manager saves all
//! routing configurations to stable storage before starting
//! reconfiguration." This module provides the snapshot format and two
//! stores (in-memory for tests, filesystem for real use); after a
//! manager restart, [`Manager::restore_configuration`] re-installs the
//! last saved tables.
//!
//! [`Manager::restore_configuration`]: crate::Manager::restore_configuration

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Read, Write};
use std::path::PathBuf;

use streamloc_engine::Key;

use crate::routing_table::RoutingTable;

/// Magic header of the binary snapshot format.
const MAGIC: &[u8; 8] = b"SLOCCFG1";

/// A point-in-time snapshot of every routing table the manager has
/// deployed, keyed by operator name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SavedConfiguration {
    tables: BTreeMap<String, RoutingTable>,
}

impl SavedConfiguration {
    /// Creates an empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) the table for operator `po_name`.
    pub fn insert(&mut self, po_name: &str, table: RoutingTable) {
        self.tables.insert(po_name.to_owned(), table);
    }

    /// The table saved for `po_name`, if any.
    #[must_use]
    pub fn table(&self, po_name: &str) -> Option<&RoutingTable> {
        self.tables.get(po_name)
    }

    /// Iterates over `(operator name, table)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &RoutingTable)> {
        self.tables.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Number of tables in the snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` when the snapshot holds no tables.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Serializes to the stable binary format (deterministic: tables
    /// and entries are written in sorted order).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.tables.len() as u32).to_le_bytes());
        for (name, table) in &self.tables {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            let mut entries: Vec<(Key, u32)> = table.iter().collect();
            entries.sort_by_key(|&(k, _)| k);
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (key, instance) in entries {
                out.extend_from_slice(&key.value().to_le_bytes());
                out.extend_from_slice(&instance.to_le_bytes());
            }
        }
        out
    }

    /// Parses the stable binary format.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on any malformed input.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        fn bad(msg: &str) -> io::Error {
            io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
        }
        if bytes.len() < 8 || &bytes[..8] != MAGIC {
            return Err(bad("bad magic"));
        }
        let mut pos = 8usize;
        let read_u32_at = |bytes: &[u8], pos: &mut usize| -> io::Result<u32> {
            let end = pos.checked_add(4).ok_or_else(|| bad("overflow"))?;
            let slice = bytes.get(*pos..end).ok_or_else(|| bad("truncated"))?;
            *pos = end;
            Ok(u32::from_le_bytes(slice.try_into().expect("4 bytes")))
        };
        let read_u64_at = |bytes: &[u8], pos: &mut usize| -> io::Result<u64> {
            let end = pos.checked_add(8).ok_or_else(|| bad("overflow"))?;
            let slice = bytes.get(*pos..end).ok_or_else(|| bad("truncated"))?;
            *pos = end;
            Ok(u64::from_le_bytes(slice.try_into().expect("8 bytes")))
        };
        let table_count = read_u32_at(bytes, &mut pos)?;
        let mut tables = BTreeMap::new();
        for _ in 0..table_count {
            let name_len = read_u32_at(bytes, &mut pos)? as usize;
            let end = pos.checked_add(name_len).ok_or_else(|| bad("overflow"))?;
            let name_bytes = bytes.get(pos..end).ok_or_else(|| bad("truncated"))?;
            pos = end;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| bad("name not utf-8"))?
                .to_owned();
            let entry_count = read_u32_at(bytes, &mut pos)?;
            let mut table = RoutingTable::new();
            for _ in 0..entry_count {
                let key = read_u64_at(bytes, &mut pos)?;
                let instance = read_u32_at(bytes, &mut pos)?;
                table.insert(Key::new(key), instance);
            }
            tables.insert(name, table);
        }
        if pos != bytes.len() {
            return Err(bad("trailing bytes"));
        }
        Ok(Self { tables })
    }
}

/// Stable storage of configuration snapshots, by monotonically
/// increasing epoch.
pub trait ConfigStore: Send {
    /// Persists `config` under `epoch`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the backing medium.
    fn save(&mut self, epoch: u64, config: &SavedConfiguration) -> io::Result<()>;

    /// Loads the snapshot with the highest epoch, if any.
    ///
    /// # Errors
    ///
    /// Propagates I/O and decoding errors.
    fn load_latest(&self) -> io::Result<Option<(u64, SavedConfiguration)>>;
}

/// In-memory store, for tests and single-process deployments.
#[derive(Debug, Default)]
pub struct MemoryStore {
    epochs: Vec<(u64, Vec<u8>)>,
}

impl MemoryStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of snapshots held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// `true` when no snapshot has been saved.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }
}

impl ConfigStore for MemoryStore {
    fn save(&mut self, epoch: u64, config: &SavedConfiguration) -> io::Result<()> {
        self.epochs.push((epoch, config.to_bytes()));
        Ok(())
    }

    fn load_latest(&self) -> io::Result<Option<(u64, SavedConfiguration)>> {
        let Some((epoch, bytes)) = self.epochs.iter().max_by_key(|&&(e, _)| e) else {
            return Ok(None);
        };
        Ok(Some((*epoch, SavedConfiguration::from_bytes(bytes)?)))
    }
}

/// Filesystem store: one `config-<epoch>.slocc` file per snapshot in a
/// directory.
#[derive(Debug, Clone)]
pub struct FileStore {
    dir: PathBuf,
}

impl FileStore {
    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation errors.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    fn path_for(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("config-{epoch:020}.slocc"))
    }
}

impl ConfigStore for FileStore {
    fn save(&mut self, epoch: u64, config: &SavedConfiguration) -> io::Result<()> {
        // Write-then-rename so a crash never leaves a torn snapshot.
        let tmp = self.dir.join(format!(".config-{epoch:020}.tmp"));
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&config.to_bytes())?;
        file.sync_all()?;
        fs::rename(&tmp, self.path_for(epoch))
    }

    fn load_latest(&self) -> io::Result<Option<(u64, SavedConfiguration)>> {
        let mut best: Option<(u64, PathBuf)> = None;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(epoch_str) = name
                .strip_prefix("config-")
                .and_then(|s| s.strip_suffix(".slocc"))
            else {
                continue;
            };
            let Ok(epoch) = epoch_str.parse::<u64>() else {
                continue;
            };
            if best.as_ref().is_none_or(|&(e, _)| epoch > e) {
                best = Some((epoch, entry.path()));
            }
        }
        let Some((epoch, path)) = best else {
            return Ok(None);
        };
        let mut bytes = Vec::new();
        fs::File::open(path)?.read_to_end(&mut bytes)?;
        Ok(Some((epoch, SavedConfiguration::from_bytes(&bytes)?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SavedConfiguration {
        let mut config = SavedConfiguration::new();
        config.insert(
            "by_hashtag",
            RoutingTable::from_assignments([(Key::new(5), 2), (Key::new(9), 0)]),
        );
        config.insert(
            "by_location",
            RoutingTable::from_assignments([(Key::new(1), 1)]),
        );
        config
    }

    #[test]
    fn binary_roundtrip() {
        let config = sample();
        let bytes = config.to_bytes();
        let decoded = SavedConfiguration::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, config);
        assert_eq!(decoded.table("by_hashtag").unwrap().get(Key::new(5)), Some(2));
        assert_eq!(decoded.len(), 2);
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_bytes(), sample().to_bytes());
    }

    #[test]
    fn rejects_garbage() {
        assert!(SavedConfiguration::from_bytes(b"not a snapshot").is_err());
        let mut bytes = sample().to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(SavedConfiguration::from_bytes(&bytes).is_err());
        bytes = sample().to_bytes();
        bytes.push(0);
        assert!(SavedConfiguration::from_bytes(&bytes).is_err());
    }

    #[test]
    fn memory_store_returns_latest_epoch() {
        let mut store = MemoryStore::new();
        assert!(store.load_latest().unwrap().is_none());
        store.save(3, &sample()).unwrap();
        let mut newer = sample();
        newer.insert("extra", RoutingTable::new());
        store.save(7, &newer).unwrap();
        store.save(5, &sample()).unwrap();
        let (epoch, loaded) = store.load_latest().unwrap().unwrap();
        assert_eq!(epoch, 7);
        assert_eq!(loaded, newer);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "streamloc-store-test-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let mut store = FileStore::open(&dir).unwrap();
        assert!(store.load_latest().unwrap().is_none());
        store.save(1, &sample()).unwrap();
        store.save(12, &sample()).unwrap();
        let (epoch, loaded) = store.load_latest().unwrap().unwrap();
        assert_eq!(epoch, 12);
        assert_eq!(loaded, sample());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_configuration_roundtrips() {
        let config = SavedConfiguration::new();
        assert!(config.is_empty());
        let decoded = SavedConfiguration::from_bytes(&config.to_bytes()).unwrap();
        assert!(decoded.is_empty());
    }
}
