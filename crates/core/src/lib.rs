//! Locality-aware routing for stateful streaming applications.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Caneill, El Rheddane, Leroy, De Palma — *Locality-Aware Routing in
//! Stateful Streaming Applications*, Middleware 2016): instead of
//! hashing keys to operator instances, it observes which keys of
//! consecutive fields groupings co-occur, assigns correlated keys to
//! instances on the same server, and keeps doing so online as the
//! stream drifts — cutting network traffic while preserving load
//! balance.
//!
//! The pieces, mapped to the paper:
//!
//! * [`PairTracker`] — §3.2's bounded-memory instrumentation: a
//!   SpaceSaving sketch of `(input key, output key)` pairs per
//!   stateful instance;
//! * [`RoutingTable`] — §3.3's explicit key → instance tables with
//!   hash fallback for unmonitored keys;
//! * [`Manager`] — §3.3–3.4's coordinator: merges the trackers'
//!   statistics, builds the bipartite key graph, partitions it under
//!   the imbalance bound α (via `streamloc-partition`, the in-repo
//!   Metis equivalent), generates tables, and deploys them through the
//!   engine's online reconfiguration wave with state migration
//!   ([`Manager::reconfigure`]) or offline at startup
//!   ([`Manager::apply_offline`]).
//!
//! # Example
//!
//! ```
//! use streamloc_core::{Manager, ManagerConfig};
//! use streamloc_engine::{
//!     ClusterSpec, CountOperator, Grouping, Key, Placement, SimConfig,
//!     Simulation, SourceRate, Topology, Tuple,
//! };
//!
//! // Two consecutive stateful operators over correlated keys.
//! let n = 2;
//! let mut builder = Topology::builder();
//! let s = builder.source("S", n, SourceRate::PerSecond(10_000.0), |i| {
//!     let mut c = i as u64;
//!     Box::new(move || {
//!         c += 1;
//!         let k = c % 8;
//!         Some(Tuple::new([Key::new(k), Key::new(k + 8)], 64))
//!     })
//! });
//! let a = builder.stateful("A", n, CountOperator::factory());
//! let b = builder.stateful("B", n, CountOperator::factory());
//! builder.connect(s, a, Grouping::fields(0));
//! builder.connect(a, b, Grouping::fields(1));
//! let topology = builder.build()?;
//!
//! let placement = Placement::aligned(&topology, n);
//! let mut sim = Simulation::new(
//!     topology,
//!     ClusterSpec::lan_10g(n),
//!     placement,
//!     SimConfig::default(),
//! );
//! let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
//!
//! sim.run(10); // gather statistics under hash routing
//! let summary = manager.reconfigure(&mut sim).expect("no wave running");
//! assert!(summary.expected_locality > 0.9);
//! sim.run(10); // wave propagates, state migrates, locality rises
//! # Ok::<(), streamloc_engine::BuildTopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

#[cfg(test)]
mod estimator_tests;
mod manager;
mod routing_table;
mod store;
mod tracker;

pub use manager::{Manager, ManagerConfig, PartitionerKind, ReconfigPolicy, ReconfigSummary};
pub use routing_table::RoutingTable;
pub use store::{ConfigStore, FileStore, MemoryStore, SavedConfiguration};
pub use tracker::{PairTracker, TrackerHandle};
