//! A Twitter-like workload with drifting key correlations.
//!
//! Substitute for the paper's crawl of 173 M geo-tagged tweets
//! (Oct 2015 – May 2016). The generator reproduces the three
//! properties the evaluation depends on (see DESIGN.md §2):
//!
//! * Zipf-skewed locations and hashtags;
//! * correlation between the two key spaces (each hashtag has an
//!   affinity location, so `(location, hashtag)` pairs repeat);
//! * *drift*: part of the hashtag population re-draws its affinity
//!   every week, new hashtags keep appearing, and short flash events
//!   (à la `#nevertrump` in Fig. 10) bind a hashtag to one location
//!   for a few days.

use streamloc_engine::{splitmix64, Key};

use crate::rng::SplitMix64;
use crate::zipf::Zipf;

/// Key-space offset separating hashtag keys from location keys.
pub const HASHTAG_KEY_BASE: u64 = 1_000_000_000;

/// Days per generated week.
pub const DAYS_PER_WEEK: usize = 7;

/// A short-lived spike binding `hashtag` to `location` (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashEvent {
    /// Location index of the spike.
    pub location: usize,
    /// Hashtag index of the spike.
    pub hashtag: usize,
    /// First active day (absolute day number).
    pub start_day: usize,
    /// Number of active days.
    pub duration_days: usize,
}

impl FlashEvent {
    /// Whether the event is active on absolute day `day`.
    #[must_use]
    pub fn active_on(&self, day: usize) -> bool {
        (self.start_day..self.start_day + self.duration_days).contains(&day)
    }
}

/// Generator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TwitterConfig {
    /// Number of distinct locations.
    pub locations: usize,
    /// Number of distinct base hashtags (fresh ones are added weekly).
    pub hashtags: usize,
    /// Zipf exponent of both key spaces.
    pub zipf_s: f64,
    /// Probability a tweet's hashtag is drawn from its location's
    /// affiliated hashtags (the correlation strength).
    pub correlation: f64,
    /// Fraction of hashtags whose affinity location never drifts.
    pub stable_fraction: f64,
    /// A drifting hashtag re-draws its affinity every this many weeks
    /// (with a per-tag phase, so roughly `1/drift_period_weeks` of the
    /// drifting tags move each week). Must be ≥ 1.
    pub drift_period_weeks: usize,
    /// Brand-new hashtag ids introduced each week.
    pub fresh_per_week: usize,
    /// Probability a tweet uses one of this week's fresh hashtags.
    pub fresh_rate: f64,
    /// Tweets generated per day.
    pub tuples_per_day: usize,
    /// Flash events started per week.
    pub events_per_week: usize,
    /// Probability a tweet belongs to an active flash event.
    pub event_intensity: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for TwitterConfig {
    fn default() -> Self {
        Self {
            locations: 300,
            hashtags: 30_000,
            zipf_s: 1.0,
            correlation: 0.8,
            stable_fraction: 0.5,
            drift_period_weeks: 4,
            fresh_per_week: 300,
            fresh_rate: 0.02,
            tuples_per_day: 10_000,
            events_per_week: 3,
            event_intensity: 0.05,
            seed: 0x7717,
        }
    }
}

/// The Twitter-like stream, addressable by day or week so the
/// experiment harnesses can replay any period deterministically.
///
/// # Example
///
/// ```
/// use streamloc_workloads::{TwitterConfig, TwitterWorkload};
///
/// let mut tw = TwitterWorkload::new(TwitterConfig {
///     tuples_per_day: 100,
///     ..TwitterConfig::default()
/// });
/// let day0 = tw.day(0);
/// assert_eq!(day0.len(), 100);
/// let (location, hashtag) = day0[0];
/// assert!(location.value() < 300);
/// assert!(hashtag.value() >= streamloc_workloads::HASHTAG_KEY_BASE);
/// ```
#[derive(Debug, Clone)]
pub struct TwitterWorkload {
    cfg: TwitterConfig,
    zipf_loc: Zipf,
    zipf_tag: Zipf,
    /// Cached per-location affiliated hashtag lists for one week.
    affiliated_week: Option<(usize, Vec<Vec<usize>>)>,
}

impl TwitterWorkload {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if `locations` or `hashtags` is zero, or any probability
    /// is outside `[0, 1]`.
    #[must_use]
    pub fn new(cfg: TwitterConfig) -> Self {
        assert!(cfg.locations > 0 && cfg.hashtags > 0);
        for p in [
            cfg.correlation,
            cfg.stable_fraction,
            cfg.fresh_rate,
            cfg.event_intensity,
        ] {
            assert!((0.0..=1.0).contains(&p), "probability out of range");
        }
        let zipf_loc = Zipf::new(cfg.locations, cfg.zipf_s);
        let zipf_tag = Zipf::new(cfg.hashtags, cfg.zipf_s);
        Self {
            cfg,
            zipf_loc,
            zipf_tag,
            affiliated_week: None,
        }
    }

    /// The generator configuration.
    #[must_use]
    pub fn config(&self) -> &TwitterConfig {
        &self.cfg
    }

    /// The affinity location of `hashtag` during `week`. Stable
    /// hashtags keep one affinity forever; drifting ones re-draw it
    /// every `drift_period_weeks`, phase-shifted per tag so the drift
    /// is spread evenly over the weeks.
    #[must_use]
    pub fn affinity(&self, hashtag: usize, week: usize) -> usize {
        let tag_mix = splitmix64(self.cfg.seed ^ (hashtag as u64).wrapping_mul(0x51ab));
        let stable = (tag_mix % 10_000) as f64 / 10_000.0 < self.cfg.stable_fraction;
        let basis = if stable {
            splitmix64(tag_mix)
        } else {
            let period = self.cfg.drift_period_weeks.max(1);
            let phase = (tag_mix >> 32) as usize % period;
            let epoch = ((week + phase) / period) as u64;
            splitmix64(tag_mix ^ (epoch + 1).wrapping_mul(0xdead_beef))
        };
        (basis % self.cfg.locations as u64) as usize
    }

    /// Flash events started during `week`.
    #[must_use]
    pub fn events(&self, week: usize) -> Vec<FlashEvent> {
        let mut rng = SplitMix64::new(splitmix64(
            self.cfg.seed ^ 0xe4e7 ^ (week as u64).wrapping_mul(0x2545),
        ));
        (0..self.cfg.events_per_week)
            .map(|_| FlashEvent {
                location: rng.gen_range_usize(0..self.cfg.locations),
                hashtag: rng.gen_range_usize(0..100.min(self.cfg.hashtags)),
                start_day: week * DAYS_PER_WEEK + rng.gen_range_usize(0..5),
                duration_days: rng.gen_range_usize(2..4),
            })
            .collect()
    }

    /// Generates day `day` (absolute day number) as `(location key,
    /// hashtag key)` pairs. Deterministic and random-access: any day
    /// can be generated in any order.
    pub fn day(&mut self, day: usize) -> Vec<(Key, Key)> {
        let week = day / DAYS_PER_WEEK;
        self.ensure_affiliated(week);
        let affiliated = &self.affiliated_week.as_ref().expect("just built").1;
        let mut active_events: Vec<FlashEvent> = Vec::new();
        for w in week.saturating_sub(1)..=week {
            active_events.extend(self.events(w).into_iter().filter(|e| e.active_on(day)));
        }
        let mut rng = SplitMix64::new(splitmix64(
            self.cfg.seed ^ (day as u64).wrapping_mul(0x9e37_79b9),
        ));
        let mut out = Vec::with_capacity(self.cfg.tuples_per_day);
        for _ in 0..self.cfg.tuples_per_day {
            if !active_events.is_empty() && rng.gen_bool(self.cfg.event_intensity) {
                let ev = active_events[rng.gen_range_usize(0..active_events.len())];
                out.push((loc_key(ev.location), tag_key(ev.hashtag)));
                continue;
            }
            let loc = self.zipf_loc.sample(&mut rng);
            let tag = if rng.gen_bool(self.cfg.fresh_rate) {
                // A hashtag born this week, never seen before.
                self.cfg.hashtags
                    + week * self.cfg.fresh_per_week
                    + rng.gen_range_usize(0..self.cfg.fresh_per_week.max(1))
            } else if rng.gen_bool(self.cfg.correlation) && !affiliated[loc].is_empty() {
                // Zipf-skewed pick within the location's affiliated
                // tags (log-uniform index ≈ Zipf with s = 1).
                let list = &affiliated[loc];
                let u = rng.next_f64();
                let idx = (((list.len() + 1) as f64).powf(u) as usize).saturating_sub(1);
                list[idx.min(list.len() - 1)]
            } else {
                self.zipf_tag.sample(&mut rng)
            };
            out.push((loc_key(loc), tag_key(tag)));
        }
        out
    }

    /// Generates a full week (7 concatenated days).
    pub fn week(&mut self, week: usize) -> Vec<(Key, Key)> {
        let mut out = Vec::with_capacity(self.cfg.tuples_per_day * DAYS_PER_WEEK);
        for d in 0..DAYS_PER_WEEK {
            out.extend(self.day(week * DAYS_PER_WEEK + d));
        }
        out
    }

    /// Turns the workload into a live [`TupleSource`] for source
    /// instance `instance` of `instances`: days are generated in
    /// order, each instance emitting every `instances`-th tweet, so a
    /// cluster simulation sees the same drifting stream the replay
    /// harnesses analyse.
    ///
    /// [`TupleSource`]: streamloc_engine::TupleSource
    ///
    /// # Panics
    ///
    /// Panics if `instance >= instances`.
    #[must_use]
    pub fn source(
        mut self,
        instance: usize,
        instances: usize,
        padding: u32,
    ) -> Box<dyn streamloc_engine::TupleSource> {
        assert!(instance < instances, "instance index out of range");
        let mut day = 0usize;
        let mut buffer: std::collections::VecDeque<(Key, Key)> =
            std::collections::VecDeque::new();
        Box::new(move || loop {
            if let Some((loc, tag)) = buffer.pop_front() {
                return Some(streamloc_engine::Tuple::new([loc, tag], padding));
            }
            let batch = self.day(day);
            day += 1;
            buffer.extend(batch.into_iter().skip(instance).step_by(instances));
        })
    }

    /// Rebuilds the cached per-location affiliated-hashtag lists when
    /// `week` differs from the cached one.
    fn ensure_affiliated(&mut self, week: usize) {
        if matches!(&self.affiliated_week, Some((w, _)) if *w == week) {
            return;
        }
        let mut lists = vec![Vec::new(); self.cfg.locations];
        for tag in 0..self.cfg.hashtags {
            lists[self.affinity(tag, week)].push(tag);
        }
        self.affiliated_week = Some((week, lists));
    }
}

/// Key encoding of location index `loc`.
#[must_use]
pub fn loc_key(loc: usize) -> Key {
    Key::new(loc as u64)
}

/// Key encoding of hashtag index `tag`.
#[must_use]
pub fn tag_key(tag: usize) -> Key {
    Key::new(HASHTAG_KEY_BASE + tag as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn small() -> TwitterWorkload {
        TwitterWorkload::new(TwitterConfig {
            locations: 20,
            hashtags: 500,
            fresh_per_week: 20,
            tuples_per_day: 2_000,
            ..TwitterConfig::default()
        })
    }

    #[test]
    fn deterministic_random_access() {
        let mut a = small();
        let mut b = small();
        let d5_first = a.day(5);
        let _ = b.day(9); // different access order
        let d5_second = b.day(5);
        assert_eq!(d5_first, d5_second);
    }

    #[test]
    fn key_spaces_are_disjoint() {
        let mut w = small();
        for (loc, tag) in w.day(0) {
            assert!(loc.value() < HASHTAG_KEY_BASE);
            assert!(tag.value() >= HASHTAG_KEY_BASE);
        }
    }

    #[test]
    fn stable_tags_keep_affinity_drifting_tags_move() {
        let w = small();
        let mut stable = 0;
        let mut moved = 0;
        for tag in 0..w.config().hashtags {
            let a = w.affinity(tag, 0);
            let changed = (1..=2 * w.config().drift_period_weeks)
                .any(|wk| w.affinity(tag, wk) != a);
            if changed {
                moved += 1;
            } else {
                stable += 1;
            }
        }
        // Roughly stable_fraction of tags never move (a drifting tag
        // re-draws 5 times over 20 locations: P(all same) ≈ 0).
        let frac = stable as f64 / (stable + moved) as f64;
        assert!(
            (frac - 0.5).abs() < 0.08,
            "stable fraction {frac} far from configured 0.5"
        );
    }

    #[test]
    fn correlations_drift_across_weeks() {
        let mut w = small();
        let top_pairs = |batch: &[(Key, Key)]| -> HashSet<(Key, Key)> {
            let mut counts: HashMap<(Key, Key), u32> = HashMap::new();
            for &p in batch {
                *counts.entry(p).or_default() += 1;
            }
            let mut v: Vec<_> = counts.into_iter().collect();
            v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            v.into_iter().take(50).map(|(p, _)| p).collect()
        };
        let w0 = w.week(0);
        let w8 = w.week(8);
        let t0 = top_pairs(&w0);
        let t8 = top_pairs(&w8);
        let overlap = t0.intersection(&t8).count();
        assert!(
            overlap < 45,
            "top pairs should drift between weeks (overlap {overlap}/50)"
        );
        assert!(
            overlap > 0,
            "stable tags should keep some pairs in common"
        );
    }

    #[test]
    fn fresh_hashtags_only_appear_in_their_week() {
        let mut w = small();
        let base = w.config().hashtags;
        let per_week = w.config().fresh_per_week;
        let week3_fresh_range =
            (base + 3 * per_week) as u64 + HASHTAG_KEY_BASE..(base + 4 * per_week) as u64 + HASHTAG_KEY_BASE;
        let w1 = w.week(1);
        assert!(
            !w1.iter().any(|(_, t)| week3_fresh_range.contains(&t.value())),
            "week 1 must not contain week 3's fresh hashtags"
        );
        let w3 = w.week(3);
        assert!(
            w3.iter().any(|(_, t)| week3_fresh_range.contains(&t.value())),
            "week 3 should contain its fresh hashtags"
        );
    }

    #[test]
    fn events_spike_their_pair() {
        let mut w = TwitterWorkload::new(TwitterConfig {
            locations: 20,
            hashtags: 500,
            tuples_per_day: 5_000,
            events_per_week: 1,
            event_intensity: 0.2,
            ..TwitterConfig::default()
        });
        let events = w.events(2);
        let ev = events[0];
        let day = w.day(ev.start_day);
        let pair = (loc_key(ev.location), tag_key(ev.hashtag));
        let hits = day.iter().filter(|&&p| p == pair).count();
        assert!(
            hits > day.len() / 20,
            "event pair should spike: {hits}/{}",
            day.len()
        );
        // And be (almost) silent the week before the event.
        let quiet_day = ev.start_day.saturating_sub(DAYS_PER_WEEK * 2);
        let quiet = w.day(quiet_day);
        let quiet_hits = quiet.iter().filter(|&&p| p == pair).count();
        assert!(quiet_hits * 10 < hits.max(10), "pair hot before the event");
    }

    #[test]
    fn locations_are_zipf_skewed() {
        let mut w = small();
        let batch = w.week(0);
        let mut counts: HashMap<Key, u32> = HashMap::new();
        for (loc, _) in batch {
            *counts.entry(loc).or_default() += 1;
        }
        let top = counts.values().copied().max().unwrap();
        let avg = counts.values().copied().sum::<u32>() / counts.len() as u32;
        assert!(top > avg * 3, "expected heavy skew: top {top}, avg {avg}");
    }
}
