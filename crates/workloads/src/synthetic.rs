//! The synthetic workload of paper §4.2.

use streamloc_engine::{Key, Tuple, TupleSource};

use crate::rng::SplitMix64;

/// Synthetic tuples `(i, j, padding)` with a controllable fraction of
/// correlated (`i == j`) tuples — the workload of paper §4.2.
///
/// Both integers range over `0..parallelism`. Source instance `i`
/// emits tuples with first key `i` — the stream arrives partitioned
/// by its first key, as when every server reads its own shard of the
/// dataset — and `locality` is the probability that the second key
/// `j` equals `i` (so with the aligned modulo routing tables the
/// tuple never leaves server `i`; at 100% locality the ideal tables
/// avoid *all* network traffic, the paper's Fig. 7d–f). The remaining
/// tuples draw `j != i` uniformly. `padding` sets the payload size
/// the paper sweeps from 0 to 20 kB.
///
/// # Example
///
/// ```
/// use streamloc_engine::TupleSource;
/// use streamloc_workloads::SyntheticWorkload;
///
/// let workload = SyntheticWorkload::new(4, 0.8, 1024, 7);
/// let mut source = workload.source(0);
/// let t = source.next_tuple().unwrap();
/// assert!(t.key(0).value() < 4);
/// assert_eq!(t.payload_bytes(), 1024);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    parallelism: usize,
    locality: f64,
    padding: u32,
    seed: u64,
}

impl SyntheticWorkload {
    /// Creates the workload for `parallelism` servers with the given
    /// `locality` fraction (in `[0, 1]`) and payload `padding` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism == 0` or `locality` is outside `[0, 1]`.
    /// `locality < 1` additionally requires `parallelism >= 2` (there
    /// is no distinct `j` to draw on a single server).
    #[must_use]
    pub fn new(parallelism: usize, locality: f64, padding: u32, seed: u64) -> Self {
        assert!(parallelism > 0, "parallelism must be positive");
        assert!(
            (0.0..=1.0).contains(&locality),
            "locality must be in [0, 1]"
        );
        assert!(
            locality >= 1.0 || parallelism >= 2,
            "non-local tuples need at least two servers"
        );
        Self {
            parallelism,
            locality,
            padding,
            seed,
        }
    }

    /// An endless tuple source for source instance `instance`, whose
    /// tuples all carry `instance` as their first key.
    ///
    /// # Panics
    ///
    /// Panics if `instance >= parallelism`.
    #[must_use]
    pub fn source(&self, instance: usize) -> Box<dyn TupleSource> {
        assert!(instance < self.parallelism, "instance index out of range");
        let n = self.parallelism as u64;
        let locality = self.locality;
        let padding = self.padding;
        let mut rng = SplitMix64::new(self.seed ^ (instance as u64).wrapping_mul(0x9e37));
        let i = instance as u64;
        Box::new(move || {
            let j = if rng.gen_bool(locality) {
                i
            } else {
                // Uniform over the other n-1 values.
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                j
            };
            Some(Tuple::new([Key::new(i), Key::new(j)], padding))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn measure_locality(parallelism: usize, locality: f64, draws: usize) -> f64 {
        let w = SyntheticWorkload::new(parallelism, locality, 0, 42);
        let mut s = w.source(0);
        let mut equal = 0usize;
        for _ in 0..draws {
            let t = s.next_tuple().unwrap();
            if t.key(0) == t.key(1) {
                equal += 1;
            }
        }
        equal as f64 / draws as f64
    }

    #[test]
    fn locality_fraction_matches_parameter() {
        for &target in &[0.6, 0.8, 1.0] {
            let measured = measure_locality(6, target, 50_000);
            assert!(
                (measured - target).abs() < 0.02,
                "target {target}, measured {measured}"
            );
        }
    }

    #[test]
    fn keys_stay_in_range() {
        let w = SyntheticWorkload::new(3, 0.5, 256, 1);
        let mut s = w.source(2);
        for _ in 0..1000 {
            let t = s.next_tuple().unwrap();
            assert!(t.key(0).value() < 3);
            assert!(t.key(1).value() < 3);
            assert_eq!(t.payload_bytes(), 256);
        }
    }

    #[test]
    fn instances_draw_different_streams() {
        let w = SyntheticWorkload::new(4, 0.6, 0, 9);
        let mut a = w.source(0);
        let mut b = w.source(1);
        let differs = (0..100).any(|_| {
            a.next_tuple().unwrap().keys() != b.next_tuple().unwrap().keys()
        });
        assert!(differs);
    }

    #[test]
    fn deterministic_per_seed_and_instance() {
        let w = SyntheticWorkload::new(4, 0.6, 0, 9);
        let mut a = w.source(3);
        let mut b = w.source(3);
        for _ in 0..100 {
            assert_eq!(a.next_tuple().unwrap(), b.next_tuple().unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "at least two servers")]
    fn single_server_nonlocal_panics() {
        let _ = SyntheticWorkload::new(1, 0.6, 0, 0);
    }

    #[test]
    fn full_locality_on_one_server_is_fine() {
        let w = SyntheticWorkload::new(1, 1.0, 0, 0);
        let mut s = w.source(0);
        let t = s.next_tuple().unwrap();
        assert_eq!(t.key(0), t.key(1));
    }
}
