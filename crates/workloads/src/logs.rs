//! A service-log workload: error events correlated with the services
//! that emit them, punctuated by incident bursts.
//!
//! The paper's introduction motivates stream processing with
//! "software logs" next to social streams; this generator models that
//! operational shape: each error *signature* (a log template) belongs
//! to one service, most events carry a signature of their own service
//! (stable correlation — ideal for routing tables), and occasional
//! *incidents* flood the stream with one `(service, signature)` pair
//! for a stretch, stressing load balance exactly like the Twitter
//! generator's flash events.

use streamloc_engine::{splitmix64, Key, Tuple, TupleSource};

use crate::rng::SplitMix64;
use crate::zipf::Zipf;

/// Key-space offset separating signature keys from service keys.
pub const SIGNATURE_KEY_BASE: u64 = 3_000_000_000;

/// Generator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LogsConfig {
    /// Number of services emitting logs.
    pub services: usize,
    /// Number of distinct error signatures (log templates).
    pub signatures: usize,
    /// Zipf exponent of both marginals.
    pub zipf_s: f64,
    /// Probability an event's signature belongs to its service.
    pub correlation: f64,
    /// Probability per emitted tuple that a new incident starts.
    pub incident_rate: f64,
    /// Number of tuples an incident floods.
    pub incident_length: u64,
    /// Log line payload size in bytes.
    pub payload: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for LogsConfig {
    fn default() -> Self {
        Self {
            services: 50,
            signatures: 5_000,
            zipf_s: 1.0,
            correlation: 0.85,
            incident_rate: 2e-5,
            incident_length: 4_000,
            payload: 512,
            seed: 0x10c5,
        }
    }
}

/// The log stream: `(service, signature, payload)` tuples — field 0
/// routes per-service statistics, field 1 per-signature statistics.
///
/// # Example
///
/// ```
/// use streamloc_engine::TupleSource;
/// use streamloc_workloads::{LogsConfig, LogsWorkload};
///
/// let workload = LogsWorkload::new(LogsConfig::default());
/// let mut source = workload.source(0);
/// let event = source.next_tuple().unwrap();
/// assert!(event.key(0).value() < 50);
/// assert!(event.key(1).value() >= streamloc_workloads::SIGNATURE_KEY_BASE);
/// ```
#[derive(Debug, Clone)]
pub struct LogsWorkload {
    cfg: LogsConfig,
    zipf_service: Zipf,
    zipf_signature: Zipf,
}

impl LogsWorkload {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if `services` or `signatures` is zero, or any
    /// probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(cfg: LogsConfig) -> Self {
        assert!(cfg.services > 0 && cfg.signatures > 0);
        assert!((0.0..=1.0).contains(&cfg.correlation));
        assert!((0.0..=1.0).contains(&cfg.incident_rate));
        let zipf_service = Zipf::new(cfg.services, cfg.zipf_s);
        let zipf_signature = Zipf::new(cfg.signatures, cfg.zipf_s);
        Self {
            cfg,
            zipf_service,
            zipf_signature,
        }
    }

    /// The generator configuration.
    #[must_use]
    pub fn config(&self) -> &LogsConfig {
        &self.cfg
    }

    /// The service owning `signature` (fixed: log templates do not
    /// change hands).
    #[must_use]
    pub fn owner(&self, signature: usize) -> usize {
        (splitmix64(self.cfg.seed ^ (signature as u64).wrapping_mul(0x10c5))
            % self.cfg.services as u64) as usize
    }

    /// An endless tuple source for source instance `instance`.
    #[must_use]
    pub fn source(&self, instance: usize) -> Box<dyn TupleSource> {
        let this = self.clone();
        let mut rng = SplitMix64::new(splitmix64(
            self.cfg.seed ^ (instance as u64).wrapping_mul(0xcafe),
        ));
        let mut incident: Option<(usize, usize, u64)> = None; // service, sig, left
        Box::new(move || {
            if let Some((service, signature, left)) = incident {
                incident = (left > 1).then_some((service, signature, left - 1));
                return Some(Tuple::new(
                    [service_key(service), signature_key(signature)],
                    this.cfg.payload,
                ));
            }
            if rng.gen_bool(this.cfg.incident_rate) {
                // An incident floods one hot pair for a stretch.
                let signature = this.zipf_signature.sample(&mut rng);
                let service = this.owner(signature);
                incident = Some((service, signature, this.cfg.incident_length));
            }
            let signature = this.zipf_signature.sample(&mut rng);
            let service = if rng.gen_bool(this.cfg.correlation) {
                this.owner(signature)
            } else {
                this.zipf_service.sample(&mut rng)
            };
            Some(Tuple::new(
                [service_key(service), signature_key(signature)],
                this.cfg.payload,
            ))
        })
    }

    /// Draws `n` `(service key, signature key)` pairs for offline
    /// analysis, without incidents.
    #[must_use]
    pub fn batch(&self, n: usize, stream_seed: u64) -> Vec<(Key, Key)> {
        let mut rng = SplitMix64::new(splitmix64(self.cfg.seed ^ stream_seed));
        (0..n)
            .map(|_| {
                let signature = self.zipf_signature.sample(&mut rng);
                let service = if rng.gen_bool(self.cfg.correlation) {
                    self.owner(signature)
                } else {
                    self.zipf_service.sample(&mut rng)
                };
                (service_key(service), signature_key(signature))
            })
            .collect()
    }
}

/// Key encoding of service index `service`.
#[must_use]
pub fn service_key(service: usize) -> Key {
    Key::new(service as u64)
}

/// Key encoding of signature index `signature`.
#[must_use]
pub fn signature_key(signature: usize) -> Key {
    Key::new(SIGNATURE_KEY_BASE + signature as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LogsWorkload {
        LogsWorkload::new(LogsConfig {
            services: 10,
            signatures: 200,
            incident_rate: 0.0,
            ..LogsConfig::default()
        })
    }

    #[test]
    fn ownership_is_stable_and_in_range() {
        let w = small();
        for sig in 0..200 {
            let o = w.owner(sig);
            assert!(o < 10);
            assert_eq!(o, w.owner(sig), "ownership must not drift");
        }
    }

    #[test]
    fn correlation_fraction_matches() {
        let w = small();
        let batch = w.batch(20_000, 3);
        let owned = batch
            .iter()
            .filter(|(svc, sig)| {
                let signature = (sig.value() - SIGNATURE_KEY_BASE) as usize;
                w.owner(signature) == svc.value() as usize
            })
            .count();
        let frac = owned as f64 / batch.len() as f64;
        assert!(
            frac > 0.84 && frac < 0.92,
            "owner fraction {frac} off target"
        );
    }

    #[test]
    fn incidents_flood_one_pair() {
        let w = LogsWorkload::new(LogsConfig {
            services: 10,
            signatures: 100,
            incident_rate: 0.01,
            incident_length: 500,
            ..LogsConfig::default()
        });
        let mut s = w.source(0);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let t = s.next_tuple().unwrap();
            *counts.entry((t.key(0), t.key(1))).or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(
            max > 500,
            "incident bursts should dominate some pair: max {max}"
        );
    }

    #[test]
    fn deterministic_per_instance() {
        let w = small();
        let mut a = w.source(1);
        let mut b = w.source(1);
        for _ in 0..100 {
            assert_eq!(a.next_tuple().unwrap(), b.next_tuple().unwrap());
        }
    }

    #[test]
    fn payload_applied() {
        let w = LogsWorkload::new(LogsConfig {
            payload: 1024,
            ..LogsConfig::default()
        });
        assert_eq!(w.source(0).next_tuple().unwrap().payload_bytes(), 1024);
    }
}
