//! Workload generators for the locality-aware routing experiments.
//!
//! Three workload families reproduce the paper's evaluation inputs
//! (see the workspace DESIGN.md for the substitution rationale):
//!
//! * [`SyntheticWorkload`] — the controlled `(i, j, padding)` tuples
//!   of §4.2 with an exact locality parameter;
//! * [`TwitterWorkload`] — a drifting geo/hashtag stream standing in
//!   for the paper's 173 M-tweet crawl (§4.3): Zipf-skewed keys,
//!   weekly affinity drift, fresh hashtags and flash events;
//! * [`FlickrWorkload`] — a stable `(tag, country, padding)` stream
//!   standing in for YFCC100M (§4.4);
//! * [`LogsWorkload`] — a service-log stream (the intro's "software
//!   logs"): stable service↔signature correlations plus incident
//!   bursts.
//!
//! All generators are fully deterministic given their seed, so every
//! figure in EXPERIMENTS.md is exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod flickr;
mod logs;
mod rng;
mod synthetic;
mod twitter;
mod zipf;

pub use flickr::{country_key, tag_key as flickr_tag_key, FlickrConfig, FlickrWorkload, TAG_KEY_BASE};
pub use rng::SplitMix64;
pub use logs::{service_key, signature_key, LogsConfig, LogsWorkload, SIGNATURE_KEY_BASE};
pub use synthetic::SyntheticWorkload;
pub use twitter::{
    loc_key, tag_key, FlashEvent, TwitterConfig, TwitterWorkload, DAYS_PER_WEEK, HASHTAG_KEY_BASE,
};
pub use zipf::Zipf;
