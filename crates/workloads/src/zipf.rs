//! A seeded Zipf sampler.

use crate::rng::SplitMix64;

/// Zipf-distributed ranks over `0..n`: rank `r` is drawn with
/// probability proportional to `1 / (r + 1)^s`.
///
/// The paper motivates bounded-memory statistics by the Zipfian shape
/// of real key distributions (§3.2, citing the long tail); both the
/// Twitter-like and Flickr-like generators draw locations and
/// hashtags from this distribution.
///
/// Sampling is by binary search over the precomputed CDF — O(log n)
/// per draw, exact, and deterministic for a seeded RNG.
///
/// # Example
///
/// ```
/// use streamloc_workloads::{SplitMix64, Zipf};
///
/// let zipf = Zipf::new(1000, 1.0);
/// let mut rng = SplitMix64::new(7);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `0..n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0.0`.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Support size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always `false` (the constructor rejects empty supports); kept
    /// for API symmetry with `len`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank in `0..len()`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability of rank `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= len()`.
    #[must_use]
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_in_support() {
        let z = Zipf::new(10, 1.2);
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn skew_favors_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SplitMix64::new(2);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Rank 0 should collect ~1/H(100) ≈ 19% of draws.
        assert!((15_000..24_000).contains(&counts[0]), "rank0: {}", counts[0]);
    }

    #[test]
    fn s_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.5);
        let sum: f64 = (0..50).map(|r| z.pmf(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_seed() {
        let z = Zipf::new(1000, 1.0);
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
