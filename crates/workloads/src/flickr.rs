//! A Flickr-like workload with stable key correlations.
//!
//! Substitute for the paper's YFCC100M dump (100 M pictures with user
//! tags and OpenStreetMap-derived countries, §4.4). The dataset is
//! explicitly *stable* — "no temporal information and images are not
//! ordered" — so the generator draws `(tag, country)` pairs from a
//! fixed affinity map with Zipf-skewed marginals.

use streamloc_engine::{splitmix64, Key, Tuple, TupleSource};

use crate::rng::SplitMix64;
use crate::zipf::Zipf;

/// Key-space offset separating tag keys from country keys.
pub const TAG_KEY_BASE: u64 = 2_000_000_000;

/// Generator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FlickrConfig {
    /// Number of distinct user tags.
    pub tags: usize,
    /// Number of distinct countries.
    pub countries: usize,
    /// Zipf exponent of both marginals.
    pub zipf_s: f64,
    /// Probability a picture's country is its tag's affinity country.
    pub correlation: f64,
    /// Payload bytes per tuple (the experiment's padding).
    pub padding: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for FlickrConfig {
    fn default() -> Self {
        Self {
            tags: 50_000,
            countries: 200,
            zipf_s: 1.0,
            correlation: 0.75,
            padding: 4 * 1024,
            seed: 0xf11c,
        }
    }
}

/// The Flickr-like stream of `(tag, country, padding)` tuples used by
/// the reconfiguration-validation experiments (Figs. 13–14): field 0
/// is the tag (first fields grouping), field 1 the country (second).
///
/// # Example
///
/// ```
/// use streamloc_engine::TupleSource;
/// use streamloc_workloads::{FlickrConfig, FlickrWorkload};
///
/// let workload = FlickrWorkload::new(FlickrConfig::default());
/// let mut source = workload.source(0);
/// let t = source.next_tuple().unwrap();
/// assert!(t.key(0).value() >= streamloc_workloads::TAG_KEY_BASE);
/// assert!(t.key(1).value() < 200);
/// ```
#[derive(Debug, Clone)]
pub struct FlickrWorkload {
    cfg: FlickrConfig,
    zipf_tag: Zipf,
    zipf_country: Zipf,
}

impl FlickrWorkload {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if `tags` or `countries` is zero, or `correlation` is
    /// outside `[0, 1]`.
    #[must_use]
    pub fn new(cfg: FlickrConfig) -> Self {
        assert!(cfg.tags > 0 && cfg.countries > 0);
        assert!((0.0..=1.0).contains(&cfg.correlation));
        let zipf_tag = Zipf::new(cfg.tags, cfg.zipf_s);
        let zipf_country = Zipf::new(cfg.countries, cfg.zipf_s);
        Self {
            cfg,
            zipf_tag,
            zipf_country,
        }
    }

    /// The generator configuration.
    #[must_use]
    pub fn config(&self) -> &FlickrConfig {
        &self.cfg
    }

    /// The fixed affinity country of `tag`.
    #[must_use]
    pub fn affinity(&self, tag: usize) -> usize {
        (splitmix64(self.cfg.seed ^ (tag as u64).wrapping_mul(0xf1c2)) % self.cfg.countries as u64)
            as usize
    }

    /// An endless tuple source for source instance `instance`.
    #[must_use]
    pub fn source(&self, instance: usize) -> Box<dyn TupleSource> {
        let this = self.clone();
        let mut rng = SplitMix64::new(splitmix64(
            self.cfg.seed ^ (instance as u64).wrapping_mul(0x5151),
        ));
        Box::new(move || {
            let (tag, country) = this.draw(&mut rng);
            Some(Tuple::new(
                [tag_key(tag), country_key(country)],
                this.cfg.padding,
            ))
        })
    }

    /// Draws `n` `(tag key, country key)` pairs, for offline analysis
    /// and replay experiments.
    #[must_use]
    pub fn batch(&self, n: usize, stream_seed: u64) -> Vec<(Key, Key)> {
        let mut rng = SplitMix64::new(splitmix64(self.cfg.seed ^ stream_seed));
        (0..n)
            .map(|_| {
                let (tag, country) = self.draw(&mut rng);
                (tag_key(tag), country_key(country))
            })
            .collect()
    }

    fn draw(&self, rng: &mut SplitMix64) -> (usize, usize) {
        let tag = self.zipf_tag.sample(rng);
        let country = if rng.gen_bool(self.cfg.correlation) {
            self.affinity(tag)
        } else {
            self.zipf_country.sample(rng)
        };
        (tag, country)
    }
}

/// Key encoding of tag index `tag`.
#[must_use]
pub fn tag_key(tag: usize) -> Key {
    Key::new(TAG_KEY_BASE + tag as u64)
}

/// Key encoding of country index `country`.
#[must_use]
pub fn country_key(country: usize) -> Key {
    Key::new(country as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn small() -> FlickrWorkload {
        FlickrWorkload::new(FlickrConfig {
            tags: 1_000,
            countries: 30,
            padding: 64,
            ..FlickrConfig::default()
        })
    }

    #[test]
    fn correlation_fraction_matches() {
        let w = small();
        let batch = w.batch(20_000, 1);
        let matches = batch
            .iter()
            .filter(|(t, c)| {
                let tag = (t.value() - TAG_KEY_BASE) as usize;
                w.affinity(tag) == c.value() as usize
            })
            .count();
        let frac = matches as f64 / batch.len() as f64;
        // correlation + (1 - correlation)/countries accidental hits
        assert!(
            frac > 0.74 && frac < 0.82,
            "affinity fraction {frac} off target"
        );
    }

    #[test]
    fn workload_is_stable_across_batches() {
        let w = small();
        let top = |b: &[(Key, Key)]| -> HashSet<(Key, Key)> {
            let mut counts: HashMap<(Key, Key), u32> = HashMap::new();
            for &p in b {
                *counts.entry(p).or_default() += 1;
            }
            let mut v: Vec<_> = counts.into_iter().collect();
            v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            v.into_iter().take(30).map(|(p, _)| p).collect()
        };
        let t1 = top(&w.batch(20_000, 1));
        let t2 = top(&w.batch(20_000, 999));
        let overlap = t1.intersection(&t2).count();
        assert!(overlap >= 25, "stable workload drifted: overlap {overlap}/30");
    }

    #[test]
    fn source_is_deterministic_per_instance() {
        let w = small();
        let mut a = w.source(2);
        let mut b = w.source(2);
        let mut c = w.source(3);
        let mut saw_difference = false;
        for _ in 0..50 {
            let ta = a.next_tuple().unwrap();
            assert_eq!(ta, b.next_tuple().unwrap());
            if ta != c.next_tuple().unwrap() {
                saw_difference = true;
            }
        }
        assert!(saw_difference, "instances should draw distinct streams");
    }

    #[test]
    fn padding_is_applied() {
        let w = FlickrWorkload::new(FlickrConfig {
            tags: 10,
            countries: 5,
            padding: 12 * 1024,
            ..FlickrConfig::default()
        });
        let t = w.source(0).next_tuple().unwrap();
        assert_eq!(t.payload_bytes(), 12 * 1024);
    }
}
