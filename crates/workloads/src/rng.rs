//! A pinned, platform-stable random number generator for workloads.
//!
//! The generators in this crate are part of the experiment contract:
//! a seed must reproduce the exact same tuple stream on any platform
//! and forever, the same guarantee `streamloc-sketch` pins for
//! hashing. A third-party RNG cannot promise that across versions, so
//! workloads draw from this splitmix64 counter stream built on the
//! same [`splitmix64`] finalizer the stable hasher uses.
//!
//! The stream is fully specified: draw `i` for seed `s` is
//! `splitmix64(s + i * 0x9e37_79b9_7f4a_7c15)` (wrapping), and the
//! float/range conversions below are part of the pinned contract —
//! see the regression tests with hard-coded constants.

use std::ops::Range;

use streamloc_engine::splitmix64;

/// Weyl-sequence increment of the splitmix64 stream (the golden
/// ratio in fixed point; also the constant inside [`splitmix64`]).
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// A splitmix64 counter-stream RNG with pinned output.
///
/// # Example
///
/// ```
/// use streamloc_workloads::SplitMix64;
///
/// let mut rng = SplitMix64::new(0);
/// assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator; `seed` fully determines the stream.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = splitmix64(self.state);
        self.state = self.state.wrapping_add(GOLDEN);
        out
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        self.next_f64() < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "cannot sample empty range");
        let span = (range.end - range.start) as u128;
        range.start + ((self.next_u64() as u128) % span) as u64
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range_usize(&mut self, range: Range<usize>) -> usize {
        self.gen_range(range.start as u64..range.end as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pinned contract: these constants must never change. They
    /// pin the full stream spec — seeding, the Weyl increment, and
    /// the splitmix64 finalizer.
    #[test]
    fn pinned_u64_streams() {
        let draws = |seed: u64| -> [u64; 4] {
            let mut rng = SplitMix64::new(seed);
            [rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64()]
        };
        assert_eq!(
            draws(0),
            [
                0xe220_a839_7b1d_cdaf,
                0x6e78_9e6a_a1b9_65f4,
                0x06c4_5d18_8009_454f,
                0xf88b_b8a8_724c_81ec,
            ]
        );
        assert_eq!(
            draws(1),
            [
                0x910a_2dec_8902_5cc1,
                0xbeeb_8da1_658e_ec67,
                0xf893_a2ee_fb32_555e,
                0x71c1_8690_ee42_c90b,
            ]
        );
        assert_eq!(
            draws(0xdead_beef),
            [
                0x4adf_b90f_68c9_eb9b,
                0xde58_6a31_41a1_0922,
                0x021f_bc2f_8e1c_fc1d,
                0x7466_ce73_7be1_6790,
            ]
        );
    }

    /// The float conversion is part of the pinned contract too.
    #[test]
    fn pinned_f64_stream() {
        let mut rng = SplitMix64::new(42);
        assert_eq!(rng.next_f64(), 0.741_564_878_771_823_3);
        assert_eq!(rng.next_f64(), 0.159_910_392_876_920_1);
        assert_eq!(rng.next_f64(), 0.278_601_130_255_138_66);
    }

    #[test]
    fn draws_match_the_documented_formula() {
        let seed = 0x1234_5678_9abc_def0u64;
        let mut rng = SplitMix64::new(seed);
        for i in 0..100u64 {
            let expected = splitmix64(seed.wrapping_add(i.wrapping_mul(GOLDEN)));
            assert_eq!(rng.next_u64(), expected, "draw {i}");
        }
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = SplitMix64::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_balances() {
        let mut rng = SplitMix64::new(7);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range_usize(0..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::new(11);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 50_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac} far from 0.3");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = SplitMix64::new(0).gen_range(5..5);
    }
}
